"""Constant and dynamic TTL protocols."""

import pytest

from repro.core.bundle import NO_EXPIRY
from repro.core.protocols.ttl import DynamicTTLConfig, FixedTTLConfig
from tests.helpers import CHAIN_ROWS, make_node, run_micro, stored


class TestFixedTTLConfig:
    def test_positive_ttl_required(self):
        with pytest.raises(ValueError):
            FixedTTLConfig(ttl=0.0)

    def test_label_shows_origin_mode(self):
        assert "origin expires" in FixedTTLConfig(expire_origin=True).label


class TestFixedTTLHooks:
    def test_received_copy_armed(self):
        node, sim = make_node(1, protocol="ttl", ttl=300.0)
        sim.advance(100.0)
        sb = node.protocol.accept(stored(1).bundle, ec=0, now=100.0)
        assert sb.expiry == 400.0

    def test_origin_untouched_by_default(self):
        node, sim = make_node(0, protocol="ttl", ttl=300.0)
        sb = node.add_origin(stored(1, source=0).bundle, now=0.0)
        node.protocol.on_bundle_created(sb, now=0.0)
        assert sb.expiry == NO_EXPIRY

    def test_origin_armed_when_enabled(self):
        node, sim = make_node(0, protocol="ttl", ttl=300.0, expire_origin=True)
        sb = node.add_origin(stored(1, source=0).bundle, now=0.0)
        node.protocol.on_bundle_created(sb, now=0.0)
        assert sb.expiry == 300.0

    def test_transmission_renews_relay_copy(self):
        node, sim = make_node(1, protocol="ttl", ttl=300.0)
        peer, _ = make_node(2)
        sb = node.protocol.accept(stored(1).bundle, ec=0, now=0.0)
        sim.advance(250.0)
        node.protocol.on_transmitted(sb, peer, now=250.0)
        assert sb.expiry == 550.0
        assert sb.ec == 1


class TestFixedTTLEndToEnd:
    def test_relay_copies_expire(self):
        """A relayed copy dies before the next hop when the gap > TTL."""
        rows = [(100.0, 350.0, 0, 1), (1_000.0, 1_250.0, 1, 2)]
        _, result = run_micro("ttl", rows, 3, load=1, protocol_kwargs={"ttl": 300.0})
        # node 1's copy (received ~200) expires ~500 < 1000 -> no delivery
        assert result.delivery_ratio == 0.0
        assert result.removals["expired"] >= 1

    def test_relay_survives_short_gap(self):
        rows = [(100.0, 350.0, 0, 1), (400.0, 650.0, 1, 2)]
        _, result = run_micro("ttl", rows, 3, load=1, protocol_kwargs={"ttl": 300.0})
        assert result.delivery_ratio == 1.0

    def test_origin_expiry_collapses_delivery(self):
        # source never meets anyone within the TTL
        rows = [(1_000.0, 1_250.0, 0, 2)]
        _, ok = run_micro("ttl", rows, 3, load=1, protocol_kwargs={"ttl": 300.0})
        assert ok.delivery_ratio == 1.0  # origin-immune default delivers
        _, dead = run_micro(
            "ttl", rows, 3, load=1,
            protocol_kwargs={"ttl": 300.0, "expire_origin": True},
        )
        assert dead.delivery_ratio == 0.0


class TestDynamicTTLConfig:
    @pytest.mark.parametrize("kwargs", [{"multiplier": 0.0}, {"default_ttl": 0.0}])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            DynamicTTLConfig(**kwargs)


class TestDynamicTTLHooks:
    def test_no_interval_means_default_infinite(self):
        node, _ = make_node(1, protocol="dynamic_ttl")
        sb = node.protocol.accept(stored(1).bundle, ec=0, now=0.0)
        assert sb.expiry == NO_EXPIRY

    def test_ttl_is_twice_last_interval(self):
        node, _ = make_node(1, protocol="dynamic_ttl")
        node.history.note_encounter(1_000.0)
        node.history.note_encounter(1_500.0)  # interval 500 (> debounce gap)
        sb = node.protocol.accept(stored(1).bundle, ec=0, now=1_500.0)
        assert sb.expiry == 1_500.0 + 2 * 500.0

    def test_finite_default_ttl_used_before_estimate(self):
        node, _ = make_node(1, protocol="dynamic_ttl", default_ttl=700.0)
        sb = node.protocol.accept(stored(1).bundle, ec=0, now=100.0)
        assert sb.expiry == 800.0

    def test_encounter_rearms_buffered_copies(self):
        node, _ = make_node(1, protocol="dynamic_ttl")
        peer, _ = make_node(2)
        node.history.note_encounter(0.0)
        node.history.note_encounter(400.0)  # interval 400
        sb = node.protocol.accept(stored(1).bundle, ec=0, now=400.0)
        assert sb.expiry == 400.0 + 800.0
        node.history.note_encounter(1_000.0)  # interval 600
        node.protocol.on_encounter_started(peer, now=1_000.0)
        assert sb.expiry == 1_000.0 + 1_200.0

    def test_origin_rearmed_only_when_expiring(self):
        node, _ = make_node(0, protocol="dynamic_ttl", expire_origin=True)
        peer, _ = make_node(2)
        sb = node.add_origin(stored(1, source=0).bundle, now=0.0)
        node.protocol.on_bundle_created(sb, now=0.0)
        node.history.note_encounter(0.0)
        node.history.note_encounter(500.0)
        node.protocol.on_encounter_started(peer, now=500.0)
        assert sb.expiry == 500.0 + 1_000.0

    def test_multiplier_respected(self):
        node, _ = make_node(1, protocol="dynamic_ttl", multiplier=3.0)
        node.history.note_encounter(0.0)
        node.history.note_encounter(500.0)
        sb = node.protocol.accept(stored(1).bundle, ec=0, now=500.0)
        assert sb.expiry == 500.0 + 3 * 500.0

    def test_burst_encounters_do_not_collapse_ttl(self):
        """The rendezvous debounce keeps bursts from nuking the estimate."""
        node, _ = make_node(1, protocol="dynamic_ttl")
        node.history.note_encounter(0.0)
        node.history.note_encounter(1_000.0)  # interval 1000
        node.history.note_encounter(1_005.0)  # burst at the same spot
        sb = node.protocol.accept(stored(1).bundle, ec=0, now=1_005.0)
        assert sb.expiry == 1_005.0 + 2_000.0


class TestDynamicTTLEndToEnd:
    def test_survives_its_own_rhythm(self):
        """Copies survive gaps comparable to the node's usual interval."""
        rows = [
            (0.0, 150.0, 1, 3),        # builds node 1's interval estimate
            (1_000.0, 1_150.0, 1, 3),  # interval 1000 -> TTL basis 2000
            (2_000.0, 2_250.0, 0, 1),  # source hands over (arrives ~2100)
            (3_500.0, 3_750.0, 1, 2),  # gap 1400 < TTL 2000: still alive
        ]
        _, dyn = run_micro("dynamic_ttl", rows, 4, destination=2, load=1)
        assert dyn.delivery_ratio == 1.0
        _, fixed = run_micro(
            "ttl", rows, 4, destination=2, load=1, protocol_kwargs={"ttl": 300.0}
        )
        assert fixed.delivery_ratio == 0.0

    def test_dynamic_beats_constant_on_chain(self):
        _, dyn = run_micro("dynamic_ttl", CHAIN_ROWS, 4, load=1)
        _, fixed = run_micro("ttl", CHAIN_ROWS, 4, load=1, protocol_kwargs={"ttl": 300.0})
        assert dyn.delivery_ratio >= fixed.delivery_ratio
