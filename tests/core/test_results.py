"""Result aggregation."""

import math

import pytest

from repro.core.results import RunResult, Series, SeriesPoint, SweepResult


def _run(protocol="p", load=5, delay=100.0, success=True, dr=1.0, buf=0.5, dup=0.3, sig=None):
    return RunResult(
        protocol=protocol,
        protocol_label=protocol,
        trace_name="t",
        load=load,
        seed=0,
        source=0,
        destination=1,
        delivered=int(load * dr),
        delivery_ratio=dr,
        delay=delay,
        success=success,
        buffer_occupancy=buf,
        duplication_rate=dup,
        signaling=sig or {"anti_packet": 0, "immunity_table": 0, "summary_vector": 2},
        transmissions=10,
        wasted_slots=0,
        removals={"evicted": 0, "expired": 0, "immunized": 0, "ec_aged_out": 0},
        end_time=1_000.0,
    )


class TestRunResult:
    def test_signaling_overhead_sums_protocol_kinds(self):
        r = _run(sig={"anti_packet": 3, "immunity_table": 4, "summary_vector": 99})
        assert r.signaling_overhead == 7

    def test_as_row_serialises_none_delay(self):
        row = _run(delay=None, success=False).as_row()
        assert row["delay"] == ""
        assert row["success"] == 0
        assert row["signal_anti_packet"] == 0


class TestSeriesAggregation:
    def _sweep(self):
        s = SweepResult()
        s.runs = [
            _run("a", 5, delay=100.0),
            _run("a", 5, delay=300.0),
            _run("a", 10, delay=None, success=False, dr=0.5),
            _run("b", 5, delay=50.0),
            _run("b", 10, delay=60.0),
        ]
        return s

    def test_protocols_in_first_appearance_order(self):
        assert self._sweep().protocols() == ["a", "b"]

    def test_loads_sorted(self):
        assert self._sweep().loads() == [5, 10]

    def test_filter(self):
        s = self._sweep()
        assert len(s.filter(protocol_label="a")) == 3
        assert len(s.filter(protocol_label="a", load=5)) == 2

    def test_delay_series_skips_failed_runs(self):
        series = self._sweep().delay_series()
        a = next(x for x in series if x.label == "a")
        assert a.values[0] == 200.0  # mean of 100, 300
        assert math.isnan(a.values[1])  # no successful run at load 10
        assert a.points[0].n == 2
        assert a.points[1].n == 0

    def test_delivery_series_includes_failures(self):
        series = self._sweep().delivery_ratio_series()
        a = next(x for x in series if x.label == "a")
        assert a.values[1] == 0.5

    def test_series_metric_callable(self):
        series = self._sweep().series(lambda r: float(r.transmissions))
        assert series[0].values == [10.0, 10.0]

    def test_protocol_means(self):
        means = self._sweep().protocol_means("a")
        assert means["delivery_ratio"] == pytest.approx((1 + 1 + 0.5) / 3)
        assert means["delay"] == pytest.approx(200.0)
        assert means["runs"] == 3.0

    def test_protocol_means_unknown_label(self):
        with pytest.raises(ValueError):
            self._sweep().protocol_means("zzz")

    def test_extend(self):
        s = self._sweep()
        s.extend([_run("c", 5)])
        assert "c" in s.protocols()
        assert len(s) == 6


class TestSeries:
    def test_loads_values_views(self):
        s = Series(label="x", points=[SeriesPoint(5, 1.0, 3), SeriesPoint(10, 2.0, 3)])
        assert s.loads == [5, 10]
        assert s.values == [1.0, 2.0]
