"""Kernel-vs-event equivalence gate for the SoA contact-sweep kernel.

The sweep kernel (:mod:`repro.core.sweepkernel`) promises *byte-identical*
``RunResult``s to the event engine for every run it accepts — it is a
speed tier, not an approximation. These tests pin that promise the way the
planner and batching refactors were pinned: ``repr`` equality over the
golden-pin protocol set on campus and RWP traces, plus the structural edge
cases the kernel handles specially (heterogeneous radios, buffer-pressure
drops under every policy, early halt at the delivery boundary) and the
fail-fast rejection surface (faults, encounter-reactive protocols, the ODE
engine). Hypothesis drives randomized mini-scenarios through both kernels
and checks physical invariants on the SoA side directly.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.core.bundle import BundleId
from repro.core.policies import drop_policy_names
from repro.core.protocols import make_protocol_config
from repro.core.simulation import KERNELS, Simulation, SimulationConfig
from repro.core.workload import Flow, single_flow
from repro.des.rng import derive_seed
from repro.faults import FaultSpec
from repro.mobility.contact import Contact, ContactTrace
from repro.mobility.rwp import RWPConfig, SubscriberPointRWP
from repro.mobility.trajectory import contacts_from_trajectories
from repro.scenarios.spec import MobilitySpec, ProtocolSpec, ScenarioSpec

#: Every encounter-inert protocol the kernel accepts, with constructor
#: kwargs covering the state each one adds (TTL deadlines, EC counters,
#: forwarding coins, spray tokens).
INERT_PROTOCOLS = [
    ("pure", {}),
    ("ttl", {"ttl": 300.0}),
    ("ec", {}),
    ("ec_ttl", {}),
    ("pq", {"p": 0.8, "q": 0.4, "anti_packets": False}),
    ("spray_wait", {}),
]

#: Encounter-reactive configurations the kernel must refuse.
REACTIVE_PROTOCOLS = [
    ("pq", {"p": 1.0, "q": 1.0, "anti_packets": True}),
    ("immunity", {}),
]


@pytest.fixture(scope="module")
def rwp_trace() -> ContactTrace:
    """A 30-node subscriber-point RWP trace (bench-style mobility)."""
    cfg = RWPConfig(num_nodes=30, horizon=20_000.0)
    trajectories = SubscriberPointRWP(cfg, seed=3).generate_trajectories()
    return contacts_from_trajectories(
        trajectories,
        cfg.comm_range,
        contact_cap=cfg.contact_cap,
        horizon=cfg.horizon,
    )


def run_cell(
    trace: ContactTrace,
    name: str,
    kwargs: dict,
    kernel: str,
    *,
    load: int = 10,
    master_seed: int = 7,
    **config_kwargs,
) -> tuple[Simulation, object]:
    """One sweep cell seeded exactly like ``run_single``, on ``kernel``."""
    protocol = make_protocol_config(name, **kwargs)
    endpoint_rng = np.random.default_rng(derive_seed(master_seed, "workload", load, 0))
    flows = single_flow(trace.num_nodes, load, endpoint_rng)
    run_seed = int(
        derive_seed(master_seed, "run", protocol.protocol_name, load, 0).generate_state(
            1
        )[0]
    )
    sim = Simulation(
        trace,
        protocol,
        flows,
        config=SimulationConfig(kernel=kernel, **config_kwargs),
        seed=run_seed,
    )
    return sim, sim.run()


def assert_identical(trace, name, kwargs, **config_kwargs) -> None:
    """Both kernels must produce byte-identical results and event counts."""
    ev_sim, ev_result = run_cell(trace, name, kwargs, "event", **config_kwargs)
    soa_sim, soa_result = run_cell(trace, name, kwargs, "soa", **config_kwargs)
    assert repr(ev_result) == repr(soa_result)
    assert ev_result == soa_result
    # the kernel's event accounting must mirror the reference schedule too
    assert (
        ev_sim.engine.events_fired + ev_sim.batched_encounters
        == soa_sim.engine.events_fired + soa_sim.batched_encounters
    )


# --------------------------------------------------------------- equivalence


@pytest.mark.parametrize(
    ("name", "kwargs"), INERT_PROTOCOLS, ids=[p[0] for p in INERT_PROTOCOLS]
)
def test_kernel_matches_event_on_campus(campus_trace, name, kwargs):
    assert_identical(campus_trace, name, kwargs)


@pytest.mark.parametrize(
    ("name", "kwargs"), INERT_PROTOCOLS, ids=[p[0] for p in INERT_PROTOCOLS]
)
def test_kernel_matches_event_on_rwp(rwp_trace, name, kwargs):
    assert_identical(rwp_trace, name, kwargs)


def test_kernel_matches_event_heterogeneous_radios(campus_trace):
    """Per-node tx times change the link budget of every session."""
    tx = tuple(60.0 + 15.0 * (i % 7) for i in range(campus_trace.num_nodes))
    assert_identical(campus_trace, "pure", {}, bundle_tx_time=tx)
    assert_identical(campus_trace, "ttl", {"ttl": 300.0}, bundle_tx_time=tx)


@pytest.mark.parametrize("policy", sorted(drop_policy_names()))
def test_kernel_matches_event_under_buffer_pressure(campus_trace, policy):
    """Tight buffers force admission control through every drop policy
    (drop-random additionally consumes the per-node RNG stream)."""
    assert_identical(
        campus_trace,
        "pure",
        {},
        load=30,
        buffer_capacity=2,
        drop_policy=policy,
    )


def test_kernel_matches_event_at_early_halt_boundary():
    """Delivery on the last relevant contact must halt both kernels at the
    same instant, with the trailing contacts charged but never simulated."""
    contacts = [
        Contact(start=100.0, end=400.0, a=0, b=1),
        Contact(start=500.0, end=900.0, a=1, b=2),
        # after full delivery: must be skipped identically by both tiers
        Contact(start=1_000.0, end=1_400.0, a=0, b=2),
        Contact(start=1_500.0, end=1_900.0, a=1, b=2),
    ]
    trace = ContactTrace(contacts, 3, horizon=10_000.0)
    flows = [Flow(flow_id=0, source=0, destination=2, num_bundles=2)]
    results = {}
    for kernel in ("event", "soa"):
        sim = Simulation(
            trace,
            make_protocol_config("pure"),
            flows,
            config=SimulationConfig(kernel=kernel),
            seed=11,
        )
        results[kernel] = sim.run()
    assert repr(results["event"]) == repr(results["soa"])
    assert results["event"].delivered == 2
    # the halt really was early — nothing ran past the delivering contact
    assert results["event"].end_time < 1_000.0


# ----------------------------------------------------------------- rejection


def test_config_rejects_unknown_kernel():
    with pytest.raises(ValueError, match="kernel"):
        SimulationConfig(kernel="vectorized")
    assert KERNELS == ("auto", "event", "soa")


def test_config_rejects_soa_under_faults():
    with pytest.raises(ValueError, match="fault injection"):
        SimulationConfig(
            kernel="soa", faults=FaultSpec(churn_rate=0.001, mean_downtime=50.0)
        )
    # a trivial (all-defaults) fault spec injects nothing → allowed
    SimulationConfig(kernel="soa", faults=FaultSpec())


def test_scenario_spec_rejects_soa_under_faults_at_load_time():
    """The refusal must happen when the spec is built, not mid-campaign."""
    spec_kwargs = dict(
        mobility=MobilitySpec(kind="campus", params={}),
        protocols=(ProtocolSpec(name="pure"),),
        kernel="soa",
        faults=FaultSpec(contact_drop_prob=0.1),
    )
    with pytest.raises(ValueError, match="fault injection"):
        ScenarioSpec(**spec_kwargs)
    # the identical dict round-trips through from_dict to the same error
    good = ScenarioSpec(
        mobility=MobilitySpec(kind="campus", params={}),
        protocols=(ProtocolSpec(name="pure"),),
        kernel="soa",
    )
    data = good.to_dict()
    assert data["kernel"] == "soa"
    data["faults"] = {"contact_drop_prob": 0.1}
    with pytest.raises(ValueError, match="fault injection"):
        ScenarioSpec.from_dict(data)


@pytest.mark.parametrize(
    ("name", "kwargs"), REACTIVE_PROTOCOLS, ids=[p[0] for p in REACTIVE_PROTOCOLS]
)
def test_soa_rejects_encounter_reactive_protocols(campus_trace, name, kwargs):
    with pytest.raises(ValueError, match="kernel='soa' cannot execute this run"):
        run_cell(campus_trace, name, kwargs, "soa")


@pytest.mark.parametrize(
    ("name", "kwargs"), REACTIVE_PROTOCOLS, ids=[p[0] for p in REACTIVE_PROTOCOLS]
)
def test_auto_falls_back_to_event_identically(campus_trace, name, kwargs):
    _, auto_result = run_cell(campus_trace, name, kwargs, "auto")
    _, ev_result = run_cell(campus_trace, name, kwargs, "event")
    assert repr(auto_result) == repr(ev_result)


def test_auto_uses_kernel_for_inert_population(campus_trace):
    """auto on an eligible run takes the SoA tier (no heap churn), and the
    result still matches the forced-event run byte for byte."""
    auto_sim, auto_result = run_cell(campus_trace, "pure", {}, "auto")
    _, ev_result = run_cell(campus_trace, "pure", {}, "event")
    assert repr(auto_result) == repr(ev_result)
    # the SoA calendar fires far fewer heap events than the contact count
    assert auto_sim.batched_encounters > 0


def test_soa_rejects_ode_engine():
    with pytest.raises(ValueError, match="engine"):
        SimulationConfig(engine="ode", kernel="soa")


# ------------------------------------------------------- hypothesis invariants

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import HealthCheck, given, settings, strategies as st  # noqa: E402


@st.composite
def mini_scenario(draw):
    """A random small trace with integer-grid times so contact starts can
    land exactly on TTL-expiry boundaries (the `<=` vs `<` edge)."""
    num_nodes = draw(st.integers(3, 6))
    n_contacts = draw(st.integers(2, 20))
    contacts = []
    t = 0.0
    for _ in range(n_contacts):
        t += draw(st.integers(10, 400))
        dur = draw(st.integers(50, 500))
        a = draw(st.integers(0, num_nodes - 1))
        b = draw(st.integers(0, num_nodes - 1).filter(lambda x, a=a: x != a))
        contacts.append(Contact(start=t, end=t + dur, a=a, b=b))
        t += dur
    trace = ContactTrace(contacts, num_nodes, horizon=t + 2_000.0)
    source = draw(st.integers(0, num_nodes - 1))
    dest = draw(st.integers(0, num_nodes - 1).filter(lambda x: x != source))
    load = draw(st.integers(1, 8))
    capacity = draw(st.integers(1, 4))
    return trace, source, dest, load, capacity


PROTO_STRATEGY = st.sampled_from(
    [
        ("pure", {}),
        # integer TTLs matching the integer time grid: expiries collide
        # with contact starts, pinning the boundary semantics
        ("ttl", {"ttl": 200.0}),
        ("ttl", {"ttl": 450.0}),
        ("ec", {}),
        ("pq", {"p": 0.7, "q": 0.5, "anti_packets": False}),
    ]
)


@settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    scenario=mini_scenario(),
    proto=PROTO_STRATEGY,
    policy=st.sampled_from(sorted(drop_policy_names())),
    seed=st.integers(0, 3),
)
def test_soa_invariants_and_equivalence(scenario, proto, policy, seed):
    trace, source, dest, load, capacity = scenario
    name, kwargs = proto
    flows = [Flow(flow_id=0, source=source, destination=dest, num_bundles=load)]

    def build(kernel):
        return Simulation(
            trace,
            make_protocol_config(name, **kwargs),
            flows,
            config=SimulationConfig(
                kernel=kernel, buffer_capacity=capacity, drop_policy=policy
            ),
            seed=seed,
        )

    ev_result = build("event").run()
    soa_sim = build("soa")
    soa_result = soa_sim.run()

    # --- equivalence: the kernel is exact, not approximately right
    assert repr(soa_result) == repr(ev_result)

    # --- copy conservation on the SoA side: metric copy counts equal the
    # live copies actually held plus the destination's consumed copy
    dest_node = soa_sim.nodes[dest]
    for seq in range(1, load + 1):
        bid = BundleId(0, seq)
        live = sum(1 for n in soa_sim.nodes if n.get_copy(bid) is not None)
        expected = live + (1 if bid in dest_node.delivered else 0)
        assert soa_sim.metrics.copy_count(bid) == expected

    # --- delivered-stays-delivered: every counted delivery is terminal
    # (the destination consumed it; it never reappears as a live copy)
    assert soa_result.delivered == len(dest_node.delivered)
    for bid in dest_node.delivered:
        assert dest_node.get_copy(bid) is None

    # --- TTL boundary: every surviving relay copy's expiry deadline lies
    # at or beyond the stop time — a copy whose deadline passed before the
    # run ended must have been expired by the kernel (deadlines exactly on
    # the stop time are the `<=` vs `<` edge the integer grid provokes:
    # either the expiry fired first and the copy is gone, or the halt beat
    # it and the deadline equals end_time)
    if kwargs.get("ttl") is not None:
        for node in soa_sim.nodes:
            for sb in node.relay.entries_view().values():
                assert sb.expiry is None or sb.expiry >= soa_result.end_time
