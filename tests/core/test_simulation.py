"""Simulation driver: lifecycle, termination, metrics wiring."""

import pytest

from repro.core.protocols import make_protocol_config
from repro.core.simulation import Simulation, SimulationConfig
from repro.core.workload import Flow
from tests.helpers import CHAIN_ROWS, micro_trace, run_micro


class TestConfigValidation:
    def test_rejects_bad_buffer(self):
        with pytest.raises(ValueError):
            SimulationConfig(buffer_capacity=0)

    def test_rejects_bad_tx_time(self):
        with pytest.raises(ValueError):
            SimulationConfig(bundle_tx_time=0.0)


class TestConstruction:
    def test_requires_flows(self):
        trace = micro_trace(CHAIN_ROWS, 4)
        with pytest.raises(ValueError, match="flow"):
            Simulation(trace, make_protocol_config("pure"), [])

    def test_flow_endpoints_validated_against_population(self):
        trace = micro_trace(CHAIN_ROWS, 4)
        flows = [Flow(flow_id=0, source=0, destination=9, num_bundles=1)]
        with pytest.raises(ValueError, match="population"):
            Simulation(trace, make_protocol_config("pure"), flows)

    def test_single_use(self):
        trace = micro_trace(CHAIN_ROWS, 4)
        flows = [Flow(flow_id=0, source=0, destination=3, num_bundles=1)]
        sim = Simulation(trace, make_protocol_config("pure"), flows)
        sim.run()
        with pytest.raises(RuntimeError, match="single-use"):
            sim.run()


class TestTermination:
    def test_success_stops_at_last_delivery(self):
        sim, result = run_micro("pure", CHAIN_ROWS, 4, load=1)
        assert result.success
        assert result.delay == 2_100.0  # 2000 + one tx_time
        assert result.end_time == 2_100.0

    def test_failure_runs_to_horizon(self):
        rows = [(100.0, 350.0, 0, 1)]  # never reaches node 2
        _, result = run_micro("pure", rows, 3, load=1, horizon=50_000.0)
        assert not result.success
        assert result.delay is None
        assert result.end_time == 50_000.0
        assert result.delivery_ratio == 0.0

    def test_partial_delivery_counts(self):
        rows = [(3_568.0, 3_882.0, 0, 1)]  # capacity 3 of 10 bundles
        _, result = run_micro("pure", rows, 2, destination=1, load=10)
        assert result.delivered == 3
        assert result.delivery_ratio == pytest.approx(0.3)
        assert not result.success


class TestDeterminism:
    def test_same_seed_same_result(self, small_campus_trace):
        flows = [Flow(flow_id=0, source=1, destination=7, num_bundles=15)]

        def one(seed):
            return Simulation(
                small_campus_trace, make_protocol_config("pq", p=0.5, q=0.5),
                flows, seed=seed,
            ).run()

        a, b = one(42), one(42)
        assert a.delivery_ratio == b.delivery_ratio
        assert a.delay == b.delay
        assert a.transmissions == b.transmissions
        assert a.buffer_occupancy == b.buffer_occupancy
        assert a.duplication_rate == b.duplication_rate

    def test_different_seed_can_differ(self, small_campus_trace):
        flows = [Flow(flow_id=0, source=1, destination=7, num_bundles=15)]
        a = Simulation(
            small_campus_trace, make_protocol_config("pq", p=0.5, q=0.5), flows, seed=1
        ).run()
        b = Simulation(
            small_campus_trace, make_protocol_config("pq", p=0.5, q=0.5), flows, seed=2
        ).run()
        # coins differ; transmissions almost surely differ
        assert (a.transmissions, a.delay) != (b.transmissions, b.delay)


class TestMetricsWiring:
    def test_buffer_occupancy_exact_on_tiny_scenario(self):
        """One relayed copy parked at node 1 from t=200 to horizon."""
        rows = [(100.0, 250.0, 0, 1)]
        _, result = run_micro("pure", rows, 3, destination=2, load=1, horizon=10_000.0)
        # copy stored at t=200 (one tx_time after start); 1 slot of 30 total
        expected = (10_000.0 - 200.0) / 10_000.0 / 30.0
        assert result.buffer_occupancy == pytest.approx(expected)

    def test_duplication_exact_on_tiny_scenario(self):
        rows = [(100.0, 250.0, 0, 1)]
        _, result = run_micro("pure", rows, 3, destination=2, load=1, horizon=10_000.0)
        # copies/N: 1/3 over [0,200), 2/3 over [200,10000)
        expected = (1 / 3 * 200.0 + 2 / 3 * 9_800.0) / 10_000.0
        assert result.duplication_rate == pytest.approx(expected)

    def test_delivery_freezes_duplication_window(self):
        rows = [(100.0, 250.0, 0, 1)]
        _, result = run_micro("pure", rows, 2, destination=1, load=1, horizon=10_000.0)
        # alive window [0, 200): exactly the origin copy -> 1/2
        assert result.duplication_rate == pytest.approx(0.5)

    def test_flow_created_later_injects_on_time(self):
        trace = micro_trace([(1_000.0, 1_150.0, 0, 1)], 2, horizon=2_000.0)
        flows = [
            Flow(flow_id=0, source=0, destination=1, num_bundles=1, created_at=500.0)
        ]
        sim = Simulation(trace, make_protocol_config("pure"), flows)
        result = sim.run()
        assert result.success
        assert result.delay == 1_100.0

    def test_expiry_event_fires_between_contacts(self):
        """TTL expiry updates metrics at the right instant, not lazily."""
        rows = [(100.0, 250.0, 0, 1)]
        _, result = run_micro(
            "ttl", rows, 3, destination=2, load=1,
            horizon=10_000.0, protocol_kwargs={"ttl": 300.0},
        )
        # relay copy lives [200, 500): 300 seconds of one slot out of 30
        expected = 300.0 / 10_000.0 / 30.0
        assert result.buffer_occupancy == pytest.approx(expected)
        assert result.removals["expired"] == 1


class TestRunResultShape:
    def test_fields_populated(self):
        _, result = run_micro("immunity", CHAIN_ROWS, 4, load=2)
        assert result.protocol == "immunity"
        assert "immunity" in result.protocol_label.lower()
        assert result.trace_name == "micro"
        assert result.load == 2
        assert result.source == 0 and result.destination == 3
        assert set(result.signaling) == {
            "anti_packet",
            "immunity_table",
            "summary_vector",
        }
        assert set(result.removals) == {
            "evicted",
            "expired",
            "immunized",
            "ec_aged_out",
        }
        row = result.as_row()
        assert row["protocol"] == "immunity"
        assert row["delivered"] == result.delivered


class TestFlowHorizonValidation:
    def test_flow_created_after_horizon_rejected(self):
        trace = micro_trace(CHAIN_ROWS, 4)  # horizon derived from last contact
        horizon = trace.horizon
        flows = [
            Flow(flow_id=0, source=0, destination=3, num_bundles=2),
            Flow(
                flow_id=1,
                source=0,
                destination=3,
                num_bundles=1,
                created_at=horizon + 1.0,
            ),
        ]
        sim = Simulation(trace, make_protocol_config("pure"), flows)
        with pytest.raises(ValueError, match="after the trace horizon"):
            sim.run()

    def test_flow_created_at_horizon_allowed(self):
        trace = micro_trace(CHAIN_ROWS, 4)
        flows = [
            Flow(
                flow_id=0,
                source=0,
                destination=3,
                num_bundles=1,
                created_at=trace.horizon,
            )
        ]
        # injected exactly at the (inclusive) horizon: offered, undeliverable
        result = Simulation(trace, make_protocol_config("pure"), flows).run()
        assert result.delivered == 0
        assert result.success is False
