"""P-Q epidemic: transmission coins, optional anti-packets."""

import pytest

from repro.core.protocols.pq import PQAntiPacketEpidemic, PQEpidemic, PQEpidemicConfig
from tests.helpers import CHAIN_ROWS, bundle, make_node, run_micro, stored


class TestConfig:
    @pytest.mark.parametrize("kwargs", [{"p": -0.1}, {"p": 1.1}, {"q": 2.0}])
    def test_probability_validation(self, kwargs):
        with pytest.raises(ValueError):
            PQEpidemicConfig(**kwargs)

    def test_variant_selection(self):
        node, sim = make_node(0, protocol="pq")
        assert isinstance(node.protocol, PQEpidemic)
        node2, _ = make_node(0, protocol="pq", anti_packets=True)
        assert isinstance(node2.protocol, PQAntiPacketEpidemic)

    def test_labels_distinguish_variants(self):
        assert "anti-packets" in PQEpidemicConfig(anti_packets=True).label
        assert "anti-packets" not in PQEpidemicConfig().label


class TestCoins:
    def test_p_one_always_offers(self):
        node, _ = make_node(0, protocol="pq", p=1.0, q=1.0)
        peer, _ = make_node(1)
        own = stored(1, source=0)
        assert all(node.protocol.should_offer(own, peer, 0.0) for _ in range(20))

    def test_p_zero_never_offers_own(self):
        node, _ = make_node(0, protocol="pq", p=0.0, q=1.0)
        peer, _ = make_node(1)
        own = stored(1, source=0)
        relayed = stored(2, source=5)
        assert not any(node.protocol.should_offer(own, peer, 0.0) for _ in range(20))
        assert all(node.protocol.should_offer(relayed, peer, 0.0) for _ in range(20))

    def test_q_zero_never_offers_relayed(self):
        node, _ = make_node(0, protocol="pq", p=1.0, q=0.0)
        peer, _ = make_node(1)
        relayed = stored(2, source=5)
        assert not any(node.protocol.should_offer(relayed, peer, 0.0) for _ in range(20))

    def test_intermediate_probability_mixes(self):
        node, _ = make_node(0, protocol="pq", p=0.5, q=0.5)
        peer, _ = make_node(1)
        results = {node.protocol.should_offer(stored(1, source=0), peer, 0.0) for _ in range(100)}
        assert results == {True, False}


class TestEndToEnd:
    def test_pq11_equals_pure_epidemic(self, small_campus_trace):
        """With P=Q=1 and no anti-packets, P-Q is pure epidemic exactly."""
        from repro.core.simulation import Simulation
        from repro.core.workload import Flow
        from repro.core.protocols import make_protocol_config

        flows = [Flow(flow_id=0, source=0, destination=5, num_bundles=10)]
        r_pq = Simulation(
            small_campus_trace, make_protocol_config("pq"), flows, seed=3
        ).run()
        r_pure = Simulation(
            small_campus_trace, make_protocol_config("pure"), flows, seed=3
        ).run()
        assert r_pq.delivery_ratio == r_pure.delivery_ratio
        assert r_pq.delay == r_pure.delay
        assert r_pq.transmissions == r_pure.transmissions
        assert r_pq.buffer_occupancy == pytest.approx(r_pure.buffer_occupancy)

    def test_p_zero_delivers_nothing(self):
        _, result = run_micro("pq", CHAIN_ROWS, 4, load=2, protocol_kwargs={"p": 0.0, "q": 0.0})
        assert result.delivery_ratio == 0.0
        assert result.delay is None
        assert not result.success

    def test_plain_pq_never_purges(self):
        sim, result = run_micro(
            "pq",
            CHAIN_ROWS + [(3_000.0, 3_250.0, 0, 3)],
            4,
            load=1,
        )
        assert result.success
        assert result.removals["immunized"] == 0

    def test_anti_packet_variant_purges_and_counts(self):
        # Bundle 2 stays undelivered until after the anti-packet exchanges
        # for bundle 1, so the run does not end before the purges happen.
        rows = [
            (100.0, 350.0, 0, 1),
            (1_000.0, 1_150.0, 1, 2),
            (2_000.0, 2_150.0, 2, 3),  # bundle 1 delivered
            (3_000.0, 3_150.0, 2, 3),  # anti-packet back to 2
            (4_000.0, 4_250.0, 1, 2),  # 2 vaccinates 1; bundle 2 moves on
            (5_000.0, 5_150.0, 2, 3),  # bundle 2 delivered
        ]
        sim, result = run_micro(
            "pq", rows, 4, load=2, protocol_kwargs={"anti_packets": True}
        )
        assert result.success
        assert result.removals["immunized"] > 0
        assert result.signaling["anti_packet"] > 0


class TestAntiPacketKnowledge:
    def test_learn_and_purge(self):
        node, sim = make_node(1, protocol="pq", anti_packets=True)
        sb = stored(1, source=0, destination=3)
        node.relay.add(sb)
        learned = node.protocol.learn_delivered({sb.bid}, now=5.0)
        assert learned == 1
        assert node.get_copy(sb.bid) is None
        assert sim.removals[0].reason == "immunized"
        assert node.protocol.knows_delivered(sb.bid)
        # idempotent
        assert node.protocol.learn_delivered({sb.bid}, now=6.0) == 0

    def test_destination_generates_anti_packet(self):
        node, _ = make_node(3, protocol="pq", anti_packets=True)
        b = bundle(1, source=0, destination=3)
        node.protocol.on_delivered(b, now=2.0)
        assert node.protocol.knows_delivered(b.bid)
        msg = node.protocol.control_payload(now=3.0)
        assert b.bid in msg.delivered_ids
        assert node.protocol.control_units(msg) == 1

    def test_table_storage_tracked(self):
        node, sim = make_node(3, protocol="pq", anti_packets=True)
        node.protocol.on_delivered(bundle(1, source=0, destination=3), now=2.0)
        node.protocol.on_delivered(bundle(2, source=0, destination=3), now=3.0)
        assert sim.control_storage[3] == pytest.approx(0.2)
