"""The disruption model: FaultSpec, churn mechanics, link faults.

Behavioural tests run *real* simulations on hand-built micro-traces so
every assertion exercises the same code path the experiments use; the
scenarios are small enough that the expected outcome (who crashes, who
misses whom, what gets wiped) is checkable by hand.
"""

from __future__ import annotations

import json

import pytest

from repro.core.protocols import make_protocol_config
from repro.core.simulation import Simulation, SimulationConfig
from repro.core.workload import Flow
from repro.faults import STATE_LOSS_MODES, FaultSpec
from repro.mobility.contact import ContactTrace

from tests.helpers import micro_trace


def run_faulted(
    protocol,
    rows,
    num_nodes,
    flows,
    *,
    faults,
    horizon=None,
    seed=1,
    fault_seed=None,
    record_occupancy=False,
    protocol_kwargs=None,
):
    """One faulted run on a hand-built trace; returns (sim, result)."""
    if isinstance(protocol, str):
        protocol = make_protocol_config(protocol, **(protocol_kwargs or {}))
    trace = micro_trace(rows, num_nodes, horizon=horizon)
    cfg = SimulationConfig(faults=faults, record_occupancy=record_occupancy)
    sim = Simulation(
        trace, protocol, flows, config=cfg, seed=seed, fault_seed=fault_seed
    )
    return sim, sim.run()


# ------------------------------------------------------------------ FaultSpec


class TestFaultSpec:
    def test_default_is_trivial(self):
        spec = FaultSpec()
        assert spec.is_trivial
        assert not spec.has_churn
        assert not spec.has_link_faults
        assert not spec.wipes_buffer and not spec.wipes_knowledge

    def test_state_loss_alone_stays_trivial(self):
        # state_loss only matters when something can crash
        assert FaultSpec(state_loss="all").is_trivial

    def test_schedule_alone_is_churn(self):
        spec = FaultSpec(downtime_schedule=((0, 10.0, 20.0),), state_loss="all")
        assert spec.has_churn and not spec.is_trivial
        assert spec.wipes_buffer and spec.wipes_knowledge

    def test_wipe_flags_follow_mode(self):
        base = dict(churn_rate=1e-4, mean_downtime=100.0)
        assert not FaultSpec(**base, state_loss="none").wipes_buffer
        assert FaultSpec(**base, state_loss="buffer").wipes_buffer
        assert not FaultSpec(**base, state_loss="buffer").wipes_knowledge
        assert FaultSpec(**base, state_loss="knowledge").wipes_knowledge
        assert FaultSpec(**base, state_loss="all").wipes_buffer
        assert FaultSpec(**base, state_loss="all").wipes_knowledge

    def test_round_trip_via_json(self):
        spec = FaultSpec(
            churn_rate=2e-4,
            mean_downtime=1500.0,
            state_loss="buffer",
            downtime_schedule=((3, 10.0, 20.0), (0, 5.0, 7.5)),
            contact_drop_prob=0.05,
            interrupt_prob=0.1,
            transfer_failure_prob=0.02,
        )
        back = FaultSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert back == spec

    def test_schedule_normalised_sorted(self):
        spec = FaultSpec(downtime_schedule=[[3, 10, 20], [0, 5, 7.5]])
        assert spec.downtime_schedule == ((0, 5.0, 7.5), (3, 10.0, 20.0))

    def test_unknown_key_rejected(self):
        with pytest.raises(ValueError, match="unknown key"):
            FaultSpec.from_dict({"churn_rate": 0.0, "crash_rate": 1.0})

    @pytest.mark.parametrize(
        "kwargs, match",
        [
            ({"churn_rate": -1.0}, "churn_rate"),
            ({"churn_rate": 1e-3}, "mean_downtime"),  # churn needs downtime
            ({"contact_drop_prob": 1.5}, "contact_drop_prob"),
            ({"interrupt_prob": -0.1}, "interrupt_prob"),
            ({"transfer_failure_prob": 2.0}, "transfer_failure_prob"),
            ({"state_loss": "everything"}, "state_loss"),
            ({"downtime_schedule": ((0, 20.0, 10.0),)}, "downtime_schedule"),
            ({"downtime_schedule": ((-1, 10.0, 20.0),)}, "downtime_schedule"),
            ({"downtime_schedule": ((0, 10.0),)}, "downtime_schedule"),
        ],
    )
    def test_validation(self, kwargs, match):
        with pytest.raises(ValueError, match=match):
            FaultSpec(**kwargs)

    def test_modes_catalogue(self):
        assert STATE_LOSS_MODES == ("none", "buffer", "knowledge", "all")

    def test_simulation_config_rejects_non_spec(self):
        with pytest.raises(ValueError, match="FaultSpec"):
            SimulationConfig(faults={"churn_rate": 0.1})

    def test_active_faults_normalises_trivial(self):
        assert SimulationConfig().active_faults is None
        assert SimulationConfig(faults=FaultSpec()).active_faults is None
        spec = FaultSpec(contact_drop_prob=0.5)
        assert SimulationConfig(faults=spec).active_faults == spec


# ------------------------------------------------------------- node churn

#: S=0 hands its bundle to relay C=1, C delivers to D=2, a short second
#: C↔D contact spreads the anti-packet back to C, then (after the crash
#: window 600–700) S meets C again. Node 3 is isolated so its flow keeps
#: the run alive past the crash.
REINFECTION_ROWS = [
    (10.0, 200.0, 0, 1),
    (300.0, 500.0, 1, 2),
    (550.0, 560.0, 1, 2),
    (800.0, 1000.0, 0, 1),
]
REINFECTION_FLOWS = [
    Flow(flow_id=0, source=0, destination=2, num_bundles=1),
    Flow(flow_id=1, source=3, destination=2, num_bundles=1),
]


class TestChurn:
    def test_down_node_misses_contact(self):
        # node 1 is down for the only contact: nothing is transferred
        sim, res = run_faulted(
            "pure",
            [(100.0, 300.0, 0, 1)],
            2,
            [Flow(flow_id=0, source=0, destination=1, num_bundles=1)],
            faults=FaultSpec(downtime_schedule=((1, 50.0, 400.0),)),
            horizon=500.0,
        )
        assert res.delivered == 0
        assert res.churn["missed_contacts"] == 1
        assert res.churn["crashes"] == 1 and res.churn["recoveries"] == 1
        assert res.transmissions == 0

    def test_crash_at_contact_start_wins_the_tie(self):
        # crash scheduled exactly at the contact's start time fires first
        sim, res = run_faulted(
            "pure",
            [(100.0, 300.0, 0, 1)],
            2,
            [Flow(flow_id=0, source=0, destination=1, num_bundles=1)],
            faults=FaultSpec(downtime_schedule=((1, 100.0, 400.0),)),
        )
        assert res.delivered == 0
        assert res.churn["missed_contacts"] == 1

    def test_buffer_wipe_loses_undelivered_copies(self):
        # relay 1 gets the copy at t=110, crashes at 300 with buffer loss,
        # and has nothing left to hand the destination at 500
        sim, res = run_faulted(
            "pure",
            [(10.0, 200.0, 0, 1), (500.0, 700.0, 1, 2)],
            3,
            [Flow(flow_id=0, source=0, destination=2, num_bundles=1)],
            faults=FaultSpec(
                downtime_schedule=((1, 300.0, 350.0),), state_loss="buffer"
            ),
        )
        assert res.delivered == 0
        assert res.removals["crashed"] == 1
        assert list(sim.nodes[1].sendable()) == []

    def test_state_preserving_reboot_keeps_copies(self):
        # same timeline, state_loss="none": the relay still delivers
        sim, res = run_faulted(
            "pure",
            [(10.0, 200.0, 0, 1), (500.0, 700.0, 1, 2)],
            3,
            [Flow(flow_id=0, source=0, destination=2, num_bundles=1)],
            faults=FaultSpec(
                downtime_schedule=((1, 300.0, 350.0),), state_loss="none"
            ),
        )
        assert res.delivered == 1
        assert res.removals["crashed"] == 0

    def test_delivered_survives_destination_wipe(self):
        # the destination's delivered log is never wiped: delivery sticks
        sim, res = run_faulted(
            "pure",
            [(10.0, 200.0, 0, 1)],
            3,
            [
                Flow(flow_id=0, source=0, destination=1, num_bundles=1),
                Flow(flow_id=1, source=2, destination=1, num_bundles=1),
            ],
            faults=FaultSpec(
                downtime_schedule=((1, 300.0, 400.0),), state_loss="all"
            ),
        )
        assert res.delivered == 1
        assert res.delivery_ratio == 0.5  # flow 1's source is isolated

    @pytest.mark.parametrize("protocol", ["pq", "immunity"])
    def test_knowledge_wipe_causes_reinfection(self, protocol):
        kwargs = (
            {"p": 1.0, "q": 1.0, "anti_packets": True} if protocol == "pq" else {}
        )
        sim, res = run_faulted(
            protocol,
            REINFECTION_ROWS,
            4,
            REINFECTION_FLOWS,
            faults=FaultSpec(
                downtime_schedule=((1, 600.0, 700.0),), state_loss="knowledge"
            ),
            protocol_kwargs=kwargs,
        )
        # the rebooted relay forgot the bundle was delivered, so the
        # still-ignorant source re-infects it at the last contact
        assert res.churn["reinfections"] == 1
        assert res.transmissions == 3
        assert sim.nodes[1].get_copy(next(iter(sim.nodes[2].delivered))) is not None

    @pytest.mark.parametrize("protocol", ["pq", "immunity"])
    def test_state_preserving_reboot_blocks_reinfection(self, protocol):
        kwargs = (
            {"p": 1.0, "q": 1.0, "anti_packets": True} if protocol == "pq" else {}
        )
        sim, res = run_faulted(
            protocol,
            REINFECTION_ROWS,
            4,
            REINFECTION_FLOWS,
            faults=FaultSpec(
                downtime_schedule=((1, 600.0, 700.0),), state_loss="none"
            ),
            protocol_kwargs=kwargs,
        )
        # the relay remembers: it refuses the copy and tells the source,
        # which purges its own stale copy instead of re-transmitting
        assert res.churn["reinfections"] == 0
        assert res.transmissions == 2

    def test_knowledge_wipe_bumps_epoch(self):
        sim, _ = run_faulted(
            "pq",
            REINFECTION_ROWS,
            4,
            REINFECTION_FLOWS,
            faults=FaultSpec(
                downtime_schedule=((1, 600.0, 700.0),), state_loss="knowledge"
            ),
            protocol_kwargs={"p": 1.0, "q": 1.0, "anti_packets": True},
        )
        # reset bumps the epoch so stale pair-elision memos cannot replay
        assert sim.nodes[1].protocol.knowledge.epoch >= 2

    def test_fault_environment_is_protocol_independent(self):
        # identical fault_seed → identical crash/outage schedule for every
        # protocol (common random numbers across the protocol axis)
        rows = [(t * 50.0, t * 50.0 + 30.0, t % 3, (t + 1) % 3) for t in range(1, 40)]
        flows = [Flow(flow_id=0, source=0, destination=2, num_bundles=8)]
        spec = FaultSpec(churn_rate=1e-3, mean_downtime=200.0, state_loss="all")
        churns = []
        for name in ("pure", "ttl", "immunity"):
            kwargs = {"ttl": 300.0} if name == "ttl" else {}
            _, res = run_faulted(
                name, rows, 3, flows,
                faults=spec, fault_seed=99, protocol_kwargs=kwargs,
            )
            churns.append(
                (res.churn["crashes"], res.churn["recoveries"], res.churn["downtime"])
            )
        assert churns[0] == churns[1] == churns[2]
        assert churns[0][0] > 0

    def test_random_churn_is_deterministic(self):
        rows = [(t * 50.0, t * 50.0 + 30.0, t % 3, (t + 1) % 3) for t in range(1, 40)]
        flows = [Flow(flow_id=0, source=0, destination=2, num_bundles=8)]
        spec = FaultSpec(churn_rate=1e-3, mean_downtime=200.0, state_loss="all")
        _, a = run_faulted("pure", rows, 3, flows, faults=spec, fault_seed=5)
        _, b = run_faulted("pure", rows, 3, flows, faults=spec, fault_seed=5)
        assert a == b
        _, c = run_faulted("pure", rows, 3, flows, faults=spec, fault_seed=6)
        assert a != c  # a different fault environment really is different

    def test_downtime_metrics_integrate_exactly(self):
        _, res = run_faulted(
            "pure",
            [(10.0, 200.0, 0, 1)],
            3,
            [
                Flow(flow_id=0, source=0, destination=1, num_bundles=1),
                Flow(flow_id=1, source=2, destination=1, num_bundles=1),
            ],
            faults=FaultSpec(
                downtime_schedule=((0, 300.0, 400.0), (2, 350.0, 500.0)),
            ),
            horizon=1000.0,
        )
        assert res.churn["downtime"] == pytest.approx(100.0 + 150.0)
        assert res.churn["mean_nodes_down"] == pytest.approx(250.0 / 1000.0)

    def test_schedule_node_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="references node"):
            run_faulted(
                "pure",
                [(10.0, 200.0, 0, 1)],
                2,
                [Flow(flow_id=0, source=0, destination=1, num_bundles=1)],
                faults=FaultSpec(downtime_schedule=((7, 10.0, 20.0),)),
            )


# -------------------------------------------------- occupancy wipe step


class TestOccupancyWipeStep:
    def test_wipe_records_explicit_step_to_zero(self):
        """Satellite acceptance: the occupancy series shows the buffer
        wipe as one explicit step at crash time, and the recorded
        ``buffer_occupancy`` equals the hand-computed integral of that
        piecewise-constant series."""
        # relay 1 (of 3 nodes × capacity 10) holds one copy from t=110
        # (transfer completes 100 s into the contact) until the crash
        # at t=300; horizon 1000
        sim, res = run_faulted(
            "pure",
            [(10.0, 200.0, 0, 1)],
            3,
            [Flow(flow_id=0, source=0, destination=2, num_bundles=1)],
            faults=FaultSpec(
                downtime_schedule=((1, 300.0, 400.0),), state_loss="buffer"
            ),
            horizon=1000.0,
            record_occupancy=True,
        )
        fill = 1.0 / (3 * 10)
        assert res.occupancy_series == ((110.0, fill), (300.0, 0.0))
        # integral: fill × (300 − 110), averaged over the 1000 s horizon
        assert res.buffer_occupancy == pytest.approx(fill * 190.0 / 1000.0)
        assert res.removals["crashed"] == 1

    def test_multi_copy_wipe_coalesces_to_one_step(self):
        # three copies wiped at one timestamp → exactly one series entry
        sim, res = run_faulted(
            "pure",
            [(10.0, 400.0, 0, 1)],
            3,
            [Flow(flow_id=0, source=0, destination=2, num_bundles=3)],
            faults=FaultSpec(
                downtime_schedule=((1, 600.0, 700.0),), state_loss="buffer"
            ),
            horizon=1000.0,
            record_occupancy=True,
        )
        assert res.removals["crashed"] == 3
        at_crash = [p for p in res.occupancy_series if p[0] == 600.0]
        assert at_crash == [(600.0, 0.0)]


# ------------------------------------------------------------- link faults


class TestLinkFaults:
    ROWS = [(10.0, 200.0, 0, 1), (300.0, 500.0, 1, 2)]
    FLOWS = [Flow(flow_id=0, source=0, destination=2, num_bundles=1)]

    def test_drop_prob_one_kills_every_contact(self):
        _, res = run_faulted(
            "pure", self.ROWS, 3, self.FLOWS,
            faults=FaultSpec(contact_drop_prob=1.0),
        )
        assert res.delivered == 0
        assert res.churn["dropped_contacts"] == 2
        assert res.transmissions == 0
        # a dropped contact exchanges nothing, not even control traffic
        assert res.signaling["summary_vector"] == 0

    def test_transfer_failure_prob_one_wastes_every_slot(self):
        _, res = run_faulted(
            "pure", self.ROWS, 3, self.FLOWS,
            faults=FaultSpec(transfer_failure_prob=1.0),
        )
        assert res.delivered == 0
        assert res.transmissions == 0
        assert res.churn["failed_transfers"] > 0

    def test_interruption_truncates_in_flight_transfer(self):
        # 10 bundles over a 1000 s contact: a transfer is always in
        # flight, so wherever the severance lands it interrupts one
        _, res = run_faulted(
            "pure",
            [(10.0, 1010.0, 0, 1)],
            2,
            [Flow(flow_id=0, source=0, destination=1, num_bundles=10)],
            faults=FaultSpec(interrupt_prob=1.0),
        )
        assert res.churn["interrupted_transfers"] == 1
        assert res.delivered < 10

    def test_interrupted_slot_is_charged_but_not_delivered(self):
        _, res = run_faulted(
            "pure",
            [(10.0, 1010.0, 0, 1)],
            2,
            [Flow(flow_id=0, source=0, destination=1, num_bundles=10)],
            faults=FaultSpec(interrupt_prob=1.0),
        )
        # delivered transmissions + the interrupted one never exceed what
        # the link had time for
        assert res.transmissions + res.churn["interrupted_transfers"] <= 10


# ------------------------------------------------------- zero-cost-when-off


class TestZeroFaultIdentity:
    def test_trivial_spec_runs_identical_to_none(self):
        rows = [(t * 50.0, t * 50.0 + 120.0, t % 4, (t + 1) % 4) for t in range(1, 30)]
        flows = [Flow(flow_id=0, source=0, destination=3, num_bundles=6)]
        results = []
        for faults in (None, FaultSpec(), FaultSpec(state_loss="all")):
            trace = micro_trace(rows, 4)
            sim = Simulation(
                trace,
                make_protocol_config("immunity"),
                flows,
                config=SimulationConfig(faults=faults),
                seed=11,
            )
            results.append(sim.run())
        assert results[0] == results[1] == results[2]
        assert results[0].churn == {}
        assert "crashed" not in results[0].removals
        assert "churn" not in results[0].to_dict()
