"""Property-based invariants for the buffer-contention subsystem.

For random mini-scenarios under *every* drop policy (and heterogeneous
capacities), the physical bookkeeping must balance: no leaked or negative
copies, fill fractions in [0, 1], and every removal accounted to exactly
one cause (drops + expiries + purges + ageing — nothing lands in "other").
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.bundle import BundleId
from repro.core.policies import drop_policy_names
from repro.core.protocols import make_protocol_config
from repro.core.simulation import Simulation, SimulationConfig
from repro.core.workload import Flow
from repro.mobility.contact import Contact, ContactTrace

POLICY_STRATEGY = st.sampled_from(drop_policy_names())

#: Protocols that exercise the node-policy delegation path plus the two
#: that bypass it with an intrinsic rule (ec / ec_ttl).
PROTOCOL_STRATEGY = st.sampled_from(
    [
        ("pure", {}),
        ("ttl", {"ttl": 400.0}),
        ("pq", {"p": 1.0, "q": 1.0, "anti_packets": True}),
        ("immunity", {}),
        ("ec", {}),
        ("ec_ttl", {"ec_threshold": 2, "min_ec_evict": 1}),
    ]
)


@st.composite
def contention_scenario(draw):
    """A random mini trace with tight, possibly heterogeneous buffers."""
    num_nodes = draw(st.integers(3, 6))
    n_contacts = draw(st.integers(2, 25))
    contacts = []
    t = 0.0
    for _ in range(n_contacts):
        t += draw(st.floats(10.0, 1_500.0))
        dur = draw(st.floats(50.0, 650.0))
        a = draw(st.integers(0, num_nodes - 1))
        b = draw(st.integers(0, num_nodes - 1).filter(lambda x, a=a: x != a))
        contacts.append(Contact(start=t, end=t + dur, a=a, b=b))
        t += dur
    trace = ContactTrace(contacts, num_nodes, horizon=t + 5_000.0)
    source = draw(st.integers(0, num_nodes - 1))
    dest = draw(st.integers(0, num_nodes - 1).filter(lambda x: x != source))
    load = draw(st.integers(2, 12))
    if draw(st.booleans()):
        capacity = draw(st.integers(1, 4))
    else:
        capacity = tuple(
            draw(st.integers(1, 4)) for _ in range(num_nodes)
        )
    return trace, source, dest, load, capacity


class TestPolicyInvariants:
    @settings(
        max_examples=80,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        scenario=contention_scenario(),
        proto=PROTOCOL_STRATEGY,
        policy=POLICY_STRATEGY,
        seed=st.integers(0, 3),
    )
    def test_conservation_and_occupancy(self, scenario, proto, policy, seed):
        trace, source, dest, load, capacity = scenario
        name, kwargs = proto
        flows = [Flow(flow_id=0, source=source, destination=dest, num_bundles=load)]
        sim = Simulation(
            trace,
            make_protocol_config(name, **kwargs),
            flows,
            config=SimulationConfig(buffer_capacity=capacity, drop_policy=policy),
            seed=seed,
            record_occupancy=True,
        )
        result = sim.run()

        # --- occupancy invariants: every buffer within its own capacity
        for node in sim.nodes:
            assert len(node.relay) <= node.relay.capacity
            assert 0.0 <= node.relay.fill_fraction <= 1.0
        assert 0.0 <= result.buffer_occupancy <= 1.0 + 1e-9
        assert result.peak_occupancy >= 0.0
        assert result.buffer_occupancy <= result.peak_occupancy + 1e-9
        # Table-storing protocols may exceed nominal capacity with stored
        # control state (the paper's shared-storage model); bundle-only
        # protocols are hard-bounded by the relay capacity.
        if name in ("pure", "ttl", "ec", "ec_ttl"):
            assert result.peak_occupancy <= 1.0 + 1e-9
        for t, fill in sim.metrics.occupancy_series:
            assert 0.0 <= fill
            assert fill <= result.peak_occupancy + 1e-9
            assert 0.0 <= t <= result.end_time + 1e-9

        # --- copy conservation: the metric's copy count equals the live
        # copies actually held plus the destination's consumed copy
        dest_node = sim.nodes[dest]
        for seq in range(1, load + 1):
            bid = BundleId(0, seq)
            live = sum(1 for n in sim.nodes if n.get_copy(bid) is not None)
            expected = live + (1 if bid in dest_node.delivered else 0)
            assert sim.metrics.copy_count(bid) == expected

        # --- removal accounting: every removal has exactly one cause,
        # and every buffer-pressure eviction is charged to one policy
        removals = sim.metrics.removals
        assert removals.other == 0
        assert removals.total == (
            removals.evicted + removals.expired + removals.immunized + removals.ec_aged_out
        )
        assert sum(result.drops.values()) == removals.evicted
        assert sum(n.counters.evictions for n in sim.nodes) == removals.evicted
        assert sum(n.counters.expiries for n in sim.nodes) == removals.expired
        assert sum(n.counters.immunized_purges for n in sim.nodes) == removals.immunized
        # drop attribution: delegation path charges the configured policy,
        # EC's intrinsic rule charges max-ec; nothing else may appear
        assert set(result.drops) <= {policy, "max-ec"}
        if policy == "reject" and name not in ("ec", "ec_ttl"):
            assert result.drops == {}

        # --- received copies balance: every accepted relay copy is either
        # still buffered or was removed for a counted reason
        received = sum(n.counters.bundles_received for n in sim.nodes)
        buffered = sum(len(n.relay) for n in sim.nodes)
        origin_removed = load - sum(len(n.origin) for n in sim.nodes)
        # removals span both stores; relay removals = total - origin removals
        assert received == buffered + (removals.total - origin_removed)
