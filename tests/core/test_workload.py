"""Workload generation."""

import numpy as np
import pytest

from repro.core.workload import (
    PAPER_LOADS,
    PAPER_REPLICATIONS,
    Flow,
    draw_endpoints,
    multi_flow,
    single_flow,
    total_offered,
)


class TestFlow:
    def test_validation(self):
        with pytest.raises(ValueError):
            Flow(flow_id=0, source=1, destination=1, num_bundles=5)
        with pytest.raises(ValueError):
            Flow(flow_id=0, source=0, destination=1, num_bundles=0)
        with pytest.raises(ValueError):
            Flow(flow_id=0, source=0, destination=1, num_bundles=1, created_at=-5.0)


class TestPaperConstants:
    def test_loads_are_5_to_50_step_5(self):
        assert PAPER_LOADS == tuple(range(5, 55, 5))

    def test_ten_replications(self):
        assert PAPER_REPLICATIONS == 10


class TestEndpoints:
    def test_distinct(self):
        rng = np.random.default_rng(0)
        for _ in range(100):
            s, d = draw_endpoints(12, rng)
            assert s != d
            assert 0 <= s < 12 and 0 <= d < 12

    def test_requires_two_nodes(self):
        with pytest.raises(ValueError):
            draw_endpoints(1, np.random.default_rng(0))

    def test_covers_population(self):
        rng = np.random.default_rng(1)
        seen = set()
        for _ in range(300):
            s, d = draw_endpoints(5, rng)
            seen.add(s)
            seen.add(d)
        assert seen == set(range(5))


class TestSingleFlow:
    def test_shape(self):
        rng = np.random.default_rng(3)
        [flow] = single_flow(12, 25, rng)
        assert flow.num_bundles == 25
        assert flow.flow_id == 0
        assert flow.created_at == 0.0

    def test_deterministic_per_rng(self):
        a = single_flow(12, 5, np.random.default_rng(9))[0]
        b = single_flow(12, 5, np.random.default_rng(9))[0]
        assert (a.source, a.destination) == (b.source, b.destination)


class TestMultiFlow:
    def test_staggered_creation(self):
        rng = np.random.default_rng(5)
        flows = multi_flow(10, 4, 5, rng, stagger=100.0)
        assert [f.created_at for f in flows] == [0.0, 100.0, 200.0, 300.0]
        assert [f.flow_id for f in flows] == [0, 1, 2, 3]
        assert total_offered(flows) == 20

    def test_requires_flows(self):
        with pytest.raises(ValueError):
            multi_flow(10, 0, 5, np.random.default_rng(0))
