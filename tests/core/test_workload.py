"""Workload generation."""

import numpy as np
import pytest

from repro.core.workload import (
    PAPER_LOADS,
    PAPER_REPLICATIONS,
    Flow,
    draw_endpoints,
    multi_flow,
    single_flow,
    total_offered,
)


class TestFlow:
    def test_validation(self):
        with pytest.raises(ValueError):
            Flow(flow_id=0, source=1, destination=1, num_bundles=5)
        with pytest.raises(ValueError):
            Flow(flow_id=0, source=0, destination=1, num_bundles=0)
        with pytest.raises(ValueError):
            Flow(flow_id=0, source=0, destination=1, num_bundles=1, created_at=-5.0)


class TestPaperConstants:
    def test_loads_are_5_to_50_step_5(self):
        assert PAPER_LOADS == tuple(range(5, 55, 5))

    def test_ten_replications(self):
        assert PAPER_REPLICATIONS == 10


class TestEndpoints:
    def test_distinct(self):
        rng = np.random.default_rng(0)
        for _ in range(100):
            s, d = draw_endpoints(12, rng)
            assert s != d
            assert 0 <= s < 12 and 0 <= d < 12

    def test_requires_two_nodes(self):
        with pytest.raises(ValueError):
            draw_endpoints(1, np.random.default_rng(0))

    def test_covers_population(self):
        rng = np.random.default_rng(1)
        seen = set()
        for _ in range(300):
            s, d = draw_endpoints(5, rng)
            seen.add(s)
            seen.add(d)
        assert seen == set(range(5))


class TestSingleFlow:
    def test_shape(self):
        rng = np.random.default_rng(3)
        [flow] = single_flow(12, 25, rng)
        assert flow.num_bundles == 25
        assert flow.flow_id == 0
        assert flow.created_at == 0.0

    def test_deterministic_per_rng(self):
        a = single_flow(12, 5, np.random.default_rng(9))[0]
        b = single_flow(12, 5, np.random.default_rng(9))[0]
        assert (a.source, a.destination) == (b.source, b.destination)


class TestMultiFlow:
    def test_staggered_creation(self):
        rng = np.random.default_rng(5)
        flows = multi_flow(10, 4, 5, rng, stagger=100.0)
        assert [f.created_at for f in flows] == [0.0, 100.0, 200.0, 300.0]
        assert [f.flow_id for f in flows] == [0, 1, 2, 3]
        assert total_offered(flows) == 20

    def test_requires_flows(self):
        with pytest.raises(ValueError):
            multi_flow(10, 0, 5, np.random.default_rng(0))


class TestBuiltinTypes:
    """Regression: numpy integer types must never leak into Flow fields.

    np.int64 endpoints break clean JSON serialisation of results
    (json.dumps raises TypeError on numpy scalars).
    """

    def test_flow_coerces_numpy_ints(self):
        flow = Flow(
            flow_id=np.int64(1),
            source=np.int64(0),
            destination=np.int64(3),
            num_bundles=np.int64(7),
            created_at=np.float64(2.0),
        )
        assert type(flow.flow_id) is int
        assert type(flow.source) is int
        assert type(flow.destination) is int
        assert type(flow.num_bundles) is int
        assert type(flow.created_at) is float

    def test_sampled_flows_are_json_clean(self):
        import dataclasses
        import json

        rng = np.random.default_rng(0)
        flows = single_flow(12, 5, rng) + multi_flow(12, 3, 4, rng, stagger=10.0)
        text = json.dumps([dataclasses.asdict(f) for f in flows])
        assert json.loads(text)[0]["num_bundles"] == 5

    def test_draw_endpoints_returns_builtin_ints(self):
        src, dst = draw_endpoints(10, np.random.default_rng(1))
        assert type(src) is int and type(dst) is int
