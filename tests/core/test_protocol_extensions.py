"""Extension protocols: Binary Spray-and-Wait and PRoPHET."""

import pytest

from repro.core.protocols.base import ControlMessage
from repro.core.protocols.extensions import ProphetConfig, SprayAndWaitConfig
from tests.helpers import CHAIN_ROWS, make_node, run_micro, stored


class TestSprayConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            SprayAndWaitConfig(initial_tokens=0)

    def test_label(self):
        assert "L=6" in SprayAndWaitConfig().label


class TestSprayTokens:
    def test_created_bundle_gets_initial_tokens(self):
        node, _ = make_node(0, protocol="spray_wait", initial_tokens=8)
        sb = node.add_origin(stored(1, source=0).bundle, now=0.0)
        node.protocol.on_bundle_created(sb, now=0.0)
        assert sb.meta["spray_tokens"] == 8

    def test_binary_split_on_transmit(self):
        node, _ = make_node(0, protocol="spray_wait", initial_tokens=8)
        peer, _ = make_node(1)
        sb = stored(1, source=0, destination=9)
        sb.meta["spray_tokens"] = 5
        node.protocol.on_transmitted(sb, peer, now=0.0)
        assert sb.meta["spray_tokens"] == 3  # ceil(5/2)
        assert sb.meta["spray_grant"] == 2

    def test_receiver_inherits_grant(self):
        sender, _ = make_node(0, protocol="spray_wait", initial_tokens=8)
        receiver, _ = make_node(1, protocol="spray_wait", initial_tokens=8)
        sb = stored(1, source=0, destination=9)
        sb.meta["spray_tokens"] = 6
        sender.protocol.on_transmitted(sb, receiver, now=0.0)
        got = receiver.protocol.accept(sb.bundle, ec=sb.ec, now=0.0, sender_copy=sb)
        assert got.meta["spray_tokens"] == 3
        assert "spray_grant" not in sb.meta  # consumed

    def test_single_token_waits_for_destination(self):
        node, _ = make_node(0, protocol="spray_wait", initial_tokens=8)
        relay_peer, _ = make_node(1)
        dest_peer, _ = make_node(9)
        sb = stored(1, source=0, destination=9)
        sb.meta["spray_tokens"] = 1
        assert not node.protocol.should_offer(sb, relay_peer, now=0.0)
        assert node.protocol.should_offer(sb, dest_peer, now=0.0)

    def test_delivery_consumes_no_tokens(self):
        node, _ = make_node(0, protocol="spray_wait", initial_tokens=8)
        dest_peer, _ = make_node(1)
        sb = stored(1, source=0, destination=1)
        sb.meta["spray_tokens"] = 1
        node.protocol.on_transmitted(sb, dest_peer, now=0.0)
        assert sb.meta["spray_tokens"] == 1

    def test_end_to_end_copy_bound(self, small_campus_trace):
        """Total transmissions bounded by L per bundle (plus delivery)."""
        from repro.core.protocols import make_protocol_config
        from repro.core.simulation import Simulation
        from repro.core.workload import Flow

        flows = [Flow(flow_id=0, source=0, destination=5, num_bundles=10)]
        result = Simulation(
            small_campus_trace,
            make_protocol_config("spray_wait", initial_tokens=4),
            flows,
            seed=2,
        ).run()
        # each bundle spawns at most L-1 relay copies + 1 delivery transfer
        assert result.transmissions <= 10 * 4
        assert result.delivery_ratio > 0


class TestProphetConfig:
    @pytest.mark.parametrize(
        "kwargs", [{"p_init": 0.0}, {"gamma": 1.5}, {"beta": 0.0}, {"age_unit": 0.0}]
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            ProphetConfig(**kwargs)


class TestProphetEstimator:
    def _node(self):
        return make_node(0, protocol="prophet")

    def test_encounter_boost(self):
        node, _ = self._node()
        peer, _ = make_node(1)
        node.protocol.on_encounter_started(peer, now=0.0)
        assert node.protocol.predictability(1) == pytest.approx(0.75)
        # same-instant second encounter: no ageing in between
        node.protocol.on_encounter_started(peer, now=0.0)
        assert node.protocol.predictability(1) == pytest.approx(0.75 + 0.25 * 0.75)

    def test_encounter_boost_with_ageing(self):
        node, _ = self._node()
        peer, _ = make_node(1)
        node.protocol.on_encounter_started(peer, now=0.0)
        node.protocol.on_encounter_started(peer, now=10.0)
        aged = 0.75 * 0.98 ** (10.0 / 60.0)
        assert node.protocol.predictability(1) == pytest.approx(
            aged + (1 - aged) * 0.75
        )

    def test_ageing_decays(self):
        node, _ = self._node()
        peer, _ = make_node(1)
        node.protocol.on_encounter_started(peer, now=0.0)
        node.protocol._age(6_000.0)  # 100 age units at gamma 0.98
        assert node.protocol.predictability(1) == pytest.approx(
            0.75 * 0.98**100, rel=1e-6
        )

    def test_transitivity(self):
        node, _ = self._node()
        peer, _ = make_node(1)
        node.protocol.on_encounter_started(peer, now=0.0)  # P(0,1) = 0.75
        msg = ControlMessage(sender=1, extras={"prophet_p": {2: 0.8}})
        node.protocol.receive_control(msg, now=0.0)
        assert node.protocol.predictability(2) == pytest.approx(0.75 * 0.8 * 0.25)

    def test_forwarding_rule(self):
        node, _ = self._node()
        peer, _ = make_node(1)
        sb = stored(1, source=5, destination=2)
        # peer reports a higher predictability for the destination
        node.protocol.receive_control(
            ControlMessage(sender=1, extras={"prophet_p": {2: 0.9}}), now=0.0
        )
        assert node.protocol.should_offer(sb, peer, now=0.0)
        # now the node itself becomes confident; peer is no better
        node.protocol._p[2] = 0.95
        assert not node.protocol.should_offer(sb, peer, now=0.0)

    def test_destination_always_offered(self):
        node, _ = self._node()
        dest, _ = make_node(2)
        sb = stored(1, source=5, destination=2)
        assert node.protocol.should_offer(sb, dest, now=0.0)


class TestProphetEndToEnd:
    def test_fewer_transmissions_than_flooding(self, small_campus_trace):
        from repro.core.protocols import make_protocol_config
        from repro.core.simulation import Simulation
        from repro.core.workload import Flow

        flows = [Flow(flow_id=0, source=0, destination=5, num_bundles=10)]
        r_pure = Simulation(
            small_campus_trace, make_protocol_config("pure"), flows, seed=6
        ).run()
        r_prophet = Simulation(
            small_campus_trace, make_protocol_config("prophet"), flows, seed=6
        ).run()
        assert r_prophet.transmissions < r_pure.transmissions
        assert r_prophet.delivery_ratio > 0

    def test_delivers_on_chain(self):
        _, result = run_micro("prophet", CHAIN_ROWS + [(3000.0, 3150.0, 0, 3)], 4, load=1)
        assert result.delivery_ratio == 1.0
