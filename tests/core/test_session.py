"""Contact session semantics: capacity, ordering, priority."""


from repro.core.protocols import make_protocol_config
from repro.core.simulation import Simulation, SimulationConfig
from repro.core.workload import Flow
from tests.helpers import micro_trace


def _run(rows, num_nodes, flows, *, protocol="pure", seed=0, config=None, **kw):
    sim = Simulation(
        micro_trace(rows, num_nodes),
        make_protocol_config(protocol, **kw),
        flows,
        config=config,
        seed=seed,
    )
    return sim, sim.run()


class TestTransferCapacity:
    def test_floor_of_duration_over_tx_time(self):
        """The paper's worked example: a 314 s contact carries 3 bundles."""
        rows = [(3_568.0, 3_882.0, 3, 9)]
        flows = [Flow(flow_id=0, source=3, destination=9, num_bundles=10)]
        _, result = _run(rows, 10, flows)
        assert result.delivered == 3

    def test_sub_tx_time_contact_carries_nothing(self):
        rows = [(100.0, 199.0, 0, 1)]
        flows = [Flow(flow_id=0, source=0, destination=1, num_bundles=2)]
        _, result = _run(rows, 2, flows)
        assert result.delivered == 0

    def test_custom_tx_time(self):
        rows = [(100.0, 199.0, 0, 1)]
        flows = [Flow(flow_id=0, source=0, destination=1, num_bundles=5)]
        _, result = _run(
            rows, 2, flows, config=SimulationConfig(bundle_tx_time=30.0)
        )
        assert result.delivered == 3

    def test_transfer_timing_is_sequential(self):
        """k-th bundle arrives k x tx_time after contact start."""
        rows = [(1_000.0, 1_350.0, 0, 1)]
        flows = [Flow(flow_id=0, source=0, destination=1, num_bundles=3)]
        sim, result = _run(rows, 2, flows)
        times = sorted(sim.metrics.deliveries.values())
        assert times == [1_100.0, 1_200.0, 1_300.0]
        assert result.delay == 1_300.0


class TestDirectionOrdering:
    def test_lower_id_sends_first(self):
        """Both nodes have bundles for each other; capacity 1 favours node 0."""
        rows = [(100.0, 250.0, 0, 1)]
        flows = [
            Flow(flow_id=0, source=0, destination=1, num_bundles=1),
            Flow(flow_id=1, source=1, destination=0, num_bundles=1),
        ]
        sim, result = _run(rows, 2, flows)
        assert result.delivered == 1
        dest_of_delivered = list(sim.metrics.deliveries)[0]
        assert dest_of_delivered.flow == 0  # node 0's flow went through

    def test_higher_id_uses_remaining_budget(self):
        rows = [(100.0, 350.0, 0, 1)]  # capacity 2
        flows = [
            Flow(flow_id=0, source=0, destination=1, num_bundles=1),
            Flow(flow_id=1, source=1, destination=0, num_bundles=1),
        ]
        _, result = _run(rows, 2, flows)
        assert result.delivered == 2


class TestDestinationPriority:
    def test_destined_bundles_jump_the_queue(self):
        """A relay holding mixed bundles serves the destination first."""
        # node 1 first receives flow-1 bundle (dest 3) then flow-0 (dest 2);
        # when it meets node 2 with capacity 1, flow-0 must go first even
        # though the flow-1 copy was stored earlier.
        rows = [
            (100.0, 250.0, 1, 3),      # nothing to exchange yet
            (300.0, 450.0, 0, 1),      # flow-1 bundle to node 1 (capacity 1)
            (500.0, 650.0, 0, 1),      # flow-0 bundle to node 1
            (1_000.0, 1_150.0, 1, 2),  # capacity 1: deliver flow-0 to node 2
        ]
        flows = [
            Flow(flow_id=1, source=0, destination=3, num_bundles=1),
            Flow(flow_id=0, source=0, destination=2, num_bundles=1),
        ]
        sim, result = _run(rows, 4, flows)
        delivered_flows = {bid.flow for bid in sim.metrics.deliveries}
        assert 0 in delivered_flows  # destined bundle won the slot


class TestControlPlane:
    def test_summary_prevents_retransmission(self):
        """A bundle is never transferred twice to the same node."""
        rows = [(100.0, 350.0, 0, 1), (1_000.0, 1_250.0, 0, 1)]
        flows = [Flow(flow_id=0, source=0, destination=2, num_bundles=1)]
        sim, result = _run(rows, 3, flows)
        assert sim.metrics.bundle_transmissions == 1  # second contact idle

    def test_summary_vector_signaling_counted(self):
        rows = [(100.0, 350.0, 0, 1)]
        flows = [Flow(flow_id=0, source=0, destination=1, num_bundles=1)]
        sim, _ = _run(rows, 2, flows)
        assert sim.metrics.signaling.summary_vector == 2  # one each way


class TestPQCoinCaching:
    def test_failed_coin_skips_bundle_for_whole_contact(self):
        """With q irrelevant and p=0, the source never uses its slots."""
        rows = [(100.0, 1_100.0, 0, 1)]  # capacity 10
        flows = [Flow(flow_id=0, source=0, destination=1, num_bundles=3)]
        sim, result = _run(rows, 2, flows, protocol="pq", p=0.0, q=1.0)
        assert result.delivered == 0
        assert sim.metrics.bundle_transmissions == 0
