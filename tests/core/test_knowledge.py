"""The epoch-versioned knowledge subsystem and degenerate-encounter batching.

Two kinds of guarantees:

* unit behaviour of the stores (epoch monotonicity, snapshot/message
  caching, merge semantics);
* **batching equivalence** — a simulation with trace-layer degenerate
  batching must be indistinguishable (RunResult, per-node counters,
  encounter histories, signaling) from the per-event reference schedule
  (``batch_degenerate=False``), for every control-plane family and
  across early-halt/horizon boundaries.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.core.bundle import BundleId
from repro.core.knowledge import CumulativeKnowledgeStore, KnowledgeStore
from repro.core.protocols.antipacket import AntiPacketProtocol
from repro.core.protocols.base import Protocol
from repro.core.protocols.registry import make_protocol_config
from repro.core.simulation import Simulation, SimulationConfig
from repro.core.workload import Flow
from repro.mobility.contact import zero_transfer_mask
from tests.helpers import make_node, micro_trace


def bid(seq: int, flow: int = 0) -> BundleId:
    return BundleId(flow=flow, seq=seq)


class TestKnowledgeStore:
    def test_epoch_bumps_on_every_mutation(self):
        store = KnowledgeStore()
        assert store.epoch == 0
        assert store.add(bid(1))
        assert store.epoch == 1
        assert not store.add(bid(1))  # already known: no bump
        assert store.epoch == 1
        assert store.merge({bid(2), bid(3)}) != []
        assert store.epoch == 2

    def test_snapshot_cached_per_epoch(self):
        store = KnowledgeStore()
        store.add(bid(1))
        snap = store.snapshot
        assert snap == frozenset({bid(1)})
        assert store.snapshot is snap  # cached
        store.add(bid(2))
        assert store.snapshot == frozenset({bid(1), bid(2)})

    def test_merge_returns_only_fresh_ids(self):
        store = KnowledgeStore()
        store.merge({bid(1), bid(2)})
        fresh = store.merge({bid(2), bid(3)})
        assert fresh == [bid(3)]
        assert store.merge({bid(1)}) == []  # subset fast path
        assert len(store) == 3
        assert bid(3) in store

    def test_cached_message_cleared_on_mutation(self):
        node, _ = make_node(1, protocol="immunity")
        proto = node.protocol
        msg1 = proto.control_payload(now=1.0)
        assert proto.control_payload(now=2.0) is msg1  # epoch unchanged
        proto.learn_delivered({bid(9)}, now=3.0)
        msg2 = proto.control_payload(now=4.0)
        assert msg2 is not msg1
        assert msg2.delivered_ids == frozenset({bid(9)})


class TestCumulativeKnowledgeStore:
    def test_advance_only_on_domination(self):
        store = CumulativeKnowledgeStore()
        assert store.advance(0, 5)
        assert store.epoch == 1
        assert not store.advance(0, 3)  # dominated: no-op
        assert store.epoch == 1
        assert store.seq_for(0) == 5
        assert store.covers(bid(4)) and not store.covers(bid(6))

    def test_cached_message_follows_epoch(self):
        node, _ = make_node(1, protocol="cumulative_immunity")
        proto = node.protocol
        msg1 = proto.control_payload(now=1.0)
        assert proto.control_payload(now=2.0) is msg1
        proto.knowledge.advance(0, 7)
        msg2 = proto.control_payload(now=3.0)
        assert msg2 is not msg1
        assert msg2.cumulative == {0: 7}


class TestClassFlags:
    def test_encounter_inert_families(self):
        for name, kwargs, inert in [
            ("pure", {}, True),
            ("ttl", {"ttl": 300.0}, True),
            ("ec", {}, True),
            ("pq", {"p": 0.5, "q": 0.5}, True),  # coins-only: no control
            ("pq", {"p": 1.0, "q": 1.0, "anti_packets": True}, False),
            ("immunity", {}, False),
            ("cumulative_immunity", {}, False),
            ("dynamic_ttl", {}, False),
            ("prophet", {}, False),
        ]:
            node, _ = make_node(0, protocol=name, **kwargs)
            assert type(node.protocol).encounter_inert is inert, name

    def test_epoch_gating_withdrawn_on_control_override(self):
        class Custom(AntiPacketProtocol):
            def receive_control(self, msg, now):  # extra, uncovered state
                super().receive_control(msg, now)

        assert AntiPacketProtocol.epoch_gated_control
        assert not Custom.epoch_gated_control

        class Redeclared(AntiPacketProtocol):
            epoch_gated_control = True

            def receive_control(self, msg, now):
                super().receive_control(msg, now)

        assert Redeclared.epoch_gated_control

    def test_epoch_gating_withdrawn_on_learn_delivered_override(self):
        # receive_control delegates to learn_delivered, so overriding only
        # the delegate must also disable the exchange elision
        class Audited(AntiPacketProtocol):
            def learn_delivered(self, bids, now):
                return super().learn_delivered(bids, now)

        assert not Audited.epoch_gated_control

    def test_cached_message_rearms_lazy_summary(self):
        # buffer contents move without bumping the knowledge epoch; a
        # reused cached message must not serve a summary frozen earlier
        from tests.helpers import stored

        node, _ = make_node(1, protocol="immunity")
        msg = node.protocol.control_payload(now=1.0)
        assert msg.summary == frozenset()
        node.relay.add(stored(5, destination=3))
        msg2 = node.protocol.control_payload(now=2.0)
        assert msg2 is msg  # epoch unchanged: same cached message
        assert msg2.summary == frozenset({bid(5)})


#: (start, end, a, b) rows mixing degenerate (sub-tx) and carrying
#: contacts; knowledge spreads through the 50 s encounters too.
MIXED_ROWS: list[tuple[float, float, int, int]] = [
    (0.0, 350.0, 0, 1),        # 3 slots: source hands off
    (400.0, 450.0, 1, 2),      # degenerate
    (500.0, 550.0, 0, 3),      # degenerate
    (600.0, 850.0, 1, 3),      # 2 slots
    (900.0, 950.0, 2, 3),      # degenerate (same-pair repeats below)
    (1_000.0, 1_050.0, 2, 3),  # degenerate, epochs unchanged since last
    (1_100.0, 1_350.0, 2, 3),  # 2 slots: delivery to 3 possible
    (1_400.0, 1_450.0, 0, 2),  # degenerate after possible delivery
    (1_500.0, 1_550.0, 1, 2),  # degenerate
    (2_000.0, 2_350.0, 0, 3),  # carrying; may end the run
    (2_400.0, 2_450.0, 0, 1),  # degenerate at/after the halt boundary
    (2_500.0, 2_560.0, 1, 3),  # degenerate beyond the halt
]

PROTOCOL_MATRIX = [
    ("pure", {}),
    ("ttl", {"ttl": 300.0}),
    ("ec", {}),
    ("pq", {"p": 0.5, "q": 0.5}),
    ("pq", {"p": 1.0, "q": 1.0, "anti_packets": True}),
    ("immunity", {}),
    ("cumulative_immunity", {}),
    ("dynamic_ttl", {}),
    ("spray_wait", {}),
    ("prophet", {}),
]


def _run(rows, *, protocol, kwargs, batch, load=3, num_nodes=4, seed=3):
    trace = micro_trace(rows, num_nodes, horizon=5_000.0)
    flows = [Flow(flow_id=0, source=0, destination=num_nodes - 1, num_bundles=load)]
    sim = Simulation(
        trace,
        make_protocol_config(protocol, **kwargs),
        flows,
        seed=seed,
        batch_degenerate=batch,
    )
    return sim, sim.run()


def _node_state(sim: Simulation) -> list[tuple]:
    return [
        (
            dataclasses.astuple(n.counters),
            dataclasses.astuple(n.history),
            n.control_storage,
            sorted(n.relay.id_view()),
            sorted(n.delivered),
        )
        for n in sim.nodes
    ]


class TestDegenerateBatchingEquivalence:
    @pytest.mark.parametrize(
        "protocol,kwargs", PROTOCOL_MATRIX, ids=lambda p: str(p)
    )
    def test_batched_equals_reference_schedule(self, protocol, kwargs):
        ref_sim, ref = _run(
            MIXED_ROWS, protocol=protocol, kwargs=kwargs, batch=False
        )
        fast_sim, fast = _run(
            MIXED_ROWS, protocol=protocol, kwargs=kwargs, batch=True
        )
        assert fast == ref
        assert _node_state(fast_sim) == _node_state(ref_sim)
        # fired + batched encounters reproduce the reference event count
        assert (
            fast_sim.engine.events_fired + fast_sim.batched_encounters
            == ref_sim.engine.events_fired
        )

    @pytest.mark.parametrize("protocol,kwargs", PROTOCOL_MATRIX, ids=lambda p: str(p))
    def test_early_halt_excludes_unreached_contacts(self, protocol, kwargs):
        # One bundle delivered in the first carrying contact; everything
        # after the halt instant must stay unprocessed in both schedules.
        rows = [
            (0.0, 250.0, 0, 1),
            (300.0, 350.0, 0, 1),      # degenerate before delivery
            (400.0, 650.0, 1, 2),      # delivery happens here
            (650.0, 700.0, 0, 1),      # degenerate at/after the halt
            (800.0, 850.0, 1, 2),      # degenerate beyond the halt
        ]
        ref_sim, ref = _run(
            rows, protocol=protocol, kwargs=kwargs, batch=False, load=1, num_nodes=3
        )
        fast_sim, fast = _run(
            rows, protocol=protocol, kwargs=kwargs, batch=True, load=1, num_nodes=3
        )
        assert fast == ref
        assert _node_state(fast_sim) == _node_state(ref_sim)

    def test_epoch_elision_is_invisible(self, monkeypatch):
        """Disabling the unchanged-epoch swap elision changes nothing."""
        from repro.core.protocols.pq import PQAntiPacketEpidemic

        _, with_elision = _run(
            MIXED_ROWS,
            protocol="pq",
            kwargs={"p": 1.0, "q": 1.0, "anti_packets": True},
            batch=False,
        )
        monkeypatch.setattr(PQAntiPacketEpidemic, "epoch_gated_control", False)
        _, without = _run(
            MIXED_ROWS,
            protocol="pq",
            kwargs={"p": 1.0, "q": 1.0, "anti_packets": True},
            batch=False,
        )
        assert with_elision == without

    def test_heterogeneous_tx_times_classify_per_pair(self):
        # pair (0,1): fast radios, 150 s contact carries a bundle; the
        # same duration between (1,2) is degenerate (slow radio on 2)
        rows = [
            (0.0, 150.0, 0, 1),
            (200.0, 350.0, 1, 2),
            (400.0, 900.0, 1, 2),  # long enough for the slow link
        ]
        trace = micro_trace(rows, 3, horizon=2_000.0)
        config = SimulationConfig(bundle_tx_time=(100.0, 100.0, 400.0))
        mask = zero_transfer_mask(trace, config.bundle_tx_time)
        assert mask.tolist() == [False, True, False]
        flows = [Flow(flow_id=0, source=0, destination=2, num_bundles=1)]
        results = []
        for batch in (False, True):
            sim = Simulation(
                trace,
                make_protocol_config("pure"),
                flows,
                config=config,
                seed=0,
                batch_degenerate=batch,
            )
            results.append(sim.run())
        assert results[0] == results[1]
        assert results[0].delivered == 1


class TestContactArrays:
    def test_arrays_match_contacts(self):
        trace = micro_trace(MIXED_ROWS, 4, horizon=5_000.0)
        starts, ends, a, b = trace.contact_arrays()
        assert starts.tolist() == [c.start for c in trace]
        assert ends.tolist() == [c.end for c in trace]
        assert a.tolist() == [c.a for c in trace]
        assert b.tolist() == [c.b for c in trace]
        assert trace.contact_arrays() is trace.contact_arrays()  # cached

    def test_zero_transfer_mask_matches_scalar_rule(self):
        trace = micro_trace(MIXED_ROWS, 4, horizon=5_000.0)
        mask = zero_transfer_mask(trace, 100.0)
        expected = [int(c.duration / 100.0) == 0 for c in trace]
        assert mask.tolist() == expected


class TestProtocolDelegation:
    def test_antipacket_protocol_owns_a_store(self):
        node, _ = make_node(1, protocol="immunity")
        assert isinstance(node.protocol.knowledge, KnowledgeStore)
        node.protocol.learn_delivered({bid(1), bid(2)}, now=0.0)
        assert node.protocol.known_delivered == frozenset({bid(1), bid(2)})
        assert node.protocol.knows_delivered(bid(1))
        assert node.protocol.knowledge.epoch == 1

    def test_base_protocol_has_no_store(self):
        node, _ = make_node(0, protocol="pure")
        assert node.protocol.knowledge is None
        assert Protocol.encounter_inert
