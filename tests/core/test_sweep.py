"""Sweep runner: grid shape, common random numbers, trace factories."""

import pytest

from repro.core.protocols import make_protocol_config
from repro.core.sweep import SweepConfig, constant_trace, run_single, run_sweep
from tests.helpers import micro_trace

ROWS = [
    (100.0, 350.0, 0, 1),
    (1_000.0, 1_250.0, 1, 2),
    (2_000.0, 2_250.0, 2, 3),
    (3_000.0, 3_250.0, 0, 3),
    (4_000.0, 4_250.0, 1, 3),
]


@pytest.fixture
def trace():
    return micro_trace(ROWS, 4, horizon=20_000.0)


class TestSweepConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [{"loads": ()}, {"loads": (0,)}, {"replications": 0}],
    )
    def test_rejects_bad_grids(self, kwargs):
        with pytest.raises(ValueError):
            SweepConfig(**kwargs)


class TestRunSweep:
    def test_grid_size(self, trace):
        cfg = SweepConfig(loads=(2, 4), replications=3, master_seed=1)
        result = run_sweep(trace, [make_protocol_config("pure")], cfg)
        assert len(result) == 6
        assert result.loads() == [2, 4]

    def test_requires_protocols(self, trace):
        with pytest.raises(ValueError):
            run_sweep(trace, [], SweepConfig(loads=(2,), replications=1))

    def test_common_random_numbers_across_protocols(self, trace):
        """Every protocol sees the same (source, destination) per cell."""
        cfg = SweepConfig(loads=(2, 3), replications=4, master_seed=9)
        result = run_sweep(
            trace,
            [make_protocol_config("pure"), make_protocol_config("ec")],
            cfg,
        )
        by_cell_pure = {}
        by_cell_ec = {}
        for r in result.runs:
            (by_cell_pure if r.protocol == "pure" else by_cell_ec).setdefault(
                r.load, []
            ).append((r.source, r.destination))
        for load in (2, 3):
            assert sorted(by_cell_pure[load]) == sorted(by_cell_ec[load])

    def test_endpoints_vary_across_replications(self, trace):
        cfg = SweepConfig(loads=(2,), replications=8, master_seed=5)
        result = run_sweep(trace, [make_protocol_config("pure")], cfg)
        endpoints = {(r.source, r.destination) for r in result.runs}
        assert len(endpoints) > 1

    def test_progress_callback(self, trace):
        lines = []
        cfg = SweepConfig(loads=(2, 3), replications=1)
        run_sweep(trace, [make_protocol_config("pure")], cfg, progress=lines.append)
        assert len(lines) == 2
        assert "load=2" in lines[0]

    def test_trace_factory_shared(self, trace):
        calls = []

        def factory(rep):
            calls.append(rep)
            return trace

        cfg = SweepConfig(loads=(2,), replications=3, shared_trace=True)
        run_sweep(factory, [make_protocol_config("pure")], cfg)
        assert calls == [0]  # one build, reused

    def test_trace_factory_per_replication(self, trace):
        calls = []

        def factory(rep):
            calls.append(rep)
            return trace

        cfg = SweepConfig(loads=(2,), replications=3, shared_trace=False)
        run_sweep(factory, [make_protocol_config("pure")], cfg)
        assert calls == [0, 1, 2]

    def test_reproducible(self, trace):
        cfg = SweepConfig(loads=(2,), replications=2, master_seed=3)
        protos = [make_protocol_config("pq", p=0.5, q=0.5)]
        a = run_sweep(trace, protos, cfg)
        b = run_sweep(trace, protos, cfg)
        assert [r.delivery_ratio for r in a.runs] == [r.delivery_ratio for r in b.runs]
        assert [r.delay for r in a.runs] == [r.delay for r in b.runs]


class TestRunSingle:
    def test_builds_one_cell(self, trace):
        cfg = SweepConfig(loads=(3,), replications=1, master_seed=2)
        result = run_single(trace, make_protocol_config("pure"), 3, 0, cfg)
        assert result.load == 3

    def test_constant_trace_helper(self, trace):
        factory = constant_trace(trace)
        assert factory(0) is trace
        assert factory(99) is trace
