"""EC and EC+TTL protocols."""

import pytest

from repro.core.protocols.ec import ECTTLConfig
from tests.helpers import bundle, make_node, run_micro, stored


class TestECEviction:
    def test_accepts_by_evicting_highest_ec(self):
        node, sim = make_node(1, capacity=2, protocol="ec")
        node.relay.add(stored(1, ec=4))
        node.relay.add(stored(2, ec=7))
        incoming = bundle(3, destination=9)
        assert node.protocol.can_accept(incoming, now=0.0)
        sb = node.protocol.accept(incoming, ec=9, now=0.0)
        assert sb is not None
        assert node.relay.get(stored(2).bid) is None  # highest EC evicted
        assert node.relay.get(stored(1).bid) is not None
        assert sim.removals[0].reason == "evicted"
        assert node.counters.evictions == 1

    def test_new_bundle_wins_even_with_higher_ec(self):
        """The paper's bundle-9 example: undelivered beats stored high-EC."""
        node, _ = make_node(1, capacity=1, protocol="ec")
        node.relay.add(stored(6, ec=2))
        sb = node.protocol.accept(bundle(9, destination=9), ec=7, now=0.0)
        assert sb is not None and sb.ec == 7
        assert node.relay.get(stored(6).bid) is None

    def test_no_eviction_while_room(self):
        node, sim = make_node(1, capacity=2, protocol="ec")
        node.relay.add(stored(1, ec=9))
        node.protocol.accept(bundle(2, destination=9), ec=0, now=0.0)
        assert len(node.relay) == 2
        assert sim.removals == []

    def test_ec_transfer_semantics(self):
        """Sender's copy increments; receiver copy inherits the new value."""
        sender, _ = make_node(0, protocol="ec")
        receiver, _ = make_node(1, protocol="ec")
        sb = stored(4, ec=3)
        sender.relay.add(sb)
        sender.protocol.on_transmitted(sb, receiver, now=0.0)
        assert sb.ec == 4
        got = receiver.protocol.accept(sb.bundle, ec=sb.ec, now=0.0)
        assert got.ec == 4


class TestECEndToEnd:
    def test_floods_like_pure_when_buffers_fit(self):
        from tests.helpers import CHAIN_ROWS

        _, result = run_micro("ec", CHAIN_ROWS, 4, load=2)
        assert result.delivery_ratio == 1.0

    def test_eviction_under_pressure(self, small_campus_trace):
        from repro.core.protocols import make_protocol_config
        from repro.core.simulation import Simulation, SimulationConfig
        from repro.core.workload import Flow

        flows = [Flow(flow_id=0, source=0, destination=5, num_bundles=30)]
        result = Simulation(
            small_campus_trace,
            make_protocol_config("ec"),
            flows,
            config=SimulationConfig(buffer_capacity=3),
            seed=1,
        ).run()
        assert result.removals["evicted"] > 0


class TestECTTLConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"ec_threshold": -1},
            {"ttl_base": 0.0},
            {"ttl_step": -1.0},
            {"min_ec_evict": -1},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            ECTTLConfig(**kwargs)


class TestECTTLAgeing:
    def _node(self, **kw):
        return make_node(1, protocol="ec_ttl", **kw)

    def test_algorithm2_schedule(self):
        node, _ = self._node()
        proto = node.protocol
        assert proto._ttl_for_ec(8) is None  # at threshold: stored plain
        assert proto._ttl_for_ec(9) == 200.0  # 300 - 1*100
        assert proto._ttl_for_ec(10) == 100.0
        assert proto._ttl_for_ec(11) == 0.0

    def test_transmission_past_threshold_arms_ttl(self):
        node, sim = self._node()
        peer, _ = make_node(2)
        sb = stored(1, ec=8)
        node.relay.add(sb)
        sim.advance(1_000.0)
        node.protocol.on_transmitted(sb, peer, now=1_000.0)  # ec -> 9
        assert sb.expiry == 1_000.0 + 200.0

    def test_received_copy_past_threshold_armed(self):
        node, _ = self._node()
        sb = node.protocol.accept(bundle(1, destination=9), ec=10, now=500.0)
        assert sb.expiry == 600.0

    def test_aged_out_copy_removed(self):
        node, sim = self._node()
        peer, _ = make_node(2)
        sb = stored(1, ec=10)
        node.relay.add(sb)
        node.protocol.on_transmitted(sb, peer, now=0.0)  # ec -> 11, ttl 0
        assert node.relay.get(sb.bid) is None
        assert sim.removals[0].reason == "ec-aged-out"

    def test_over_duplicated_not_offered_except_to_destination(self):
        node, _ = self._node()
        relay_peer, _ = make_node(2)
        dest_peer, _ = make_node(9)
        sb = stored(1, ec=10, destination=9)
        assert not node.protocol.should_offer(sb, relay_peer, now=0.0)
        assert node.protocol.should_offer(sb, dest_peer, now=0.0)

    def test_below_threshold_offers_freely(self):
        node, _ = self._node()
        peer, _ = make_node(2)
        assert node.protocol.should_offer(stored(1, ec=3), peer, now=0.0)

    def test_origin_exempt_from_ageing(self):
        node, _ = make_node(0, protocol="ec_ttl")
        peer, _ = make_node(2)
        sb = node.add_origin(bundle(1, source=0, destination=9), now=0.0)
        sb.ec = 20
        node.protocol.on_transmitted(sb, peer, now=0.0)
        assert node.get_copy(sb.bid) is sb  # still alive

    def test_min_ec_protects_unforwarded_copies(self):
        node, _ = self._node(capacity=1, min_ec_evict=1)
        node.relay.add(stored(1, ec=0))  # never forwarded: protected
        assert not node.protocol.can_accept(bundle(2, destination=9), now=0.0)
        assert node.protocol.accept(bundle(2, destination=9), ec=0, now=0.0) is None

    def test_forwarded_copies_evictable(self):
        node, _ = self._node(capacity=1, min_ec_evict=1)
        node.relay.add(stored(1, ec=1))
        assert node.protocol.can_accept(bundle(2, destination=9), now=0.0)
        assert node.protocol.accept(bundle(2, destination=9), ec=0, now=0.0) is not None


class TestECTTLEndToEnd:
    def test_beats_plain_ec_under_pressure(self, small_campus_trace):
        from repro.core.protocols import make_protocol_config
        from repro.core.simulation import Simulation, SimulationConfig
        from repro.core.workload import Flow

        flows = [Flow(flow_id=0, source=0, destination=5, num_bundles=40)]
        cfg = SimulationConfig(buffer_capacity=4)
        r_ec = Simulation(
            small_campus_trace, make_protocol_config("ec"), flows, config=cfg, seed=2
        ).run()
        r_ecttl = Simulation(
            small_campus_trace, make_protocol_config("ec_ttl"), flows, config=cfg, seed=2
        ).run()
        assert r_ecttl.delivery_ratio >= r_ec.delivery_ratio
