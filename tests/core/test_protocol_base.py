"""Base protocol (pure epidemic) hooks and the registry."""

import pytest

from repro.core.protocols import (
    ControlMessage,
    make_protocol_config,
    protocol_names,
    register_protocol,
)
from tests.helpers import bundle, make_node, stored


class TestSummaryVector:
    def test_covers_all_stores(self):
        node, _ = make_node(0, protocol="pure")
        origin = node.add_origin(bundle(1, source=0), now=0.0)
        node.relay.add(stored(2))
        node.mark_delivered(bundle(3).bid, now=1.0)
        summary = node.protocol._summary()
        assert {b.seq for b in summary} == {1, 2, 3}
        assert origin.bid in summary

    def test_control_payload_has_summary_only(self):
        node, _ = make_node(0, protocol="pure")
        node.relay.add(stored(1))
        msg = node.protocol.control_payload(now=0.0)
        assert isinstance(msg, ControlMessage)
        assert msg.sender == 0
        assert len(msg.summary) == 1
        assert msg.delivered_ids == frozenset()
        assert node.protocol.control_units(msg) == 0


class TestDropTailAcceptance:
    def test_accepts_while_room(self):
        node, _ = make_node(5, capacity=2, protocol="pure")
        assert node.protocol.can_accept(bundle(1, destination=9), now=0.0)
        sb = node.protocol.accept(bundle(1, destination=9), ec=3, now=7.0)
        assert sb is not None
        assert sb.ec == 3
        assert sb.stored_at == 7.0
        assert not sb.is_origin

    def test_full_buffer_refuses(self):
        node, _ = make_node(5, capacity=1, protocol="pure")
        node.relay.add(stored(1))
        assert not node.protocol.can_accept(bundle(2, destination=9), now=0.0)
        assert node.protocol.accept(bundle(2, destination=9), ec=0, now=0.0) is None

    def test_destination_always_accepts(self):
        node, _ = make_node(5, capacity=1, protocol="pure")
        node.relay.add(stored(1))
        assert node.protocol.can_accept(bundle(2, destination=5), now=0.0)


class TestTransmitHook:
    def test_increments_ec(self):
        node, _ = make_node(0, protocol="pure")
        peer, _ = make_node(1, protocol="pure")
        sb = stored(1)
        node.protocol.on_transmitted(sb, peer, now=0.0)
        assert sb.ec == 1

    def test_base_knows_nothing_delivered(self):
        node, _ = make_node(0, protocol="pure")
        assert not node.protocol.knows_delivered(bundle(1).bid)

    def test_should_offer_default_true(self):
        node, _ = make_node(0, protocol="pure")
        peer, _ = make_node(1, protocol="pure")
        assert node.protocol.should_offer(stored(1), peer, now=0.0)


class TestRegistry:
    def test_builtin_names(self):
        names = protocol_names()
        for expected in (
            "pure",
            "pq",
            "ttl",
            "dynamic_ttl",
            "ec",
            "ec_ttl",
            "immunity",
            "cumulative_immunity",
        ):
            assert expected in names

    def test_unknown_name_lists_options(self):
        with pytest.raises(KeyError, match="available"):
            make_protocol_config("nope")

    def test_kwargs_forwarded(self):
        cfg = make_protocol_config("pq", p=0.3, q=0.7)
        assert cfg.p == 0.3 and cfg.q == 0.7

    def test_register_requires_name(self):
        class Anon:
            pass

        with pytest.raises(ValueError, match="protocol_name"):
            register_protocol(Anon)

    def test_register_rejects_name_collision(self):
        class Fake:
            protocol_name = "pure"

        with pytest.raises(ValueError, match="already registered"):
            register_protocol(Fake)

    def test_labels_are_human_readable(self):
        assert "P-Q" in make_protocol_config("pq").label
        assert "TTL=300" in make_protocol_config("ttl").label
