"""Bundle primitives."""

import math

import pytest

from repro.core.bundle import NO_EXPIRY, Bundle, BundleId, StoredBundle, make_flow_bundles


class TestBundleId:
    def test_validation(self):
        with pytest.raises(ValueError):
            BundleId(flow=0, seq=0)
        with pytest.raises(ValueError):
            BundleId(flow=-1, seq=1)

    def test_ordering_and_str(self):
        assert BundleId(0, 1) < BundleId(0, 2) < BundleId(1, 1)
        assert str(BundleId(2, 30)) == "2.30"

    def test_hashable(self):
        assert len({BundleId(0, 1), BundleId(0, 1), BundleId(0, 2)}) == 2


class TestBundle:
    def test_rejects_self_flow(self):
        with pytest.raises(ValueError):
            Bundle(bid=BundleId(0, 1), source=3, destination=3, created_at=0.0)

    def test_rejects_negative_creation(self):
        with pytest.raises(ValueError):
            Bundle(bid=BundleId(0, 1), source=0, destination=1, created_at=-1.0)


class TestStoredBundle:
    def _sb(self, expiry=NO_EXPIRY):
        b = Bundle(bid=BundleId(0, 1), source=0, destination=1, created_at=0.0)
        return StoredBundle(bundle=b, stored_at=0.0, expiry=expiry)

    def test_no_expiry_by_default(self):
        sb = self._sb()
        assert not sb.is_expired(1e12)
        assert sb.remaining_ttl(0.0) == math.inf

    def test_expiry_boundary_inclusive(self):
        sb = self._sb(expiry=100.0)
        assert not sb.is_expired(99.9)
        assert sb.is_expired(100.0)
        assert sb.remaining_ttl(40.0) == 60.0

    def test_bid_shortcut(self):
        assert self._sb().bid == BundleId(0, 1)


class TestMakeFlowBundles:
    def test_sequential_seqs(self):
        bundles = make_flow_bundles(flow=3, source=1, destination=2, count=5)
        assert [b.bid.seq for b in bundles] == [1, 2, 3, 4, 5]
        assert all(b.bid.flow == 3 for b in bundles)
        assert all(b.source == 1 and b.destination == 2 for b in bundles)

    def test_rejects_empty_flow(self):
        with pytest.raises(ValueError):
            make_flow_bundles(0, 0, 1, 0)
