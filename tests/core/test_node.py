"""Node model and encounter history."""

import pytest

from repro.core.node import EncounterHistory, Node
from tests.helpers import bundle


class TestEncounterHistory:
    def test_first_encounter_sets_no_interval(self):
        h = EncounterHistory()
        h.note_encounter(100.0)
        assert h.last_interval is None
        assert h.encounter_count == 1

    def test_interval_between_rendezvous(self):
        h = EncounterHistory()
        h.note_encounter(100.0)
        h.note_encounter(700.0)
        assert h.last_interval == 600.0
        h.note_encounter(1_000.0)
        assert h.last_interval == 300.0

    def test_burst_debounced(self):
        """Encounters within the rendezvous gap are one rendezvous."""
        h = EncounterHistory(min_rendezvous_gap=120.0)
        h.note_encounter(1_000.0)
        h.note_encounter(1_005.0)  # burst: 3 devices at one spot
        h.note_encounter(1_050.0)
        assert h.last_interval is None  # still the first rendezvous
        h.note_encounter(2_000.0)
        assert h.last_interval == 1_000.0  # measured from burst start

    def test_simultaneous_encounters_no_zero_interval(self):
        h = EncounterHistory()
        h.note_encounter(500.0)
        h.note_encounter(500.0)
        assert h.last_interval is None

    def test_count_counts_everything(self):
        h = EncounterHistory()
        for t in (0.0, 1.0, 2.0):
            h.note_encounter(t)
        assert h.encounter_count == 3


class TestNodeStores:
    def test_add_origin_and_queries(self):
        node = Node(0, buffer_capacity=4)
        b = bundle(1, source=0, destination=1)
        sb = node.add_origin(b, now=5.0)
        assert sb.is_origin
        assert node.has_copy(b.bid)
        assert node.get_copy(b.bid) is sb
        assert node.live_copy_count() == 1

    def test_add_origin_validates_source(self):
        node = Node(0, buffer_capacity=4)
        with pytest.raises(ValueError, match="originate"):
            node.add_origin(bundle(1, source=2, destination=1), now=0.0)

    def test_add_origin_rejects_duplicates(self):
        node = Node(0, buffer_capacity=4)
        node.add_origin(bundle(1, source=0), now=0.0)
        with pytest.raises(ValueError, match="already"):
            node.add_origin(bundle(1, source=0), now=0.0)

    def test_remove_copy_checks_both_stores(self):
        node = Node(0, buffer_capacity=4)
        origin = node.add_origin(bundle(1, source=0), now=0.0)
        assert node.remove_copy(origin.bid) is origin
        with pytest.raises(KeyError):
            node.remove_copy(origin.bid)

    def test_delivered_tracking(self):
        node = Node(1, buffer_capacity=4)
        b = bundle(1, source=0, destination=1)
        node.mark_delivered(b.bid, now=9.0)
        assert node.has_copy(b.bid)  # delivered counts as a copy
        assert node.get_copy(b.bid) is None  # ...but not a live one
        with pytest.raises(ValueError, match="twice"):
            node.mark_delivered(b.bid, now=10.0)

    def test_sendable_orders_origin_first(self):
        node = Node(0, buffer_capacity=4)
        o = node.add_origin(bundle(1, source=0), now=0.0)
        from tests.helpers import stored

        r = stored(2, stored_at=1.0)
        node.relay.add(r)
        assert node.sendable() == [o, r]

    def test_repr_mentions_stores(self):
        assert "relay=0/4" in repr(Node(3, buffer_capacity=4))
