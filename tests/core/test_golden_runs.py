"""Golden regression pins for the seed scenario.

These values were produced by the seed configuration (campus trace,
``seed=7``, 10-slot buffers, ``reject`` drop policy) and verified
bit-identical before and after the buffer-policy refactor. A kernel change
that shifts any simulation path — event ordering, RNG stream derivation,
metric integration, buffer admission — shows up here immediately.

If a change *intentionally* alters simulation semantics, regenerate with::

    PYTHONPATH=src python - <<'EOF'
    from repro.core.protocols.registry import make_protocol_config
    from repro.core.sweep import SweepConfig, run_single
    from repro.mobility.synthetic import CampusTraceGenerator
    trace = CampusTraceGenerator(seed=7).generate()
    for (name, kwargs), (load, rep) in ...:  # see GOLDEN below
        print(run_single(trace, make_protocol_config(name, **kwargs),
                         load, rep, SweepConfig(master_seed=7)))
    EOF
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import pytest

from repro.core.protocols.registry import make_protocol_config
from repro.core.sweep import SweepConfig, run_single


def _load_bench_sim():
    """The pins live in tools/bench_sim.py (its --verify gate re-checks
    them in CI); loading them from there keeps a single source of truth."""
    if "bench_sim" in sys.modules:
        return sys.modules["bench_sim"]
    path = Path(__file__).resolve().parents[2] / "tools" / "bench_sim.py"
    spec = importlib.util.spec_from_file_location("bench_sim", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules["bench_sim"] = module
    spec.loader.exec_module(module)
    return module


_bench_sim = _load_bench_sim()

#: (protocol name, load, replication) → exact seed-scenario metrics.
GOLDEN = _bench_sim.GOLDEN

#: Constructor kwargs for every pinned protocol (the bench trio plus the
#: ec / immunity equivalence pins), shared with the bench.
PROTOCOL_KWARGS = _bench_sim.GOLDEN_PROTOCOLS


@pytest.mark.parametrize("key", sorted(GOLDEN), ids=lambda k: f"{k[0]}-l{k[1]}-r{k[2]}")
def test_seed_scenario_metrics_pinned(campus_trace, key):
    name, load, rep = key
    expected = GOLDEN[key]
    result = run_single(
        campus_trace,
        make_protocol_config(name, **PROTOCOL_KWARGS[name]),
        load,
        rep,
        SweepConfig(master_seed=7),
    )
    assert result.delivered == expected["delivered"]
    assert result.delivery_ratio == 1.0
    assert result.transmissions == expected["transmissions"]
    # exact float equality: the golden values are this code's own output,
    # so any drift means the simulation kernel changed
    assert result.delay == expected["delay"]
    assert result.buffer_occupancy == expected["buffer_occupancy"]
    assert result.peak_occupancy == expected["peak_occupancy"]
    assert result.duplication_rate == expected["duplication_rate"]
    assert result.end_time == expected["end_time"]
    # occupancy integral (mean × span) — the tradeoff study's quantity
    assert result.buffer_occupancy * result.end_time == pytest.approx(
        expected["buffer_occupancy"] * expected["end_time"], rel=1e-12
    )
    # drop accounting: empty under the default reject policy, pinned
    # exactly for protocols with an intrinsic eviction rule (EC)
    assert result.drops == expected["drops"]
