"""Golden regression pins for the seed scenario.

These values were produced by the seed configuration (campus trace,
``seed=7``, 10-slot buffers, ``reject`` drop policy) and verified
bit-identical before and after the buffer-policy refactor. A kernel change
that shifts any simulation path — event ordering, RNG stream derivation,
metric integration, buffer admission — shows up here immediately.

If a change *intentionally* alters simulation semantics, regenerate with::

    PYTHONPATH=src python - <<'EOF'
    from repro.core.protocols.registry import make_protocol_config
    from repro.core.sweep import SweepConfig, run_single
    from repro.mobility.synthetic import CampusTraceGenerator
    trace = CampusTraceGenerator(seed=7).generate()
    for (name, kwargs), (load, rep) in ...:  # see GOLDEN below
        print(run_single(trace, make_protocol_config(name, **kwargs),
                         load, rep, SweepConfig(master_seed=7)))
    EOF
"""

from __future__ import annotations

import pytest

from repro.core.protocols.registry import make_protocol_config
from repro.core.sweep import SweepConfig, run_single

#: (protocol name, load, replication) → exact seed-scenario metrics.
GOLDEN: dict[tuple[str, int, int], dict[str, float | int | None]] = {
    ("pure", 10, 0): dict(
        delivered=10,
        delay=9504.79563371244,
        transmissions=41,
        buffer_occupancy=0.09645330709440073,
        peak_occupancy=0.25833333333333336,
        duplication_rate=0.0946318698294398,
        end_time=9504.79563371244,
    ),
    ("pure", 30, 1): dict(
        delivered=30,
        delay=200638.0333761878,
        transmissions=130,
        buffer_occupancy=0.7822151639604117,
        peak_occupancy=0.8333333333333334,
        duplication_rate=0.11646657918739857,
        end_time=200638.0333761878,
    ),
    ("ttl", 10, 0): dict(
        delivered=10,
        delay=21239.336647955755,
        transmissions=39,
        buffer_occupancy=0.003667423638634794,
        peak_occupancy=0.03333333333333333,
        duplication_rate=0.08630447725195987,
        end_time=21239.336647955755,
    ),
    ("ttl", 30, 1): dict(
        delivered=30,
        delay=217142.23887968616,
        transmissions=510,
        buffer_occupancy=0.005895168217461815,
        peak_occupancy=0.09166666666666666,
        duplication_rate=0.08543936932736591,
        end_time=217142.23887968616,
    ),
    ("pq", 10, 0): dict(
        delivered=10,
        delay=9504.79563371244,
        transmissions=30,
        buffer_occupancy=0.04834130565739798,
        peak_occupancy=0.12083333333333335,
        duplication_rate=0.09587998441010431,
        end_time=9504.79563371244,
    ),
    ("pq", 30, 1): dict(
        delivered=30,
        delay=46062.10360502355,
        transmissions=232,
        buffer_occupancy=0.22723092182253896,
        peak_occupancy=0.5283333333333337,
        duplication_rate=0.13439470267943393,
        end_time=46062.10360502355,
    ),
}

PROTOCOL_KWARGS = {
    "pure": {},
    "ttl": {"ttl": 300.0},
    # the anti-packet family: P-Q coins with destination-driven purging
    "pq": {"p": 1.0, "q": 1.0, "anti_packets": True},
}


@pytest.mark.parametrize("key", sorted(GOLDEN), ids=lambda k: f"{k[0]}-l{k[1]}-r{k[2]}")
def test_seed_scenario_metrics_pinned(campus_trace, key):
    name, load, rep = key
    expected = GOLDEN[key]
    result = run_single(
        campus_trace,
        make_protocol_config(name, **PROTOCOL_KWARGS[name]),
        load,
        rep,
        SweepConfig(master_seed=7),
    )
    assert result.delivered == expected["delivered"]
    assert result.delivery_ratio == 1.0
    assert result.transmissions == expected["transmissions"]
    # exact float equality: the golden values are this code's own output,
    # so any drift means the simulation kernel changed
    assert result.delay == expected["delay"]
    assert result.buffer_occupancy == expected["buffer_occupancy"]
    assert result.peak_occupancy == expected["peak_occupancy"]
    assert result.duplication_rate == expected["duplication_rate"]
    assert result.end_time == expected["end_time"]
    # occupancy integral (mean × span) — the tradeoff study's quantity
    assert result.buffer_occupancy * result.end_time == pytest.approx(
        expected["buffer_occupancy"] * expected["end_time"], rel=1e-12
    )
    # the seed scenario evicts nothing: reject is the default policy
    assert result.drops == {}
