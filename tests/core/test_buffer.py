"""RelayStore mechanics."""

import pytest
from hypothesis import given, strategies as st

from repro.core.buffer import BufferFullError, RelayStore
from tests.helpers import stored


class TestCapacity:
    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            RelayStore(0)

    def test_add_until_full(self):
        store = RelayStore(2)
        store.add(stored(1))
        store.add(stored(2))
        assert store.is_full
        assert store.free_slots == 0
        with pytest.raises(BufferFullError):
            store.add(stored(3))

    def test_duplicate_rejected(self):
        store = RelayStore(3)
        store.add(stored(1))
        with pytest.raises(ValueError):
            store.add(stored(1))

    def test_fill_fraction(self):
        store = RelayStore(4)
        store.add(stored(1))
        assert store.fill_fraction == 0.25

    def test_remove_frees_slot(self):
        store = RelayStore(1)
        sb = stored(1)
        store.add(sb)
        assert store.remove(sb.bid) is sb
        assert store.free_slots == 1
        with pytest.raises(KeyError):
            store.remove(sb.bid)


class TestQueries:
    def test_contains_get_ids_values(self):
        store = RelayStore(3)
        a, b = stored(1), stored(2)
        store.add(a)
        store.add(b)
        assert a.bid in store
        assert store.get(a.bid) is a
        assert store.get(stored(9).bid) is None
        assert store.ids() == {a.bid, b.bid}
        assert store.values() == [a, b]  # insertion order
        assert list(iter(store)) == [a, b]

    def test_expired_listing(self):
        store = RelayStore(3)
        fresh, old = stored(1), stored(2)
        old.expiry = 50.0
        store.add(fresh)
        store.add(old)
        assert store.expired(now=60.0) == [old]
        assert store.expired(now=10.0) == []


class TestMaxEcEntry:
    def test_picks_highest_ec(self):
        store = RelayStore(4)
        store.add(stored(1, ec=2))
        store.add(stored(2, ec=7))
        store.add(stored(3, ec=5))
        assert store.max_ec_entry().bid.seq == 2

    def test_tie_broken_by_older_stored_at(self):
        store = RelayStore(4)
        store.add(stored(1, ec=5, stored_at=100.0))
        store.add(stored(2, ec=5, stored_at=10.0))
        assert store.max_ec_entry().bid.seq == 2

    def test_min_ec_filters(self):
        store = RelayStore(4)
        store.add(stored(1, ec=0))
        store.add(stored(2, ec=1))
        assert store.max_ec_entry(min_ec=2) is None
        assert store.max_ec_entry(min_ec=1).bid.seq == 2

    def test_exclude(self):
        store = RelayStore(4)
        store.add(stored(1, ec=9))
        assert store.max_ec_entry(exclude=stored(1).bid) is None

    def test_empty_store(self):
        assert RelayStore(2).max_ec_entry() is None


class TestStoreProperties:
    @given(
        st.lists(
            st.tuples(st.integers(1, 30), st.booleans()),
            max_size=100,
        )
    )
    def test_never_exceeds_capacity(self, ops):
        """Random add/remove interleavings keep the capacity invariant."""
        store = RelayStore(5)
        model: dict[int, bool] = {}
        for seq, is_add in ops:
            sb = stored(seq)
            if is_add:
                if len(model) >= 5 or seq in model:
                    with pytest.raises((BufferFullError, ValueError)):
                        store.add(sb)
                else:
                    store.add(sb)
                    model[seq] = True
            else:
                if seq in model:
                    store.remove(sb.bid)
                    del model[seq]
                else:
                    with pytest.raises(KeyError):
                        store.remove(sb.bid)
            assert len(store) == len(model) <= 5
        assert {bid.seq for bid in store.ids()} == set(model)
