"""Immunity and cumulative-immunity protocols."""

import pytest

from repro.core.bundle import BundleId
from repro.core.protocols.base import ControlMessage
from tests.helpers import bundle, make_node, run_micro, stored


class TestImmunity:
    def test_destination_builds_ilist(self):
        node, _ = make_node(3, protocol="immunity")
        b = bundle(1, source=0, destination=3)
        node.protocol.on_delivered(b, now=1.0)
        assert node.protocol.knows_delivered(b.bid)

    def test_ilist_merge_purges_buffer(self):
        node, sim = make_node(1, protocol="immunity")
        sb = stored(1, destination=3)
        node.relay.add(sb)
        msg = ControlMessage(sender=2, delivered_ids=frozenset({sb.bid}))
        node.protocol.receive_control(msg, now=5.0)
        assert node.get_copy(sb.bid) is None
        assert node.protocol.knows_delivered(sb.bid)

    def test_origin_copies_purged_too(self):
        node, _ = make_node(0, protocol="immunity")
        sb = node.add_origin(bundle(1, source=0, destination=3), now=0.0)
        msg = ControlMessage(sender=2, delivered_ids=frozenset({sb.bid}))
        node.protocol.receive_control(msg, now=5.0)
        assert node.get_copy(sb.bid) is None

    def test_control_units_proportional_to_ilist(self):
        node, _ = make_node(1, protocol="immunity")
        node.protocol.learn_delivered({BundleId(0, s) for s in range(1, 8)}, now=0.0)
        msg = node.protocol.control_payload(now=1.0)
        assert node.protocol.control_units(msg) == 7

    def test_table_storage_grows_with_ilist(self):
        node, sim = make_node(1, protocol="immunity")
        node.protocol.learn_delivered({BundleId(0, s) for s in range(1, 11)}, now=0.0)
        assert sim.control_storage[1] == pytest.approx(1.0)  # 10 x 0.1 slots

    def test_end_to_end_purge_and_block(self):
        # Two bundles; bundle 2 is held back so the run continues past the
        # immunity-table exchanges for bundle 1 (the run stops when all
        # bundles are delivered — the paper's termination rule).
        rows = [
            (100.0, 350.0, 0, 1),      # both bundles reach node 1
            (1_000.0, 1_150.0, 1, 2),  # capacity 1: bundle 1 -> node 2
            (2_000.0, 2_150.0, 2, 3),  # bundle 1 delivered
            (3_000.0, 3_150.0, 2, 3),  # table back to 2 -> purge at 2
            (4_000.0, 4_250.0, 1, 2),  # 2 vaccinates 1 (purge) + bundle 2 moves
            (5_000.0, 5_150.0, 2, 3),  # bundle 2 delivered: run ends
        ]
        sim, result = run_micro("immunity", rows, 4, load=2)
        assert result.success
        assert result.removals["immunized"] >= 2
        assert result.signaling["immunity_table"] > 0


class TestCumulativeImmunity:
    def test_prefix_advances_in_order(self):
        node, _ = make_node(3, protocol="cumulative_immunity")
        for seq in (1, 2, 3):
            node.protocol.on_delivered(bundle(seq, source=0, destination=3), now=1.0)
        assert node.protocol.tables[0] == 3
        assert node.protocol.knows_delivered(BundleId(0, 2))
        assert not node.protocol.knows_delivered(BundleId(0, 4))

    def test_out_of_order_waits_for_gap(self):
        node, _ = make_node(3, protocol="cumulative_immunity")
        for seq in (1, 3, 4):
            node.protocol.on_delivered(bundle(seq, source=0, destination=3), now=1.0)
        assert node.protocol.tables.get(0, 0) == 1  # blocked at the gap
        node.protocol.on_delivered(bundle(2, source=0, destination=3), now=2.0)
        assert node.protocol.tables[0] == 4  # gap filled: jumps to 4

    def test_dominating_table_replaces(self):
        node, _ = make_node(1, protocol="cumulative_immunity")
        node.protocol.receive_control(ControlMessage(sender=2, cumulative={0: 30}), now=0.0)
        node.protocol.receive_control(ControlMessage(sender=4, cumulative={0: 50}), now=1.0)
        assert node.protocol.tables[0] == 50
        # a stale table is ignored
        node.protocol.receive_control(ControlMessage(sender=5, cumulative={0: 10}), now=2.0)
        assert node.protocol.tables[0] == 50

    def test_one_table_purges_many_bundles(self):
        node, sim = make_node(1, protocol="cumulative_immunity")
        for seq in (1, 2, 3, 4):
            node.relay.add(stored(seq, destination=3))
        node.relay.add(stored(9, destination=3))
        node.protocol.receive_control(ControlMessage(sender=2, cumulative={0: 4}), now=5.0)
        assert len(node.relay) == 1  # only seq 9 survives
        assert len(sim.removals) == 4

    def test_control_units_one_per_flow(self):
        node, _ = make_node(1, protocol="cumulative_immunity")
        node.protocol.receive_control(ControlMessage(sender=2, cumulative={0: 30}), now=0.0)
        msg = node.protocol.control_payload(now=1.0)
        assert node.protocol.control_units(msg) == 1

    def test_table_storage_constant_per_flow(self):
        node, sim = make_node(1, protocol="cumulative_immunity")
        node.protocol.receive_control(ControlMessage(sender=2, cumulative={0: 5}), now=0.0)
        node.protocol.receive_control(ControlMessage(sender=2, cumulative={0: 40}), now=1.0)
        assert sim.control_storage[1] == pytest.approx(0.1)

    def test_multiflow_tables_independent(self):
        node, _ = make_node(1, protocol="cumulative_immunity")
        node.protocol.receive_control(
            ControlMessage(sender=2, cumulative={0: 3, 1: 7}), now=0.0
        )
        assert node.protocol.knows_delivered(BundleId(0, 3))
        assert node.protocol.knows_delivered(BundleId(1, 7))
        assert not node.protocol.knows_delivered(BundleId(0, 4))


class TestSignalingComparison:
    def test_cumulative_signals_order_of_magnitude_less(self, small_campus_trace):
        from repro.core.protocols import make_protocol_config
        from repro.core.simulation import Simulation
        from repro.core.workload import Flow

        flows = [Flow(flow_id=0, source=0, destination=5, num_bundles=30)]
        r_imm = Simulation(
            small_campus_trace, make_protocol_config("immunity"), flows, seed=4
        ).run()
        r_cum = Simulation(
            small_campus_trace,
            make_protocol_config("cumulative_immunity"),
            flows,
            seed=4,
        ).run()
        assert r_imm.delivery_ratio == r_cum.delivery_ratio == 1.0
        assert r_cum.signaling["immunity_table"] > 0
        assert (
            r_imm.signaling["immunity_table"]
            >= 5 * r_cum.signaling["immunity_table"]
        )
