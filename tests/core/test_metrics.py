"""Exact metric accumulation."""

import pytest

from repro.core.bundle import BundleId
from repro.core.metrics import MetricsCollector, TimeWeightedAccumulator


class TestTimeWeightedAccumulator:
    def test_integral_of_piecewise_constant(self):
        acc = TimeWeightedAccumulator()
        acc.update(2.0, 10.0)  # 0 over [0,10)
        acc.update(5.0, 20.0)  # 2 over [10,20)
        assert acc.integral(30.0) == 0 * 10 + 2 * 10 + 5 * 10
        assert acc.value == 5.0

    def test_add_is_relative(self):
        acc = TimeWeightedAccumulator(value=1.0)
        acc.add(2.0, 10.0)
        assert acc.value == 3.0
        assert acc.integral(10.0) == 10.0

    def test_mean_over_window(self):
        acc = TimeWeightedAccumulator()
        acc.update(4.0, 5.0)
        assert acc.mean(10.0) == pytest.approx((0 * 5 + 4 * 5) / 10)

    def test_mean_with_start_offset(self):
        acc = TimeWeightedAccumulator(value=2.0, start=10.0)
        assert acc.mean(20.0) == pytest.approx(2.0)

    def test_mean_uses_birth_time_not_zero(self):
        # regression: a constant value must average to itself no matter
        # when the accumulator was born; the old mean() divided the
        # lifetime integral by `now - 0` and reported 3.0 here
        acc = TimeWeightedAccumulator(value=6.0, start=5.0)
        assert acc.mean(10.0) == pytest.approx(6.0)
        acc.update(6.0, 8.0)  # no-op update must not change the mean
        assert acc.mean(10.0) == pytest.approx(6.0)

    def test_mean_of_zero_span_returns_value(self):
        acc = TimeWeightedAccumulator(value=7.0)
        assert acc.mean(0.0) == 7.0

    def test_time_reversal_rejected(self):
        acc = TimeWeightedAccumulator()
        acc.update(1.0, 10.0)
        with pytest.raises(ValueError):
            acc.update(2.0, 5.0)
        with pytest.raises(ValueError):
            acc.integral(5.0)


class TestOccupancyMetric:
    def test_mean_buffer_occupancy(self):
        m = MetricsCollector(num_nodes=2, buffer_capacity=10)
        m.on_buffer_delta(+10, 0.0)  # one node instantly full
        assert m.mean_buffer_occupancy(100.0) == pytest.approx(10 / 20)

    def test_control_storage_included(self):
        m = MetricsCollector(num_nodes=2, buffer_capacity=10)
        m.on_control_storage_delta(+5.0, 0.0)
        assert m.mean_buffer_occupancy(10.0) == pytest.approx(5 / 20)
        assert m.mean_control_storage(10.0) == pytest.approx(5 / 20)


class TestDuplicationMetric:
    def _bid(self, seq=1):
        return BundleId(0, seq)

    def test_single_bundle_full_window(self):
        m = MetricsCollector(num_nodes=4, buffer_capacity=10)
        m.on_bundle_born(self._bid(), 0.0)  # 1 copy
        m.on_copy_delta(self._bid(), +1, 50.0)  # 2 copies
        # [0,50): 1/4, [50,100): 2/4 -> mean 1.5/4
        assert m.mean_duplication_rate(100.0) == pytest.approx(1.5 / 4)

    def test_alive_window_frozen_at_delivery(self):
        m = MetricsCollector(num_nodes=4, buffer_capacity=10)
        m.on_bundle_born(self._bid(), 0.0)
        m.on_copy_delta(self._bid(), +1, 50.0)
        m.on_delivered(self._bid(), 100.0)
        frozen = m.mean_duplication_rate(100.0)
        # post-delivery purges must not change the alive-window value
        m.on_copy_delta(self._bid(), -1, 150.0)
        assert m.mean_duplication_rate(1_000.0) == pytest.approx(frozen)

    def test_average_over_bundles(self):
        m = MetricsCollector(num_nodes=2, buffer_capacity=10)
        m.on_bundle_born(self._bid(1), 0.0)
        m.on_bundle_born(self._bid(2), 0.0)
        m.on_copy_delta(self._bid(1), +1, 0.0)  # bundle 1: 2 copies always
        # bundle 1 mean = 1.0, bundle 2 mean = 0.5 -> average 0.75
        assert m.mean_duplication_rate(100.0) == pytest.approx(0.75)

    def test_born_twice_rejected(self):
        m = MetricsCollector(2, 10)
        m.on_bundle_born(self._bid(), 0.0)
        with pytest.raises(ValueError):
            m.on_bundle_born(self._bid(), 1.0)

    def test_delta_for_unborn_rejected(self):
        m = MetricsCollector(2, 10)
        with pytest.raises(ValueError):
            m.on_copy_delta(self._bid(), +1, 0.0)

    def test_negative_copy_count_rejected(self):
        m = MetricsCollector(2, 10)
        m.on_bundle_born(self._bid(), 0.0)
        with pytest.raises(ValueError):
            m.on_copy_delta(self._bid(), -2, 1.0)

    def test_copy_count_query(self):
        m = MetricsCollector(2, 10)
        assert m.copy_count(self._bid()) == 0
        m.on_bundle_born(self._bid(), 0.0)
        assert m.copy_count(self._bid()) == 1

    def test_empty_collector_zero(self):
        assert MetricsCollector(2, 10).mean_duplication_rate(10.0) == 0.0


class TestDeliveryAndCounters:
    def test_delivery_ratio_and_completion(self):
        m = MetricsCollector(3, 10)
        for seq, t in ((1, 10.0), (2, 30.0)):
            m.on_bundle_born(BundleId(0, seq), 0.0)
            m.on_delivered(BundleId(0, seq), t)
        assert m.delivery_ratio(4) == 0.5
        assert m.completion_time(2) == 30.0
        assert m.completion_time(3) is None
        with pytest.raises(ValueError):
            m.delivery_ratio(0)

    def test_double_delivery_rejected(self):
        m = MetricsCollector(3, 10)
        m.on_bundle_born(BundleId(0, 1), 0.0)
        m.on_delivered(BundleId(0, 1), 5.0)
        with pytest.raises(ValueError):
            m.on_delivered(BundleId(0, 1), 6.0)

    def test_delivered_by_recorded(self):
        m = MetricsCollector(3, 10)
        m.on_bundle_born(BundleId(0, 1), 0.0)
        m.on_delivered(BundleId(0, 1), 5.0, via=2)
        assert m.delivered_by[BundleId(0, 1)] == 2

    def test_signaling_counters(self):
        m = MetricsCollector(3, 10)
        m.on_control_units("anti_packet", 3)
        m.on_control_units("immunity_table", 5)
        m.on_control_units("summary_vector", 1)
        assert m.signaling.protocol_specific == 8
        with pytest.raises(ValueError):
            m.on_control_units("bogus", 1)

    def test_removal_reasons(self):
        m = MetricsCollector(3, 10)
        for reason in ("evicted", "expired", "immunized", "ec-aged-out", "weird"):
            m.on_removal(reason)
        assert m.removals.evicted == 1
        assert m.removals.ec_aged_out == 1
        assert m.removals.other == 1
        assert m.removals.total == 5
