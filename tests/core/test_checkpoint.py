"""Checkpoint journal: lossless round-trips, crash tolerance, refusals."""

import json
import os

import pytest

from repro.core.checkpoint import (
    SCHEMA_VERSION,
    CheckpointError,
    CheckpointJournal,
    cell_key,
)
from repro.core.protocols import make_protocol_config
from repro.core.sweep import SweepConfig, build_cells, campaign_fingerprint
from repro.ioutil import atomic_write, atomic_write_text
from tests.helpers import CHAIN_ROWS, micro_trace, run_micro

FINGERPRINT = {
    "master_seed": 3,
    "loads": [2],
    "replications": 2,
    "shared_trace": True,
    "engine": "des",
    "protocols": ["Epidemic"],
    "traces": ["micro"],
}


@pytest.fixture
def result():
    _, r = run_micro("pure", CHAIN_ROWS, 4, load=2)
    return r


@pytest.fixture
def occupancy_result():
    from repro.core.simulation import SimulationConfig

    _, r = run_micro(
        "pure",
        CHAIN_ROWS,
        4,
        load=2,
        sim_config=SimulationConfig(record_occupancy=True),
    )
    assert r.occupancy_series  # the fixture must exercise the optional field
    return r


class TestRunResultRoundTrip:
    def test_json_round_trip_is_exact(self, result):
        from repro.core.results import RunResult

        back = RunResult.from_dict(json.loads(json.dumps(result.to_dict())))
        assert back == result
        assert repr(back) == repr(result)  # bit-identical, not just approx

    def test_occupancy_series_round_trips(self, occupancy_result):
        from repro.core.results import RunResult

        back = RunResult.from_dict(
            json.loads(json.dumps(occupancy_result.to_dict()))
        )
        assert back == occupancy_result
        assert isinstance(back.occupancy_series, tuple)

    def test_unknown_field_rejected(self, result):
        from repro.core.results import RunResult

        data = result.to_dict()
        data["warp_factor"] = 9
        with pytest.raises(ValueError, match="unknown RunResult field"):
            RunResult.from_dict(data)

    def test_missing_field_rejected(self, result):
        from repro.core.results import RunResult

        data = result.to_dict()
        del data["delivery_ratio"]
        with pytest.raises(ValueError, match="missing RunResult field"):
            RunResult.from_dict(data)


class TestCellKey:
    def test_keys_on_label_not_registry_name(self):
        trace = micro_trace(CHAIN_ROWS, 4)
        cfg = SweepConfig(loads=(2,), replications=1, master_seed=0)
        variants = [
            make_protocol_config("pq", p=0.25, q=1.0),
            make_protocol_config("pq", p=0.75, q=1.0),
        ]
        keys = {cell_key(c) for c in build_cells(trace, variants, cfg)}
        assert len(keys) == 2  # same registry name, distinct journal keys


class TestJournalLifecycle:
    def test_record_then_reload(self, tmp_path, result):
        key = ("Epidemic", 2, 0)
        with CheckpointJournal(tmp_path / "camp") as j:
            j.begin(FINGERPRINT)
            assert len(j) == 0
            j.record(key, result)
            assert key in j

        j2 = CheckpointJournal(tmp_path / "camp", resume=True)
        j2.begin(FINGERPRINT)
        assert j2.keys() == [key]
        restored = j2.get(key)
        assert restored == result
        assert repr(restored) == repr(result)
        j2.close()

    def test_record_before_begin_rejected(self, tmp_path, result):
        j = CheckpointJournal(tmp_path / "camp")
        with pytest.raises(CheckpointError, match="begin"):
            j.record(("Epidemic", 2, 0), result)

    def test_populated_dir_without_resume_refused(self, tmp_path, result):
        with CheckpointJournal(tmp_path / "camp") as j:
            j.begin(FINGERPRINT)
            j.record(("Epidemic", 2, 0), result)
        fresh = CheckpointJournal(tmp_path / "camp")
        with pytest.raises(CheckpointError, match="--resume"):
            fresh.begin(FINGERPRINT)

    def test_resume_into_empty_dir_is_fine(self, tmp_path):
        j = CheckpointJournal(tmp_path / "camp", resume=True)
        j.begin(FINGERPRINT)
        assert len(j) == 0
        j.close()

    def test_fingerprint_mismatch_refused(self, tmp_path):
        with CheckpointJournal(tmp_path / "camp") as j:
            j.begin(FINGERPRINT)
        other = dict(FINGERPRINT, master_seed=99)
        j2 = CheckpointJournal(tmp_path / "camp", resume=True)
        with pytest.raises(CheckpointError, match="fingerprint mismatch"):
            j2.begin(other)

    def test_schema_mismatch_refused(self, tmp_path):
        camp = tmp_path / "camp"
        camp.mkdir()
        (camp / "manifest.json").write_text(
            json.dumps({"schema": SCHEMA_VERSION + 1, "campaign": FINGERPRINT})
        )
        with pytest.raises(CheckpointError, match="schema version"):
            CheckpointJournal(camp, resume=True).begin(FINGERPRINT)

    def test_unreadable_manifest_refused(self, tmp_path):
        camp = tmp_path / "camp"
        camp.mkdir()
        (camp / "manifest.json").write_text("{not json")
        with pytest.raises(CheckpointError, match="unreadable manifest"):
            CheckpointJournal(camp).begin(FINGERPRINT)

    def test_journal_without_manifest_refused(self, tmp_path):
        camp = tmp_path / "camp"
        camp.mkdir()
        (camp / "journal.jsonl").write_text('{"v": 1}\n')
        with pytest.raises(CheckpointError, match="without a manifest"):
            CheckpointJournal(camp, resume=True).begin(FINGERPRINT)


class TestCrashTolerance:
    def _populated(self, tmp_path, result):
        camp = tmp_path / "camp"
        with CheckpointJournal(camp) as j:
            j.begin(FINGERPRINT)
            j.record(("Epidemic", 2, 0), result)
            j.record(("Epidemic", 2, 1), result)
        return camp

    def test_torn_tail_dropped_and_truncated(self, tmp_path, result):
        camp = self._populated(tmp_path, result)
        journal = camp / "journal.jsonl"
        clean_size = journal.stat().st_size
        with open(journal, "a", encoding="utf-8") as fh:
            fh.write('{"v": 1, "key": {"protocol": "Epi')  # no newline: torn
        j = CheckpointJournal(camp, resume=True)
        j.begin(FINGERPRINT)
        assert j.dropped_partial
        assert len(j) == 2  # the torn record simply re-runs
        j.close()
        assert journal.stat().st_size == clean_size  # tail truncated away

    def test_poisoned_terminated_line_refused(self, tmp_path, result):
        camp = self._populated(tmp_path, result)
        with open(camp / "journal.jsonl", "a", encoding="utf-8") as fh:
            fh.write("{this is not json}\n")  # terminated => not a torn append
        j = CheckpointJournal(camp, resume=True)
        with pytest.raises(CheckpointError, match="poisoned journal record"):
            j.begin(FINGERPRINT)

    def test_record_schema_mismatch_refused(self, tmp_path, result):
        camp = self._populated(tmp_path, result)
        line = json.dumps(
            {"v": SCHEMA_VERSION + 1, "key": {}, "result": {}}
        )
        with open(camp / "journal.jsonl", "a", encoding="utf-8") as fh:
            fh.write(line + "\n")
        with pytest.raises(CheckpointError, match="record schema version"):
            CheckpointJournal(camp, resume=True).begin(FINGERPRINT)

    def test_blank_lines_ignored(self, tmp_path, result):
        camp = self._populated(tmp_path, result)
        with open(camp / "journal.jsonl", "a", encoding="utf-8") as fh:
            fh.write("\n\n")
        j = CheckpointJournal(camp, resume=True)
        j.begin(FINGERPRINT)
        assert len(j) == 2
        j.close()


class TestCampaignFingerprint:
    def _grid(self, seed=3):
        trace = micro_trace(CHAIN_ROWS, 4)
        cfg = SweepConfig(loads=(2, 3), replications=2, master_seed=seed)
        protos = [make_protocol_config("pure"), make_protocol_config("ec")]
        return build_cells(trace, protos, cfg), cfg

    def test_json_safe_and_stable(self):
        cells, cfg = self._grid()
        fp = campaign_fingerprint(cells, cfg)
        assert json.loads(json.dumps(fp)) == fp
        assert fp == campaign_fingerprint(cells, cfg)

    def test_seed_changes_fingerprint(self):
        cells_a, cfg_a = self._grid(seed=3)
        cells_b, cfg_b = self._grid(seed=4)
        assert campaign_fingerprint(cells_a, cfg_a) != campaign_fingerprint(
            cells_b, cfg_b
        )

    def _faulted_grid(self, faults):
        from repro.core.simulation import SimulationConfig

        trace = micro_trace(CHAIN_ROWS, 4)
        cfg = SweepConfig(
            loads=(2, 3),
            replications=2,
            master_seed=3,
            sim=SimulationConfig(faults=faults),
        )
        protos = [make_protocol_config("pure"), make_protocol_config("ec")]
        return build_cells(trace, protos, cfg), cfg

    def test_fault_spec_changes_fingerprint(self):
        from repro.faults import FaultSpec

        cells, cfg = self._grid()
        plain = campaign_fingerprint(cells, cfg)
        assert plain["faults"] is None
        faulted_cells, faulted_cfg = self._faulted_grid(
            FaultSpec(churn_rate=1e-4, mean_downtime=500.0, state_loss="all")
        )
        faulted = campaign_fingerprint(faulted_cells, faulted_cfg)
        assert faulted != plain
        assert faulted["faults"]["churn_rate"] == 1e-4
        assert json.loads(json.dumps(faulted)) == faulted

    def test_trivial_fault_spec_fingerprints_like_none(self):
        from repro.faults import FaultSpec

        cells, cfg = self._grid()
        trivial_cells, trivial_cfg = self._faulted_grid(FaultSpec())
        assert campaign_fingerprint(trivial_cells, trivial_cfg) == (
            campaign_fingerprint(cells, cfg)
        )

    def test_resume_against_different_fault_env_refused(self, tmp_path):
        """Satellite acceptance: a campaign journaled without faults must
        refuse a --resume that would mix in faulted cells (and vice
        versa) instead of silently blending the two."""
        from repro.faults import FaultSpec

        cells, cfg = self._grid()
        with CheckpointJournal(tmp_path / "camp") as j:
            j.begin(campaign_fingerprint(cells, cfg))
        faulted_cells, faulted_cfg = self._faulted_grid(
            FaultSpec(churn_rate=1e-4, mean_downtime=500.0)
        )
        j2 = CheckpointJournal(tmp_path / "camp", resume=True)
        with pytest.raises(CheckpointError, match="fingerprint mismatch"):
            j2.begin(campaign_fingerprint(faulted_cells, faulted_cfg))


class TestAtomicWrite:
    def test_writes_content(self, tmp_path):
        target = tmp_path / "out.txt"
        atomic_write_text(target, "hello\n")
        assert target.read_text() == "hello\n"

    def test_overwrites_atomically(self, tmp_path):
        target = tmp_path / "out.txt"
        target.write_text("old")
        atomic_write_text(target, "new")
        assert target.read_text() == "new"

    def test_failure_preserves_original_and_leaves_no_temp(self, tmp_path):
        target = tmp_path / "out.txt"
        target.write_text("precious")

        def _boom(stream):
            stream.write("partial")
            raise RuntimeError("disk gremlin")

        with pytest.raises(RuntimeError, match="disk gremlin"):
            atomic_write(target, _boom)
        assert target.read_text() == "precious"
        assert os.listdir(tmp_path) == ["out.txt"]  # no .tmp litter

    def test_newline_passthrough(self, tmp_path):
        target = tmp_path / "rows.csv"
        atomic_write(target, lambda fh: fh.write("a\r\n"), newline="")
        assert target.read_bytes() == b"a\r\n"
