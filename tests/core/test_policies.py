"""Drop-policy registry, victim selection, and end-to-end policy behaviour."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.buffer import RelayStore
from repro.core.node import Node
from repro.core.policies import (
    DropPolicy,
    RejectPolicy,
    drop_policy_names,
    make_drop_policy,
    register_drop_policy,
)
from repro.core.simulation import Simulation, SimulationConfig
from repro.core.workload import Flow
from repro.mobility.contact import ContactTrace
from tests.helpers import bundle, make_node, stored


class TestRegistry:
    def test_builtin_names(self):
        assert drop_policy_names() == [
            "drop-oldest",
            "drop-random",
            "drop-tail",
            "drop-youngest",
            "reject",
        ]

    def test_make_unknown_policy(self):
        with pytest.raises(KeyError, match="drop-oldest"):
            make_drop_policy("bogus")

    def test_register_requires_name(self):
        class Nameless(DropPolicy):
            pass

        with pytest.raises(ValueError, match="must define a policy name"):
            register_drop_policy(Nameless)

    def test_register_rejects_duplicate(self):
        class FakeReject(DropPolicy):
            name = "reject"

        with pytest.raises(ValueError, match="already registered"):
            register_drop_policy(FakeReject)

    def test_register_is_idempotent_for_same_class(self):
        assert register_drop_policy(RejectPolicy) is RejectPolicy

    def test_simulation_config_validates_policy_name(self):
        with pytest.raises(ValueError, match="unknown drop policy"):
            SimulationConfig(drop_policy="bogus")


def _store_with(*entries) -> RelayStore:
    store = RelayStore(capacity=len(entries))
    for sb in entries:
        store.add(sb)
    return store


class TestVictimSelection:
    def test_reject_never_names_a_victim(self):
        policy = make_drop_policy("reject")
        store = _store_with(stored(1), stored(2))
        assert not policy.can_make_room(store, bundle(3))
        assert policy.select_victim(store, bundle(3), now=0.0) is None

    def test_drop_tail_evicts_most_recently_stored(self):
        policy = make_drop_policy("drop-tail")
        first, last = stored(1, stored_at=10.0), stored(2, stored_at=20.0)
        store = _store_with(first, last)
        assert policy.can_make_room(store, bundle(3))
        assert policy.select_victim(store, bundle(3), now=30.0) is last

    def test_drop_oldest_by_bundle_creation(self):
        policy = make_drop_policy("drop-oldest")
        old = stored(1)
        old.bundle = bundle(1)
        young = stored(2)
        # same flow, later creation
        from repro.core.bundle import Bundle, BundleId

        young.bundle = Bundle(
            bid=BundleId(flow=0, seq=2), source=0, destination=1, created_at=500.0
        )
        store = _store_with(old, young)
        assert policy.select_victim(store, bundle(3), now=600.0) is old

    def test_drop_youngest_by_bundle_creation(self):
        policy = make_drop_policy("drop-youngest")
        from repro.core.bundle import Bundle, BundleId

        old = stored(1)
        young = stored(2)
        young.bundle = Bundle(
            bid=BundleId(flow=0, seq=2), source=0, destination=1, created_at=500.0
        )
        store = _store_with(old, young)
        assert policy.select_victim(store, bundle(3), now=600.0) is young

    def test_drop_random_is_seeded_and_uniformish(self):
        entries = [stored(s) for s in range(1, 5)]
        picks = set()
        for seed in range(16):
            policy = make_drop_policy("drop-random", rng=np.random.default_rng(seed))
            store = _store_with(*entries)
            victim = policy.select_victim(store, bundle(9), now=0.0)
            picks.add(victim.bid.seq)
        assert len(picks) > 1  # not stuck on one slot
        # same seed -> same victim
        a = make_drop_policy("drop-random", rng=np.random.default_rng(3))
        b = make_drop_policy("drop-random", rng=np.random.default_rng(3))
        store = _store_with(*[stored(s) for s in range(1, 5)])
        assert a.select_victim(store, bundle(9), 0.0) is b.select_victim(
            store, bundle(9), 0.0
        )

    def test_drop_random_requires_rng(self):
        policy = make_drop_policy("drop-random")
        store = _store_with(stored(1))
        with pytest.raises(ValueError, match="seeded rng"):
            policy.select_victim(store, bundle(2), now=0.0)

    def test_empty_store_yields_no_victim(self):
        store = RelayStore(capacity=1)
        for name in drop_policy_names():
            policy = make_drop_policy(name, rng=np.random.default_rng(0))
            assert policy.select_victim(store, bundle(1), now=0.0) is None


class TestProtocolDelegation:
    """The base protocol consults the node's policy on buffer pressure."""

    def test_reject_refuses_when_full(self):
        node, _ = make_node(capacity=1)
        assert isinstance(node.drop_policy, RejectPolicy)
        node.protocol.accept(bundle(1, destination=5), ec=1, now=0.0)
        assert node.protocol.accept(bundle(2, destination=5), ec=1, now=1.0) is None
        assert not node.protocol.can_accept(bundle(2, destination=5), now=1.0)

    def test_eviction_policy_makes_room(self):
        node, sim = make_node(capacity=1, drop_policy="drop-oldest")
        node.protocol.accept(bundle(1, destination=5), ec=1, now=0.0)
        sb = node.protocol.accept(bundle(2, destination=5), ec=1, now=1.0)
        assert sb is not None and sb.bid.seq == 2
        assert node.counters.evictions == 1
        assert sim.evictions == [(0, bundle(1).bid, "drop-oldest")]
        assert node.protocol.can_accept(bundle(3, destination=5), now=2.0)

    def test_destination_always_accepts(self):
        node, _ = make_node(capacity=1)
        node.protocol.accept(bundle(1, destination=5), ec=1, now=0.0)
        assert node.protocol.can_accept(bundle(2, source=3, destination=0), now=1.0)


def _contention_run(policy: str, *, capacity=2, seed=0):
    """A relay chain where node 1's buffer is the bottleneck."""
    rows = [
        (0.0, 650.0, 0, 1),  # 6 transfer slots into node 1
        (5_000.0, 5_650.0, 1, 2),
        (10_000.0, 10_650.0, 1, 3),
    ]
    trace = ContactTrace.from_tuples(rows, 4, horizon=20_000.0)
    flows = [Flow(flow_id=0, source=0, destination=3, num_bundles=6)]
    from repro.core.protocols.registry import make_protocol_config

    sim = Simulation(
        trace,
        make_protocol_config("pure"),
        flows,
        config=SimulationConfig(buffer_capacity=capacity, drop_policy=policy),
        seed=seed,
        record_occupancy=True,
    )
    return sim, sim.run()


class TestEndToEnd:
    def test_reject_matches_default_config(self):
        _, explicit = _contention_run("reject")
        rows = [
            (0.0, 650.0, 0, 1),
            (5_000.0, 5_650.0, 1, 2),
            (10_000.0, 10_650.0, 1, 3),
        ]
        trace = ContactTrace.from_tuples(rows, 4, horizon=20_000.0)
        flows = [Flow(flow_id=0, source=0, destination=3, num_bundles=6)]
        from repro.core.protocols.registry import make_protocol_config

        default = Simulation(
            trace,
            make_protocol_config("pure"),
            flows,
            config=SimulationConfig(buffer_capacity=2),
            seed=0,
            record_occupancy=True,  # match _contention_run's recording
        ).run()
        assert explicit == default
        assert explicit.drops == {}

    @pytest.mark.parametrize(
        "policy", ["drop-tail", "drop-oldest", "drop-youngest", "drop-random"]
    )
    def test_eviction_policies_record_drops(self, policy):
        sim, result = _contention_run(policy)
        assert result.drops.get(policy, 0) > 0
        assert result.removals["evicted"] == sum(result.drops.values())
        total_evictions = sum(n.counters.evictions for n in sim.nodes)
        assert total_evictions == result.removals["evicted"]

    def test_peak_occupancy_tracks_contention(self):
        _, result = _contention_run("reject")
        assert 0.0 < result.peak_occupancy <= 1.0
        # node 1 fills both its slots at some point: peak >= 2/8 slots
        assert result.peak_occupancy >= 2 / 8

    def test_occupancy_series_is_monotone_in_time(self):
        sim, _ = _contention_run("drop-oldest")
        times = [t for t, _ in sim.metrics.occupancy_series]
        assert times == sorted(times)
        fills = [f for _, f in sim.metrics.occupancy_series]
        assert all(0.0 <= f <= 1.0 for f in fills)
        assert sim.metrics.peak_occupancy == pytest.approx(max(fills))


class TestHeterogeneousConfig:
    def test_per_node_capacity_lengths_validated(self):
        cfg = SimulationConfig(buffer_capacity=(2, 3, 4))
        with pytest.raises(ValueError, match="3 entries"):
            cfg.validate_population(4)

    def test_capacity_and_tx_accessors(self):
        cfg = SimulationConfig(buffer_capacity=(2, 5), bundle_tx_time=(50.0, 200.0))
        assert cfg.capacity_for(0) == 2 and cfg.capacity_for(1) == 5
        assert cfg.capacities(2) == (2, 5)
        assert cfg.tx_time_for(0) == 50.0
        assert cfg.pair_tx_time(0, 1) == 200.0  # slower radio wins

    def test_scalar_accessors(self):
        cfg = SimulationConfig()
        assert cfg.capacity_for(7) == 10
        assert cfg.capacities(3) == (10, 10, 10)
        assert cfg.pair_tx_time(0, 1) == 100.0

    def test_invalid_values_rejected(self):
        with pytest.raises(ValueError):
            SimulationConfig(buffer_capacity=(1, 0))
        with pytest.raises(ValueError):
            SimulationConfig(bundle_tx_time=(100.0, -1.0))
        with pytest.raises(ValueError):
            SimulationConfig(buffer_capacity=())

    def test_heterogeneous_simulation_runs(self):
        rows = [(0.0, 650.0, 0, 1), (5_000.0, 5_650.0, 1, 2)]
        trace = ContactTrace.from_tuples(rows, 3, horizon=10_000.0)
        flows = [Flow(flow_id=0, source=0, destination=2, num_bundles=4)]
        from repro.core.protocols.registry import make_protocol_config

        sim = Simulation(
            trace,
            make_protocol_config("pure"),
            flows,
            config=SimulationConfig(
                buffer_capacity=(1, 3, 1), bundle_tx_time=(100.0, 100.0, 325.0)
            ),
            seed=0,
        )
        result = sim.run()
        assert sim.nodes[0].relay.capacity == 1
        assert sim.nodes[1].relay.capacity == 3
        # link (1, 2) runs at 325 s/bundle: a 650 s contact moves 2 bundles
        assert result.delivered == 2

    def test_per_node_tx_time_budget(self):
        """The slower radio caps the contact budget."""
        rows = [(0.0, 650.0, 0, 1)]
        trace = ContactTrace.from_tuples(rows, 2, horizon=2_000.0)
        flows = [Flow(flow_id=0, source=0, destination=1, num_bundles=6)]
        from repro.core.protocols.registry import make_protocol_config

        fast = Simulation(
            trace,
            make_protocol_config("pure"),
            flows,
            config=SimulationConfig(bundle_tx_time=100.0),
            seed=0,
        ).run()
        slow = Simulation(
            trace,
            make_protocol_config("pure"),
            flows,
            config=SimulationConfig(bundle_tx_time=(100.0, 300.0)),
            seed=0,
        ).run()
        assert fast.delivered == 6
        assert slow.delivered == 2  # floor(650 / 300)

    def test_mismatched_population_raises_at_init(self):
        rows = [(0.0, 100.0, 0, 1)]
        trace = ContactTrace.from_tuples(rows, 2, horizon=1_000.0)
        flows = [Flow(flow_id=0, source=0, destination=1, num_bundles=1)]
        from repro.core.protocols.registry import make_protocol_config

        with pytest.raises(ValueError, match="entries"):
            Simulation(
                trace,
                make_protocol_config("pure"),
                flows,
                config=SimulationConfig(buffer_capacity=(1, 2, 3)),
                seed=0,
            )


class TestECKeepsItsOwnRule:
    def test_ec_drops_reported_as_max_ec(self):
        node, sim = make_node(capacity=1, protocol="ec", drop_policy="drop-oldest")
        sb = node.protocol.accept(bundle(1, destination=5), ec=3, now=0.0)
        assert sb is not None
        newer = node.protocol.accept(bundle(2, destination=5), ec=1, now=1.0)
        assert newer is not None
        assert sim.evictions == [(0, bundle(1).bid, "max-ec")]

    def test_node_default_policy_is_reject(self):
        node = Node(0, 4)
        assert isinstance(node.drop_policy, RejectPolicy)
