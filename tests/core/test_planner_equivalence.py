"""Incremental vs reference session planner: bit-for-bit equivalence.

The incremental planner (epoch-invalidated cached candidate order + lazy
predicates) must pick exactly the (sender, receiver, bundle) sequence the
retained reference planner (filter-everything, sort, take the head) picks —
including the order probabilistic protocols consume their RNG streams in.
Random traces × protocols × drop policies drive both planners over the same
inputs; the pick logs and the final :class:`RunResult` must match exactly.
"""

from __future__ import annotations

import math

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.planner import IncrementalPlanner, ReferencePlanner, planner_names
from repro.core.protocols import make_protocol_config
from repro.core.simulation import Simulation, SimulationConfig
from repro.core.workload import Flow
from repro.mobility.contact import Contact, ContactTrace

POLICY_STRATEGY = st.sampled_from(("reject", "drop-oldest", "drop-random"))

#: Deterministic, stochastic (coins), knowledge-purging, intrinsic-eviction,
#: re-arming-TTL, and token-splitting protocols — every planner-relevant
#: behaviour class.
PROTOCOL_STRATEGY = st.sampled_from(
    [
        ("pure", {}),
        ("ttl", {"ttl": 400.0}),
        ("pq", {"p": 0.6, "q": 0.4, "anti_packets": True}),
        ("pq", {"p": 0.5, "q": 0.5}),
        ("immunity", {}),
        ("cumulative_immunity", {}),
        ("ec", {}),
        ("ec_ttl", {"ec_threshold": 2, "min_ec_evict": 1}),
        ("spray_wait", {"initial_tokens": 4}),
    ]
)


@st.composite
def planner_scenario(draw):
    """A random trace dense enough for overlapping multi-slot contacts."""
    num_nodes = draw(st.integers(3, 7))
    n_contacts = draw(st.integers(3, 30))
    contacts = []
    t = 0.0
    for _ in range(n_contacts):
        # short gaps + long durations → overlapping concurrent contacts,
        # the regime where mid-flight state changes stress the planner
        t += draw(st.floats(5.0, 900.0))
        dur = draw(st.floats(80.0, 900.0))
        a = draw(st.integers(0, num_nodes - 1))
        b = draw(st.integers(0, num_nodes - 1).filter(lambda x, a=a: x != a))
        start = draw(st.floats(0.0, t))
        contacts.append(Contact(start=start, end=start + dur, a=a, b=b))
    trace = ContactTrace(contacts, num_nodes, horizon=t + 5_000.0)
    source = draw(st.integers(0, num_nodes - 1))
    dest = draw(st.integers(0, num_nodes - 1).filter(lambda x: x != source))
    load = draw(st.integers(2, 10))
    capacity = draw(st.integers(1, 4))
    return trace, source, dest, load, capacity


def _run_with(planner, scenario, proto, policy, seed):
    trace, source, dest, load, capacity = scenario
    name, kwargs = proto
    flows = [Flow(flow_id=0, source=source, destination=dest, num_bundles=load)]
    sim = Simulation(
        trace,
        make_protocol_config(name, **kwargs),
        flows,
        config=SimulationConfig(buffer_capacity=capacity, drop_policy=policy),
        seed=seed,
        planner=planner,
    )
    picks = []
    sim.on_transfer_planned = lambda now, s, r, bid: picks.append((now, s, r, bid))
    return sim.run(), picks


class TestPlannerEquivalence:
    def test_registry_names(self):
        assert planner_names() == ("incremental", "reference")

    def test_factories_build_distinct_planners(self):
        assert IncrementalPlanner is not ReferencePlanner

    @settings(
        max_examples=120,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        scenario=planner_scenario(),
        proto=PROTOCOL_STRATEGY,
        policy=POLICY_STRATEGY,
        seed=st.integers(0, 3),
    )
    def test_identical_pick_sequence_and_result(self, scenario, proto, policy, seed):
        fast_result, fast_picks = _run_with("incremental", scenario, proto, policy, seed)
        slow_result, slow_picks = _run_with("reference", scenario, proto, policy, seed)
        # the planned (time, sender, receiver, bundle) sequence is identical…
        assert fast_picks == slow_picks
        # …and so is every metric of the run
        assert fast_result == slow_result
        assert math.isfinite(fast_result.end_time)

    def test_unknown_planner_rejected(self, campus_trace):
        flows = [Flow(flow_id=0, source=0, destination=1, num_bundles=1)]
        try:
            Simulation(
                campus_trace,
                make_protocol_config("pure"),
                flows,
                planner="quantum",
            )
        except ValueError as err:
            assert "unknown planner" in str(err)
        else:  # pragma: no cover - defensive
            raise AssertionError("expected ValueError for unknown planner")
