"""The documentation toolchain: protocol-docs generator + link checker."""

import pytest

from tools.check_docs import check_file, github_slug, heading_slugs, main as check_main
from tools.gen_protocol_docs import (
    SURROGATE_SUPPORTED,
    render_protocol_docs,
    run_cli,
)


class TestProtocolDocsGenerator:
    def test_renders_every_registered_protocol(self):
        from repro.core.protocols.registry import iter_registry

        text = render_protocol_docs()
        for name, cls in iter_registry():
            assert f"## `{name}` — {cls.__name__}" in text

    def test_deterministic(self):
        assert render_protocol_docs() == render_protocol_docs()

    def test_surrogate_markers_match_the_engine(self):
        """The *(surrogate-supported)* markers must track the surrogate's
        actual capability, not a hand-maintained list."""
        from repro.analytic.surrogate import SUPPORTED_PROTOCOLS

        assert set(SURROGATE_SUPPORTED) == set(SUPPORTED_PROTOCOLS)
        text = render_protocol_docs()
        assert text.count("*(surrogate-supported)*") == len(SURROGATE_SUPPORTED)

    def test_parameter_tables_present(self):
        text = render_protocol_docs()
        assert "| parameter | type | default |" in text
        assert "| `ttl` |" in text

    def test_check_mode_detects_staleness(self, tmp_path, capsys):
        out = tmp_path / "protocols.md"
        assert run_cli(["--out", str(out)]) == 0
        assert run_cli(["--check", "--out", str(out)]) == 0
        out.write_text(out.read_text() + "\ndrift\n")
        assert run_cli(["--check", "--out", str(out)]) == 1

    def test_check_mode_on_missing_file(self, tmp_path):
        assert run_cli(["--check", "--out", str(tmp_path / "absent.md")]) == 1

    def test_committed_reference_is_fresh(self):
        """The same invariant the CI docs job enforces."""
        assert run_cli(["--check"]) == 0


class TestGithubSlugs:
    @pytest.mark.parametrize(
        "heading,slug",
        [
            ("Simple Title", "simple-title"),
            ("The `ScenarioSpec` JSON reference", "the-scenariospec-json-reference"),
            ("What's *this*?", "whats-this"),
            ("engine=\"ode\" / engine=\"des\"", "engineode--enginedes"),
        ],
    )
    def test_slugification(self, heading, slug):
        assert github_slug(heading) == slug

    def test_heading_slugs_skip_code_fences(self, tmp_path):
        doc = tmp_path / "d.md"
        doc.write_text("# Real\n```sh\n# not a heading\n```\n## Also real\n")
        assert heading_slugs(doc) == {"real", "also-real"}


class TestLinkChecker:
    def write(self, tmp_path, name, text):
        path = tmp_path / name
        path.write_text(text)
        return path

    def test_resolving_links_pass(self, tmp_path):
        self.write(tmp_path, "other.md", "# Target Section\n")
        doc = self.write(
            tmp_path,
            "doc.md",
            "[ok](other.md) [anchor](other.md#target-section) "
            "[ext](https://example.com) [self](#local)\n\n# Local\n",
        )
        assert check_file(doc) == []

    def test_missing_file_reported(self, tmp_path):
        doc = self.write(tmp_path, "doc.md", "[bad](absent.md)\n")
        problems = check_file(doc)
        assert len(problems) == 1 and "missing file" in problems[0]

    def test_broken_anchor_reported(self, tmp_path):
        self.write(tmp_path, "other.md", "# Only Section\n")
        doc = self.write(tmp_path, "doc.md", "[bad](other.md#nope)\n")
        problems = check_file(doc)
        assert len(problems) == 1 and "anchor" in problems[0]

    def test_links_inside_code_fences_ignored(self, tmp_path):
        doc = self.write(tmp_path, "doc.md", "```md\n[bad](absent.md)\n```\n")
        assert check_file(doc) == []

    def test_cli_over_explicit_files(self, tmp_path, capsys):
        good = self.write(tmp_path, "good.md", "# A\n[x](#a)\n")
        assert check_main([str(good)]) == 0
        bad = self.write(tmp_path, "bad.md", "[x](gone.md)\n")
        assert check_main([str(bad)]) == 1
        assert "broken link" in capsys.readouterr().out

    def test_repo_docs_all_resolve(self):
        """The same invariant the CI docs job enforces on the real suite."""
        assert check_main([]) == 0
