"""Shared fixtures."""

from __future__ import annotations

import pytest

from repro.mobility.contact import ContactTrace
from repro.mobility.synthetic import CampusTraceConfig, CampusTraceGenerator


@pytest.fixture(scope="session")
def campus_trace() -> ContactTrace:
    """One shared campus trace (generation is cheap but not free)."""
    return CampusTraceGenerator(seed=7).generate()


@pytest.fixture(scope="session")
def small_campus_trace() -> ContactTrace:
    """A shorter, denser campus trace for fast integration tests."""
    cfg = CampusTraceConfig(
        horizon=100_000.0,
        mean_intercontact=2_000.0,
        pair_activity=0.6,
        duration_median=150.0,
    )
    return CampusTraceGenerator(cfg, seed=3).generate()
