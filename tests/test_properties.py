"""Cross-protocol invariants, checked property-based over random scenarios.

These are the safety net of the whole simulator: for random mini-traces,
workloads and protocols, the physical invariants of the system must hold —
no buffer over-capacity, no negative copies, delivery bookkeeping
consistent, determinism in the seed.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.protocols import make_protocol_config
from repro.core.simulation import Simulation, SimulationConfig
from repro.core.workload import Flow
from repro.faults import FaultSpec
from repro.mobility.contact import Contact, ContactTrace

PROTOCOL_STRATEGY = st.sampled_from(
    [
        ("pure", {}),
        ("pq", {"p": 0.5, "q": 0.5}),
        ("pq", {"p": 1.0, "q": 1.0, "anti_packets": True}),
        ("ttl", {"ttl": 400.0}),
        ("dynamic_ttl", {}),
        ("ec", {}),
        ("ec_ttl", {"ec_threshold": 2, "min_ec_evict": 1}),
        ("immunity", {}),
        ("cumulative_immunity", {}),
    ]
)


@st.composite
def random_scenario(draw):
    """A random mini contact trace plus a workload."""
    num_nodes = draw(st.integers(3, 6))
    n_contacts = draw(st.integers(1, 25))
    contacts = []
    t = 0.0
    for _ in range(n_contacts):
        t += draw(st.floats(10.0, 2_000.0))
        dur = draw(st.floats(50.0, 450.0))
        a = draw(st.integers(0, num_nodes - 1))
        b = draw(st.integers(0, num_nodes - 1).filter(lambda x, a=a: x != a))
        contacts.append(Contact(start=t, end=t + dur, a=a, b=b))
        t += dur
    trace = ContactTrace(contacts, num_nodes, horizon=t + 5_000.0)
    source = draw(st.integers(0, num_nodes - 1))
    dest = draw(st.integers(0, num_nodes - 1).filter(lambda x: x != source))
    load = draw(st.integers(1, 12))
    capacity = draw(st.integers(1, 6))
    return trace, source, dest, load, capacity


class TestSystemInvariants:
    @settings(
        max_examples=60,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(scenario=random_scenario(), proto=PROTOCOL_STRATEGY, seed=st.integers(0, 3))
    def test_invariants_hold(self, scenario, proto, seed):
        trace, source, dest, load, capacity = scenario
        name, kwargs = proto
        flows = [Flow(flow_id=0, source=source, destination=dest, num_bundles=load)]
        sim = Simulation(
            trace,
            make_protocol_config(name, **kwargs),
            flows,
            config=SimulationConfig(buffer_capacity=capacity),
            seed=seed,
        )
        result = sim.run()

        # delivery bookkeeping
        assert 0.0 <= result.delivery_ratio <= 1.0
        assert result.delivered == len(sim.metrics.deliveries)
        assert result.delivered <= load
        assert result.success == (result.delivered == load)
        assert (result.delay is None) == (not result.success)
        if result.delay is not None:
            assert 0.0 <= result.delay <= trace.horizon

        # destination state consistent
        dest_node = sim.nodes[dest]
        assert set(sim.metrics.deliveries) == set(dest_node.delivered)

        # buffers never exceed capacity; copies non-negative and consistent
        total_relay = 0
        for node in sim.nodes:
            assert len(node.relay) <= capacity
            total_relay += len(node.relay)
        for flow in flows:
            for seq in range(1, flow.num_bundles + 1):
                from repro.core.bundle import BundleId

                bid = BundleId(flow.flow_id, seq)
                live = sum(1 for n in sim.nodes if n.get_copy(bid) is not None)
                expected = live + (1 if bid in dest_node.delivered else 0)
                assert sim.metrics.copy_count(bid) == expected

        # metric ranges
        assert 0.0 <= result.buffer_occupancy <= 1.0 + 1e-9
        assert 0.0 <= result.duplication_rate <= 1.0 + 1e-9
        assert result.transmissions >= result.delivered
        assert result.end_time <= trace.horizon + 1e-9

    @settings(
        max_examples=20,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(scenario=random_scenario(), proto=PROTOCOL_STRATEGY)
    def test_deterministic_in_seed(self, scenario, proto):
        trace, source, dest, load, capacity = scenario
        name, kwargs = proto
        flows = [Flow(flow_id=0, source=source, destination=dest, num_bundles=load)]

        def run():
            return Simulation(
                trace,
                make_protocol_config(name, **kwargs),
                flows,
                config=SimulationConfig(buffer_capacity=capacity),
                seed=17,
            ).run()

        a, b = run(), run()
        assert a.delivery_ratio == b.delivery_ratio
        assert a.delay == b.delay
        assert a.transmissions == b.transmissions
        assert a.buffer_occupancy == b.buffer_occupancy
        assert a.duplication_rate == b.duplication_rate
        assert a.signaling == b.signaling

    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(scenario=random_scenario(), seed=st.integers(0, 3))
    def test_pq11_identical_to_pure(self, scenario, seed):
        """P-Q with P=Q=1 (no anti-packets) IS pure epidemic."""
        trace, source, dest, load, capacity = scenario
        flows = [Flow(flow_id=0, source=source, destination=dest, num_bundles=load)]

        def run(name):
            return Simulation(
                trace,
                make_protocol_config(name),
                flows,
                config=SimulationConfig(buffer_capacity=capacity),
                seed=seed,
            ).run()

        a, b = run("pq"), run("pure")
        assert a.delivery_ratio == b.delivery_ratio
        assert a.delay == b.delay
        assert a.transmissions == b.transmissions

    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(scenario=random_scenario(), seed=st.integers(0, 3))
    def test_immunity_never_hurts_delivery_vs_pure(self, scenario, seed):
        """Purging only removes *delivered* bundles, so immunity delivers at
        least as much as pure epidemic on identical inputs."""
        trace, source, dest, load, capacity = scenario
        flows = [Flow(flow_id=0, source=source, destination=dest, num_bundles=load)]

        def run(name):
            return Simulation(
                trace,
                make_protocol_config(name),
                flows,
                config=SimulationConfig(buffer_capacity=capacity),
                seed=seed,
            ).run()

        assert run("immunity").delivery_ratio >= run("pure").delivery_ratio - 1e-12


RANDOM_FAULTS = st.builds(
    FaultSpec,
    churn_rate=st.floats(1e-5, 2e-3),
    mean_downtime=st.floats(50.0, 3_000.0),
    state_loss=st.sampled_from(["none", "buffer", "knowledge", "all"]),
    contact_drop_prob=st.floats(0.0, 0.5),
    interrupt_prob=st.floats(0.0, 0.5),
    transfer_failure_prob=st.floats(0.0, 0.5),
)


class TestFaultInvariants:
    """The disruption model must not break the physics: copies stay
    conserved, delivered stays delivered, and a fault spec that injects
    nothing must be invisible down to the last bit."""

    @settings(
        max_examples=50,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        scenario=random_scenario(),
        proto=PROTOCOL_STRATEGY,
        faults=RANDOM_FAULTS,
        seed=st.integers(0, 3),
    )
    def test_invariants_hold_under_random_churn(self, scenario, proto, faults, seed):
        from repro.core.bundle import BundleId
        from repro.core.simulation import SimulationConfig as Config

        trace, source, dest, load, capacity = scenario
        name, kwargs = proto
        flows = [Flow(flow_id=0, source=source, destination=dest, num_bundles=load)]
        sim = Simulation(
            trace,
            make_protocol_config(name, **kwargs),
            flows,
            config=Config(buffer_capacity=capacity, faults=faults),
            seed=seed,
            fault_seed=seed + 100,
        )
        result = sim.run()

        # delivery bookkeeping survives crashes, wipes and severed links
        assert 0.0 <= result.delivery_ratio <= 1.0
        assert result.delivered == len(sim.metrics.deliveries)
        assert result.delivered <= load

        # delivered stays delivered: the destination's log is never wiped
        dest_node = sim.nodes[dest]
        assert set(sim.metrics.deliveries) == set(dest_node.delivered)

        # copy conservation: every copy is live, delivered, or accounted
        # as removed — never duplicated, never negative
        for node in sim.nodes:
            assert len(node.relay) <= capacity
        for flow in flows:
            for seq in range(1, flow.num_bundles + 1):
                bid = BundleId(flow.flow_id, seq)
                live = sum(1 for n in sim.nodes if n.get_copy(bid) is not None)
                expected = live + (1 if bid in dest_node.delivered else 0)
                assert sim.metrics.copy_count(bid) == expected

        # churn counters are coherent
        churn = result.churn
        assert churn["recoveries"] <= churn["crashes"]
        assert churn["downtime"] >= 0.0
        assert result.removals.get("crashed", 0) >= 0
        if not faults.wipes_knowledge:
            # re-infection is only possible after a knowledge wipe
            assert churn["reinfections"] == 0

    @settings(
        max_examples=20,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        scenario=random_scenario(),
        proto=PROTOCOL_STRATEGY,
        faults=RANDOM_FAULTS,
    )
    def test_faulted_runs_deterministic(self, scenario, proto, faults):
        from repro.core.simulation import SimulationConfig as Config

        trace, source, dest, load, capacity = scenario
        name, kwargs = proto
        flows = [Flow(flow_id=0, source=source, destination=dest, num_bundles=load)]

        def run():
            return Simulation(
                trace,
                make_protocol_config(name, **kwargs),
                flows,
                config=Config(buffer_capacity=capacity, faults=faults),
                seed=17,
                fault_seed=23,
            ).run()

        assert run() == run()

    @settings(
        max_examples=30,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(scenario=random_scenario(), proto=PROTOCOL_STRATEGY, seed=st.integers(0, 3))
    def test_zero_fault_spec_is_bit_identical_to_no_faults(
        self, scenario, proto, seed
    ):
        """Acceptance: an all-zero FaultSpec must not perturb one bit of
        any run — same RunResult, same serialised record."""
        from repro.core.simulation import SimulationConfig as Config

        trace, source, dest, load, capacity = scenario
        name, kwargs = proto
        flows = [Flow(flow_id=0, source=source, destination=dest, num_bundles=load)]

        def run(faults):
            return Simulation(
                trace,
                make_protocol_config(name, **kwargs),
                flows,
                config=Config(buffer_capacity=capacity, faults=faults),
                seed=seed,
            ).run()

        plain, zeroed = run(None), run(FaultSpec())
        assert plain == zeroed
        assert plain.to_dict() == zeroed.to_dict()
