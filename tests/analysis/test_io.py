"""CSV/JSON exports."""

import csv
import json
import math

import pytest

from repro.analysis.io import (
    read_series_csv,
    summarize_runs,
    write_runs_csv,
    write_series_csv,
    write_series_json,
)
from repro.core.results import Series, SeriesPoint, SweepResult
from tests.core.test_results import _run


def _series():
    return [
        Series("a", [SeriesPoint(5, 0.5, 3), SeriesPoint(10, math.nan, 0)]),
        Series("b", [SeriesPoint(5, 1.25, 3)]),
    ]


class TestRunsCsv:
    def test_one_row_per_run(self, tmp_path):
        sweep = SweepResult()
        sweep.runs = [_run("a", 5), _run("b", 10, delay=None, success=False)]
        path = tmp_path / "runs.csv"
        write_runs_csv(sweep, path)
        with open(path) as fh:
            rows = list(csv.DictReader(fh))
        assert len(rows) == 2
        assert rows[0]["protocol"] == "a"
        assert rows[1]["delay"] == ""
        assert "signal_summary_vector" in rows[0]

    def test_empty_sweep_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            write_runs_csv(SweepResult(), tmp_path / "x.csv")


class TestSeriesCsvRoundTrip:
    def test_round_trip_preserves_values_and_nan(self, tmp_path):
        path = tmp_path / "series.csv"
        write_series_csv(_series(), path)
        back = read_series_csv(path)
        assert [s.label for s in back] == ["a", "b"]
        a = back[0]
        assert a.points[0].value == 0.5
        assert math.isnan(a.points[1].value)
        assert a.points[0].n == 3

    def test_bad_header_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("x,y\n1,2\n")
        with pytest.raises(ValueError, match="header"):
            read_series_csv(path)

    def test_bad_row_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("series,load,value,n\na,notanumber,1.0,1\n")
        with pytest.raises(ValueError, match="line 2"):
            read_series_csv(path)

    def test_wrong_cell_count_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("series,load,value,n\na,5\n")
        with pytest.raises(ValueError, match="4 cells"):
            read_series_csv(path)


class TestSeriesJson:
    def test_document_shape(self, tmp_path):
        path = tmp_path / "series.json"
        write_series_json(_series(), path, meta={"figure": "fig09"})
        doc = json.loads(path.read_text())
        assert doc["meta"]["figure"] == "fig09"
        assert doc["series"][0]["label"] == "a"
        assert doc["series"][0]["points"][1]["value"] is None  # NaN -> null


class TestSummaries:
    def test_summarize_runs(self):
        sweep = SweepResult()
        sweep.runs = [_run("a", 5), _run("a", 10)]
        summary = summarize_runs(sweep)
        assert "a" in summary
        assert summary["a"]["runs"] == 2.0
