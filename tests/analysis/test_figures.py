"""Figure assembly."""

import pytest

from repro.analysis.figures import METRIC_ACCESSORS, build_figure
from tests.core.test_results import _run
from repro.core.results import SweepResult


@pytest.fixture
def sweep():
    s = SweepResult()
    s.runs = [
        _run("alpha", 5, delay=100.0),
        _run("alpha", 10, delay=200.0),
        _run("beta", 5, delay=50.0),
        _run("beta", 10, delay=70.0),
    ]
    return s


class TestBuildFigure:
    def test_all_series_by_default(self, sweep):
        fig = build_figure("f", "t", "delay", sweep)
        assert [s.label for s in fig.series] == ["alpha", "beta"]
        assert fig.metric == "delay"
        assert fig.y_label == "Average delay (s)"
        assert fig.x_label == "Load"

    def test_include_filters_and_orders(self, sweep):
        fig = build_figure("f", "t", "delay", sweep, include=["beta", "alpha"])
        assert [s.label for s in fig.series] == ["beta", "alpha"]

    def test_include_missing_label_raises(self, sweep):
        with pytest.raises(KeyError, match="not in sweep"):
            build_figure("f", "t", "delay", sweep, include=["gamma"])

    def test_unknown_metric_raises(self, sweep):
        with pytest.raises(KeyError, match="metric"):
            build_figure("f", "t", "latency", sweep)

    def test_relabel(self, sweep):
        fig = build_figure("f", "t", "delay", sweep, relabel={"alpha": "A"})
        assert [s.label for s in fig.series] == ["A", "beta"]

    def test_every_metric_has_axis_label(self, sweep):
        for metric in METRIC_ACCESSORS:
            fig = build_figure("f", "t", metric, sweep)
            assert fig.y_label

    def test_series_by_label(self, sweep):
        fig = build_figure("f", "t", "delay", sweep)
        assert fig.series_by_label("alpha").values == [100.0, 200.0]
        with pytest.raises(KeyError):
            fig.series_by_label("nope")

    def test_as_rows_long_format(self, sweep):
        rows = build_figure("fig99", "t", "delay", sweep).as_rows()
        assert len(rows) == 4
        assert rows[0] == {
            "figure": "fig99",
            "series": "alpha",
            "load": 5,
            "value": 100.0,
            "n": 1,
        }
