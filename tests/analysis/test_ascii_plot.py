"""ASCII rendering."""

import math

import pytest

from repro.analysis.ascii_plot import render_plot, render_series_table
from repro.core.results import Series, SeriesPoint


def _series(label, pairs):
    return Series(label=label, points=[SeriesPoint(ld, v, 1) for ld, v in pairs])


class TestRenderPlot:
    def test_contains_glyphs_legend_axes(self):
        out = render_plot(
            [_series("up", [(5, 0.1), (50, 0.9)]), _series("down", [(5, 0.9), (50, 0.1)])],
            y_label="ratio",
        )
        assert "o up" in out and "x down" in out
        assert "ratio" in out
        assert "(Load)" in out
        assert "o" in out.splitlines()[2]

    def test_skips_nan_points(self):
        out = render_plot([_series("s", [(5, 1.0), (10, math.nan), (15, 3.0)])])
        assert "o s" in out

    def test_all_nan_raises(self):
        with pytest.raises(ValueError, match="no finite"):
            render_plot([_series("s", [(5, math.nan)])])

    def test_flat_series_renders(self):
        out = render_plot([_series("flat", [(5, 1.0), (50, 1.0)])])
        assert "flat" in out

    def test_title_included(self):
        out = render_plot([_series("s", [(1, 1.0), (2, 2.0)])], title="My Figure")
        assert out.splitlines()[0] == "My Figure"

    def test_many_series_cycle_glyphs(self):
        series = [_series(f"s{i}", [(1, float(i)), (2, float(i + 1))]) for i in range(10)]
        out = render_plot(series)
        assert "% s5" not in out or True  # glyph cycling must not crash


class TestRenderSeriesTable:
    def test_aligned_values(self):
        out = render_series_table(
            [_series("a", [(5, 0.5), (10, 0.25)]), _series("bb", [(5, 1.0), (10, 0.75)])]
        )
        lines = out.splitlines()
        assert "5" in lines[0] and "10" in lines[0]
        assert lines[2].startswith("a ")
        assert "0.500" in lines[2]

    def test_nan_rendered_as_dash(self):
        out = render_series_table([_series("a", [(5, math.nan)])])
        assert "—" in out

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            render_series_table([])

    def test_mismatched_grids_raise(self):
        with pytest.raises(ValueError, match="mismatched"):
            render_series_table(
                [_series("a", [(5, 1.0)]), _series("b", [(10, 1.0)])]
            )

    def test_custom_format(self):
        out = render_series_table([_series("a", [(5, 123.456)])], value_fmt="{:.0f}")
        assert "123" in out and "123.5" not in out
