"""Paper tables."""

import pytest

from repro.analysis.tables import TABLE1_ROWS, build_table2, render_table1, render_table2
from repro.core.results import SweepResult
from tests.core.test_results import _run


class TestTable1:
    def test_static_rows(self):
        keys = [k for k, _ in TABLE1_ROWS]
        assert "Number of Nodes" in keys
        assert "Buffer Size" in keys
        assert len(TABLE1_ROWS) == 7

    def test_render(self):
        out = render_table1()
        assert "Random Waypoint" in out
        assert "Table I" in out


class TestTable2:
    def _sweeps(self):
        rwp = SweepResult()
        rwp.runs = [_run("ttl", 5, dr=0.25, buf=0.05, dup=0.14),
                    _run("imm", 5, dr=0.98, buf=0.72, dup=0.49)]
        trace = SweepResult()
        trace.runs = [_run("ttl", 5, dr=0.74, buf=0.11, dup=0.66),
                      _run("imm", 5, dr=0.95, buf=0.58, dup=0.82)]
        return rwp, trace

    def test_build_rows(self):
        rwp, trace = self._sweeps()
        rows = build_table2(rwp, trace)
        assert [r.protocol_label for r in rows] == ["ttl", "imm"]
        assert rows[0].delivery_rwp == pytest.approx(0.25)
        assert rows[0].delivery_trace == pytest.approx(0.74)
        assert rows[1].duplication_trace == pytest.approx(0.82)

    def test_explicit_protocol_order(self):
        rwp, trace = self._sweeps()
        rows = build_table2(rwp, trace, protocols=["imm", "ttl"])
        assert [r.protocol_label for r in rows] == ["imm", "ttl"]

    def test_missing_protocol_raises(self):
        rwp, trace = self._sweeps()
        with pytest.raises(ValueError):
            build_table2(rwp, trace, protocols=["nope"])

    def test_render_percentages(self):
        rwp, trace = self._sweeps()
        out = render_table2(build_table2(rwp, trace))
        assert "Table II" in out
        assert "25.0" in out  # delivery rwp of ttl as a percent
        assert "82.0" in out

    def test_render_empty_raises(self):
        with pytest.raises(ValueError):
            render_table2([])

    def test_as_dict(self):
        rwp, trace = self._sweeps()
        d = build_table2(rwp, trace)[0].as_dict()
        assert d["protocol"] == "ttl"
        assert d["delivery_rwp_pct"] == pytest.approx(25.0)
