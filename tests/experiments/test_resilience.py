"""The churn-resilience study and its table."""

from __future__ import annotations

import pytest

from repro.analysis.tables import build_resilience_table, render_resilience_table
from repro.core.executors import ParallelExecutor
from repro.core.simulation import SimulationConfig
from repro.core.sweep import SweepConfig, run_sweep
from repro.experiments import get_experiment
from repro.experiments.resilience import (
    ResilienceConfig,
    ResilienceStudy,
    churn_rate_label,
    run_resilience_study,
)
from repro.scenarios import MobilitySpec, ProtocolSpec

SMALL = ResilienceConfig(
    churn_rates=(0.0, 2e-4),
    state_loss_modes=("none", "all"),
    mean_downtime=1500.0,
    protocols=(
        ProtocolSpec("pure"),
        ProtocolSpec("pq", {"p": 1.0, "q": 1.0, "anti_packets": True}),
        ProtocolSpec("immunity"),
    ),
    mobility=MobilitySpec(
        "interval", {"num_nodes": 12, "max_encounters_per_node": 20, "max_interval": 400.0}
    ),
    loads=(4, 8),
    replications=2,
    seed=5,
)


@pytest.fixture(scope="module")
def study() -> ResilienceStudy:
    return run_resilience_study(SMALL)


class TestStudy:
    def test_grid_is_complete(self, study):
        assert set(study.grid) == {
            (churn_rate_label(r), m)
            for r in SMALL.churn_rates
            for m in SMALL.state_loss_modes
        }
        for sweep in study.grid.values():
            assert len(sweep) == 12  # 3 protocols × 2 loads × 2 reps

    def test_zero_churn_row_reproduces_unfaulted_sweep_exactly(self, study):
        """Acceptance: the baseline row is the exact fault-free
        configuration — run-for-run equality with a plain sweep."""
        baseline = run_sweep(
            SMALL.mobility.build(seed=SMALL.seed),
            [p.build() for p in SMALL.protocols],
            SweepConfig(
                loads=SMALL.loads,
                replications=SMALL.replications,
                master_seed=SMALL.seed,
                sim=SimulationConfig(),
            ),
        )
        for mode in SMALL.state_loss_modes:
            assert study.sweep(0.0, mode).runs == baseline.runs

    def test_state_loss_measurably_degrades_delivery(self, study):
        """Acceptance: state-preserving and state-losing reboots separate
        for every protocol family at the faulted churn rate."""
        for label in study.sweep(0.0, "none").protocols():
            keep = study.sweep(2e-4, "none").protocol_means(label)
            lose = study.sweep(2e-4, "all").protocol_means(label)
            assert lose["delivery_ratio"] < keep["delivery_ratio"]

    def test_churn_counters_populated_only_when_faulted(self, study):
        """Faulted cells report churn accounting; the zero-churn row keeps
        the fault-free result shape (no churn block at all)."""
        for mode in SMALL.state_loss_modes:
            assert all(r.churn == {} for r in study.sweep(0.0, mode).runs)
            faulted = study.sweep(2e-4, mode).runs
            assert all(r.churn for r in faulted)
            assert any(r.churn["crashes"] > 0 for r in faulted)

    def test_parallel_execution_is_identical(self, study):
        parallel = run_resilience_study(SMALL, executor=ParallelExecutor(jobs=2))
        for key, sweep in study.grid.items():
            assert parallel.grid[key].runs == sweep.runs

    def test_progress_reports_every_cell(self):
        lines = []
        run_resilience_study(SMALL, progress=lines.append)
        total = len(SMALL.churn_rates) * len(SMALL.state_loss_modes) * 12
        assert len(lines) == total
        assert "churn=" in lines[0] and "state_loss=" in lines[0]


class TestTable:
    def test_rows_cover_grid(self, study):
        rows = build_resilience_table(study)
        assert len(rows) == len(SMALL.churn_rates) * len(SMALL.state_loss_modes) * 3
        assert rows[0].churn_rate == "0" and rows[0].state_loss == "none"

    def test_render_contains_all_axes(self, study):
        text = render_resilience_table(study)
        for mode in SMALL.state_loss_modes:
            assert mode in text
        assert "0.0002" in text
        assert "Pure epidemic" in text
        assert "Epidemic with immunity" in text


class TestRegistry:
    def test_experiment_registered(self):
        exp = get_experiment("resilience")
        assert exp.kind == "table"
        assert "state-loss" in exp.description

    def test_config_validation(self):
        with pytest.raises(ValueError, match="churn_rates"):
            ResilienceConfig(churn_rates=())
        with pytest.raises(ValueError, match="state-loss"):
            ResilienceConfig(state_loss_modes=("vaporise",))
        with pytest.raises(ValueError, match="mean_downtime"):
            ResilienceConfig(mean_downtime=0.0)
        with pytest.raises(ValueError):
            ResilienceConfig(churn_rates=(-1e-4,))
