"""Experiment runner: scales, mobility caching, sweep families."""

import pytest

from repro.experiments.runner import (
    MOBILITY_PRESETS,
    PROTOCOL_FAMILIES,
    SCALES,
    SWEEP_FAMILIES,
    ExperimentRunner,
    Scale,
    baseline_protocols,
    enhanced_protocols,
    ttl_family,
)
from repro.scenarios import MobilitySpec, ScenarioSpec, register_mobility


class TestScales:
    def test_registered_scales(self):
        assert set(SCALES) == {"smoke", "quick", "paper"}
        assert SCALES["paper"].loads == tuple(range(5, 55, 5))
        assert SCALES["paper"].replications == 10
        assert SCALES["smoke"].replications == 1


class TestProtocolFamilies:
    def test_baselines_match_paper_parameterisation(self):
        labels = [p.label for p in baseline_protocols()]
        assert "P-Q epidemic (P=1, Q=1)" in labels
        assert "Epidemic with TTL=300" in labels
        assert len(labels) == 4

    def test_enhanced_pairs(self):
        labels = [p.label for p in enhanced_protocols()]
        assert len(labels) == 6
        assert any("dynamic TTL" in label for label in labels)
        assert any("cumulative" in label for label in labels)

    def test_ttl_family(self):
        assert len(ttl_family()) == 2


class TestRunner:
    @pytest.fixture(scope="class")
    def runner(self):
        return ExperimentRunner(scale="smoke", seed=3)

    def test_scale_by_name_or_object(self):
        assert ExperimentRunner(scale="smoke").scale.name == "smoke"
        custom = Scale("tiny", (5,), 1)
        assert ExperimentRunner(scale=custom).scale is custom

    def test_traces_cached(self, runner):
        assert runner.trace("campus") is runner.trace("campus")
        assert runner.trace("rwp") is runner.trace("rwp")

    def test_trace_kinds(self, runner):
        assert runner.trace("campus").num_nodes == 12
        assert runner.trace("interval400").num_nodes == 20
        assert runner.trace("interval2000").num_nodes == 20
        with pytest.raises(KeyError):
            runner.trace("mars")

    def test_sweep_cached(self, runner):
        a = runner.sweep("ttl_interval400")
        assert runner.sweep("ttl_interval400") is a

    def test_sweep_grid_matches_scale(self, runner):
        sweep = runner.sweep("ttl_interval400")
        # 2 protocols x 2 loads x 1 replication
        assert len(sweep) == 4

    def test_unknown_family(self, runner):
        with pytest.raises(KeyError, match="family"):
            runner.sweep("bogus")

    def test_progress_forwarded(self):
        lines = []
        r = ExperimentRunner(scale="smoke", seed=1, progress=lines.append)
        r.sweep("ttl_interval400")
        assert lines


class TestDeclarativeTables:
    def test_every_family_resolves(self):
        for mobility_kind, protocol_family in SWEEP_FAMILIES.values():
            assert mobility_kind in MOBILITY_PRESETS
            assert protocol_family in PROTOCOL_FAMILIES

    def test_scenario_spec_for_family(self):
        runner = ExperimentRunner(scale="smoke", seed=3)
        spec = runner.scenario("baselines_trace")
        assert isinstance(spec, ScenarioSpec)
        assert spec.mobility == MobilitySpec("campus")
        assert spec.workload.loads == SCALES["smoke"].loads
        assert spec.seed == 3
        # the spec round-trips, so every built-in family is file-shippable
        assert ScenarioSpec.from_json(spec.to_json()) == spec

    def test_scenario_unknown_family(self):
        with pytest.raises(KeyError, match="family"):
            ExperimentRunner(scale="smoke").scenario("bogus")

    def test_registered_mobility_is_first_class(self):
        from repro.mobility.contact import ContactTrace

        @register_mobility("runner-test-blip")
        def _blip(*, seed: int = 0) -> ContactTrace:
            return ContactTrace.from_tuples(
                [(10.0 + seed, 60.0 + seed, 0, 1)], 2, horizon=1_000.0
            )

        runner = ExperimentRunner(scale="smoke", seed=5)
        trace = runner.trace("runner-test-blip")
        assert trace[0].start == 15.0
        assert runner.trace("runner-test-blip") is trace  # cached
