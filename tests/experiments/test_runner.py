"""Experiment runner: scales, mobility caching, sweep families."""

import pytest

from repro.experiments.runner import (
    SCALES,
    ExperimentRunner,
    Scale,
    baseline_protocols,
    enhanced_protocols,
    ttl_family,
)


class TestScales:
    def test_registered_scales(self):
        assert set(SCALES) == {"smoke", "quick", "paper"}
        assert SCALES["paper"].loads == tuple(range(5, 55, 5))
        assert SCALES["paper"].replications == 10
        assert SCALES["smoke"].replications == 1


class TestProtocolFamilies:
    def test_baselines_match_paper_parameterisation(self):
        labels = [p.label for p in baseline_protocols()]
        assert "P-Q epidemic (P=1, Q=1)" in labels
        assert "Epidemic with TTL=300" in labels
        assert len(labels) == 4

    def test_enhanced_pairs(self):
        labels = [p.label for p in enhanced_protocols()]
        assert len(labels) == 6
        assert any("dynamic TTL" in label for label in labels)
        assert any("cumulative" in label for label in labels)

    def test_ttl_family(self):
        assert len(ttl_family()) == 2


class TestRunner:
    @pytest.fixture(scope="class")
    def runner(self):
        return ExperimentRunner(scale="smoke", seed=3)

    def test_scale_by_name_or_object(self):
        assert ExperimentRunner(scale="smoke").scale.name == "smoke"
        custom = Scale("tiny", (5,), 1)
        assert ExperimentRunner(scale=custom).scale is custom

    def test_traces_cached(self, runner):
        assert runner.trace("campus") is runner.trace("campus")
        assert runner.trace("rwp") is runner.trace("rwp")

    def test_trace_kinds(self, runner):
        assert runner.trace("campus").num_nodes == 12
        assert runner.trace("interval400").num_nodes == 20
        assert runner.trace("interval2000").num_nodes == 20
        with pytest.raises(KeyError):
            runner.trace("mars")

    def test_sweep_cached(self, runner):
        a = runner.sweep("ttl_interval400")
        assert runner.sweep("ttl_interval400") is a

    def test_sweep_grid_matches_scale(self, runner):
        sweep = runner.sweep("ttl_interval400")
        # 2 protocols x 2 loads x 1 replication
        assert len(sweep) == 4

    def test_unknown_family(self, runner):
        with pytest.raises(KeyError, match="family"):
            runner.sweep("bogus")

    def test_progress_forwarded(self):
        lines = []
        r = ExperimentRunner(scale="smoke", seed=1, progress=lines.append)
        r.sweep("ttl_interval400")
        assert lines
