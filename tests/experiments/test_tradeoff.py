"""The occupancy/delivery tradeoff study and its table."""

from __future__ import annotations

import pytest

from repro.analysis.tables import build_tradeoff_table, render_tradeoff_table
from repro.core.executors import ParallelExecutor
from repro.core.simulation import SimulationConfig
from repro.core.sweep import SweepConfig, run_sweep
from repro.experiments import get_experiment
from repro.experiments.tradeoff import (
    TradeoffConfig,
    TradeoffStudy,
    capacity_label,
    run_tradeoff_study,
)
from repro.scenarios import MobilitySpec, ProtocolSpec

SMALL = TradeoffConfig(
    capacities=(2, 4, (2, 2, 2, 2, 6, 6, 6, 6)),
    policies=("reject", "drop-oldest", "drop-random"),
    protocols=(ProtocolSpec("pure"), ProtocolSpec("ttl", {"ttl": 400.0})),
    mobility=MobilitySpec(
        "interval", {"num_nodes": 8, "max_encounters_per_node": 12, "max_interval": 400.0}
    ),
    loads=(4, 8),
    replications=2,
    seed=5,
)


@pytest.fixture(scope="module")
def study() -> TradeoffStudy:
    return run_tradeoff_study(SMALL)


class TestStudy:
    def test_grid_is_complete(self, study):
        assert set(study.grid) == {
            (capacity_label(c), p) for c in SMALL.capacities for p in SMALL.policies
        }
        for sweep in study.grid.values():
            assert len(sweep) == 8  # 2 protocols × 2 loads × 2 reps

    def test_reject_column_reproduces_seed_scenario_exactly(self, study):
        """Acceptance: 'reject' is behaviourally identical to the historical
        refuse-when-full configuration — run-for-run equality."""
        for capacity in SMALL.capacities:
            baseline = run_sweep(
                SMALL.mobility.build(seed=SMALL.seed),
                [p.build() for p in SMALL.protocols],
                SweepConfig(
                    loads=SMALL.loads,
                    replications=SMALL.replications,
                    master_seed=SMALL.seed,
                    sim=SimulationConfig(buffer_capacity=capacity),
                ),
            )
            assert study.sweep(capacity, "reject").runs == baseline.runs

    def test_common_random_numbers_across_grid(self, study):
        """Every (capacity, policy) cell sees the same workload draw."""
        endpoints = {
            key: [(r.source, r.destination) for r in sweep.runs]
            for key, sweep in study.grid.items()
        }
        baseline = next(iter(endpoints.values()))
        assert all(e == baseline for e in endpoints.values())

    def test_eviction_policies_drop_under_contention(self, study):
        drops = sum(
            sum(r.drops.values())
            for (cap, pol), sweep in study.grid.items()
            if pol == "drop-oldest"
            for r in sweep.runs
        )
        assert drops > 0

    def test_parallel_execution_is_identical(self, study):
        parallel = run_tradeoff_study(SMALL, executor=ParallelExecutor(jobs=2))
        for key, sweep in study.grid.items():
            assert parallel.grid[key].runs == sweep.runs

    def test_progress_reports_every_cell(self):
        lines = []
        run_tradeoff_study(SMALL, progress=lines.append)
        total = len(SMALL.capacities) * len(SMALL.policies) * 8
        assert len(lines) == total
        assert "policy=" in lines[0] and "capacity=" in lines[0]

    def test_cell_means_expose_tradeoff_metrics(self, study):
        means = study.cell_means(2, "drop-oldest")
        for metrics in means.values():
            assert {"delivery_ratio", "buffer_occupancy", "peak_occupancy", "drops"} <= set(
                metrics
            )


class TestTable:
    def test_rows_cover_grid(self, study):
        rows = build_tradeoff_table(study)
        assert len(rows) == len(SMALL.capacities) * len(SMALL.policies) * 2
        assert rows[0].capacity == "2" and rows[0].policy == "reject"
        het = [r for r in rows if r.capacity.startswith("per-node[")]
        assert het  # heterogeneous capacities are first-class rows

    def test_render_contains_all_axes(self, study):
        text = render_tradeoff_table(study)
        for policy in SMALL.policies:
            assert policy in text
        assert "per-node[2,2,2,2,6,6,6,6]" in text
        assert "Pure epidemic" in text
        assert "Epidemic with TTL=400" in text


class TestRegistry:
    def test_experiment_registered(self):
        exp = get_experiment("tradeoff")
        assert exp.kind == "table"
        assert "drop policy" in exp.description

    def test_config_validation(self):
        with pytest.raises(ValueError, match="capacities"):
            TradeoffConfig(capacities=())
        with pytest.raises(ValueError, match="unknown drop policy"):
            TradeoffConfig(policies=("fifo",))
        with pytest.raises(ValueError):
            TradeoffConfig(capacities=(0,))
