"""Experiment registry: completeness and buildability."""

import pytest

from repro.analysis.figures import FigureData
from repro.experiments import EXPERIMENT_IDS, ExperimentRunner, get_experiment, iter_experiments

EXPECTED_IDS = {
    "table1",
    "table2",
    "tradeoff",
    "resilience",
    *(f"fig{n:02d}" for n in range(7, 21)),
}


class TestCompleteness:
    def test_every_paper_artifact_registered(self):
        assert set(EXPERIMENT_IDS) == EXPECTED_IDS

    def test_iter_in_id_order(self):
        ids = [e.exp_id for e in iter_experiments()]
        assert ids == sorted(ids)

    def test_get_unknown_raises_with_catalogue(self):
        with pytest.raises(KeyError, match="known:"):
            get_experiment("fig99")

    def test_descriptions_present(self):
        for exp in iter_experiments():
            assert exp.title
            assert exp.description
            assert exp.kind in ("figure", "table")


@pytest.fixture(scope="module")
def runner():
    return ExperimentRunner(scale="smoke", seed=5)


class TestBuildAll:
    @pytest.mark.parametrize("exp_id", sorted(EXPECTED_IDS))
    def test_builds_at_smoke_scale(self, runner, exp_id):
        exp = get_experiment(exp_id)
        artefact = exp.build(runner)
        if exp.kind == "figure":
            assert isinstance(artefact, FigureData)
            assert artefact.figure_id == exp_id
            assert artefact.series, f"{exp_id} produced no curves"
            for s in artefact.series:
                assert s.points, f"{exp_id}/{s.label} has no points"
        else:
            assert isinstance(artefact, str)
            assert "Table" in artefact

    def test_fig07_plots_three_baselines(self, runner):
        fig = get_experiment("fig07").build(runner)
        assert len(fig.series) == 3

    def test_fig08_plots_four_baselines(self, runner):
        fig = get_experiment("fig08").build(runner)
        assert len(fig.series) == 4

    def test_fig13_compares_ec_and_ttl(self, runner):
        fig = get_experiment("fig13").build(runner)
        assert {s.label for s in fig.series} == {
            "Epidemic with EC",
            "Epidemic with TTL=300",
        }

    def test_fig14_two_interval_curves(self, runner):
        fig = get_experiment("fig14").build(runner)
        assert {s.label for s in fig.series} == {
            "Interval time = 400",
            "Interval time = 2000",
        }

    def test_fig15_includes_interval_scenario_curves(self, runner):
        fig = get_experiment("fig15").build(runner)
        labels = [s.label for s in fig.series]
        assert len(labels) == 10  # 6 protocols + 2 TTL-variants x 2 scenarios
        assert any("interval=400" in label for label in labels)
        assert any("interval=2000" in label for label in labels)

    def test_fig16_six_protocol_curves(self, runner):
        fig = get_experiment("fig16").build(runner)
        assert len(fig.series) == 6

    def test_table2_lists_six_protocols(self, runner):
        table = get_experiment("table2").build(runner)
        for fragment in ("TTL=300", "dynamic TTL", "EC", "EC+TTL", "immunity", "cumulative"):
            assert fragment in table
