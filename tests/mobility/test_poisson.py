"""Homogeneous Poisson contact generation (the analytic model's twin)."""

import pytest

from repro.mobility.poisson import PoissonContactConfig, generate_poisson_trace


class TestConfigValidation:
    def test_defaults_valid(self):
        cfg = PoissonContactConfig()
        assert cfg.num_nodes == 40

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_nodes": 1},
            {"beta": 0.0},
            {"beta": -1e-4},
            {"horizon": 0.0},
            {"duration": 0.0},
        ],
    )
    def test_rejects_bad_parameters(self, kwargs):
        with pytest.raises(ValueError):
            PoissonContactConfig(**kwargs)


class TestGeneratedTrace:
    CFG = PoissonContactConfig(num_nodes=12, beta=1e-4, horizon=30_000.0, duration=30.0)

    def test_shape_and_bounds(self):
        trace = generate_poisson_trace(self.CFG, seed=3)
        assert trace.num_nodes == 12
        assert trace.horizon == pytest.approx(30_000.0)
        assert len(trace) > 0
        for c in trace:
            assert 0.0 <= c.start < c.end <= 30_000.0
            assert c.a != c.b

    def test_per_pair_windows_disjoint(self):
        trace = generate_poisson_trace(self.CFG, seed=5)
        by_pair: dict[tuple[int, int], list[tuple[float, float]]] = {}
        for c in trace:
            by_pair.setdefault((c.a, c.b), []).append((c.start, c.end))
        for windows in by_pair.values():
            windows.sort()
            for (_, end), (start, _) in zip(windows, windows[1:]):
                assert start >= end

    def test_deterministic_per_seed(self):
        def flat(trace):
            return [(c.start, c.end, c.a, c.b) for c in trace]

        a = generate_poisson_trace(self.CFG, seed=9)
        b = generate_poisson_trace(self.CFG, seed=9)
        c = generate_poisson_trace(self.CFG, seed=10)
        assert flat(a) == flat(b)
        assert flat(a) != flat(c)

    def test_empirical_rate_matches_beta(self):
        """Meetings per pair per second concentrates around β."""
        cfg = PoissonContactConfig(
            num_nodes=30, beta=2e-4, horizon=50_000.0, duration=10.0
        )
        trace = generate_poisson_trace(cfg, seed=1)
        pairs = 30 * 29 / 2
        rate = len(trace) / (pairs * cfg.horizon)
        assert rate == pytest.approx(2e-4, rel=0.05)
