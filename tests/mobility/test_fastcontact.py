"""Vectorized contact extraction: equivalence with the exact scalar engine."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.protocols.registry import make_protocol_config
from repro.core.simulation import Simulation
from repro.core.workload import Flow
from repro.mobility.fastcontact import extract_contacts_fast
from repro.mobility.rwp import (
    ClassicRWP,
    ClassicRWPConfig,
    RWPConfig,
    SubscriberPointRWP,
)
from repro.mobility.trajectory import (
    CONTACT_ENGINES,
    Segment,
    Trajectory,
    contacts_from_trajectories,
)
from repro.scenarios import MobilitySpec


def _pause(t0, t1, x, y):
    return Segment(t0, t1, x, y, x, y)


def rows(trace):
    return [(c.start, c.end, c.a, c.b) for c in trace]


def both_engines(trajectories, comm_range, **kwargs):
    exact = contacts_from_trajectories(
        trajectories, comm_range, engine="exact", **kwargs
    )
    fast = contacts_from_trajectories(trajectories, comm_range, engine="fast", **kwargs)
    return exact, fast


def assert_equivalent(exact, fast, *, tolerance=1e-6):
    """Same pairs, same window counts, windows within ``tolerance`` seconds."""
    assert len(exact) == len(fast)
    assert [c.pair for c in exact] == [c.pair for c in fast]
    for ce, cf in zip(exact, fast, strict=True):
        assert abs(ce.start - cf.start) <= tolerance
        assert abs(ce.end - cf.end) <= tolerance


class TestEngineDispatch:
    def test_unknown_engine_rejected(self):
        t = [Trajectory(0, [_pause(0, 10, 0, 0)]), Trajectory(1, [_pause(0, 10, 1, 0)])]
        with pytest.raises(ValueError, match="unknown contact engine"):
            contacts_from_trajectories(t, 5.0, engine="sampling")

    def test_engines_tuple_stable(self):
        assert CONTACT_ENGINES == ("fast", "exact")

    def test_bad_comm_range_rejected_by_both(self):
        t = [Trajectory(0, [_pause(0, 10, 0, 0)]), Trajectory(1, [_pause(0, 10, 1, 0)])]
        for engine in CONTACT_ENGINES:
            with pytest.raises(ValueError, match="comm_range"):
                contacts_from_trajectories(t, 0.0, engine=engine)

    def test_bad_node_ids_rejected_by_both(self):
        t = [Trajectory(0, [_pause(0, 10, 0, 0)]), Trajectory(5, [_pause(0, 10, 1, 0)])]
        for engine in CONTACT_ENGINES:
            with pytest.raises(ValueError, match="node ids"):
                contacts_from_trajectories(t, 5.0, engine=engine)


class TestHandcraftedEquivalence:
    def test_static_pair_in_range(self):
        t = [
            Trajectory(0, [_pause(0.0, 400.0, 0.0, 0.0)]),
            Trajectory(1, [_pause(50.0, 300.0, 3.0, 4.0)]),
        ]
        exact, fast = both_engines(t, 6.0, min_duration=1.0, contact_cap=None)
        assert rows(fast) == [(50.0, 300.0, 0, 1)]
        assert rows(exact) == rows(fast)

    def test_crossing_paths(self):
        t = [
            Trajectory(0, [Segment(0.0, 100.0, 0.0, 0.0, 100.0, 0.0)]),
            Trajectory(1, [Segment(0.0, 100.0, 100.0, 0.0, 0.0, 0.0)]),
        ]
        exact, fast = both_engines(t, 10.0, contact_cap=None, min_duration=0.0)
        assert rows(exact) == rows(fast)
        assert len(fast) == 1

    def test_far_apart_nodes_never_meet(self):
        t = [
            Trajectory(0, [_pause(0.0, 1000.0, 0.0, 0.0)]),
            Trajectory(1, [_pause(0.0, 1000.0, 900.0, 900.0)]),
        ]
        exact, fast = both_engines(t, 25.0)
        assert rows(exact) == rows(fast) == []

    def test_disjoint_time_spans(self):
        t = [
            Trajectory(0, [_pause(0.0, 100.0, 0.0, 0.0)]),
            Trajectory(1, [_pause(200.0, 300.0, 1.0, 0.0)]),
        ]
        exact, fast = both_engines(t, 25.0, min_duration=0.0)
        assert rows(exact) == rows(fast) == []

    def test_contact_cap_and_min_duration(self):
        t = [
            Trajectory(0, [_pause(0.0, 2000.0, 0.0, 0.0)]),
            Trajectory(1, [_pause(0.0, 2000.0, 1.0, 0.0)]),
        ]
        exact, fast = both_engines(t, 5.0, contact_cap=500.0, min_duration=1.0)
        assert rows(fast) == [(0.0, 500.0, 0, 1)]
        assert rows(exact) == rows(fast)

    def test_repeated_meetings_merge_identically(self):
        # node 1 oscillates: enters and leaves node 0's range repeatedly
        segs = []
        t = 0.0
        x = 0.0
        for _ in range(6):
            segs.append(Segment(t, t + 50.0, x, 0.0, 150.0 - x, 0.0))
            t += 50.0
            x = 150.0 - x
        t_list = [
            Trajectory(0, [_pause(0.0, 300.0, 95.0, 0.0)]),
            Trajectory(1, segs),
        ]
        exact, fast = both_engines(t_list, 20.0, contact_cap=None, min_duration=0.0)
        assert rows(exact) == rows(fast)
        assert len(fast) >= 2

    def test_horizon_forwarded(self):
        t = [
            Trajectory(0, [_pause(0.0, 100.0, 0.0, 0.0)]),
            Trajectory(1, [_pause(0.0, 100.0, 1.0, 0.0)]),
        ]
        exact, fast = both_engines(t, 5.0, horizon=5_000.0)
        assert exact.horizon == fast.horizon == 5_000.0

    def test_cell_size_knob_does_not_change_results(self):
        cfg = RWPConfig(num_nodes=8, horizon=20_000.0)
        trajs = SubscriberPointRWP(cfg, seed=11).generate_trajectories()
        base = extract_contacts_fast(trajs, cfg.comm_range, horizon=cfg.horizon)
        for cell in (7.5, 40.0, 400.0):
            alt = extract_contacts_fast(
                trajs, cfg.comm_range, horizon=cfg.horizon, cell_size=cell
            )
            assert rows(alt) == rows(base)


# ---------------------------------------------------------------------------
# hypothesis: random trajectory sets

coords = st.floats(0.0, 300.0, allow_nan=False)
durations = st.floats(0.5, 400.0, allow_nan=False)


@st.composite
def trajectory_sets(draw):
    """2-5 nodes, each a random mix of pauses and moves from waypoints."""
    num_nodes = draw(st.integers(2, 5))
    trajectories = []
    for node in range(num_nodes):
        num_segments = draw(st.integers(1, 6))
        t = 0.0
        x, y = draw(coords), draw(coords)
        segments = []
        for _ in range(num_segments):
            dur = draw(durations)
            if draw(st.booleans()):  # pause
                nx, ny = x, y
            else:  # move to a fresh waypoint
                nx, ny = draw(coords), draw(coords)
            segments.append(Segment(t, t + dur, x, y, nx, ny))
            t += dur
            x, y = nx, ny
        trajectories.append(Trajectory(node, segments))
    return trajectories


@given(trajectory_sets(), st.sampled_from([5.0, 25.0, 80.0]))
@settings(max_examples=80, deadline=None)
def test_property_engines_produce_identical_traces(trajectories, comm_range):
    exact, fast = both_engines(
        trajectories, comm_range, contact_cap=500.0, min_duration=1.0
    )
    assert_equivalent(exact, fast, tolerance=1e-6)
    # the implementations promise more than the 1e-6 contract: bit-identity
    assert rows(exact) == rows(fast)
    assert exact.horizon == fast.horizon


@given(trajectory_sets())
@settings(max_examples=15, deadline=None)
def test_property_identical_downstream_run_results(trajectories):
    exact, fast = both_engines(
        trajectories, 40.0, contact_cap=500.0, min_duration=1.0, name="hyp"
    )
    flows = [Flow(flow_id=0, source=0, destination=len(trajectories) - 1, num_bundles=3)]
    result_exact = Simulation(exact, make_protocol_config("pq"), flows, seed=3).run()
    result_fast = Simulation(fast, make_protocol_config("pq"), flows, seed=3).run()
    assert result_exact == result_fast


# ---------------------------------------------------------------------------
# seeded RWP scenarios end-to-end

class TestSeededRWPScenarios:
    def test_subscriber_rwp_trace_equivalence(self):
        base = dict(num_nodes=10, horizon=60_000.0)
        exact = SubscriberPointRWP(RWPConfig(engine="exact", **base), seed=7).generate()
        fast = SubscriberPointRWP(RWPConfig(engine="fast", **base), seed=7).generate()
        assert_equivalent(exact, fast)
        assert rows(exact) == rows(fast)

    def test_subscriber_rwp_full_horizon_equivalence(self):
        # the paper's full 600,000 s horizon — long spans stress the
        # broad phase's time quantization
        base = dict(num_nodes=5, horizon=600_000.0)
        exact = SubscriberPointRWP(RWPConfig(engine="exact", **base), seed=2).generate()
        fast = SubscriberPointRWP(RWPConfig(engine="fast", **base), seed=2).generate()
        assert rows(exact) == rows(fast)

    def test_classic_rwp_trace_equivalence(self):
        base = dict(num_nodes=8, horizon=30_000.0)
        exact = ClassicRWP(ClassicRWPConfig(engine="exact", **base), seed=9).generate()
        fast = ClassicRWP(ClassicRWPConfig(engine="fast", **base), seed=9).generate()
        assert_equivalent(exact, fast)
        assert rows(exact) == rows(fast)

    def test_run_results_identical_across_engines(self):
        base = dict(num_nodes=10, horizon=60_000.0)
        results = {}
        for engine in CONTACT_ENGINES:
            trace = SubscriberPointRWP(
                RWPConfig(engine=engine, **base), seed=7
            ).generate()
            flows = [Flow(flow_id=0, source=0, destination=9, num_bundles=5)]
            results[engine] = Simulation(
                trace, make_protocol_config("pq"), flows, seed=11
            ).run()
        assert results["fast"] == results["exact"]

    def test_engine_threads_through_mobility_spec(self):
        params = dict(num_nodes=8, horizon=30_000.0)
        fast = MobilitySpec("rwp", {**params, "engine": "fast"}).build(seed=5)
        exact = MobilitySpec("rwp", {**params, "engine": "exact"}).build(seed=5)
        assert rows(fast) == rows(exact)

    def test_bad_engine_rejected_in_config(self):
        with pytest.raises(ValueError, match="unknown contact engine"):
            RWPConfig(engine="sampled")
        with pytest.raises(ValueError, match="unknown contact engine"):
            ClassicRWPConfig(engine="nope")


def test_divergence_helper_detects_structural_mismatch():
    import importlib.util
    import sys
    from pathlib import Path

    spec = importlib.util.spec_from_file_location(
        "bench_contacts",
        Path(__file__).resolve().parents[2] / "tools" / "bench_contacts.py",
    )
    bench = importlib.util.module_from_spec(spec)
    sys.modules["bench_contacts"] = bench
    spec.loader.exec_module(bench)

    t = [
        Trajectory(0, [_pause(0.0, 2000.0, 0.0, 0.0)]),
        Trajectory(1, [_pause(0.0, 2000.0, 1.0, 0.0)]),
    ]
    a, b = both_engines(t, 5.0)
    assert bench.trace_divergence(a, b) == 0.0
    shifted = contacts_from_trajectories(t, 5.0, engine="fast", min_duration=600.0)
    assert bench.trace_divergence(a, shifted) == math.inf
