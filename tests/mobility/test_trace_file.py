"""Trace file formats: canonical round trip, error paths, Haggle adapter."""

import io

import pytest

from repro.mobility.contact import ContactTrace
from repro.mobility.trace_file import (
    TraceFormatError,
    read_contact_trace,
    read_haggle_trace,
    trace_from_string,
    trace_to_string,
    write_contact_trace,
    write_haggle_trace,
)


@pytest.fixture
def trace():
    return ContactTrace.from_tuples(
        [(3568.0, 3882.0, 3, 9), (10.5, 20.25, 0, 1)],
        12,
        horizon=524_162.0,
        name="unit",
    )


class TestCanonicalRoundTrip:
    def test_file_round_trip(self, trace, tmp_path):
        path = tmp_path / "t.trace"
        write_contact_trace(trace, path)
        back = read_contact_trace(path)
        assert back.num_nodes == 12
        assert back.horizon == 524_162.0
        assert back.name == "unit"
        assert [(c.start, c.end, c.a, c.b) for c in back] == [
            (c.start, c.end, c.a, c.b) for c in trace
        ]

    def test_string_round_trip(self, trace):
        back = trace_from_string(trace_to_string(trace))
        assert len(back) == 2
        assert back[0].start == 10.5  # floats preserved exactly via repr

    def test_stream_io(self, trace):
        buf = io.StringIO()
        write_contact_trace(trace, buf)
        buf.seek(0)
        assert len(read_contact_trace(buf)) == 2


class TestCanonicalErrors:
    def test_missing_magic(self):
        with pytest.raises(TraceFormatError, match="magic"):
            trace_from_string("nodes 3\n0 1 0.0 1.0\n")

    def test_missing_nodes_directive(self):
        with pytest.raises(TraceFormatError, match="nodes"):
            trace_from_string("# repro contact trace v1\n0 1 0.0 1.0\n")

    def test_bad_node_count(self):
        with pytest.raises(TraceFormatError, match="line 2"):
            trace_from_string("# repro contact trace v1\nnodes three\n")

    def test_bad_horizon(self):
        with pytest.raises(TraceFormatError, match="horizon"):
            trace_from_string("# repro contact trace v1\nnodes 3\nhorizon x\n")

    def test_wrong_field_count(self):
        with pytest.raises(TraceFormatError, match="4 fields|expected"):
            trace_from_string("# repro contact trace v1\nnodes 3\n0 1 0.0\n")

    def test_unparsable_record(self):
        with pytest.raises(TraceFormatError, match="unparsable"):
            trace_from_string("# repro contact trace v1\nnodes 3\n0 1 zero 1.0\n")

    def test_invalid_contact_window(self):
        with pytest.raises(TraceFormatError, match="start < end"):
            trace_from_string("# repro contact trace v1\nnodes 3\n0 1 5.0 5.0\n")

    def test_node_out_of_range(self):
        with pytest.raises(TraceFormatError):
            trace_from_string("# repro contact trace v1\nnodes 2\n0 5 0.0 1.0\n")

    def test_comments_and_blank_lines_ignored(self):
        text = (
            "# repro contact trace v1\n"
            "# name: demo\n"
            "nodes 3\n"
            "\n"
            "# a comment\n"
            "0 1 0.0 1.0\n"
        )
        t = trace_from_string(text)
        assert t.name == "demo"
        assert len(t) == 1


class TestHaggleAdapter:
    def test_parses_one_based_ids(self):
        src = io.StringIO("1 2 100.0 250.0\n3 12 400 900 7 extra cols\n")
        t = read_haggle_trace(src)
        assert t.num_nodes == 12
        assert t[0].pair == (0, 1)
        assert t[1].pair == (2, 11)

    def test_zero_based_option(self):
        t = read_haggle_trace(io.StringIO("0 1 0 10\n"), one_based_ids=False)
        assert t[0].pair == (0, 1)

    def test_drops_zero_length_sightings(self):
        t = read_haggle_trace(io.StringIO("1 2 5 5\n1 2 10 20\n"))
        assert len(t) == 1

    def test_num_nodes_override_validated(self):
        with pytest.raises(TraceFormatError, match="num_nodes"):
            read_haggle_trace(io.StringIO("1 5 0 10\n"), num_nodes=3)

    def test_requires_four_columns(self):
        with pytest.raises(TraceFormatError, match="4 columns"):
            read_haggle_trace(io.StringIO("1 2 100\n"))

    def test_rejects_garbage(self):
        with pytest.raises(TraceFormatError, match="unparsable"):
            read_haggle_trace(io.StringIO("a b c d\n"))

    def test_empty_trace_rejected(self):
        with pytest.raises(TraceFormatError, match="no usable"):
            read_haggle_trace(io.StringIO("# only comments\n"))

    def test_negative_ids_rejected(self):
        with pytest.raises(TraceFormatError, match="negative"):
            read_haggle_trace(io.StringIO("0 2 0 10\n"))  # 1-based: 0 -> -1

    def test_comment_styles_skipped(self):
        src = io.StringIO("# hash\n% percent\n// slashes\n1 2 0 10\n")
        assert len(read_haggle_trace(src)) == 1

    def test_write_haggle_round_trip(self, trace, tmp_path):
        path = tmp_path / "h.dat"
        write_haggle_trace(trace, path)
        back = read_haggle_trace(path, num_nodes=12)
        assert [(c.start, c.end, c.a, c.b) for c in back] == [
            (c.start, c.end, c.a, c.b) for c in trace
        ]
