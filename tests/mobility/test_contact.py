"""Contact and ContactTrace semantics."""

import pytest
from hypothesis import given, strategies as st

from repro.mobility.contact import Contact, ContactTrace, all_pairs, contacts_sorted, pair_key


class TestContact:
    def test_normalises_node_order(self):
        c = Contact(start=0.0, end=1.0, a=5, b=2)
        assert (c.a, c.b) == (2, 5)
        assert c.pair == (2, 5)

    def test_rejects_self_contact(self):
        with pytest.raises(ValueError):
            Contact(start=0.0, end=1.0, a=3, b=3)

    @pytest.mark.parametrize("start,end", [(5.0, 5.0), (5.0, 4.0), (-1.0, 3.0)])
    def test_rejects_bad_window(self, start, end):
        with pytest.raises(ValueError):
            Contact(start=start, end=end, a=0, b=1)

    def test_duration(self):
        assert Contact(start=10.0, end=35.0, a=0, b=1).duration == 25.0

    def test_involves_and_peer_of(self):
        c = Contact(start=0.0, end=1.0, a=1, b=4)
        assert c.involves(1) and c.involves(4) and not c.involves(2)
        assert c.peer_of(1) == 4
        assert c.peer_of(4) == 1
        with pytest.raises(ValueError):
            c.peer_of(2)

    def test_overlaps(self):
        a = Contact(start=0.0, end=10.0, a=0, b=1)
        assert a.overlaps(Contact(start=5.0, end=15.0, a=2, b=3))
        assert not a.overlaps(Contact(start=10.0, end=15.0, a=2, b=3))

    def test_ordering_by_start(self):
        early = Contact(start=1.0, end=2.0, a=0, b=1)
        late = Contact(start=3.0, end=4.0, a=0, b=1)
        assert early < late


class TestContactTrace:
    def _trace(self):
        return ContactTrace.from_tuples(
            [(10.0, 20.0, 0, 1), (5.0, 8.0, 1, 2), (30.0, 45.0, 0, 2)],
            3,
        )

    def test_sorted_on_construction(self):
        t = self._trace()
        assert contacts_sorted(t.contacts)
        assert t[0].start == 5.0

    def test_horizon_defaults_to_last_end(self):
        assert self._trace().horizon == 45.0

    def test_explicit_horizon_validated(self):
        with pytest.raises(ValueError):
            ContactTrace.from_tuples([(0.0, 10.0, 0, 1)], 2, horizon=5.0)

    def test_rejects_out_of_range_nodes(self):
        with pytest.raises(ValueError):
            ContactTrace.from_tuples([(0.0, 1.0, 0, 5)], 3)

    def test_rejects_tiny_population(self):
        with pytest.raises(ValueError):
            ContactTrace([], 1)

    def test_container_protocol(self):
        t = self._trace()
        assert len(t) == 3
        assert [c.start for c in t] == [5.0, 10.0, 30.0]
        assert t[1].start == 10.0

    def test_queries(self):
        t = self._trace()
        assert t.nodes() == [0, 1, 2]
        assert t.active_nodes() == {0, 1, 2}
        assert [c.start for c in t.contacts_of(0)] == [10.0, 30.0]
        assert len(t.contacts_between(2, 0)) == 1
        assert t.first_contact_at_or_after(9.0).start == 10.0
        assert t.first_contact_at_or_after(100.0) is None
        assert t.total_contact_time() == 10.0 + 3.0 + 15.0

    def test_query_indexes_lazy_and_consistent(self):
        t = self._trace()
        assert t._by_node is None and t._by_pair is None  # built on demand
        by_node = t.contacts_of(1)
        assert t._by_node is not None
        assert [c.start for c in by_node] == [5.0, 10.0]
        assert t.contacts_of(0) == [c for c in t.contacts if c.involves(0)]
        assert t.contacts_of(99) == []
        between = t.contacts_between(2, 0)
        assert t._by_pair is not None
        assert between == [c for c in t.contacts if c.pair == (0, 2)]
        assert t.contacts_between(0, 0) == []  # no self-pairs in any trace

    def test_query_results_are_fresh_lists(self):
        t = self._trace()
        first = t.contacts_of(0)
        first.clear()  # caller mutation must not corrupt the index
        assert [c.start for c in t.contacts_of(0)] == [10.0, 30.0]
        pair = t.contacts_between(0, 1)
        pair.clear()
        assert len(t.contacts_between(1, 0)) == 1

    def test_indexed_trace_still_compares_equal(self):
        a, b = self._trace(), self._trace()
        a.contacts_of(0)
        a.contacts_between(0, 1)
        assert a == b  # lazy indexes are excluded from equality

    def test_window_rebases(self):
        t = self._trace()
        w = t.window(5.0, 25.0)
        assert len(w) == 2
        assert w[0].start == 0.0
        assert w.horizon == 20.0
        with pytest.raises(ValueError):
            t.window(10.0, 10.0)

    def test_window_default_drops_straddlers(self):
        t = self._trace()
        # (30, 45) straddles the cut at 40: dropped entirely by default
        assert len(t.window(25.0, 40.0)) == 0

    def test_window_clip_truncates_straddlers(self):
        t = self._trace()
        w = t.window(25.0, 40.0, clip=True)
        assert [(c.start, c.end) for c in w.contacts] == [(5.0, 15.0)]
        # a contact spanning the whole window clips to the full window
        span = ContactTrace.from_tuples([(0.0, 100.0, 0, 1)], 2)
        inner = span.window(40.0, 60.0, clip=True)
        assert [(c.start, c.end) for c in inner.contacts] == [(0.0, 20.0)]
        # edge-touching contacts carry no in-window time and are excluded
        assert len(span.window(100.0, 110.0, clip=True)) == 0

    @given(
        rows=st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=90.0),
                st.floats(min_value=0.5, max_value=30.0),
                st.sampled_from([(0, 1), (1, 2), (0, 2)]),
            ),
            min_size=1,
            max_size=12,
        ),
        cut=st.floats(min_value=1.0, max_value=119.0),
    )
    def test_clip_windows_conserve_contact_time(self, rows, cut):
        """A clip=True partition conserves total contact time exactly-ish.

        Splitting [0, horizon) at an arbitrary cut and summing the two
        windows' contact time must reproduce the original trace's total —
        the property the default drop semantics cannot offer.
        """
        contacts = [(s, s + d, a, b) for (s, d, (a, b)) in rows]
        t = ContactTrace.from_tuples(contacts, 3, horizon=125.0)
        left = t.window(0.0, cut, clip=True)
        right = t.window(cut, 125.0, clip=True)
        total = left.total_contact_time() + right.total_contact_time()
        assert total == pytest.approx(t.total_contact_time(), abs=1e-9)

    def test_merged_with(self):
        t = self._trace()
        other = ContactTrace.from_tuples([(50.0, 60.0, 1, 2)], 3)
        merged = t.merged_with(other)
        assert len(merged) == 4
        assert merged.horizon == 60.0
        with pytest.raises(ValueError):
            t.merged_with(ContactTrace.from_tuples([(0.0, 1.0, 0, 1)], 4))

    def test_coalesced_fuses_touching_windows(self):
        t = ContactTrace.from_tuples(
            [(0.0, 10.0, 0, 1), (10.0, 20.0, 0, 1), (25.0, 30.0, 0, 1)], 2
        )
        fused = t.coalesced()
        assert len(fused) == 2
        assert fused[0].end == 20.0

    def test_coalesced_fuses_overlapping_windows(self):
        t = ContactTrace.from_tuples([(0.0, 10.0, 0, 1), (5.0, 20.0, 0, 1)], 2)
        assert len(t.coalesced()) == 1

    def test_validate_disjoint_pairs(self):
        good = self._trace()
        good.validate_disjoint_pairs()
        bad = ContactTrace.from_tuples([(0.0, 10.0, 0, 1), (5.0, 20.0, 0, 1)], 2)
        with pytest.raises(ValueError):
            bad.validate_disjoint_pairs()


class TestHelpers:
    def test_pair_key(self):
        assert pair_key(5, 2) == (2, 5) == pair_key(2, 5)

    def test_all_pairs(self):
        assert all_pairs(3) == [(0, 1), (0, 2), (1, 2)]
        assert len(all_pairs(12)) == 66

    @given(st.lists(st.tuples(
        st.floats(min_value=0, max_value=1e4, allow_nan=False),
        st.floats(min_value=0.1, max_value=1e3, allow_nan=False),
    ), min_size=1, max_size=50))
    def test_coalesce_idempotent(self, rows):
        contacts = [(s, s + d, 0, 1) for s, d in rows]
        trace = ContactTrace.from_tuples(contacts, 2)
        once = trace.coalesced()
        twice = once.coalesced()
        assert [c.pair + (c.start, c.end) for c in once] == [
            c.pair + (c.start, c.end) for c in twice
        ]
        once.validate_disjoint_pairs()
