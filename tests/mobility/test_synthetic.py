"""Synthetic campus trace generator (the CRAWDAD substitute)."""

import pytest

from repro.mobility.stats import compute_trace_stats, heavy_tail_index, per_pair_gaps
from repro.mobility.synthetic import CAMPUS_HORIZON_S, CampusTraceConfig, CampusTraceGenerator


@pytest.fixture(scope="module")
def default_trace():
    return CampusTraceGenerator(seed=7).generate()


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_nodes": 1},
            {"horizon": 0.0},
            {"mean_intercontact": 0.0},
            {"min_duration": 0.0},
            {"duration_median": 10.0, "min_duration": 20.0},
            {"max_duration": 50.0, "duration_median": 100.0},
            {"night_activity": 1.5},
            {"pair_activity": 0.0},
            {"pair_activity": 1.5},
            {"day_start": 10 * 3600.0, "day_end": 9 * 3600.0},
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ValueError):
            CampusTraceConfig(**kwargs)


class TestGeneration:
    def test_paper_shape(self, default_trace):
        assert default_trace.num_nodes == 12
        assert default_trace.horizon == CAMPUS_HORIZON_S
        assert len(default_trace) > 100

    def test_deterministic(self, default_trace):
        again = CampusTraceGenerator(seed=7).generate()
        assert [(c.start, c.end, c.a, c.b) for c in again] == [
            (c.start, c.end, c.a, c.b) for c in default_trace
        ]

    def test_seeds_differ(self, default_trace):
        other = CampusTraceGenerator(seed=8).generate()
        assert [(c.start, c.a, c.b) for c in other] != [
            (c.start, c.a, c.b) for c in default_trace
        ]

    def test_pair_windows_disjoint(self, default_trace):
        default_trace.validate_disjoint_pairs()

    def test_durations_within_bounds(self, default_trace):
        cfg = CampusTraceConfig()
        for c in default_trace:
            assert cfg.min_duration <= c.duration <= cfg.max_duration + 1e-9

    def test_friendship_graph_connected(self, default_trace):
        """Every node reachable from node 0 via active pairs."""
        adj = {i: set() for i in range(default_trace.num_nodes)}
        for c in default_trace:
            adj[c.a].add(c.b)
            adj[c.b].add(c.a)
        seen = {0}
        frontier = [0]
        while frontier:
            cur = frontier.pop()
            for nxt in adj[cur]:
                if nxt not in seen:
                    seen.add(nxt)
                    frontier.append(nxt)
        assert seen == set(range(default_trace.num_nodes))

    def test_pair_activity_limits_frequent_pairs(self, default_trace):
        # friend pairs meet regularly; strangers only occasionally
        counts: dict[tuple[int, int], int] = {}
        for c in default_trace:
            counts[c.pair] = counts.get(c.pair, 0) + 1
        frequent = sum(1 for n in counts.values() if n >= 20)
        # 45% of 66 pairs ~ 30; spanning tree guarantees at least 11
        assert 11 <= frequent <= 45

    def test_hard_friendship_cut_limits_pairs(self):
        cfg = CampusTraceConfig(background_activity=0.0)
        trace = CampusTraceGenerator(cfg, seed=7).generate()
        stats = compute_trace_stats(trace)
        assert 11 <= stats.pairs_that_met <= 45

    def test_full_activity_meets_everywhere(self):
        cfg = CampusTraceConfig(pair_activity=1.0, diurnal=False)
        trace = CampusTraceGenerator(cfg, seed=2).generate()
        stats = compute_trace_stats(trace)
        assert stats.pairs_that_met == 66

    def test_heavy_tailed_intercontacts(self):
        cfg = CampusTraceConfig(intercontact_sigma=1.1, diurnal=False)
        trace = CampusTraceGenerator(cfg, seed=5).generate()
        gaps = [g for gs in per_pair_gaps(trace).values() for g in gs]
        assert heavy_tail_index(gaps) > 3.0

    def test_diurnal_thinning_reduces_night_contacts(self):
        base = CampusTraceConfig(diurnal=False)
        thin = CampusTraceConfig(diurnal=True, night_activity=0.05)
        n_base = len(CampusTraceGenerator(base, seed=9).generate())
        n_thin = len(CampusTraceGenerator(thin, seed=9).generate())
        assert n_thin < n_base

    def test_night_contacts_rarer_than_day(self, default_trace):
        cfg = CampusTraceConfig()
        day = night = 0
        day_span = cfg.day_end - cfg.day_start
        night_span = 86_400.0 - day_span
        for c in default_trace:
            tod = (c.start + cfg.day_phase) % 86_400.0
            if cfg.day_start <= tod < cfg.day_end:
                day += 1
            else:
                night += 1
        assert day / day_span > 2 * (night / night_span)

    def test_handout_burst_adds_early_contacts(self):
        cfg = CampusTraceConfig(handout_burst=True)
        trace = CampusTraceGenerator(cfg, seed=7).generate()
        early = [c for c in trace if c.start < cfg.burst_window]
        assert len(early) >= 0.4 * 66  # ~burst_pair_prob of all pairs
        trace.validate_disjoint_pairs()

    def test_describe_reports_model(self):
        gen = CampusTraceGenerator(seed=3)
        d = gen.describe()
        assert d["num_nodes"] == 12
        assert d["seed"] == 3
        assert d["horizon_s"] == CAMPUS_HORIZON_S


class TestStatisticalCalibration:
    """The properties the paper's study depends on (DESIGN.md §4)."""

    def test_node_level_gaps_minutes_scale(self, default_trace):
        stats = compute_trace_stats(default_trace)
        assert 100 < stats.intercontact_node.median < 5_000

    def test_pair_level_gaps_hours_scale(self, default_trace):
        stats = compute_trace_stats(default_trace)
        assert 1_000 < stats.intercontact_pair.median < 50_000

    def test_contacts_carry_about_one_bundle(self, default_trace):
        stats = compute_trace_stats(default_trace)
        assert 50 <= stats.durations.median <= 400

    def test_network_is_sparse(self, default_trace):
        stats = compute_trace_stats(default_trace)
        assert stats.contact_time_fraction < 0.05
