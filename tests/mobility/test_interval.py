"""Controlled inter-encounter-interval scenarios (Fig 14)."""

import pytest

from repro.mobility.interval import IntervalScenarioConfig, generate_interval_scenario


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_nodes": 1},
            {"max_encounters_per_node": 0},
            {"min_interval": -1.0},
            {"min_interval": 500.0, "max_interval": 400.0},
            {"min_duration": 0.0},
            {"min_duration": 500.0, "max_duration": 400.0},
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ValueError):
            IntervalScenarioConfig(**kwargs)


class TestGeneration:
    @pytest.fixture(scope="class")
    def trace(self):
        return generate_interval_scenario(seed=1)

    def test_paper_defaults(self, trace):
        assert trace.num_nodes == 20

    def test_encounter_budget_respected(self, trace):
        counts = {i: 0 for i in range(trace.num_nodes)}
        for c in trace:
            counts[c.a] += 1
            counts[c.b] += 1
        assert max(counts.values()) <= 20

    def test_total_encounters_budget(self, trace):
        # each encounter consumes two budget units; 20 nodes x 20 budget
        assert len(trace) <= 20 * 20 // 2

    def test_node_in_one_contact_at_a_time(self, trace):
        by_node = {}
        for c in trace:
            by_node.setdefault(c.a, []).append(c)
            by_node.setdefault(c.b, []).append(c)
        for contacts in by_node.values():
            contacts.sort()
            for prev, nxt in zip(contacts, contacts[1:], strict=False):
                assert nxt.start >= prev.end

    def test_min_rest_between_encounters(self, trace):
        cfg = IntervalScenarioConfig()
        by_node = {}
        for c in trace:
            by_node.setdefault(c.a, []).append(c)
            by_node.setdefault(c.b, []).append(c)
        for contacts in by_node.values():
            contacts.sort()
            for prev, nxt in zip(contacts, contacts[1:], strict=False):
                assert nxt.start - prev.end >= cfg.min_interval - 1e-9

    def test_durations_within_bounds(self, trace):
        cfg = IntervalScenarioConfig()
        for c in trace:
            assert cfg.min_duration <= c.duration <= cfg.max_duration + 1e-9

    def test_deterministic(self):
        a = generate_interval_scenario(seed=5)
        b = generate_interval_scenario(seed=5)
        assert [(c.start, c.end, c.a, c.b) for c in a] == [
            (c.start, c.end, c.a, c.b) for c in b
        ]

    def test_longer_intervals_stretch_the_horizon(self):
        short = generate_interval_scenario(
            IntervalScenarioConfig(max_interval=400.0), seed=2
        )
        long = generate_interval_scenario(
            IntervalScenarioConfig(max_interval=2000.0), seed=2
        )
        assert long.horizon > short.horizon

    def test_pair_windows_disjoint(self, trace):
        trace.validate_disjoint_pairs()
