"""Contact statistics."""

import math

import pytest

from repro.mobility.contact import ContactTrace
from repro.mobility.stats import (
    SeriesSummary,
    compute_trace_stats,
    heavy_tail_index,
    per_node_gaps,
    per_pair_gaps,
)


@pytest.fixture
def tiny_trace():
    # pair (0,1): contacts [0,10) and [30,40); pair (1,2): [50,60)
    return ContactTrace.from_tuples(
        [(0.0, 10.0, 0, 1), (30.0, 40.0, 0, 1), (50.0, 60.0, 1, 2)],
        3,
        horizon=100.0,
    )


class TestSeriesSummary:
    def test_of_values(self):
        s = SeriesSummary.of([1.0, 2.0, 3.0, 4.0])
        assert s.count == 4
        assert s.mean == 2.5
        assert s.median == 2.5
        assert s.minimum == 1.0 and s.maximum == 4.0

    def test_of_empty_is_nan(self):
        s = SeriesSummary.of([])
        assert s.count == 0
        assert math.isnan(s.mean) and math.isnan(s.median)


class TestGapExtraction:
    def test_per_pair_gaps(self, tiny_trace):
        gaps = per_pair_gaps(tiny_trace)
        assert gaps[(0, 1)] == [20.0]  # 30 - 10
        assert gaps[(1, 2)] == []

    def test_per_node_gaps(self, tiny_trace):
        gaps = per_node_gaps(tiny_trace)
        assert gaps[0] == [30.0]  # starts at 0 and 30
        assert gaps[1] == [30.0, 20.0]  # starts 0, 30, 50
        assert gaps[2] == []


class TestTraceStats:
    def test_exact_values(self, tiny_trace):
        st = compute_trace_stats(tiny_trace)
        assert st.num_nodes == 3
        assert st.num_contacts == 3
        assert st.horizon == 100.0
        assert st.durations.mean == 10.0
        assert st.pairs_that_met == 2
        assert st.pair_coverage == pytest.approx(2 / 3)
        assert st.contact_time_fraction == pytest.approx(30.0 / (100.0 * 3))
        assert st.encounters_per_node.mean == pytest.approx(2.0)

    def test_as_dict_flattens(self, tiny_trace):
        d = compute_trace_stats(tiny_trace).as_dict()
        assert d["num_contacts"] == 3
        assert "duration_mean" in d
        assert "intercontact_pair_median" in d
        assert "encounters_per_node_p90" in d


class TestHeavyTailIndex:
    def test_uniform_sample_is_light(self):
        vals = [float(v) for v in range(1, 101)]
        assert heavy_tail_index(vals) < 2.0

    def test_heavy_sample_is_heavy(self):
        vals = [1.0] * 90 + [1000.0] * 10
        assert heavy_tail_index(vals) > 100.0

    def test_empty_is_nan(self):
        assert math.isnan(heavy_tail_index([]))

    def test_zero_median_is_inf(self):
        assert heavy_tail_index([0.0, 0.0, 5.0]) == math.inf
