"""Trajectories and exact geometric contact extraction."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.mobility.trajectory import (
    Segment,
    Trajectory,
    contacts_from_trajectories,
    pair_contact_windows,
)


def _pause(t0, t1, x, y):
    return Segment(t0, t1, x, y, x, y)


class TestSegment:
    def test_rejects_non_positive_duration(self):
        with pytest.raises(ValueError):
            Segment(5.0, 5.0, 0, 0, 1, 1)

    def test_velocity_and_speed(self):
        s = Segment(0.0, 10.0, 0.0, 0.0, 30.0, 40.0)
        assert s.vx == 3.0 and s.vy == 4.0
        assert s.speed == 5.0
        assert s.duration == 10.0

    def test_position_interpolates(self):
        s = Segment(0.0, 10.0, 0.0, 0.0, 10.0, 20.0)
        assert s.position(5.0) == (5.0, 10.0)
        with pytest.raises(ValueError):
            s.position(11.0)


class TestTrajectory:
    def test_requires_contiguous_time(self):
        with pytest.raises(ValueError, match="contiguous"):
            Trajectory(0, [_pause(0, 1, 0, 0), _pause(2, 3, 0, 0)])

    def test_requires_contiguous_space(self):
        with pytest.raises(ValueError, match="spatially"):
            Trajectory(0, [_pause(0, 1, 0, 0), _pause(1, 2, 5, 5)])

    def test_requires_segments(self):
        with pytest.raises(ValueError):
            Trajectory(0, [])

    def test_position_lookup(self):
        t = Trajectory(
            0,
            [
                Segment(0.0, 10.0, 0.0, 0.0, 10.0, 0.0),
                _pause(10.0, 20.0, 10.0, 0.0),
                Segment(20.0, 30.0, 10.0, 0.0, 10.0, 10.0),
            ],
        )
        assert t.position(5.0) == (5.0, 0.0)
        assert t.position(15.0) == (10.0, 0.0)
        assert t.position(25.0) == (10.0, 5.0)
        assert t.start_time == 0.0 and t.end_time == 30.0
        with pytest.raises(ValueError):
            t.position(31.0)

    def test_max_speed(self):
        t = Trajectory(
            0,
            [Segment(0.0, 10.0, 0.0, 0.0, 30.0, 40.0), _pause(10.0, 20.0, 30.0, 40.0)],
        )
        assert t.max_speed() == 5.0


class TestPairContactWindows:
    def test_static_nodes_in_range_whole_overlap(self):
        a = Trajectory(0, [_pause(0.0, 100.0, 0.0, 0.0)])
        b = Trajectory(1, [_pause(10.0, 50.0, 3.0, 4.0)])  # distance 5
        assert pair_contact_windows(a, b, comm_range=6.0) == [(10.0, 50.0)]
        assert pair_contact_windows(a, b, comm_range=4.0) == []

    def test_crossing_nodes_quadratic_window(self):
        # b passes a at closest approach t=50, distance 0
        a = Trajectory(0, [_pause(0.0, 100.0, 0.0, 0.0)])
        b = Trajectory(1, [Segment(0.0, 100.0, -50.0, 0.0, 50.0, 0.0)])
        [(s, e)] = pair_contact_windows(a, b, comm_range=10.0)
        assert s == pytest.approx(40.0)
        assert e == pytest.approx(60.0)

    def test_tangent_pass_no_contact(self):
        a = Trajectory(0, [_pause(0.0, 100.0, 0.0, 0.0)])
        b = Trajectory(1, [Segment(0.0, 100.0, -50.0, 20.0, 50.0, 20.0)])
        assert pair_contact_windows(a, b, comm_range=10.0) == []

    def test_windows_merged_across_segment_boundaries(self):
        # b pauses in range across two consecutive segments
        a = Trajectory(0, [_pause(0.0, 100.0, 0.0, 0.0)])
        b = Trajectory(
            1, [_pause(0.0, 50.0, 1.0, 0.0), _pause(50.0, 100.0, 1.0, 0.0)]
        )
        assert pair_contact_windows(a, b, comm_range=5.0) == [(0.0, 100.0)]

    def test_rejects_bad_range(self):
        a = Trajectory(0, [_pause(0.0, 1.0, 0.0, 0.0)])
        with pytest.raises(ValueError):
            pair_contact_windows(a, a, comm_range=0.0)

    @settings(max_examples=30, deadline=None)
    @given(st.data())
    def test_matches_brute_force_sampling(self, data):
        """The quadratic solver agrees with dense time sampling."""
        def random_traj(node):
            segs = []
            t = 0.0
            x = data.draw(st.floats(-100, 100))
            y = data.draw(st.floats(-100, 100))
            for _ in range(data.draw(st.integers(1, 4))):
                dur = data.draw(st.floats(5.0, 50.0))
                nx = data.draw(st.floats(-100, 100))
                ny = data.draw(st.floats(-100, 100))
                segs.append(Segment(t, t + dur, x, y, nx, ny))
                t += dur
                x, y = nx, ny
            return Trajectory(node, segs)

        ta, tb = random_traj(0), random_traj(1)
        rng = 30.0
        windows = pair_contact_windows(ta, tb, rng)
        t_end = min(ta.end_time, tb.end_time)
        step = 0.25
        n = int(t_end / step)
        for k in range(n):
            t = k * step
            ax, ay = ta.position(t)
            bx, by = tb.position(t)
            dist = math.hypot(ax - bx, ay - by)
            inside = any(s <= t <= e for s, e in windows)
            if dist < rng - 1e-6:
                assert inside, f"t={t}: dist {dist} < {rng} but not in {windows}"
            elif dist > rng + 1e-6:
                assert not inside, f"t={t}: dist {dist} > {rng} but in {windows}"


class TestContactsFromTrajectories:
    def _three(self):
        return [
            Trajectory(0, [_pause(0.0, 1000.0, 0.0, 0.0)]),
            Trajectory(1, [_pause(0.0, 1000.0, 10.0, 0.0)]),
            Trajectory(2, [_pause(0.0, 1000.0, 500.0, 0.0)]),
        ]

    def test_extracts_pairwise_contacts(self):
        trace = contacts_from_trajectories(self._three(), comm_range=20.0, contact_cap=None)
        assert len(trace) == 1
        assert trace[0].pair == (0, 1)
        assert trace[0].duration == 1000.0

    def test_contact_cap_truncates(self):
        trace = contacts_from_trajectories(self._three(), comm_range=20.0, contact_cap=500.0)
        assert trace[0].duration == 500.0

    def test_min_duration_filters(self):
        a = Trajectory(0, [_pause(0.0, 100.0, 0.0, 0.0)])
        b = Trajectory(1, [Segment(0.0, 100.0, -50.0, 0.0, 50.0, 0.0)])
        trace = contacts_from_trajectories([a, b], comm_range=1.0, min_duration=5.0)
        assert len(trace) == 0

    def test_requires_dense_node_ids(self):
        a = Trajectory(0, [_pause(0.0, 1.0, 0.0, 0.0)])
        c = Trajectory(2, [_pause(0.0, 1.0, 0.0, 0.0)])
        with pytest.raises(ValueError, match="node ids"):
            contacts_from_trajectories([a, c], comm_range=1.0)

    def test_horizon_override(self):
        trace = contacts_from_trajectories(
            self._three(), comm_range=20.0, contact_cap=None, horizon=5000.0
        )
        assert trace.horizon == 5000.0
