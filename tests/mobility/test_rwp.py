"""Random-Way-Point generators."""

import pytest

from repro.mobility.rwp import ClassicRWP, ClassicRWPConfig, RWPConfig, SubscriberPointRWP


@pytest.fixture(scope="module")
def quick_cfg():
    return RWPConfig(num_nodes=6, horizon=40_000.0)


@pytest.fixture(scope="module")
def quick_trace(quick_cfg):
    return SubscriberPointRWP(quick_cfg, seed=3).generate()


class TestRWPConfigValidation:
    def test_defaults_valid(self):
        RWPConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_nodes": 1},
            {"horizon": 0.0},
            {"num_subscriber_points": 0},
            {"num_subscriber_points": 101},
            {"min_travel_time": 0.0},
            {"max_travel_time": 10.0, "min_travel_time": 20.0},
            {"max_speed": 0.0},
            {"comm_range": 0.0},
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ValueError):
            RWPConfig(**kwargs)


class TestSubscriberPointRWP:
    def test_deterministic_in_seed(self, quick_cfg):
        a = SubscriberPointRWP(quick_cfg, seed=3).generate()
        b = SubscriberPointRWP(quick_cfg, seed=3).generate()
        assert [(c.start, c.end, c.a, c.b) for c in a] == [
            (c.start, c.end, c.a, c.b) for c in b
        ]

    def test_different_seeds_differ(self, quick_cfg, quick_trace):
        other = SubscriberPointRWP(quick_cfg, seed=4).generate()
        assert [(c.start, c.a, c.b) for c in other] != [
            (c.start, c.a, c.b) for c in quick_trace
        ]

    def test_population_and_horizon(self, quick_trace, quick_cfg):
        assert quick_trace.num_nodes == quick_cfg.num_nodes
        assert quick_trace.horizon == quick_cfg.horizon
        assert all(c.end <= quick_cfg.horizon for c in quick_trace)

    def test_contact_cap_respected(self, quick_trace, quick_cfg):
        assert all(c.duration <= quick_cfg.contact_cap + 1e-9 for c in quick_trace)

    def test_produces_contacts(self, quick_trace):
        assert len(quick_trace) > 0

    def test_trajectories_respect_speed_and_area(self, quick_cfg):
        trajs = SubscriberPointRWP(quick_cfg, seed=3).generate_trajectories()
        assert len(trajs) == quick_cfg.num_nodes
        for t in trajs:
            assert t.max_speed() <= quick_cfg.max_speed + 1e-9
            assert t.start_time == 0.0
            assert t.end_time == pytest.approx(quick_cfg.horizon)
            for seg in t.segments:
                for x, y in ((seg.x0, seg.y0), (seg.x1, seg.y1)):
                    assert -1e-6 <= x <= quick_cfg.area_side + 1e-6
                    assert -1e-6 <= y <= quick_cfg.area_side + 1e-6

    def test_pauses_bounded(self, quick_cfg):
        trajs = SubscriberPointRWP(quick_cfg, seed=3).generate_trajectories()
        for t in trajs:
            for seg in t.segments:
                if seg.x0 == seg.x1 and seg.y0 == seg.y1:  # pause
                    assert seg.duration <= quick_cfg.max_pause + 1e-9


class TestClassicRWP:
    def test_zero_min_speed_rejected(self):
        with pytest.raises(ValueError, match="min_speed"):
            ClassicRWPConfig(min_speed=0.0)

    def test_speed_order_validated(self):
        with pytest.raises(ValueError):
            ClassicRWPConfig(min_speed=5.0, max_speed=1.0)

    def test_generates_deterministically(self):
        cfg = ClassicRWPConfig(num_nodes=5, horizon=20_000.0)
        a = ClassicRWP(cfg, seed=1).generate()
        b = ClassicRWP(cfg, seed=1).generate()
        assert len(a) == len(b)
        assert a.num_nodes == 5
        assert a.horizon == 20_000.0
        assert all(c.end <= 20_000.0 for c in a)
