"""Execution backends: ordering, progress accounting, parallel determinism."""

import pytest

from repro.core.executors import (
    Cell,
    ParallelExecutor,
    SerialExecutor,
    make_executor,
)
from repro.core.protocols import make_protocol_config
from repro.core.sweep import SweepConfig, build_cells, run_sweep
from tests.helpers import micro_trace

ROWS = [
    (100.0, 350.0, 0, 1),
    (1_000.0, 1_250.0, 1, 2),
    (2_000.0, 2_250.0, 2, 3),
    (3_000.0, 3_250.0, 0, 3),
    (4_000.0, 4_250.0, 1, 3),
]


@pytest.fixture
def trace():
    return micro_trace(ROWS, 4, horizon=20_000.0)


@pytest.fixture
def cells(trace):
    cfg = SweepConfig(loads=(2, 3), replications=2, master_seed=9)
    protos = [make_protocol_config("pure"), make_protocol_config("ec")]
    return build_cells(trace, protos, cfg)


class TestBuildCells:
    def test_grid_order(self, cells):
        assert len(cells) == 8  # 2 protocols × 2 loads × 2 reps
        assert [(c.protocol.protocol_name, c.load, c.rep) for c in cells[:4]] == [
            ("pure", 2, 0),
            ("pure", 2, 1),
            ("pure", 3, 0),
            ("pure", 3, 1),
        ]

    def test_shared_trace_is_one_object(self, cells):
        assert len({id(c.trace) for c in cells}) == 1


class TestSerialExecutor:
    def test_progress_counts_every_cell(self, cells):
        seen = []
        SerialExecutor().run(cells, progress=lambda d, t, c: seen.append((d, t)))
        assert seen == [(i + 1, 8) for i in range(8)]

    def test_results_in_cell_order(self, cells):
        results = SerialExecutor().run(cells)
        assert [(r.protocol, r.load) for r in results] == [
            (c.protocol.protocol_name, c.load) for c in cells
        ]


class TestParallelExecutor:
    def test_rejects_bad_jobs(self):
        with pytest.raises(ValueError):
            ParallelExecutor(jobs=0)

    def test_defaults_to_cpu_count(self):
        assert ParallelExecutor().jobs >= 1

    def test_empty_cells(self):
        assert ParallelExecutor(jobs=2).run([]) == []

    def test_single_worker_falls_back_to_serial(self, cells):
        serial = SerialExecutor().run(cells)
        assert ParallelExecutor(jobs=1).run(cells) == serial

    def test_bit_identical_to_serial(self, cells):
        """The acceptance property: jobs=2 reproduces serial exactly."""
        serial = SerialExecutor().run(cells)
        parallel = ParallelExecutor(jobs=2).run(cells)
        assert parallel == serial  # RunResult is a frozen dataclass: full ==

    def test_progress_reaches_total(self, cells):
        seen = []
        ParallelExecutor(jobs=2).run(cells, progress=lambda d, t, c: seen.append((d, t)))
        assert len(seen) == 8
        assert [d for d, _ in seen] == list(range(1, 9))
        assert all(t == 8 for _, t in seen)


class TestRunSweepWithExecutor:
    def test_sweep_results_identical_across_backends(self, trace):
        cfg = SweepConfig(loads=(2, 3), replications=2, master_seed=5)
        protos = [make_protocol_config("pq", p=0.5, q=0.5)]
        serial = run_sweep(trace, protos, cfg)
        parallel = run_sweep(trace, protos, cfg, executor=ParallelExecutor(jobs=2))
        assert serial.runs == parallel.runs

    def test_progress_has_counter_and_rep(self, trace):
        lines = []
        cfg = SweepConfig(loads=(2,), replications=3)
        run_sweep(trace, [make_protocol_config("pure")], cfg, progress=lines.append)
        assert len(lines) == 3  # per replication, not per (protocol, load)
        assert lines[0].startswith("[1/3]")
        assert "rep=0" in lines[0] and "rep=2" in lines[-1]


class TestMakeExecutor:
    def test_serial_for_none_or_one(self):
        assert isinstance(make_executor(None), SerialExecutor)
        assert isinstance(make_executor(1), SerialExecutor)

    def test_parallel_above_one(self):
        ex = make_executor(3)
        assert isinstance(ex, ParallelExecutor)
        assert ex.jobs == 3
