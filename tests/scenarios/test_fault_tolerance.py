"""Fault injection: worker death, hung cells, retries, checkpoint resume.

The injected tasks must be module-level functions — the parallel backend
pickles them into worker processes. They read their target cell from
environment variables (inherited by forked workers), so tests arm them
with ``monkeypatch.setenv`` before building the pool.

Kill-style tasks (``os._exit``) must only ever run under a parallel
executor with at least two cells: the serial fallback would take the
pytest process down with it.
"""

import os
import time
from pathlib import Path

import pytest

from repro.core.checkpoint import CheckpointJournal, cell_key
from repro.core.executors import (
    CellExecutionError,
    CellFailure,
    FailurePolicy,
    ParallelExecutor,
    SerialExecutor,
    execute_cell,
)
from repro.core.protocols import make_protocol_config
from repro.core.sweep import SweepConfig, build_cells, run_sweep
from tests.helpers import micro_trace

ROWS = [
    (100.0, 350.0, 0, 1),
    (1_000.0, 1_250.0, 1, 2),
    (2_000.0, 2_250.0, 2, 3),
    (3_000.0, 3_250.0, 0, 3),
]

#: "load,rep" of the cell the injected task should sabotage.
FAULT_CELL_ENV = "REPRO_TEST_FAULT_CELL"
#: Marker directory for one-shot faults (second attempt succeeds).
FAULT_DIR_ENV = "REPRO_TEST_FAULT_DIR"


def _is_fault_cell(cell) -> bool:
    spec = os.environ.get(FAULT_CELL_ENV)
    if not spec:
        return False
    load, rep = spec.split(",")
    return cell.load == int(load) and cell.rep == int(rep)


def kill_worker_once(cell):
    """Die with the worker process — but only on the first attempt."""
    if _is_fault_cell(cell):
        marker = Path(os.environ[FAULT_DIR_ENV]) / f"died-{cell.load}-{cell.rep}"
        if not marker.exists():
            marker.touch()
            os._exit(17)
    return execute_cell(cell)


def kill_worker_always(cell):
    """Die with the worker process on every attempt (a permanent fault)."""
    if _is_fault_cell(cell):
        os._exit(17)
    return execute_cell(cell)


def hang_cell(cell):
    """Wedge the target cell far past any reasonable cell_timeout."""
    if _is_fault_cell(cell):
        time.sleep(30.0)
    return execute_cell(cell)


def raise_in_cell(cell):
    """Deterministic in-cell exception (never retried by policy)."""
    if _is_fault_cell(cell):
        raise ValueError("injected fault")
    return execute_cell(cell)


@pytest.fixture
def trace():
    return micro_trace(ROWS, 4, horizon=20_000.0)


@pytest.fixture
def grid(trace):
    cfg = SweepConfig(loads=(2, 3), replications=2, master_seed=11)
    protos = [make_protocol_config("pure")]
    return build_cells(trace, protos, cfg), cfg, protos


@pytest.fixture
def fault_cell(monkeypatch, tmp_path):
    monkeypatch.setenv(FAULT_CELL_ENV, "3,1")
    monkeypatch.setenv(FAULT_DIR_ENV, str(tmp_path))
    return (3, 1)


KEEP_GOING = FailurePolicy(on_error="keep-going", backoff=0.0)


class TestSerialFailures:
    def test_keep_going_records_failure_and_finishes(self, grid, fault_cell):
        cells, _, _ = grid
        baseline = SerialExecutor().run(cells)
        outcomes = SerialExecutor(task=raise_in_cell).run(cells, policy=KEEP_GOING)
        assert len(outcomes) == len(cells)
        failures = [o for o in outcomes if isinstance(o, CellFailure)]
        assert [(f.load, f.rep, f.kind) for f in failures] == [(3, 1, "exception")]
        assert "injected fault" in failures[0].message
        survivors = [o for o in outcomes if not isinstance(o, CellFailure)]
        assert survivors == [
            b for b, c in zip(baseline, cells, strict=True) if (c.load, c.rep) != (3, 1)
        ]

    def test_abort_names_cell_coordinates(self, grid, fault_cell):
        cells, _, _ = grid
        with pytest.raises(CellExecutionError) as err:
            SerialExecutor(task=raise_in_cell).run(cells)
        failure = err.value.failure
        assert (failure.load, failure.rep) == (3, 1)
        assert failure.kind == "exception"
        assert "load=3" in str(err.value) and "rep=1" in str(err.value)


class TestParallelWorkerDeath:
    def test_retry_recovers_bit_identically(self, grid, fault_cell):
        cells, _, _ = grid
        baseline = SerialExecutor().run(cells)
        outcomes = ParallelExecutor(jobs=2, task=kill_worker_once).run(
            cells, policy=FailurePolicy(retries=2, backoff=0.0)
        )
        assert outcomes == baseline  # retried cell reproduces its result

    def test_permanent_death_keep_going_completes_grid(self, grid, fault_cell):
        cells, _, _ = grid
        outcomes = ParallelExecutor(jobs=2, task=kill_worker_always).run(
            cells, policy=KEEP_GOING
        )
        assert len(outcomes) == len(cells)
        failures = [o for o in outcomes if isinstance(o, CellFailure)]
        # the saboteur must be among the failures; innocent cells that were
        # in flight when the pool broke may fail too (they are
        # indistinguishable from the culprit), but the grid still finishes
        assert any(
            (f.load, f.rep) == (3, 1) and f.kind == "worker-death"
            for f in failures
        )

    def test_abort_on_worker_death_names_a_cell(self, grid, fault_cell):
        cells, _, _ = grid
        with pytest.raises(CellExecutionError) as err:
            ParallelExecutor(jobs=2, task=kill_worker_always).run(
                cells, policy=FailurePolicy(backoff=0.0)
            )
        assert err.value.failure.kind == "worker-death"

    def test_exception_keep_going_in_parallel(self, grid, fault_cell):
        cells, _, _ = grid
        baseline = SerialExecutor().run(cells)
        outcomes = ParallelExecutor(jobs=2, task=raise_in_cell).run(
            cells, policy=KEEP_GOING
        )
        failures = [o for o in outcomes if isinstance(o, CellFailure)]
        assert [(f.load, f.rep, f.kind) for f in failures] == [(3, 1, "exception")]
        survivors = [o for o in outcomes if not isinstance(o, CellFailure)]
        assert survivors == [
            b for b, c in zip(baseline, cells, strict=True) if (c.load, c.rep) != (3, 1)
        ]


class TestCellTimeout:
    def test_hung_cell_fails_with_timeout_and_rest_complete(
        self, grid, fault_cell
    ):
        cells, _, _ = grid
        baseline = SerialExecutor().run(cells)
        t0 = time.monotonic()
        outcomes = ParallelExecutor(jobs=2, task=hang_cell).run(
            cells,
            policy=FailurePolicy(
                on_error="keep-going", cell_timeout=0.5, backoff=0.0
            ),
        )
        elapsed = time.monotonic() - t0
        assert elapsed < 20.0  # nowhere near the saboteur's 30 s sleep
        failures = [o for o in outcomes if isinstance(o, CellFailure)]
        assert [(f.load, f.rep, f.kind) for f in failures] == [(3, 1, "timeout")]
        survivors = [o for o in outcomes if not isinstance(o, CellFailure)]
        assert survivors == [
            b for b, c in zip(baseline, cells, strict=True) if (c.load, c.rep) != (3, 1)
        ]

    def test_hung_cell_abort_reclaims_worker(self, grid, fault_cell):
        cells, _, _ = grid
        t0 = time.monotonic()
        with pytest.raises(CellExecutionError) as err:
            ParallelExecutor(jobs=2, task=hang_cell).run(
                cells, policy=FailurePolicy(cell_timeout=0.5, backoff=0.0)
            )
        assert time.monotonic() - t0 < 20.0  # wedged worker was terminated
        assert err.value.failure.kind == "timeout"
        assert (err.value.failure.load, err.value.failure.rep) == (3, 1)

    def test_serial_ignores_timeout(self, grid):
        cells, _, _ = grid
        outcomes = SerialExecutor().run(
            cells, policy=FailurePolicy(cell_timeout=0.001)
        )
        assert all(not isinstance(o, CellFailure) for o in outcomes)


class TestCheckpointResume:
    def test_resume_after_abort_is_bit_identical(
        self, grid, fault_cell, tmp_path
    ):
        cells, cfg, protos = grid
        trace = cells[0].trace
        baseline = run_sweep(trace, protos, cfg)

        camp = tmp_path / "camp"
        with pytest.raises(CellExecutionError):
            run_sweep(
                trace,
                protos,
                cfg,
                executor=SerialExecutor(task=raise_in_cell),
                checkpoint=camp,
            )

        # resume: journaled cells must restore from disk, not re-execute
        executed = []

        def spy(cell):
            executed.append(cell_key(cell))
            return execute_cell(cell)

        lines = []
        resumed = run_sweep(
            trace,
            protos,
            cfg,
            executor=SerialExecutor(task=spy),
            progress=lines.append,
            checkpoint=CheckpointJournal(camp, resume=True),
        )
        assert repr(resumed.runs) == repr(baseline.runs)  # bit-identical
        assert resumed.complete
        # serial order is (load, rep): (2,0) (2,1) (3,0) crash at (3,1)
        assert [(load, rep) for _, load, rep in executed] == [(3, 1)]
        assert lines[0].startswith("resume: restored 3 journaled cell(s)")

    def test_keep_going_failures_reattempted_on_resume(
        self, grid, fault_cell, tmp_path
    ):
        cells, cfg, protos = grid
        trace = cells[0].trace
        baseline = run_sweep(trace, protos, cfg)

        camp = tmp_path / "camp"
        first = run_sweep(
            trace,
            protos,
            cfg,
            executor=SerialExecutor(task=raise_in_cell),
            policy=KEEP_GOING,
            checkpoint=camp,
        )
        assert not first.complete  # the injected cell failed, not journaled

        resumed = run_sweep(
            trace,
            protos,
            cfg,
            checkpoint=CheckpointJournal(camp, resume=True),
        )
        assert resumed.complete
        assert repr(resumed.runs) == repr(baseline.runs)

    def test_parallel_death_retry_with_checkpoint(
        self, grid, fault_cell, tmp_path
    ):
        cells, cfg, protos = grid
        trace = cells[0].trace
        baseline = run_sweep(trace, protos, cfg)
        camp = tmp_path / "camp"
        result = run_sweep(
            trace,
            protos,
            cfg,
            executor=ParallelExecutor(jobs=2, task=kill_worker_once),
            policy=FailurePolicy(retries=2, backoff=0.0),
            checkpoint=camp,
        )
        assert repr(result.runs) == repr(baseline.runs)
        journal = CheckpointJournal(camp, resume=True)
        from repro.core.sweep import campaign_fingerprint

        journal.begin(campaign_fingerprint(cells, cfg))
        assert len(journal) == len(cells)  # every cell journaled exactly once
        journal.close()

    def test_wrong_campaign_refused(self, grid, tmp_path):
        cells, cfg, protos = grid
        trace = cells[0].trace
        camp = tmp_path / "camp"
        run_sweep(trace, protos, cfg, checkpoint=camp)
        from repro.core.checkpoint import CheckpointError

        other = SweepConfig(loads=(2, 3), replications=2, master_seed=99)
        with pytest.raises(CheckpointError, match="fingerprint mismatch"):
            run_sweep(
                trace,
                protos,
                other,
                checkpoint=CheckpointJournal(camp, resume=True),
            )
