"""Parallel/serial determinism for heterogeneous-buffer, random-drop runs.

``drop-random`` draws eviction victims from a per-node stream derived from
the run seed, so results must be bit-identical whatever process executes
the cell — the strongest determinism claim the executor layer makes.
"""

from __future__ import annotations

import pytest

from repro.core.executors import ParallelExecutor, SerialExecutor
from repro.scenarios import MobilitySpec, ProtocolSpec, ScenarioSpec, WorkloadSpec

#: 8 nodes: two roomy "ferries" among six 2-slot devices, mixed radios.
HETEROGENEOUS_SPEC = ScenarioSpec(
    name="heterogeneous-drop-random",
    mobility=MobilitySpec(
        "interval", {"num_nodes": 8, "max_encounters_per_node": 14, "max_interval": 400.0}
    ),
    protocols=(
        ProtocolSpec("pure"),
        ProtocolSpec("ttl", {"ttl": 500.0}),
    ),
    workload=WorkloadSpec(loads=(4, 8), replications=2),
    seed=11,
    buffer_capacity=(2, 2, 2, 6, 2, 2, 2, 6),
    bundle_tx_time=(100.0, 100.0, 100.0, 50.0, 100.0, 100.0, 100.0, 50.0),
    drop_policy="drop-random",
)


class TestHeterogeneousDeterminism:
    def test_parallel_bit_identical_to_serial(self):
        serial = HETEROGENEOUS_SPEC.run(executor=SerialExecutor())
        parallel = HETEROGENEOUS_SPEC.run(executor=ParallelExecutor(jobs=2))
        assert len(serial) == len(parallel) == 8  # 2 protocols × 2 loads × 2 reps
        assert serial.runs == parallel.runs

    def test_serial_reruns_are_identical(self):
        a = HETEROGENEOUS_SPEC.run()
        b = HETEROGENEOUS_SPEC.run()
        assert a.runs == b.runs

    def test_contention_actually_occurred(self):
        """The fixture must exercise the random-drop path, or the
        determinism assertions above prove nothing."""
        result = HETEROGENEOUS_SPEC.run()
        total_drops = sum(sum(r.drops.values()) for r in result.runs)
        assert total_drops > 0
        assert all(set(r.drops) <= {"drop-random"} for r in result.runs)

    @pytest.mark.parametrize("policy", ["drop-tail", "drop-oldest", "drop-youngest"])
    def test_deterministic_policies_also_agree(self, policy):
        import dataclasses

        spec = dataclasses.replace(HETEROGENEOUS_SPEC, drop_policy=policy)
        serial = spec.run(executor=SerialExecutor())
        parallel = spec.run(executor=ParallelExecutor(jobs=2))
        assert serial.runs == parallel.runs
