"""Scenario specs: JSON round-trips, validation, mobility registry."""

import json

import pytest

from repro.mobility.contact import ContactTrace
from repro.scenarios import (
    MobilitySpec,
    ProtocolSpec,
    ScenarioSpec,
    WorkloadSpec,
    build_mobility,
    mobility_names,
    register_mobility,
)


def tiny_scenario(**overrides) -> ScenarioSpec:
    kwargs = dict(
        name="tiny",
        mobility=MobilitySpec(
            "interval",
            {"num_nodes": 8, "max_encounters_per_node": 10, "max_interval": 300.0},
        ),
        protocols=(ProtocolSpec("pure"), ProtocolSpec("ttl", {"ttl": 300.0})),
        workload=WorkloadSpec(loads=(2, 4), replications=2),
        seed=3,
    )
    kwargs.update(overrides)
    return ScenarioSpec(**kwargs)


class TestMobilityRegistry:
    def test_builtins_registered(self):
        names = mobility_names()
        for kind in ("campus", "rwp", "classic_rwp", "interval", "trace_file"):
            assert kind in names

    def test_build_known_kind(self):
        trace = build_mobility("interval", seed=1, num_nodes=6, max_encounters_per_node=4)
        assert trace.num_nodes == 6

    def test_unknown_kind_lists_available(self):
        with pytest.raises(KeyError, match="campus"):
            build_mobility("warp-drive")

    def test_unknown_params_rejected(self):
        with pytest.raises(ValueError, match="wormholes"):
            build_mobility("interval", seed=0, wormholes=3)

    def test_register_custom_kind(self):
        @register_mobility("test-pair")
        def _pair(*, seed: int = 0, gap: float = 100.0) -> ContactTrace:
            return ContactTrace.from_tuples(
                [(gap, gap + 50.0, 0, 1)], 2, horizon=1_000.0
            )

        trace = MobilitySpec("test-pair", {"gap": 200.0}).build(seed=0)
        assert trace[0].start == 200.0
        # idempotent for the same builder, rejected for a different one
        register_mobility("test-pair", _pair)
        with pytest.raises(ValueError, match="already registered"):
            register_mobility("test-pair", lambda **kw: None)

    def test_trace_file_kind(self, tmp_path):
        from repro.mobility.trace_file import write_contact_trace

        trace = ContactTrace.from_tuples([(10.0, 60.0, 0, 1)], 3, horizon=500.0)
        path = tmp_path / "t.trace"
        write_contact_trace(trace, path)
        loaded = build_mobility("trace_file", path=str(path))
        assert len(loaded) == 1 and loaded.num_nodes == 3
        with pytest.raises(ValueError, match="path"):
            build_mobility("trace_file")
        with pytest.raises(ValueError, match="format"):
            build_mobility("trace_file", path=str(path), format="xml")


class TestMobilitySpec:
    def test_round_trip(self):
        spec = MobilitySpec("rwp", {"num_nodes": 10}, seed=5)
        assert MobilitySpec.from_dict(spec.to_dict()) == spec

    def test_minimal_dict(self):
        spec = MobilitySpec.from_dict({"kind": "campus"})
        assert spec == MobilitySpec("campus")

    def test_unknown_key_rejected(self):
        with pytest.raises(ValueError, match="unknown MobilitySpec key"):
            MobilitySpec.from_dict({"kind": "campus", "speed": 3})

    def test_requires_kind(self):
        with pytest.raises(ValueError, match="kind"):
            MobilitySpec.from_dict({"params": {}})

    def test_own_seed_wins(self):
        pinned = MobilitySpec(
            "interval", {"num_nodes": 6, "max_encounters_per_node": 4}, seed=1
        )
        inherit = MobilitySpec(
            "interval", {"num_nodes": 6, "max_encounters_per_node": 4}
        )
        assert pinned.build(seed=99).contacts == pinned.build(seed=1).contacts
        assert inherit.build(seed=1).contacts == pinned.build(seed=123).contacts


class TestProtocolSpec:
    def test_build(self):
        config = ProtocolSpec("pq", {"p": 0.5, "q": 0.25}).build()
        assert config.protocol_name == "pq"
        assert config.p == 0.5

    def test_unknown_protocol(self):
        with pytest.raises(KeyError, match="available"):
            ProtocolSpec("carrier-pigeon").build()

    def test_bad_params(self):
        with pytest.raises(ValueError, match="bad parameters"):
            ProtocolSpec("pq", {"warp": 9}).build()

    def test_round_trip(self):
        spec = ProtocolSpec("ttl", {"ttl": 120.0})
        assert ProtocolSpec.from_dict(spec.to_dict()) == spec


class TestWorkloadSpec:
    def test_defaults_match_paper(self):
        spec = WorkloadSpec()
        assert spec.loads == tuple(range(5, 55, 5))
        assert spec.replications == 10

    @pytest.mark.parametrize(
        "kwargs",
        [{"loads": ()}, {"loads": (0,)}, {"replications": 0}],
    )
    def test_rejects_bad_grids(self, kwargs):
        with pytest.raises(ValueError):
            WorkloadSpec(**kwargs)

    def test_round_trip(self):
        spec = WorkloadSpec(loads=(1, 2, 3), replications=4)
        assert WorkloadSpec.from_dict(spec.to_dict()) == spec

    def test_loads_must_be_list(self):
        with pytest.raises(ValueError, match="loads"):
            WorkloadSpec.from_dict({"loads": "5,10"})

    def test_non_integral_loads_rejected_not_truncated(self):
        with pytest.raises(ValueError, match="integers"):
            WorkloadSpec(loads=(2.5, 7))
        assert WorkloadSpec(loads=(5.0, 10)).loads == (5, 10)  # integral ok


class TestScenarioSpec:
    def test_round_trip(self):
        spec = tiny_scenario()
        assert ScenarioSpec.from_dict(spec.to_dict()) == spec

    def test_json_round_trip(self):
        spec = tiny_scenario(shared_trace=False, buffer_capacity=5)
        assert ScenarioSpec.from_json(spec.to_json()) == spec

    def test_file_round_trip(self, tmp_path):
        spec = tiny_scenario()
        path = tmp_path / "scenario.json"
        spec.save(path)
        assert ScenarioSpec.load(path) == spec
        # the on-disk form is plain JSON
        assert json.loads(path.read_text())["name"] == "tiny"

    def test_unknown_key_rejected(self):
        data = tiny_scenario().to_dict()
        data["gpu"] = True
        with pytest.raises(ValueError, match="unknown ScenarioSpec key"):
            ScenarioSpec.from_dict(data)

    def test_unknown_nested_key_rejected(self):
        data = tiny_scenario().to_dict()
        data["workload"]["warmup"] = 10
        with pytest.raises(ValueError, match="unknown WorkloadSpec key"):
            ScenarioSpec.from_dict(data)

    def test_bad_values_rejected(self):
        data = tiny_scenario().to_dict()
        data["workload"]["replications"] = 0
        with pytest.raises(ValueError, match="replications"):
            ScenarioSpec.from_dict(data)
        data = tiny_scenario().to_dict()
        data["buffer_capacity"] = 0
        with pytest.raises(ValueError, match="buffer_capacity"):
            ScenarioSpec.from_dict(data)

    def test_requires_mobility_and_protocols(self):
        with pytest.raises(ValueError, match="mobility"):
            ScenarioSpec.from_dict({"protocols": [{"name": "pure"}]})
        with pytest.raises(ValueError, match="protocols"):
            ScenarioSpec.from_dict({"mobility": {"kind": "campus"}})
        with pytest.raises(ValueError, match="at least one protocol"):
            tiny_scenario(protocols=())

    def test_not_json_rejected(self):
        with pytest.raises(ValueError, match="JSON"):
            ScenarioSpec.from_json("{nope")

    def test_sweep_config_mirrors_spec(self):
        spec = tiny_scenario(buffer_capacity=7, bundle_tx_time=50.0)
        cfg = spec.sweep_config()
        assert cfg.loads == (2, 4)
        assert cfg.replications == 2
        assert cfg.master_seed == 3
        assert cfg.sim.buffer_capacity == 7
        assert cfg.sim.bundle_tx_time == 50.0

    def test_build_protocols(self):
        labels = [p.label for p in tiny_scenario().build_protocols()]
        assert labels[0] == "Pure epidemic"
        assert "TTL" in labels[1]

    def test_shared_trace_is_seed_stable(self):
        spec = tiny_scenario()
        assert spec.build_trace(0).contacts == spec.build_trace(5).contacts

    def test_unshared_trace_varies_by_rep(self):
        spec = tiny_scenario(shared_trace=False)
        assert spec.build_trace(0).contacts != spec.build_trace(1).contacts

    def test_unshared_trace_varies_even_with_pinned_mobility_seed(self):
        """A pinned mobility seed must not collapse replications onto one
        trace — it only pins the *base* of the per-rep derivation."""
        spec = tiny_scenario(shared_trace=False)
        pinned = tiny_scenario(
            shared_trace=False,
            mobility=MobilitySpec(spec.mobility.kind, spec.mobility.params, seed=5),
        )
        assert pinned.build_trace(0).contacts != pinned.build_trace(1).contacts
        # and the base is reproducible: same pinned seed, same rep, same trace
        assert pinned.build_trace(1).contacts == pinned.build_trace(1).contacts

    def test_run_executes_grid(self):
        result = tiny_scenario().run()
        # 2 protocols × 2 loads × 2 replications
        assert len(result) == 8
        assert result.loads() == [2, 4]


class TestSurrogateSpecKeys:
    """The hybrid-engine keys: engine, surrogate_check/tolerance/reference."""

    def ode_scenario(self, **overrides) -> ScenarioSpec:
        kwargs = dict(
            engine="ode",
            surrogate_tolerance=0.2,
            surrogate_reference=MobilitySpec(
                "poisson",
                {"num_nodes": 12, "beta": 5e-4, "horizon": 20_000.0, "duration": 40.0},
            ),
            mobility=MobilitySpec(
                "analytic", {"num_nodes": 5000, "beta": 1e-7, "horizon": 1e6}
            ),
            protocols=(ProtocolSpec("pure"),),
        )
        kwargs.update(overrides)
        return tiny_scenario(**kwargs)

    def test_engine_keys_round_trip(self):
        spec = self.ode_scenario(surrogate_check=False)
        data = json.loads(spec.to_json())
        assert data["engine"] == "ode"
        assert data["surrogate_check"] is False
        assert data["surrogate_tolerance"] == 0.2
        assert data["surrogate_reference"]["kind"] == "poisson"
        assert ScenarioSpec.from_json(spec.to_json()) == spec

    def test_defaults(self):
        spec = tiny_scenario()
        assert spec.engine == "des"
        assert spec.surrogate_check is True
        assert spec.surrogate_tolerance == 0.10
        assert spec.surrogate_reference is None
        assert "surrogate_reference" not in spec.to_dict()

    def test_bad_engine_rejected(self):
        with pytest.raises(ValueError, match="engine"):
            tiny_scenario(engine="quantum")

    def test_bad_tolerance_rejected(self):
        for bad in (0.0, -0.1, 1.5):
            with pytest.raises(ValueError, match="surrogate_tolerance"):
                tiny_scenario(surrogate_tolerance=bad)

    def test_bad_reference_rejected(self):
        with pytest.raises(ValueError, match="surrogate_reference"):
            tiny_scenario(surrogate_reference={"kind": "poisson"})

    def test_sweep_config_carries_engine(self):
        assert self.ode_scenario().sweep_config().sim.engine == "ode"

    def test_ode_run_skips_gate_when_disabled(self):
        result = self.ode_scenario(
            surrogate_check=False,
            workload=WorkloadSpec(loads=(2,), replications=2),
        ).run()
        assert len(result) == 2
        assert result.surrogate_report is None
        for run in result.runs:
            assert run.success


class TestBufferContentionSpec:
    """Heterogeneous capacities and drop policies as scenario inputs."""

    def test_drop_policy_round_trip(self):
        spec = tiny_scenario(drop_policy="drop-oldest")
        assert ScenarioSpec.from_json(spec.to_json()) == spec
        assert json.loads(spec.to_json())["drop_policy"] == "drop-oldest"

    def test_per_node_capacity_round_trip(self):
        spec = tiny_scenario(
            buffer_capacity=(2, 2, 2, 2, 8, 8, 8, 8),
            bundle_tx_time=(100.0,) * 4 + (50.0,) * 4,
        )
        loaded = ScenarioSpec.from_json(spec.to_json())
        assert loaded == spec
        assert loaded.buffer_capacity == (2, 2, 2, 2, 8, 8, 8, 8)
        # on-disk form is a plain JSON list
        assert json.loads(spec.to_json())["buffer_capacity"] == [2, 2, 2, 2, 8, 8, 8, 8]

    def test_json_list_loads_as_tuple(self):
        data = tiny_scenario().to_dict()
        data["buffer_capacity"] = [1, 2, 3, 4, 5, 6, 7, 8]
        spec = ScenarioSpec.from_dict(data)
        assert spec.buffer_capacity == (1, 2, 3, 4, 5, 6, 7, 8)

    def test_unknown_policy_rejected(self):
        data = tiny_scenario().to_dict()
        data["drop_policy"] = "fifo"
        with pytest.raises(ValueError, match="unknown drop policy"):
            ScenarioSpec.from_dict(data)

    def test_bad_per_node_capacity_rejected(self):
        with pytest.raises(ValueError, match="buffer_capacity"):
            tiny_scenario(buffer_capacity=(2, 0))

    def test_sweep_config_threads_policy_and_heterogeneity(self):
        spec = tiny_scenario(
            buffer_capacity=(3,) * 8, drop_policy="drop-random"
        )
        cfg = spec.sweep_config()
        assert cfg.sim.buffer_capacity == (3,) * 8
        assert cfg.sim.drop_policy == "drop-random"

    def test_heterogeneous_run_executes(self):
        result = tiny_scenario(
            buffer_capacity=(1, 1, 1, 1, 4, 4, 4, 4), drop_policy="drop-oldest"
        ).run()
        assert len(result) == 8

    def test_default_policy_spec_equals_pre_policy_spec(self):
        """Specs without the new keys behave exactly as before."""
        data = tiny_scenario().to_dict()
        del data["drop_policy"]
        spec = ScenarioSpec.from_dict(data)
        assert spec.drop_policy == "reject"
        assert spec.run().runs == tiny_scenario().run().runs


class TestFailurePolicyKeys:
    """The fault-tolerance keys: retries, retry_backoff, cell_timeout, on_error."""

    def test_round_trip(self):
        spec = tiny_scenario(
            retries=2, retry_backoff=0.1, cell_timeout=30.0, on_error="keep-going"
        )
        data = json.loads(spec.to_json())
        assert data["retries"] == 2
        assert data["retry_backoff"] == 0.1
        assert data["cell_timeout"] == 30.0
        assert data["on_error"] == "keep-going"
        assert ScenarioSpec.from_json(spec.to_json()) == spec

    def test_defaults(self):
        spec = tiny_scenario()
        assert spec.retries == 0
        assert spec.retry_backoff == 0.5
        assert spec.cell_timeout is None
        assert spec.on_error == "abort"

    def test_failure_policy_mirrors_spec(self):
        policy = tiny_scenario(
            retries=3, retry_backoff=0.2, cell_timeout=5.0, on_error="keep-going"
        ).failure_policy()
        assert policy.retries == 3
        assert policy.backoff == 0.2
        assert policy.cell_timeout == 5.0
        assert policy.on_error == "keep-going"

    @pytest.mark.parametrize(
        "kwargs,match",
        [
            ({"retries": -1}, "retries"),
            ({"retry_backoff": -0.5}, "backoff"),
            ({"cell_timeout": 0.0}, "cell_timeout"),
            ({"on_error": "shrug"}, "on_error"),
        ],
    )
    def test_bad_values_rejected(self, kwargs, match):
        with pytest.raises(ValueError, match=match):
            tiny_scenario(**kwargs)

    def test_resume_requires_checkpoint(self):
        with pytest.raises(ValueError, match="checkpoint"):
            tiny_scenario().run(resume=True)

    def test_run_with_checkpoint_then_resume(self, tmp_path):
        camp = tmp_path / "camp"
        spec = tiny_scenario()
        first = spec.run(checkpoint=camp)
        assert (camp / "journal.jsonl").exists()
        resumed = spec.run(checkpoint=camp, resume=True)
        assert repr(resumed.runs) == repr(first.runs)  # restored, bit-identical

    def test_rerun_without_resume_refused(self, tmp_path):
        from repro.core.checkpoint import CheckpointError

        camp = tmp_path / "camp"
        spec = tiny_scenario()
        spec.run(checkpoint=camp)
        with pytest.raises(CheckpointError, match="--resume"):
            spec.run(checkpoint=camp)


class TestFaultSpecKeys:
    """The disruption-model key: a FaultSpec riding on the scenario."""

    def _faults(self):
        from repro.faults import FaultSpec

        return FaultSpec(
            churn_rate=2e-4,
            mean_downtime=1000.0,
            state_loss="all",
            contact_drop_prob=0.05,
        )

    def test_round_trip(self):
        spec = tiny_scenario(faults=self._faults())
        data = json.loads(spec.to_json())
        assert data["faults"]["churn_rate"] == 2e-4
        assert data["faults"]["state_loss"] == "all"
        assert ScenarioSpec.from_json(spec.to_json()) == spec

    def test_absent_by_default(self):
        spec = tiny_scenario()
        assert spec.faults is None
        assert "faults" not in spec.to_dict()

    def test_sweep_config_carries_faults(self):
        spec = tiny_scenario(faults=self._faults())
        assert spec.sweep_config().sim.faults == self._faults()
        assert spec.sweep_config().sim.active_faults == self._faults()

    def test_unknown_fault_key_rejected(self):
        data = tiny_scenario(faults=self._faults()).to_dict()
        data["faults"]["blast_radius"] = 3
        with pytest.raises(ValueError, match="unknown key"):
            ScenarioSpec.from_dict(data)

    def test_bad_fault_values_rejected(self):
        data = tiny_scenario(faults=self._faults()).to_dict()
        data["faults"]["contact_drop_prob"] = 1.5
        with pytest.raises(ValueError, match="contact_drop_prob"):
            ScenarioSpec.from_dict(data)

    def test_ode_engine_rejects_faults(self):
        """Satellite acceptance: the analytic surrogate has no node
        identity to crash — a faulted ode scenario must fail fast."""
        with pytest.raises(ValueError, match="unsupported by the surrogate"):
            tiny_scenario(
                engine="ode", surrogate_check=False, faults=self._faults()
            )

    def test_ode_engine_accepts_trivial_faults(self):
        from repro.faults import FaultSpec

        spec = tiny_scenario(
            engine="ode", surrogate_check=False, faults=FaultSpec()
        )
        assert spec.faults == FaultSpec()

    def test_faulted_run_populates_churn(self):
        result = tiny_scenario(faults=self._faults()).run()
        assert len(result) == 8
        assert all(r.churn for r in result.runs)
        assert all("crashed" in r.removals for r in result.runs)
