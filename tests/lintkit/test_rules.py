"""Fixture corpus for the reprolint rule set.

Every rule has at least one must-fire and one must-pass snippet, plus a
pragma-suppression case, exercised through :func:`lint_sources` at the
path the rule is scoped to. A rule that silently stops firing is itself
the bug class this suite exists to catch.
"""

from __future__ import annotations

import pytest

from tools.lintkit.engine import lint_sources
from tools.lintkit.rules import default_rules

#: rel_path inside every rule's scope, per rule id
SCOPED_PATH = {
    "DET001": "src/repro/core/session.py",
    "DET002": "src/repro/core/knowledge.py",
    "DET003": "src/repro/core/simulation.py",
    "HOT001": "src/repro/des/engine.py",
    "HOT002": "src/repro/core/simulation.py",
    "HOT003": "src/repro/core/sweepkernel.py",
    "SPEC001": "src/repro/scenarios/spec.py",
    "API001": "src/repro/core/policies.py",
}


def run_rule(rule_id: str, source: str, path: str | None = None):
    rules = [r for r in default_rules() if r.rule_id == rule_id]
    assert rules, f"unknown rule {rule_id}"
    return lint_sources([(path or SCOPED_PATH[rule_id], source)], rules)


def assert_fires(rule_id: str, source: str, path: str | None = None):
    out = run_rule(rule_id, source, path)
    assert out, f"{rule_id} should fire on:\n{source}"
    assert all(v.rule_id == rule_id for v in out)
    return out


def assert_clean(rule_id: str, source: str, path: str | None = None):
    out = run_rule(rule_id, source, path)
    assert not out, f"{rule_id} should pass on:\n{source}\ngot: {out}"


# ------------------------------------------------------------------ DET001


class TestUnseededRandom:
    def test_fires_on_stdlib_random_call(self):
        assert_fires("DET001", "import random\nx = random.random()\n")

    def test_fires_on_stdlib_random_import_alias(self):
        assert_fires("DET001", "import random as rnd\nx = rnd.choice([1, 2])\n")

    def test_fires_on_from_random_import(self):
        assert_fires("DET001", "from random import shuffle\n")

    def test_fires_on_np_global_draw(self):
        assert_fires("DET001", "import numpy as np\nx = np.random.randint(3)\n")

    def test_fires_on_numpy_random_module_alias(self):
        assert_fires("DET001", "import numpy.random as nr\nx = nr.uniform()\n")

    def test_fires_on_unseeded_default_rng(self):
        assert_fires("DET001", "import numpy as np\nrng = np.random.default_rng()\n")
        assert_fires(
            "DET001",
            "from numpy.random import default_rng\nrng = default_rng()\n",
        )

    def test_passes_on_seeded_default_rng(self):
        assert_clean("DET001", "import numpy as np\nrng = np.random.default_rng(7)\n")

    def test_passes_on_generator_method_draws(self):
        assert_clean(
            "DET001",
            "import numpy as np\n"
            "def draw(rng: np.random.Generator) -> float:\n"
            "    return float(rng.random())\n",
        )

    def test_out_of_scope_in_rng_module(self):
        # des/rng.py is the one place allowed to derive generators
        assert_clean(
            "DET001",
            "import numpy as np\nrng = np.random.default_rng()\n",
            path="src/repro/des/rng.py",
        )

    def test_covers_fault_module(self):
        # the src/repro/* scope glob crosses "/": the disruption layer is
        # in-scope without a rule change
        assert_fires(
            "DET001",
            "import random\nx = random.random()\n",
            path="src/repro/faults.py",
        )

    def test_pragma_suppresses(self):
        assert_clean(
            "DET001",
            "import random\nx = random.random()  # lint: disable=DET001\n",
        )


# ------------------------------------------------------------------ DET002


class TestUnorderedIteration:
    def test_fires_on_set_literal_iteration(self):
        assert_fires("DET002", "for x in {3, 1, 2}:\n    print(x)\n")

    def test_fires_on_set_annotated_parameter(self):
        assert_fires(
            "DET002",
            "def f(bids: set) -> list:\n"
            "    return [b for b in bids]\n",
        )

    def test_fires_on_union_set_annotation(self):
        assert_fires(
            "DET002",
            "def f(bids: frozenset[int] | set[int]) -> list[int]:\n"
            "    return [b for b in bids]\n",
        )

    def test_fires_on_local_set_assignment(self):
        assert_fires(
            "DET002",
            "def f(xs: list[int]) -> None:\n"
            "    seen = set(xs)\n"
            "    for x in seen:\n"
            "        print(x)\n",
        )

    def test_fires_on_unsorted_keys(self):
        assert_fires(
            "DET002",
            "def f(d: dict[int, int]) -> None:\n"
            "    for k in d.keys():\n"
            "        print(k)\n",
        )

    def test_fires_on_unsorted_items(self):
        assert_fires(
            "DET002",
            "def f(d: dict[int, int]) -> None:\n"
            "    for k, v in d.items():\n"
            "        print(k, v)\n",
        )

    def test_passes_on_sorted_items(self):
        assert_clean(
            "DET002",
            "def f(d: dict[int, int]) -> None:\n"
            "    for k, v in sorted(d.items()):\n"
            "        print(k, v)\n",
        )

    def test_passes_on_list_iteration(self):
        assert_clean(
            "DET002",
            "def f(xs: list[int]) -> None:\n"
            "    for x in xs:\n"
            "        print(x)\n",
        )

    def test_passes_on_values_iteration(self):
        # dict.values() order is insertion order; flagged only via .keys/.items
        assert_clean(
            "DET002",
            "def f(d: dict[int, int]) -> None:\n"
            "    for v in d.values():\n"
            "        print(v)\n",
        )

    def test_out_of_scope_module_not_checked(self):
        assert_clean(
            "DET002",
            "for x in {3, 1, 2}:\n    print(x)\n",
            path="src/repro/analysis/tables.py",
        )

    def test_pragma_suppresses(self):
        assert_clean(
            "DET002",
            "def f(bids: set) -> list:\n"
            "    return [b for b in bids]  # lint: disable=DET002\n",
        )


# ------------------------------------------------------------------ DET003


class TestWallClock:
    def test_fires_on_time_time(self):
        assert_fires("DET003", "import time\nt = time.time()\n")

    def test_fires_on_time_alias(self):
        assert_fires("DET003", "import time as tm\nt = tm.time_ns()\n")

    def test_fires_on_from_time_import(self):
        assert_fires("DET003", "from time import time\n")

    def test_fires_on_datetime_now(self):
        assert_fires(
            "DET003", "from datetime import datetime\nt = datetime.now()\n"
        )
        assert_fires(
            "DET003", "import datetime\nt = datetime.datetime.utcnow()\n"
        )

    def test_passes_on_perf_counter(self):
        assert_clean("DET003", "import time\nt = time.perf_counter()\n")
        assert_clean("DET003", "import time\nt = time.monotonic()\n")

    def test_out_of_scope_outside_src_repro(self):
        assert_clean(
            "DET003", "import time\nt = time.time()\n", path="tools/bench_sim.py"
        )

    def test_pragma_suppresses(self):
        assert_clean(
            "DET003", "import time\nt = time.time()  # lint: disable=DET003\n"
        )


# ------------------------------------------------------------------ HOT001


class TestSlots:
    def test_fires_on_plain_class(self):
        assert_fires(
            "HOT001",
            "class Engine:\n"
            "    def __init__(self) -> None:\n"
            "        self.x = 1\n",
        )

    def test_passes_with_slots(self):
        assert_clean(
            "HOT001",
            "class Engine:\n"
            '    __slots__ = ("x",)\n'
            "    def __init__(self) -> None:\n"
            "        self.x = 1\n",
        )

    def test_passes_on_slotted_dataclass(self):
        assert_clean(
            "HOT001",
            "from dataclasses import dataclass\n"
            "@dataclass(frozen=True, slots=True)\n"
            "class Bundle:\n"
            "    x: int\n",
        )

    def test_fires_on_unslotted_dataclass(self):
        assert_fires(
            "HOT001",
            "from dataclasses import dataclass\n"
            "@dataclass\n"
            "class Bundle:\n"
            "    x: int\n",
        )

    def test_exempts_enums_and_exceptions(self):
        assert_clean(
            "HOT001",
            "import enum\n"
            "class StopCondition(enum.Enum):\n"
            "    DONE = 1\n",
        )
        assert_clean("HOT001", "class QueueError(Exception):\n    pass\n")

    def test_out_of_scope_module(self):
        assert_clean(
            "HOT001",
            "class Anything:\n    pass\n",
            path="src/repro/analysis/tables.py",
        )

    def test_pragma_suppresses(self):
        assert_clean(
            "HOT001",
            "class Engine:  # lint: disable=HOT001\n"
            "    def __init__(self) -> None:\n"
            "        self.x = 1\n",
        )


# ------------------------------------------------------------------ HOT002


class TestScheduleClosure:
    def test_fires_on_lambda_to_at(self):
        assert_fires(
            "HOT002",
            "def go(engine, node) -> None:\n"
            "    engine.at(1.0, lambda: node.tick())\n",
        )

    def test_fires_on_lambda_to_schedule_sorted(self):
        assert_fires(
            "HOT002",
            "def go(engine, items) -> None:\n"
            "    engine.schedule_sorted((t, lambda: None, ()) for t, _ in items)\n",
        )

    def test_fires_on_partial_to_after(self):
        assert_fires(
            "HOT002",
            "from functools import partial\n"
            "def go(engine, node) -> None:\n"
            "    engine.after(5.0, partial(node.tick, 1))\n",
        )

    def test_passes_on_positional_args_style(self):
        assert_clean(
            "HOT002",
            "def go(engine, node) -> None:\n"
            "    engine.at(1.0, node.tick, 1, 2)\n",
        )

    def test_passes_on_lambda_outside_schedulers(self):
        assert_clean(
            "HOT002",
            "def go(order) -> None:\n"
            "    order.sort(key=lambda sb: sb.stored_at)\n",
        )

    def test_pragma_suppresses(self):
        assert_clean(
            "HOT002",
            "def go(engine, node) -> None:\n"
            "    engine.at(1.0, lambda: node.tick())  # lint: disable=HOT002\n",
        )


# ------------------------------------------------------------------ HOT003


class TestKernelContactLoop:
    def test_fires_on_for_over_contact_column(self):
        assert_fires(
            "HOT003",
            "def drive(starts_l) -> None:\n"
            "    for t in starts_l:\n"
            "        print(t)\n",
        )

    def test_fires_on_comprehension_over_live_endpoints(self):
        assert_fires(
            "HOT003",
            "def tally(self) -> list[int]:\n"
            "    return [a + 1 for a in self._live_a]\n",
        )

    def test_fires_on_zipped_contact_columns(self):
        assert_fires(
            "HOT003",
            "def walk(starts, ends) -> None:\n"
            "    for s, e in zip(starts, ends):\n"
            "        print(s, e)\n",
        )

    def test_passes_on_candidate_and_flow_loops(self):
        assert_clean(
            "HOT003",
            "def offer(bits, sbs, flows) -> None:\n"
            "    for i, bit in enumerate(bits):\n"
            "        print(sbs[i])\n"
            "    for flow in flows:\n"
            "        print(flow)\n",
        )

    def test_passes_outside_the_kernel_module(self):
        assert_clean(
            "HOT003",
            "def flush(starts_l) -> None:\n"
            "    for t in starts_l:\n"
            "        print(t)\n",
            path="src/repro/core/simulation.py",
        )

    def test_pragma_suppresses(self):
        assert_clean(
            "HOT003",
            "def drive(starts_l) -> None:\n"
            "    for t in starts_l:  # lint: disable=HOT003\n"
            "        print(t)\n",
        )


# ------------------------------------------------------------------ SPEC001


SPEC_OK = """
from dataclasses import dataclass
from typing import Any

@dataclass(frozen=True)
class ThingSpec:
    '''doc'''
    alpha: int = 1
    beta: str = "x"

    def to_dict(self) -> dict[str, Any]:
        return {"alpha": self.alpha, "beta": self.beta}

    @classmethod
    def from_dict(cls, data) -> "ThingSpec":
        return cls(alpha=data.get("alpha", 1), beta=data.get("beta", "x"))
"""

SPEC_MISSING = SPEC_OK.replace('"beta": self.beta', '"bet_a": self.beta')


class TestSpecRoundTrip:
    def test_fires_on_field_missing_from_to_dict(self):
        out = assert_fires("SPEC001", SPEC_MISSING)
        assert "beta" in out[0].message

    def test_passes_on_complete_round_trip(self):
        assert_clean("SPEC001", SPEC_OK)

    def test_dataclass_without_round_trip_ignored(self):
        assert_clean(
            "SPEC001",
            "from dataclasses import dataclass\n"
            "@dataclass\n"
            "class Plain:\n"
            "    '''doc'''\n"
            "    x: int = 0\n",
        )

    def test_cross_file_mirror_fires_on_unmirrored_config_knob(self):
        config = (
            "from dataclasses import dataclass\n"
            "@dataclass\n"
            "class SimulationConfig:\n"
            "    '''doc'''\n"
            "    buffer_capacity: int = 10\n"
            "    new_knob: float = 0.5\n"
        )
        spec = (
            "from dataclasses import dataclass\n"
            "@dataclass(frozen=True)\n"
            "class ScenarioSpec:\n"
            "    '''doc'''\n"
            "    buffer_capacity: int = 10\n"
        )
        rules = [r for r in default_rules() if r.rule_id == "SPEC001"]
        out = lint_sources(
            [
                ("src/repro/core/simulation.py", config),
                ("src/repro/scenarios/spec.py", spec),
            ],
            rules,
        )
        assert out, "unmirrored SimulationConfig knob must fire"
        assert any("new_knob" in v.message for v in out)
        assert not any("buffer_capacity" in v.message for v in out)

    def test_pragma_suppresses(self):
        pragma_src = SPEC_MISSING.replace(
            "    def to_dict(self) -> dict[str, Any]:",
            "    def to_dict(self) -> dict[str, Any]:  # lint: disable=SPEC001",
        )
        assert_clean("SPEC001", pragma_src)


# ------------------------------------------------------------------ API001


class TestRegistryDocstrings:
    def test_fires_on_undocumented_public_class(self):
        out = assert_fires("API001", "class DropNewest:\n    name = 'drop-newest'\n")
        assert out[0].severity == "warning"

    def test_fires_on_undocumented_public_function(self):
        assert_fires("API001", "def make_thing():\n    return 1\n")

    def test_passes_with_docstrings(self):
        assert_clean(
            "API001",
            "class DropNewest:\n"
            "    '''Evict the newest copy.'''\n"
            "    name = 'drop-newest'\n"
            "def make_thing():\n"
            "    '''Build a thing.'''\n"
            "    return 1\n",
        )

    def test_private_names_and_methods_exempt(self):
        assert_clean(
            "API001",
            "class Documented:\n"
            "    '''doc'''\n"
            "    def method_without_doc(self):\n"
            "        return 1\n"
            "def _private():\n"
            "    return 2\n",
        )

    def test_pragma_suppresses(self):
        assert_clean(
            "API001", "def make_thing():  # lint: disable=API001\n    return 1\n"
        )


# ------------------------------------------------------------- whole tree


def test_repo_tree_is_clean():
    """The committed tree must satisfy every rule (mirrors the CI gate)."""
    from pathlib import Path

    from tools.lintkit.engine import lint_paths

    repo = Path(__file__).resolve().parents[2]
    violations = lint_paths(
        [repo / "src", repo / "tools"], default_rules(), base=repo
    )
    assert violations == [], "\n".join(v.render() for v in violations)


@pytest.mark.parametrize("rule_id", sorted(SCOPED_PATH))
def test_every_rule_has_nonempty_description(rule_id):
    rule = next(r for r in default_rules() if r.rule_id == rule_id)
    assert rule.description
    assert rule.paths, "every shipped rule is path-scoped"
