"""Engine-level behaviour: pragmas, scoping, severity, CLI plumbing."""

from __future__ import annotations

import pytest

from tools.lintkit.engine import (
    SEVERITY_WARNING,
    Rule,
    SourceFile,
    Violation,
    lint_sources,
    run_cli,
)


class AlwaysFire(Rule):
    """Test rule: one violation per module node."""

    rule_id = "TST001"
    description = "fires on every file"

    def check(self, src):
        yield self.violation(src, src.tree.body[0], "fired")


class ScopedRule(AlwaysFire):
    rule_id = "TST002"
    paths = ("src/repro/des/*",)
    exclude = ("src/repro/des/rng.py",)


class WarningRule(AlwaysFire):
    rule_id = "TST003"
    severity = SEVERITY_WARNING


def test_violation_render_is_editor_clickable():
    v = Violation("TST001", "src/x.py", 3, 7, "boom")
    assert v.render() == "src/x.py:3:7: error TST001: boom"


def test_path_scoping_include_exclude():
    rule = ScopedRule()
    assert rule.applies_to("src/repro/des/engine.py")
    assert not rule.applies_to("src/repro/des/rng.py")  # excluded
    assert not rule.applies_to("src/repro/core/bundle.py")  # out of scope


def test_unscoped_rule_applies_everywhere():
    assert AlwaysFire().applies_to("anything/at/all.py")


def test_line_pragma_suppresses_exactly_that_rule():
    src = "x = 1  # lint: disable=TST001\n"
    assert lint_sources([("f.py", src)], [AlwaysFire()]) == []
    # a different rule id on the pragma does not suppress
    src2 = "x = 1  # lint: disable=TST999\n"
    assert len(lint_sources([("f.py", src2)], [AlwaysFire()])) == 1


def test_line_pragma_multiple_ids_and_all_wildcard():
    src = "x = 1  # lint: disable=TST999,TST001\n"
    assert lint_sources([("f.py", src)], [AlwaysFire()]) == []
    src_all = "x = 1  # lint: disable=ALL\n"
    assert lint_sources([("f.py", src_all)], [AlwaysFire()]) == []


def test_file_pragma_suppresses_whole_file():
    src = "# lint: disable-file=TST001\nx = 1\ny = 2\n"
    assert lint_sources([("f.py", src)], [AlwaysFire()]) == []


def test_pragma_only_suppresses_its_line():
    parsed = SourceFile("f.py", "x = 1  # lint: disable=TST001\ny = 2\n")
    assert parsed.suppressed("TST001", 1)
    assert not parsed.suppressed("TST001", 2)


def test_violations_sorted_by_location():
    class TwoSites(Rule):
        rule_id = "TST010"

        def check(self, src):
            yield Violation(self.rule_id, src.rel_path, 5, 1, "later")
            yield Violation(self.rule_id, src.rel_path, 2, 1, "earlier")

    out = lint_sources([("f.py", "x = 1\n")], [TwoSites()])
    assert [v.line for v in out] == [2, 5]


def test_syntax_error_propagates():
    with pytest.raises(SyntaxError):
        lint_sources([("bad.py", "def broken(:\n")], [AlwaysFire()])


def test_cli_clean_tree_exits_zero(tmp_path, capsys):
    (tmp_path / "ok.py").write_text("x = 1\n")
    assert run_cli([str(tmp_path)]) == 0
    assert "reprolint: clean" in capsys.readouterr().out


def test_cli_error_violation_exits_nonzero(tmp_path, capsys):
    # DET003 fires anywhere under src/repro — build that layout
    pkg = tmp_path / "src" / "repro"
    pkg.mkdir(parents=True)
    (pkg / "bad.py").write_text("import time\nt = time.time()\n")
    import os

    cwd = os.getcwd()
    os.chdir(tmp_path)
    try:
        code = run_cli(["src"])
    finally:
        os.chdir(cwd)
    assert code == 1
    out = capsys.readouterr().out
    assert "DET003" in out


def test_cli_list_rules_names_every_rule(capsys):
    assert run_cli(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rid in ("DET001", "DET002", "DET003", "HOT001", "HOT002", "SPEC001", "API001"):
        assert rid in out


def test_cli_unknown_rule_id_rejected():
    with pytest.raises(SystemExit):
        run_cli(["--rule", "NOPE999", "."])


def test_cli_json_format(tmp_path, capsys):
    (tmp_path / "ok.py").write_text("x = 1\n")
    assert run_cli([str(tmp_path), "--format", "json"]) == 0
    assert capsys.readouterr().out.strip() == "[]"
