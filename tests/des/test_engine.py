"""Engine: scheduling, clock, stop conditions."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.des.engine import Engine, StopCondition


class TestScheduling:
    def test_runs_events_in_order(self):
        eng = Engine()
        log = []
        eng.at(3.0, lambda: log.append("c"))
        eng.at(1.0, lambda: log.append("a"))
        eng.at(2.0, lambda: log.append("b"))
        assert eng.run() is StopCondition.EXHAUSTED
        assert log == ["a", "b", "c"]

    def test_clock_tracks_event_times(self):
        eng = Engine()
        seen = []
        eng.at(5.0, lambda: seen.append(eng.now))
        eng.at(10.0, lambda: seen.append(eng.now))
        eng.run()
        assert seen == [5.0, 10.0]
        assert eng.now == 10.0

    def test_after_is_relative_to_now(self):
        eng = Engine()
        seen = []
        eng.at(10.0, lambda: eng.after(5.0, lambda: seen.append(eng.now)))
        eng.run()
        assert seen == [15.0]

    def test_cannot_schedule_in_past(self):
        eng = Engine()
        eng.at(10.0, lambda: None)
        eng.run()
        with pytest.raises(ValueError):
            eng.at(5.0, lambda: None)

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            Engine().after(-1.0, lambda: None)

    def test_bad_start_time_rejected(self):
        with pytest.raises(ValueError):
            Engine(start_time=-1.0)
        with pytest.raises(ValueError):
            Engine(start_time=math.nan)

    def test_events_scheduled_during_run_fire(self):
        eng = Engine()
        log = []
        eng.at(1.0, lambda: eng.at(2.0, lambda: log.append("child")))
        eng.run()
        assert log == ["child"]

    def test_events_fired_counter(self):
        eng = Engine()
        for t in range(5):
            eng.at(float(t), lambda: None)
        eng.run()
        assert eng.events_fired == 5

    def test_pending_counts_live_events(self):
        eng = Engine()
        h = eng.at(1.0, lambda: None)
        eng.at(2.0, lambda: None)
        assert eng.pending == 2
        eng.cancel(h)
        assert eng.pending == 1


class TestStopConditions:
    def test_horizon_stops_and_advances_clock(self):
        eng = Engine()
        log = []
        eng.at(1.0, lambda: log.append(1))
        eng.at(100.0, lambda: log.append(100))
        assert eng.run(until=50.0) is StopCondition.HORIZON
        assert log == [1]
        assert eng.now == 50.0
        # resuming runs the remaining event
        assert eng.run() is StopCondition.EXHAUSTED
        assert log == [1, 100]

    def test_exhausted_advances_to_finite_horizon(self):
        eng = Engine()
        eng.at(1.0, lambda: None)
        assert eng.run(until=10.0) is StopCondition.EXHAUSTED
        assert eng.now == 10.0

    def test_predicate_stops_after_event(self):
        eng = Engine()
        log = []
        eng.at(1.0, lambda: log.append(1))
        eng.at(2.0, lambda: log.append(2))
        cond = eng.run(stop_when=lambda: len(log) >= 1)
        assert cond is StopCondition.PREDICATE
        assert log == [1]

    def test_predicate_checked_before_first_event(self):
        eng = Engine()
        log = []
        eng.at(1.0, lambda: log.append(1))
        assert eng.run(stop_when=lambda: True) is StopCondition.PREDICATE
        assert log == []

    def test_budget(self):
        eng = Engine()
        for t in range(10):
            eng.at(float(t), lambda: None)
        assert eng.run(max_events=3) is StopCondition.BUDGET
        assert eng.events_fired == 3

    def test_halt_from_within_event(self):
        eng = Engine()
        log = []
        eng.at(1.0, lambda: (log.append(1), eng.halt()))
        eng.at(2.0, lambda: log.append(2))
        assert eng.run() is StopCondition.HALTED
        assert log == [1]
        # a fresh run resumes
        assert eng.run() is StopCondition.EXHAUSTED
        assert log == [1, 2]

    def test_event_at_horizon_boundary_fires(self):
        eng = Engine()
        log = []
        eng.at(50.0, lambda: log.append("edge"))
        eng.run(until=50.0)
        assert log == ["edge"]


class TestCancellationAndStep:
    def test_cancelled_event_does_not_fire(self):
        eng = Engine()
        log = []
        h = eng.at(1.0, lambda: log.append("x"))
        assert eng.cancel(h) is True
        assert eng.cancel(h) is False
        eng.run()
        assert log == []

    def test_step_fires_exactly_one(self):
        eng = Engine()
        log = []
        eng.at(1.0, lambda: log.append(1))
        eng.at(2.0, lambda: log.append(2))
        assert eng.step() is True
        assert log == [1]
        assert eng.step() is True
        assert eng.step() is False


class TestEngineProperties:
    @given(st.lists(st.floats(min_value=0, max_value=1e5, allow_nan=False), max_size=100))
    def test_fires_in_nondecreasing_time(self, times):
        eng = Engine()
        seen = []
        for t in times:
            eng.at(t, lambda t=t: seen.append(eng.now))
        eng.run()
        assert seen == sorted(seen)
        assert len(seen) == len(times)
