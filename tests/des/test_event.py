"""Event ordering and handle semantics."""

import pytest

from repro.des.event import (
    PRIORITY_EARLY,
    PRIORITY_LATE,
    PRIORITY_NORMAL,
    Event,
    EventHandle,
)


def _ev(time=0.0, priority=PRIORITY_NORMAL, seq=0, tag=""):
    return Event(time=time, priority=priority, seq=seq, action=lambda: None, tag=tag)


class TestEventOrdering:
    def test_orders_by_time_first(self):
        assert _ev(time=1.0, seq=5) < _ev(time=2.0, seq=0)

    def test_orders_by_priority_at_same_time(self):
        early = _ev(priority=PRIORITY_EARLY, seq=9)
        late = _ev(priority=PRIORITY_LATE, seq=0)
        normal = _ev(priority=PRIORITY_NORMAL, seq=1)
        assert early < normal < late

    def test_orders_by_seq_as_final_tiebreak(self):
        assert _ev(seq=0) < _ev(seq=1)

    def test_sort_key_matches_lt(self):
        a, b = _ev(time=3.0, seq=1), _ev(time=3.0, seq=2)
        assert (a < b) == (a.sort_key() < b.sort_key())

    def test_sorting_a_list_is_stable_total_order(self):
        events = [_ev(time=t, priority=p, seq=s) for s, (t, p) in enumerate(
            [(5.0, 0), (1.0, 10), (1.0, -10), (1.0, 0), (0.0, 0)]
        )]
        ordered = sorted(events)
        keys = [e.sort_key() for e in ordered]
        assert keys == sorted(keys)
        assert ordered[0].time == 0.0
        assert ordered[1].priority == -10


class TestEventHandle:
    def test_alive_initially(self):
        h = EventHandle(_ev())
        assert h.alive

    def test_cancel_returns_true_once(self):
        h = EventHandle(_ev())
        assert h.cancel() is True
        assert h.cancel() is False
        assert not h.alive
        assert h.cancelled

    def test_cancel_after_fired_is_noop(self):
        h = EventHandle(_ev())
        h.fired = True
        assert h.cancel() is False
        assert not h.cancelled


class TestEventValidation:
    def test_tag_roundtrip(self):
        assert _ev(tag="contact:1-2").tag == "contact:1-2"

    @pytest.mark.parametrize("time", [0.0, 1.5, 1e9])
    def test_times_allowed(self, time):
        assert _ev(time=time).time == time
