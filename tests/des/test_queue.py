"""EventQueue: ordering, stability, cancellation, compaction."""

import pytest
from hypothesis import given, strategies as st

from repro.des.event import PRIORITY_EARLY, PRIORITY_LATE
from repro.des.queue import EventQueue


def _noop():
    return None


class TestPushPop:
    def test_pops_in_time_order(self):
        q = EventQueue()
        for t in [5.0, 1.0, 3.0]:
            q.push(t, _noop)
        assert [q.pop().time for _ in range(3)] == [1.0, 3.0, 5.0]

    def test_same_time_pops_in_insertion_order(self):
        q = EventQueue()
        handles = [q.push(2.0, _noop, tag=str(i)) for i in range(5)]
        tags = [q.pop().tag for _ in range(5)]
        assert tags == ["0", "1", "2", "3", "4"]
        assert all(h.fired for h in handles)

    def test_priority_beats_insertion_order(self):
        q = EventQueue()
        q.push(1.0, _noop, priority=PRIORITY_LATE, tag="late")
        q.push(1.0, _noop, priority=PRIORITY_EARLY, tag="early")
        q.push(1.0, _noop, tag="normal")
        assert [q.pop().tag for _ in range(3)] == ["early", "normal", "late"]

    def test_pop_empty_returns_none(self):
        assert EventQueue().pop() is None

    def test_peek_does_not_remove(self):
        q = EventQueue()
        q.push(1.0, _noop, tag="x")
        assert q.peek().tag == "x"
        assert len(q) == 1
        assert q.pop().tag == "x"

    def test_peek_empty_returns_none(self):
        assert EventQueue().peek() is None

    def test_len_and_bool(self):
        q = EventQueue()
        assert not q
        q.push(0.0, _noop)
        assert q and len(q) == 1

    @pytest.mark.parametrize("bad", [-1.0, float("nan"), float("-inf")])
    def test_rejects_bad_times(self, bad):
        with pytest.raises(ValueError):
            EventQueue().push(bad, _noop)

    def test_seq_monotonic(self):
        q = EventQueue()
        s0 = q.next_seq
        q.push(0.0, _noop)
        assert q.next_seq == s0 + 1


class TestCancellation:
    def test_cancelled_event_skipped_on_pop(self):
        q = EventQueue()
        h = q.push(1.0, _noop, tag="dead")
        q.push(2.0, _noop, tag="live")
        h.cancel()
        q.notify_cancelled()
        assert q.pop().tag == "live"

    def test_cancelled_event_skipped_on_peek(self):
        q = EventQueue()
        h = q.push(1.0, _noop)
        q.push(2.0, _noop, tag="live")
        h.cancel()
        assert q.peek().tag == "live"

    def test_len_excludes_cancelled(self):
        q = EventQueue()
        h = q.push(1.0, _noop)
        q.push(2.0, _noop)
        h.cancel()
        q.notify_cancelled()
        assert len(q) == 1

    def test_clear_cancels_everything(self):
        q = EventQueue()
        handles = [q.push(float(i), _noop) for i in range(4)]
        q.clear()
        assert len(q) == 0
        assert all(h.cancelled for h in handles)
        assert q.pop() is None

    def test_iter_pending_skips_cancelled(self):
        q = EventQueue()
        h = q.push(1.0, _noop, tag="dead")
        q.push(2.0, _noop, tag="live")
        h.cancel()
        assert [e.tag for e in q.iter_pending()] == ["live"]

    def test_compaction_keeps_live_events(self):
        q = EventQueue()
        live = [q.push(float(1000 + i), _noop, tag=f"live{i}") for i in range(10)]
        dead = [q.push(float(i), _noop) for i in range(200)]
        for h in dead:
            h.cancel()
            q.notify_cancelled()
        # compaction has occurred (heap shrunk); all live events still pop
        assert len(q) == 10
        tags = [q.pop().tag for _ in range(10)]
        assert tags == [f"live{i}" for i in range(10)]
        assert all(h.fired for h in live)


class TestQueueProperties:
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=1e6, allow_nan=False),
                st.integers(min_value=-10, max_value=10),
            ),
            max_size=200,
        )
    )
    def test_pops_sorted_by_key(self, items):
        q = EventQueue()
        for t, p in items:
            q.push(t, _noop, priority=p)
        popped = []
        while q:
            popped.append(q.pop().sort_key())
        assert popped == sorted(popped)
        assert len(popped) == len(items)

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=1e3, allow_nan=False),
                st.booleans(),
            ),
            max_size=200,
        )
    )
    def test_cancellation_subset(self, items):
        q = EventQueue()
        expected = []
        for idx, (t, keep) in enumerate(items):
            h = q.push(t, _noop, tag=str(idx))
            if keep:
                expected.append((t, idx))
            else:
                h.cancel()
                q.notify_cancelled()
        expected.sort()
        got = []
        while q:
            ev = q.pop()
            got.append((ev.time, int(ev.tag)))
        assert got == expected


class TestQueueInvariants:
    """Lifecycle invariants: clear → push → pop, dead-count consistency."""

    def test_clear_routes_through_handle_cancel(self):
        q = EventQueue()
        handles = [q.push(float(i), _noop) for i in range(5)]
        fired = q.pop()
        assert fired is not None and handles[0].fired
        q.clear()
        # fired handles stay fired (cancel() is a no-op on them) …
        assert handles[0].fired and not handles[0].cancelled
        # … pending ones are cancelled through the one cancellation path
        assert all(h.cancelled and not h.fired for h in handles[1:])

    def test_clear_then_push_then_pop(self):
        q = EventQueue()
        for i in range(10):
            q.push(float(i), _noop)
        q.clear()
        assert len(q) == 0 and not q
        h = q.push(3.0, _noop, tag="fresh")
        assert len(q) == 1
        ev = q.pop()
        assert ev.tag == "fresh" and h.fired
        assert q.pop() is None and len(q) == 0

    def test_seq_monotonic_across_clear(self):
        q = EventQueue()
        q.push(0.0, _noop)
        before = q.next_seq
        q.clear()
        q.push(0.0, _noop)
        assert q.next_seq == before + 1

    def test_dead_count_consistent_after_compaction(self):
        q = EventQueue()
        live = [q.push(float(2_000 + i), _noop) for i in range(8)]
        dead = [q.push(float(i), _noop) for i in range(300)]
        for h in dead:
            if h.cancel():
                q.notify_cancelled()
        # compaction ran at least once (the heap shrank well below the 308
        # entries pushed); whatever dead weight re-accumulated afterwards,
        # the dead count must exactly match the dead entries in the heap
        assert len(q._heap) < 100
        actually_dead = sum(1 for e in q._heap if not e[3].alive)
        assert q._dead == actually_dead
        assert len(q) == 8
        q.clear()
        assert q._dead == 0 and len(q) == 0 and len(q._heap) == 0
        assert all(h.cancelled for h in live)

    def test_double_cancel_does_not_corrupt_dead_count(self):
        q = EventQueue()
        h = q.push(1.0, _noop)
        q.push(2.0, _noop)
        assert h.cancel() is True
        q.notify_cancelled()
        assert h.cancel() is False  # second cancel is refused by the handle
        assert len(q) == 1
        assert q.pop().time == 2.0


class TestScheduleSorted:
    def test_bulk_load_empty_queue_pops_in_order(self):
        q = EventQueue()
        n = q.schedule_sorted((float(i), _noop, ()) for i in range(50))
        assert n == 50 and len(q) == 50
        times = [q.pop().time for _ in range(50)]
        assert times == [float(i) for i in range(50)]

    def test_bulk_load_merges_with_existing_events(self):
        q = EventQueue()
        q.push(2.5, _noop, tag="mid")
        q.push(0.5, _noop, tag="early")
        q.schedule_sorted([(1.0, _noop, ()), (2.0, _noop, ()), (3.0, _noop, ())])
        popped = [q.pop().time for _ in range(5)]
        assert popped == [0.5, 1.0, 2.0, 2.5, 3.0]

    def test_equal_times_keep_insertion_order(self):
        q = EventQueue()

        def mk(i):
            return lambda: i

        q.schedule_sorted([(1.0, mk(i), ()) for i in range(5)])
        assert [q.pop().action() for _ in range(5)] == [0, 1, 2, 3, 4]

    def test_rejects_decreasing_times(self):
        q = EventQueue()
        with pytest.raises(ValueError, match="non-decreasing"):
            q.schedule_sorted([(2.0, _noop, ()), (1.0, _noop, ())])

    def test_rejects_negative_and_nan_times(self):
        q = EventQueue()
        with pytest.raises(ValueError):
            q.schedule_sorted([(-1.0, _noop, ())])
        with pytest.raises(ValueError):
            q.schedule_sorted([(float("nan"), _noop, ())])

    def test_bulk_events_carry_args(self):
        q = EventQueue()
        seen = []
        q.schedule_sorted([(0.0, seen.append, ("x",))])
        ev = q.pop()
        ev.action(*ev.args)
        assert seen == ["x"]

    def test_empty_iterable_is_noop(self):
        q = EventQueue()
        assert q.schedule_sorted([]) == 0
        assert len(q) == 0


class TestFusedPeekPop:
    def test_peek_time_then_pop_next(self):
        q = EventQueue()
        q.push(4.0, _noop, tag="b")
        q.push(1.0, _noop, tag="a")
        assert q.peek_time() == 1.0
        assert q.pop_next().tag == "a"
        assert q.peek_time() == 4.0

    def test_peek_time_skims_cancelled(self):
        q = EventQueue()
        h = q.push(1.0, _noop)
        q.push(2.0, _noop, tag="live")
        h.cancel()
        assert q.peek_time() == 2.0
        assert q.pop_next().tag == "live"
        assert q.peek_time() is None

    def test_lazy_tag_resolved_on_access(self):
        q = EventQueue()
        built = []

        def render():
            built.append(True)
            return "lazy:1"

        q.push(1.0, _noop, tag=render)
        assert built == []  # nothing built at schedule time
        ev = q.pop()
        assert ev.tag == "lazy:1"
        assert ev.tag == "lazy:1"  # cached
        assert built == [True]
