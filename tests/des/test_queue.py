"""EventQueue: ordering, stability, cancellation, compaction."""

import pytest
from hypothesis import given, strategies as st

from repro.des.event import PRIORITY_EARLY, PRIORITY_LATE
from repro.des.queue import EventQueue


def _noop():
    return None


class TestPushPop:
    def test_pops_in_time_order(self):
        q = EventQueue()
        for t in [5.0, 1.0, 3.0]:
            q.push(t, _noop)
        assert [q.pop().time for _ in range(3)] == [1.0, 3.0, 5.0]

    def test_same_time_pops_in_insertion_order(self):
        q = EventQueue()
        handles = [q.push(2.0, _noop, tag=str(i)) for i in range(5)]
        tags = [q.pop().tag for _ in range(5)]
        assert tags == ["0", "1", "2", "3", "4"]
        assert all(h.fired for h in handles)

    def test_priority_beats_insertion_order(self):
        q = EventQueue()
        q.push(1.0, _noop, priority=PRIORITY_LATE, tag="late")
        q.push(1.0, _noop, priority=PRIORITY_EARLY, tag="early")
        q.push(1.0, _noop, tag="normal")
        assert [q.pop().tag for _ in range(3)] == ["early", "normal", "late"]

    def test_pop_empty_returns_none(self):
        assert EventQueue().pop() is None

    def test_peek_does_not_remove(self):
        q = EventQueue()
        q.push(1.0, _noop, tag="x")
        assert q.peek().tag == "x"
        assert len(q) == 1
        assert q.pop().tag == "x"

    def test_peek_empty_returns_none(self):
        assert EventQueue().peek() is None

    def test_len_and_bool(self):
        q = EventQueue()
        assert not q
        q.push(0.0, _noop)
        assert q and len(q) == 1

    @pytest.mark.parametrize("bad", [-1.0, float("nan"), float("-inf")])
    def test_rejects_bad_times(self, bad):
        with pytest.raises(ValueError):
            EventQueue().push(bad, _noop)

    def test_seq_monotonic(self):
        q = EventQueue()
        s0 = q.next_seq
        q.push(0.0, _noop)
        assert q.next_seq == s0 + 1


class TestCancellation:
    def test_cancelled_event_skipped_on_pop(self):
        q = EventQueue()
        h = q.push(1.0, _noop, tag="dead")
        q.push(2.0, _noop, tag="live")
        h.cancel()
        q.notify_cancelled()
        assert q.pop().tag == "live"

    def test_cancelled_event_skipped_on_peek(self):
        q = EventQueue()
        h = q.push(1.0, _noop)
        q.push(2.0, _noop, tag="live")
        h.cancel()
        assert q.peek().tag == "live"

    def test_len_excludes_cancelled(self):
        q = EventQueue()
        h = q.push(1.0, _noop)
        q.push(2.0, _noop)
        h.cancel()
        q.notify_cancelled()
        assert len(q) == 1

    def test_clear_cancels_everything(self):
        q = EventQueue()
        handles = [q.push(float(i), _noop) for i in range(4)]
        q.clear()
        assert len(q) == 0
        assert all(h.cancelled for h in handles)
        assert q.pop() is None

    def test_iter_pending_skips_cancelled(self):
        q = EventQueue()
        h = q.push(1.0, _noop, tag="dead")
        q.push(2.0, _noop, tag="live")
        h.cancel()
        assert [e.tag for e in q.iter_pending()] == ["live"]

    def test_compaction_keeps_live_events(self):
        q = EventQueue()
        live = [q.push(float(1000 + i), _noop, tag=f"live{i}") for i in range(10)]
        dead = [q.push(float(i), _noop) for i in range(200)]
        for h in dead:
            h.cancel()
            q.notify_cancelled()
        # compaction has occurred (heap shrunk); all live events still pop
        assert len(q) == 10
        tags = [q.pop().tag for _ in range(10)]
        assert tags == [f"live{i}" for i in range(10)]
        assert all(h.fired for h in live)


class TestQueueProperties:
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=1e6, allow_nan=False),
                st.integers(min_value=-10, max_value=10),
            ),
            max_size=200,
        )
    )
    def test_pops_sorted_by_key(self, items):
        q = EventQueue()
        for t, p in items:
            q.push(t, _noop, priority=p)
        popped = []
        while q:
            popped.append(q.pop().sort_key())
        assert popped == sorted(popped)
        assert len(popped) == len(items)

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=1e3, allow_nan=False),
                st.booleans(),
            ),
            max_size=200,
        )
    )
    def test_cancellation_subset(self, items):
        q = EventQueue()
        expected = []
        for idx, (t, keep) in enumerate(items):
            h = q.push(t, _noop, tag=str(idx))
            if keep:
                expected.append((t, idx))
            else:
                h.cancel()
                q.notify_cancelled()
        expected.sort()
        got = []
        while q:
            ev = q.pop()
            got.append((ev.time, int(ev.tag)))
        assert got == expected
