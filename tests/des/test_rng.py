"""Deterministic random stream derivation."""

import numpy as np
import pytest

from repro.des.rng import RngHub, derive_seed, spawn_streams


class TestDeriveSeed:
    def test_deterministic(self):
        a = np.random.default_rng(derive_seed(7, "x", 3)).random(4)
        b = np.random.default_rng(derive_seed(7, "x", 3)).random(4)
        assert np.array_equal(a, b)

    def test_distinct_keys_give_distinct_streams(self):
        a = np.random.default_rng(derive_seed(7, "x")).random(8)
        b = np.random.default_rng(derive_seed(7, "y")).random(8)
        assert not np.array_equal(a, b)

    def test_distinct_master_seeds_differ(self):
        a = np.random.default_rng(derive_seed(1, "x")).random(8)
        b = np.random.default_rng(derive_seed(2, "x")).random(8)
        assert not np.array_equal(a, b)

    def test_int_and_str_keys_compose(self):
        a = np.random.default_rng(derive_seed(7, "run", 1, "pq")).random(4)
        b = np.random.default_rng(derive_seed(7, "run", 2, "pq")).random(4)
        assert not np.array_equal(a, b)

    def test_large_int_keys_ok(self):
        s = derive_seed(2**63, 2**40)
        assert np.random.default_rng(s).random() >= 0

    def test_string_hash_stable_across_calls(self):
        # guards against accidental use of salted hash()
        assert derive_seed(0, "stable").entropy == derive_seed(0, "stable").entropy


class TestSpawnStreams:
    def test_one_stream_per_name(self):
        streams = spawn_streams(5, ["a", "b", "c"])
        assert set(streams) == {"a", "b", "c"}
        vals = {name: gen.random() for name, gen in streams.items()}
        assert len(set(vals.values())) == 3


class TestRngHub:
    def test_stream_cached(self):
        hub = RngHub(3)
        assert hub.stream("coins") is hub.stream("coins")

    def test_fresh_restarts(self):
        hub = RngHub(3)
        first = hub.fresh("w").random(3)
        again = hub.fresh("w").random(3)
        assert np.array_equal(first, again)

    def test_stream_requires_keys(self):
        hub = RngHub(3)
        with pytest.raises(ValueError):
            hub.stream()
        with pytest.raises(ValueError):
            hub.fresh()

    def test_streams_independent_of_creation_order(self):
        h1 = RngHub(9)
        a_first = h1.stream("a").random()
        h2 = RngHub(9)
        h2.stream("b")  # create b before a
        a_second = h2.stream("a").random()
        assert a_first == a_second
