"""Shared test utilities: micro-traces, a fake services object, run helpers.

Most protocol behaviour is asserted through *real* simulations on tiny
hand-built contact traces (so the tests exercise the same code paths as the
experiments); :class:`FakeSim` exists for the handful of protocol unit
tests that need to poke a hook in isolation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.bundle import NO_EXPIRY, Bundle, BundleId, StoredBundle
from repro.core.node import Node
from repro.core.policies import make_drop_policy
from repro.core.protocols.registry import ProtocolConfig, make_protocol_config
from repro.core.results import RunResult
from repro.core.simulation import Simulation, SimulationConfig
from repro.core.workload import Flow
from repro.mobility.contact import ContactTrace


def micro_trace(
    rows: list[tuple[float, float, int, int]],
    num_nodes: int,
    *,
    horizon: float | None = None,
    name: str = "micro",
) -> ContactTrace:
    """Build a trace from (start, end, a, b) rows."""
    return ContactTrace.from_tuples(rows, num_nodes, horizon=horizon, name=name)


def run_micro(
    protocol: str | ProtocolConfig,
    rows: list[tuple[float, float, int, int]],
    num_nodes: int,
    *,
    source: int = 0,
    destination: int | None = None,
    load: int = 1,
    horizon: float | None = None,
    seed: int = 0,
    sim_config: SimulationConfig | None = None,
    protocol_kwargs: dict | None = None,
) -> tuple[Simulation, RunResult]:
    """Run one simulation on a hand-built trace and return (sim, result)."""
    if isinstance(protocol, str):
        protocol = make_protocol_config(protocol, **(protocol_kwargs or {}))
    trace = micro_trace(rows, num_nodes, horizon=horizon)
    dest = destination if destination is not None else num_nodes - 1
    flows = [Flow(flow_id=0, source=source, destination=dest, num_bundles=load)]
    sim = Simulation(trace, protocol, flows, config=sim_config, seed=seed)
    return sim, sim.run()


@dataclass
class RemovalRecord:
    node_id: int
    bid: BundleId
    reason: str
    at: float


class FakeSim:
    """Minimal SimulationServices stub for protocol unit tests."""

    def __init__(self) -> None:
        self._now = 0.0
        self.removals: list[RemovalRecord] = []
        self.evictions: list[tuple[int, BundleId, str]] = []
        self.expiries: dict[tuple[int, BundleId], float] = {}
        self.control_units: list[tuple[int, str, int]] = []
        self.control_storage: dict[int, float] = {}

    @property
    def now(self) -> float:
        return self._now

    def advance(self, t: float) -> None:
        self._now = t

    def remove_copy(self, node: Node, bid: BundleId, reason: str) -> None:
        node.remove_copy(bid)
        self.removals.append(RemovalRecord(node.id, bid, reason, self._now))

    def evict_copy(self, node: Node, bid: BundleId, policy: str) -> None:
        node.counters.evictions += 1
        self.evictions.append((node.id, bid, policy))
        self.remove_copy(node, bid, reason="evicted")

    def set_expiry(self, node: Node, sb: StoredBundle, expiry: float) -> None:
        sb.expiry = expiry
        if expiry is not NO_EXPIRY:
            self.expiries[(node.id, sb.bid)] = expiry

    def count_control_units(self, node: Node, kind: str, units: int) -> None:
        self.control_units.append((node.id, kind, units))

    def set_control_storage(self, node: Node, slots: float) -> None:
        self.control_storage[node.id] = slots


def make_node(
    node_id: int = 0,
    *,
    capacity: int = 10,
    protocol: str = "pure",
    sim: FakeSim | None = None,
    seed: int = 0,
    drop_policy: str | None = None,
    **protocol_kwargs,
) -> tuple[Node, FakeSim]:
    """A node with a bound protocol over a :class:`FakeSim`."""
    sim = sim or FakeSim()
    policy = (
        make_drop_policy(drop_policy, rng=np.random.default_rng(seed))
        if drop_policy is not None
        else None
    )
    node = Node(node_id, capacity, drop_policy=policy)
    cfg = make_protocol_config(protocol, **protocol_kwargs)
    node.protocol = cfg.build(node, sim, np.random.default_rng(seed))
    return node, sim


def bundle(
    seq: int = 1, *, flow: int = 0, source: int = 0, destination: int = 1
) -> Bundle:
    """A test bundle."""
    return Bundle(
        bid=BundleId(flow=flow, seq=seq),
        source=source,
        destination=destination,
        created_at=0.0,
    )


def stored(
    seq: int = 1,
    *,
    flow: int = 0,
    source: int = 0,
    destination: int = 1,
    stored_at: float = 0.0,
    ec: int = 0,
    is_origin: bool = False,
) -> StoredBundle:
    """A test stored-copy."""
    return StoredBundle(
        bundle=bundle(seq, flow=flow, source=source, destination=destination),
        stored_at=stored_at,
        ec=ec,
        is_origin=is_origin,
    )


#: A simple 4-node relay chain: 0 meets 1, then 1 meets 2, then 2 meets 3.
CHAIN_ROWS: list[tuple[float, float, int, int]] = [
    (100.0, 350.0, 0, 1),
    (1_000.0, 1_250.0, 1, 2),
    (2_000.0, 2_250.0, 2, 3),
]
