"""CLI surface."""

import json

import pytest

from repro.cli import build_parser, main

TINY_SCENARIO = {
    "name": "tiny",
    "seed": 3,
    "mobility": {
        "kind": "interval",
        "params": {"num_nodes": 8, "max_encounters_per_node": 10, "max_interval": 300.0},
    },
    "protocols": [{"name": "pure"}, {"name": "ttl", "params": {"ttl": 300.0}}],
    "workload": {"loads": [2, 4], "replications": 2},
}


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "fig13"])
        assert args.scale == "quick"
        assert args.seed == 7
        assert args.experiments == ["fig13"]

    def test_trace_requires_out(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["trace", "campus"])

    def test_jobs_defaults_to_serial(self):
        assert build_parser().parse_args(["run", "fig13"]).jobs == 1

    def test_jobs_global_and_per_subcommand(self):
        assert build_parser().parse_args(["--jobs", "4", "run", "fig13"]).jobs == 4
        assert build_parser().parse_args(["run", "fig13", "--jobs", "4"]).jobs == 4
        assert build_parser().parse_args(["run-scenario", "s.json", "--jobs", "2"]).jobs == 2

    def test_trace_engine_knob(self):
        args = build_parser().parse_args(["trace", "rwp", "--out", "x"])
        assert args.engine is None and args.nodes == 12  # None -> fast
        args = build_parser().parse_args(
            ["trace", "rwp", "--engine", "exact", "--nodes", "30", "--out", "x"]
        )
        assert args.engine == "exact" and args.nodes == 30
        with pytest.raises(SystemExit):
            build_parser().parse_args(["trace", "rwp", "--engine", "bogus", "--out", "x"])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig07" in out and "table2" in out

    def test_run_table1(self, capsys):
        assert main(["run", "table1"]) == 0
        assert "Random Waypoint" in capsys.readouterr().out

    def test_run_figure_with_exports(self, tmp_path, capsys):
        code = main(
            ["run", "fig14", "--scale", "smoke", "--seed", "3", "--out", str(tmp_path)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Interval time = 400" in out
        csv_file = tmp_path / "fig14.csv"
        json_file = tmp_path / "fig14.json"
        assert csv_file.exists()
        doc = json.loads(json_file.read_text())
        assert doc["meta"]["experiment"] == "fig14"
        assert doc["meta"]["scale"] == "smoke"

    def test_run_table_with_export(self, tmp_path, capsys):
        assert main(["run", "table1", "--out", str(tmp_path)]) == 0
        assert (tmp_path / "table1.txt").exists()

    def test_trace_and_stats_round_trip(self, tmp_path, capsys):
        path = tmp_path / "campus.trace"
        assert main(["trace", "campus", "--seed", "2", "--out", str(path)]) == 0
        assert "contacts" in capsys.readouterr().out
        assert main(["stats", str(path)]) == 0
        out = capsys.readouterr().out
        assert "num_contacts" in out
        assert "intercontact_pair_median" in out

    def test_trace_engines_write_identical_files(self, tmp_path, capsys):
        fast_path = tmp_path / "fast.trace"
        exact_path = tmp_path / "exact.trace"
        common = ["trace", "classic-rwp", "--seed", "4", "--nodes", "6"]
        assert main(common + ["--engine", "fast", "--out", str(fast_path)]) == 0
        assert main(common + ["--engine", "exact", "--out", str(exact_path)]) == 0
        capsys.readouterr()
        assert fast_path.read_text() == exact_path.read_text()

    def test_trace_campus_honours_nodes_and_rejects_engine(self, tmp_path, capsys):
        path = tmp_path / "campus.trace"
        assert main(["trace", "campus", "--nodes", "6", "--out", str(path)]) == 0
        assert "6 nodes" in capsys.readouterr().out
        code = main(
            ["trace", "campus", "--engine", "fast", "--out", str(tmp_path / "x")]
        )
        assert code == 2
        assert "--engine" in capsys.readouterr().err

    def test_unknown_experiment_raises(self):
        with pytest.raises(KeyError):
            main(["run", "fig99", "--scale", "smoke"])


class TestRunScenario:
    @pytest.fixture
    def scenario_file(self, tmp_path):
        path = tmp_path / "tiny.json"
        path.write_text(json.dumps(TINY_SCENARIO))
        return path

    def test_runs_scenario_file(self, scenario_file, capsys):
        assert main(["run-scenario", str(scenario_file)]) == 0
        out = capsys.readouterr().out
        assert "scenario tiny: 8 runs" in out
        assert "Delivery ratio" in out
        assert "Epidemic with TTL=300" in out

    def test_parallel_matches_serial_output(self, scenario_file, capsys):
        assert main(["run-scenario", str(scenario_file)]) == 0
        serial_out = capsys.readouterr().out
        assert main(["--jobs", "2", "run-scenario", str(scenario_file)]) == 0
        parallel_out = capsys.readouterr().out
        # identical results => identical tables (headers differ in jobs/time)
        assert serial_out.split("====")[-1] == parallel_out.split("====")[-1]

    def test_exports(self, scenario_file, tmp_path, capsys):
        out_dir = tmp_path / "out"
        assert main(["run-scenario", str(scenario_file), "--out", str(out_dir)]) == 0
        assert (out_dir / "tiny_runs.csv").exists()
        doc = json.loads((out_dir / "tiny_delivery_ratio.json").read_text())
        assert doc["meta"]["scenario"] == "tiny"
        assert doc["meta"]["loads"] == [2, 4]

    def test_verbose_progress_counts_cells(self, scenario_file, capsys):
        assert main(["run-scenario", str(scenario_file), "--verbose"]) == 0
        err = capsys.readouterr().err
        assert "[1/8]" in err and "[8/8]" in err

    def test_pathological_name_sanitized_in_exports(self, tmp_path, capsys):
        path = tmp_path / "odd.json"
        path.write_text(json.dumps({**TINY_SCENARIO, "name": "camp/us base"}))
        out_dir = tmp_path / "out"
        assert main(["run-scenario", str(path), "--out", str(out_dir)]) == 0
        assert (out_dir / "camp_us_base_runs.csv").exists()

    def test_bad_scenario_rejected(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({**TINY_SCENARIO, "warp": 9}))
        with pytest.raises(ValueError, match="unknown ScenarioSpec key"):
            main(["run-scenario", str(bad)])


HETEROGENEOUS_SCENARIO = {
    **TINY_SCENARIO,
    "name": "tiny-het",
    "buffer_capacity": [1, 1, 1, 1, 4, 4, 4, 4],
    "bundle_tx_time": [100.0, 100.0, 100.0, 100.0, 50.0, 50.0, 50.0, 50.0],
    "drop_policy": "drop-oldest",
}


class TestBufferContentionCli:
    """Acceptance: run-scenario takes per-node capacities + drop policies."""

    @pytest.fixture
    def het_file(self, tmp_path):
        path = tmp_path / "het.json"
        path.write_text(json.dumps(HETEROGENEOUS_SCENARIO))
        return path

    def test_parser_accepts_policy_and_capacity_flags(self):
        args = build_parser().parse_args(
            ["run-scenario", "s.json", "--drop-policy", "drop-oldest",
             "--buffer-capacity", "4"]
        )
        assert args.drop_policy == "drop-oldest"
        assert args.buffer_capacity == 4
        args = build_parser().parse_args(
            ["run-scenario", "s.json", "--buffer-capacity", "1,2,3"]
        )
        assert args.buffer_capacity == (1, 2, 3)
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run-scenario", "s.json", "--drop-policy", "fifo"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["run-scenario", "s.json", "--buffer-capacity", "x"]
            )
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["run-scenario", "s.json", "--buffer-capacity", "0"]
            )

    def test_runs_heterogeneous_scenario_file(self, het_file, capsys):
        assert main(["run-scenario", str(het_file)]) == 0
        out = capsys.readouterr().out
        assert "scenario tiny-het: 8 runs" in out
        assert "Delivery ratio" in out

    def test_policy_override_flag(self, tmp_path, capsys):
        path = tmp_path / "tiny.json"
        path.write_text(json.dumps(TINY_SCENARIO))
        assert main(
            ["run-scenario", str(path), "--drop-policy", "drop-random",
             "--buffer-capacity", "1,1,1,1,2,2,2,2"]
        ) == 0
        assert "8 runs" in capsys.readouterr().out

    def test_repo_example_scenario_loads(self):
        from pathlib import Path

        from repro.scenarios import ScenarioSpec

        example = (
            Path(__file__).parent.parent / "examples" / "scenarios"
            / "heterogeneous_buffers.json"
        )
        spec = ScenarioSpec.load(example)
        assert spec.drop_policy == "drop-oldest"
        assert len(spec.buffer_capacity) == 12


ODE_SCENARIO = {
    "name": "tiny-ode",
    "seed": 11,
    "mobility": {
        "kind": "poisson",
        "params": {
            "num_nodes": 12,
            "beta": 5e-4,
            "horizon": 20000.0,
            "duration": 40.0,
        },
    },
    "protocols": [{"name": "pure"}],
    "workload": {"loads": [2, 4], "replications": 2},
    "buffer_capacity": 64,
    "bundle_tx_time": 1.0,
    "engine": "ode",
    "surrogate_tolerance": 0.5,
}


class TestHybridEngineCli:
    """Acceptance: run-scenario --engine ode with the cross-validation gate."""

    @pytest.fixture
    def ode_file(self, tmp_path):
        path = tmp_path / "ode.json"
        path.write_text(json.dumps(ODE_SCENARIO))
        return path

    def test_parser_accepts_engine_flags(self):
        args = build_parser().parse_args(["run-scenario", "s.json", "--engine", "ode"])
        assert args.engine == "ode"
        args = build_parser().parse_args(
            ["run-scenario", "s.json", "--no-surrogate-check"]
        )
        assert args.no_surrogate_check
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run-scenario", "s.json", "--engine", "warp"])

    def test_runs_ode_scenario_with_gate(self, ode_file, capsys):
        assert main(["run-scenario", str(ode_file)]) == 0
        out = capsys.readouterr().out
        assert "scenario tiny-ode: 4 runs" in out
        assert "surrogate gate: PASS" in out
        assert "DES noise" in out
        assert "Delivery ratio" in out

    def test_no_surrogate_check_skips_gate(self, ode_file, capsys):
        assert main(["run-scenario", str(ode_file), "--no-surrogate-check"]) == 0
        out = capsys.readouterr().out
        assert "4 runs" in out
        assert "surrogate gate" not in out

    def test_engine_override_forces_des(self, ode_file, capsys):
        assert main(["run-scenario", str(ode_file), "--engine", "des"]) == 0
        out = capsys.readouterr().out
        assert "4 runs" in out
        assert "surrogate gate" not in out  # the gate only guards ode runs

    def test_gate_failure_reports_hint_and_exits_nonzero(
        self, ode_file, capsys, monkeypatch
    ):
        import repro.analytic.calibration as calibration
        from repro.analytic.calibration import (
            CrossValidationReport,
            PooledResidual,
        )

        bad = CrossValidationReport(
            residuals=[],
            pooled=[
                PooledResidual(
                    protocol="Pure epidemic",
                    metric="delay",
                    des=100.0,
                    surrogate=180.0,
                    rel_error=0.8,
                    noise_floor=0.02,
                )
            ],
            loads=(2, 4),
            replications=12,
            reference={"kind": "poisson"},
        )
        monkeypatch.setattr(
            calibration, "cross_validate_scenario", lambda spec, progress=None: bad
        )
        assert main(["run-scenario", str(ode_file)]) == 1
        err = capsys.readouterr().err
        assert "refusing to extrapolate" in err
        assert "--engine des" in err

    def test_repo_surrogate_smoke_scenario_loads(self):
        from pathlib import Path

        from repro.scenarios import ScenarioSpec

        base = Path(__file__).parent.parent / "examples" / "scenarios"
        smoke = ScenarioSpec.load(base / "surrogate_smoke.json")
        assert smoke.engine == "ode" and smoke.surrogate_check
        scale = ScenarioSpec.load(base / "analytic_scale.json")
        assert scale.mobility.kind == "analytic"
        assert scale.surrogate_reference is not None


class TestDocsCli:
    def test_docs_requires_target(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["docs"])

    def test_generated_protocol_reference_is_fresh(self, capsys):
        """CI invariant: docs/protocols.md matches the registry."""
        assert main(["docs", "protocols", "--check"]) == 0
        assert "up to date" in capsys.readouterr().out

    def test_writes_to_custom_path(self, tmp_path, capsys):
        out = tmp_path / "protocols.md"
        assert main(["docs", "protocols", "--out", str(out)]) == 0
        text = out.read_text()
        assert "GENERATED FILE" in text
        assert "## `pure`" in text

    def test_stale_file_fails_check(self, tmp_path, capsys):
        out = tmp_path / "protocols.md"
        out.write_text("# stale\n")
        assert main(["docs", "protocols", "--check", "--out", str(out)]) == 1
        assert "stale" in capsys.readouterr().out


class TestFaultToleranceCli:
    """Acceptance: run-scenario grows checkpoint/resume and policy flags."""

    @pytest.fixture
    def scenario_file(self, tmp_path):
        path = tmp_path / "tiny.json"
        path.write_text(json.dumps(TINY_SCENARIO))
        return path

    def test_parser_accepts_fault_flags(self):
        args = build_parser().parse_args(
            ["run-scenario", "s.json", "--checkpoint", "camp", "--resume",
             "--retries", "2", "--cell-timeout", "30", "--on-error", "keep-going"]
        )
        assert args.checkpoint == "camp"
        assert args.resume is True
        assert args.retries == 2
        assert args.cell_timeout == 30.0
        assert args.on_error == "keep-going"
        defaults = build_parser().parse_args(["run-scenario", "s.json"])
        assert defaults.checkpoint is None and defaults.resume is False
        assert defaults.retries is None and defaults.cell_timeout is None
        assert defaults.on_error is None

    @pytest.mark.parametrize(
        "argv",
        [
            ["run-scenario", "s.json", "--retries", "-1"],
            ["run-scenario", "s.json", "--cell-timeout", "0"],
            ["run-scenario", "s.json", "--on-error", "shrug"],
        ],
    )
    def test_bad_fault_flags_rejected(self, argv):
        with pytest.raises(SystemExit):
            build_parser().parse_args(argv)

    def test_resume_requires_checkpoint(self, scenario_file, capsys):
        assert main(["run-scenario", str(scenario_file), "--resume"]) == 2
        assert "--checkpoint" in capsys.readouterr().err

    def test_checkpoint_then_resume_round_trip(
        self, scenario_file, tmp_path, capsys
    ):
        camp = tmp_path / "camp"
        assert main(
            ["run-scenario", str(scenario_file), "--checkpoint", str(camp)]
        ) == 0
        first = capsys.readouterr().out
        assert (camp / "journal.jsonl").exists()
        assert (camp / "manifest.json").exists()

        # re-running the finished campaign without --resume is refused...
        assert main(
            ["run-scenario", str(scenario_file), "--checkpoint", str(camp)]
        ) == 1
        assert "--resume" in capsys.readouterr().err

        # ...and --resume restores every cell from the journal
        assert main(
            ["run-scenario", str(scenario_file), "--checkpoint", str(camp),
             "--resume"]
        ) == 0
        resumed = capsys.readouterr().out
        assert "scenario tiny: 8 runs" in resumed

        def tables(text):
            return text[text.index("--") :]  # strip the timing banner line

        assert tables(resumed) == tables(first)

    def test_resume_progress_line_in_verbose(self, scenario_file, tmp_path, capsys):
        camp = tmp_path / "camp"
        assert main(
            ["run-scenario", str(scenario_file), "--checkpoint", str(camp)]
        ) == 0
        capsys.readouterr()
        assert main(
            ["run-scenario", str(scenario_file), "--checkpoint", str(camp),
             "--resume", "--verbose"]
        ) == 0
        assert "resume: restored 8 journaled cell(s)" in capsys.readouterr().err

    def test_policy_overrides_round_trip_into_spec(self, scenario_file, capsys):
        # keep-going + retries are accepted end-to-end on a healthy scenario
        assert main(
            ["run-scenario", str(scenario_file), "--retries", "1",
             "--on-error", "keep-going"]
        ) == 0
        assert "scenario tiny: 8 runs" in capsys.readouterr().out


class TestDisruptionCli:
    """Acceptance: run-scenario grows fault-model override flags."""

    @pytest.fixture
    def scenario_file(self, tmp_path):
        path = tmp_path / "tiny.json"
        path.write_text(json.dumps(TINY_SCENARIO))
        return path

    def test_parser_accepts_disruption_flags(self):
        args = build_parser().parse_args(
            ["run-scenario", "s.json", "--churn-rate", "2e-4",
             "--mean-downtime", "500", "--link-loss", "0.1",
             "--state-loss", "all"]
        )
        assert args.churn_rate == 2e-4
        assert args.mean_downtime == 500.0
        assert args.link_loss == 0.1
        assert args.state_loss == "all"
        defaults = build_parser().parse_args(["run-scenario", "s.json"])
        assert defaults.churn_rate is None and defaults.mean_downtime is None
        assert defaults.link_loss is None and defaults.state_loss is None

    @pytest.mark.parametrize(
        "argv",
        [
            ["run-scenario", "s.json", "--churn-rate", "-1e-4"],
            ["run-scenario", "s.json", "--mean-downtime", "-5"],
            ["run-scenario", "s.json", "--link-loss", "1.5"],
            ["run-scenario", "s.json", "--state-loss", "vaporise"],
        ],
    )
    def test_bad_disruption_flags_rejected(self, argv):
        with pytest.raises(SystemExit):
            build_parser().parse_args(argv)

    def test_inconsistent_override_rejected_with_message(
        self, scenario_file, capsys
    ):
        # churn without a repair time is a FaultSpec invariant violation —
        # surfaced as exit code 2, not a traceback
        assert main(
            ["run-scenario", str(scenario_file), "--churn-rate", "1e-4"]
        ) == 2
        assert "mean_downtime" in capsys.readouterr().err

    def test_overrides_inject_faults_end_to_end(
        self, scenario_file, tmp_path, capsys
    ):
        out_dir = tmp_path / "out"
        assert main(
            ["run-scenario", str(scenario_file), "--churn-rate", "2e-4",
             "--mean-downtime", "500", "--state-loss", "all",
             "--out", str(out_dir)]
        ) == 0
        assert "scenario tiny: 8 runs" in capsys.readouterr().out
        header = (out_dir / "tiny_runs.csv").read_text().splitlines()[0]
        assert "churn_crashes" in header and "churn_downtime" in header

    def test_override_merges_onto_scenario_fault_spec(self, tmp_path, capsys):
        # --state-loss must extend the file's fault block, not replace it
        path = tmp_path / "faulty.json"
        path.write_text(json.dumps({
            **TINY_SCENARIO,
            "name": "faulty",
            "faults": {"churn_rate": 2e-4, "mean_downtime": 500.0},
        }))
        out_dir = tmp_path / "out"
        assert main(
            ["run-scenario", str(path), "--state-loss", "buffer",
             "--out", str(out_dir)]
        ) == 0
        header = (out_dir / "faulty_runs.csv").read_text().splitlines()[0]
        assert "churn_crashes" in header  # churn kept from the file
