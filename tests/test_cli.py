"""CLI surface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "fig13"])
        assert args.scale == "quick"
        assert args.seed == 7
        assert args.experiments == ["fig13"]

    def test_trace_requires_out(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["trace", "campus"])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig07" in out and "table2" in out

    def test_run_table1(self, capsys):
        assert main(["run", "table1"]) == 0
        assert "Random Waypoint" in capsys.readouterr().out

    def test_run_figure_with_exports(self, tmp_path, capsys):
        code = main(
            ["run", "fig14", "--scale", "smoke", "--seed", "3", "--out", str(tmp_path)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Interval time = 400" in out
        csv_file = tmp_path / "fig14.csv"
        json_file = tmp_path / "fig14.json"
        assert csv_file.exists()
        doc = json.loads(json_file.read_text())
        assert doc["meta"]["experiment"] == "fig14"
        assert doc["meta"]["scale"] == "smoke"

    def test_run_table_with_export(self, tmp_path, capsys):
        assert main(["run", "table1", "--out", str(tmp_path)]) == 0
        assert (tmp_path / "table1.txt").exists()

    def test_trace_and_stats_round_trip(self, tmp_path, capsys):
        path = tmp_path / "campus.trace"
        assert main(["trace", "campus", "--seed", "2", "--out", str(path)]) == 0
        assert "contacts" in capsys.readouterr().out
        assert main(["stats", str(path)]) == 0
        out = capsys.readouterr().out
        assert "num_contacts" in out
        assert "intercontact_pair_median" in out

    def test_unknown_experiment_raises(self):
        with pytest.raises(KeyError):
            main(["run", "fig99", "--scale", "smoke"])
