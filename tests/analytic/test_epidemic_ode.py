"""Analytic model unit tests."""

import math

import numpy as np
import pytest

from repro.analytic.epidemic_ode import (
    delivery_cdf,
    direct_mean_delay,
    epidemic_speedup,
    infected_count_markov,
    infected_fraction,
    mean_delivery_delay,
)


class TestInfectedFraction:
    def test_starts_at_one_over_n(self):
        assert infected_fraction(0.0, 10, 1e-4) == pytest.approx(0.1)

    def test_saturates_at_one(self):
        assert infected_fraction(1e9, 10, 1e-4) == pytest.approx(1.0)

    def test_monotone_increasing(self):
        t = np.linspace(0, 50_000, 100)
        vals = infected_fraction(t, 12, 1e-5)
        assert np.all(np.diff(vals) >= 0)

    def test_logistic_midpoint(self):
        """I = N/2 when t = ln(N-1) / (beta N)."""
        n, beta = 12, 1e-5
        t_half = math.log(n - 1) / (beta * n)
        assert infected_fraction(t_half, n, beta) == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            infected_fraction(1.0, 1, 1e-4)
        with pytest.raises(ValueError):
            infected_fraction(1.0, 5, 0.0)
        with pytest.raises(ValueError):
            infected_fraction(-1.0, 5, 1e-4)


class TestMarkovChain:
    def test_initial_distribution(self):
        p = infected_count_markov(0.0, 6, 1e-4)
        assert p[0] == pytest.approx(1.0)

    def test_distribution_sums_to_one(self):
        p = infected_count_markov(10_000.0, 6, 1e-5)
        assert p.sum() == pytest.approx(1.0)

    def test_absorbs_at_full_infection(self):
        p = infected_count_markov(1e7, 6, 1e-4)
        assert p[-1] == pytest.approx(1.0, abs=1e-3)

    def test_mean_tracks_fluid_limit(self):
        """The Markov mean and the ODE agree reasonably at mid-spread."""
        n, beta = 12, 2e-5
        t = 10_000.0
        p = infected_count_markov(t, n, beta)
        markov_mean = float(np.dot(p, np.arange(1, n + 1))) / n
        fluid = float(infected_fraction(t, n, beta))
        assert markov_mean == pytest.approx(fluid, rel=0.15)


class TestDeliveryDelay:
    def test_cdf_bounds(self):
        n, beta = 12, 1e-5
        assert delivery_cdf(0.0, n, beta) == pytest.approx(0.0, abs=1e-12)
        assert delivery_cdf(1e9, n, beta) == pytest.approx(1.0)

    def test_cdf_monotone(self):
        t = np.linspace(0, 100_000, 50)
        vals = delivery_cdf(t, 12, 1e-5)
        assert np.all(np.diff(vals) >= 0)

    def test_mean_formula(self):
        assert mean_delivery_delay(12, 1e-5) == pytest.approx(
            math.log(12) / (1e-5 * 11)
        )

    def test_median_consistent_with_cdf(self):
        n, beta = 12, 1e-5
        # invert: CDF(t_med) = 0.5 -> t_med = ln(n+1... solve numerically
        t = np.linspace(0, 1e6, 200_000)
        cdf = delivery_cdf(t, n, beta)
        t_med = t[int(np.searchsorted(cdf, 0.5))]
        assert delivery_cdf(t_med, n, beta) == pytest.approx(0.5, abs=1e-3)

    def test_direct_delay_and_speedup(self):
        assert direct_mean_delay(1e-5) == pytest.approx(1e5)
        assert epidemic_speedup(12) == pytest.approx(11 / math.log(12))
        # epidemic relaying is faster than direct transmission
        assert mean_delivery_delay(12, 1e-5) < direct_mean_delay(1e-5)

    def test_validation(self):
        with pytest.raises(ValueError):
            mean_delivery_delay(1, 1e-5)
        with pytest.raises(ValueError):
            direct_mean_delay(0.0)
        with pytest.raises(ValueError):
            epidemic_speedup(1)
