"""Golden values for the analytic stack.

Pins the surrogate and the classical ODE results to closed forms and to
independently computed reference numbers (Gillespie simulation of the
birth chain at the paper-scale 36-node Poisson population), so a silent
regression in the integration or the rank decomposition shows up as a
number, not a vibe. Plus the calibration property: meeting-rate estimates
converge to the true β as the observation window grows.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analytic.epidemic_ode import mean_delivery_delay
from repro.analytic.meeting_rate import estimate_meeting_rate
from repro.analytic.surrogate import make_analytic_model, surrogate_run
from repro.core.protocols.registry import make_protocol_config
from repro.core.simulation import SimulationConfig
from repro.core.workload import Flow
from repro.mobility.poisson import PoissonContactConfig, generate_poisson_trace

#: The reference population: n = 36 nodes, β = 1/6000 meetings/s/pair.
N, BETA = 36, 1.0 / 6000.0

#: Gillespie ground truth for (N, BETA), 200k-sample ensemble of the
#: pure-epidemic birth chain (rank-uniform destination):
#:   E[T] = 704 ± 2,  E[(1/T)∫I dt]/N = 0.1988 ± 0.0004.
GILLESPIE_DELAY = 704.0
GILLESPIE_DUP = 0.1988


def run_pure(k=1):
    return surrogate_run(
        make_analytic_model(num_nodes=N, beta=BETA, horizon=200_000.0),
        make_protocol_config("pure"),
        [Flow(0, 0, 1, k)],
        config=SimulationConfig(buffer_capacity=64, bundle_tx_time=1.0),
    )


class TestGoldenValues:
    def test_exact_delay_closed_form(self):
        """E[T] = (1/(β(N−1))) Σ_{j=1}^{N−1} (N−j)/((N−j) j) = H_{N−1}/(β(N−1))."""
        harmonic = sum(1.0 / j for j in range(1, N))
        closed = harmonic / (BETA * (N - 1))
        assert closed == pytest.approx(710.9, rel=1e-3)  # the paper-scale number
        assert run_pure().delay == pytest.approx(closed, rel=0.01)

    def test_delay_matches_gillespie(self):
        assert run_pure().delay == pytest.approx(GILLESPIE_DELAY, rel=0.02)

    def test_duplication_matches_gillespie(self):
        """The rank decomposition closes the Jensen gap: the naive
        deterministic-window ratio sits ~15% below this."""
        assert run_pure().duplication_rate == pytest.approx(GILLESPIE_DUP, rel=0.02)

    def test_fluid_delay_law(self):
        """Large N: E[T] → ln(N)/(β(N−1)) exactly (closed-form logistic)."""
        for n, beta in ((100_000, 1.25e-9), (1_000_000, 2e-10)):
            res = surrogate_run(
                make_analytic_model(num_nodes=n, beta=beta, horizon=4_000_000.0),
                make_protocol_config("pure"),
                [Flow(0, 0, 1, 1)],
            )
            assert res.delay == pytest.approx(
                math.log(n) / (beta * (n - 1)), rel=0.005
            )

    def test_ode_mean_delay_is_the_fluid_law(self):
        assert mean_delivery_delay(N, BETA) == pytest.approx(
            math.log(N) / (BETA * (N - 1))
        )


class TestMeetingRateConvergence:
    @settings(max_examples=12, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    def test_estimate_converges_with_trace_length(self, seed):
        """β̂ from a Poisson trace approaches the generating β as the
        window grows, and the error shrinks (up to sampling noise) —
        halving is not guaranteed per draw, so assert a generous decay
        plus a tight bound on the longest window."""
        beta, n = 3e-4, 16
        errors = []
        for horizon in (5_000.0, 40_000.0, 320_000.0):
            trace = generate_poisson_trace(
                PoissonContactConfig(
                    num_nodes=n, beta=beta, horizon=horizon, duration=5.0
                ),
                seed=seed,
            )
            est = estimate_meeting_rate(trace)
            errors.append(abs(est - beta) / beta)
        assert errors[-1] < 0.05
        assert errors[-1] <= errors[0] + 0.02

    def test_min_capacity_filters_short_contacts(self):
        trace = generate_poisson_trace(
            PoissonContactConfig(
                num_nodes=10, beta=2e-4, horizon=50_000.0, duration=20.0
            ),
            seed=3,
        )
        full = estimate_meeting_rate(trace)
        # only coalesced double-meetings exceed 30 s, so almost every
        # 20 s contact drops out of the carrying-rate estimate
        filtered = estimate_meeting_rate(trace, min_capacity=30.0)
        assert full > 0.0
        assert filtered < 0.02 * full
