"""Cross-validation: simulator vs analytic theory on homogeneous traces.

This is the deepest correctness check in the suite: pure epidemic on a
homogeneous Poisson-ish contact process must reproduce the Zhang et al.
delivery-delay law within statistical tolerance.
"""

import numpy as np
import pytest

from repro.analytic.epidemic_ode import mean_delivery_delay
from repro.analytic.meeting_rate import estimate_meeting_rate, pairwise_meeting_rates
from repro.core.protocols import make_protocol_config
from repro.core.simulation import Simulation, SimulationConfig
from repro.core.workload import Flow
from repro.mobility.contact import ContactTrace
from repro.mobility.synthetic import CampusTraceConfig, CampusTraceGenerator


@pytest.fixture(scope="module")
def homogeneous_trace() -> ContactTrace:
    """All pairs meet at (roughly) the same rate; durations carry exactly
    one bundle; no diurnal structure."""
    cfg = CampusTraceConfig(
        num_nodes=12,
        horizon=2_000_000.0,
        mean_intercontact=20_000.0,
        intercontact_sigma=0.8,
        heterogeneity_sigma=0.0,
        pair_activity=1.0,
        duration_median=150.0,
        duration_sigma=0.1,
        min_duration=120.0,
        max_duration=199.0,
        diurnal=False,
    )
    return CampusTraceGenerator(cfg, seed=13).generate()


class TestMeetingRateEstimation:
    def test_rate_matches_configuration(self, homogeneous_trace):
        beta = estimate_meeting_rate(homogeneous_trace)
        assert beta == pytest.approx(1.0 / 20_000.0, rel=0.15)

    def test_capacity_filter_reduces_rate(self, homogeneous_trace):
        all_meetings = estimate_meeting_rate(homogeneous_trace)
        carrying = estimate_meeting_rate(homogeneous_trace, min_capacity=100.0)
        assert carrying <= all_meetings
        assert carrying > 0

    def test_pairwise_rates_cover_all_pairs(self, homogeneous_trace):
        rates = pairwise_meeting_rates(homogeneous_trace)
        assert len(rates) == 66
        values = np.array(list(rates.values()))
        # homogeneous: no pair more than ~3x the median
        assert values.max() < 3.5 * np.median(values)


class TestDelayLawValidation:
    def test_epidemic_delay_matches_theory(self, homogeneous_trace):
        """Measured single-bundle delay ~= ln N / (beta (N-1))."""
        beta = estimate_meeting_rate(homogeneous_trace, min_capacity=100.0)
        predicted = mean_delivery_delay(12, beta)
        delays = []
        rng = np.random.default_rng(5)
        for rep in range(40):
            src, dst = rng.choice(12, size=2, replace=False)
            flows = [Flow(flow_id=0, source=int(src), destination=int(dst), num_bundles=1)]
            result = Simulation(
                homogeneous_trace,
                make_protocol_config("pure"),
                flows,
                config=SimulationConfig(buffer_capacity=50),
                seed=rep,
            ).run()
            assert result.success, "horizon must not bind in this regime"
            delays.append(result.delay)
        measured = float(np.mean(delays))
        # The fluid law assumes Poisson meetings; our renewal gaps are
        # lognormal (increasing hazard), which slows the early spreading
        # phase — factor-2 agreement is the expected fidelity here, and the
        # ordering against the direct bound must be strict.
        assert 0.3 * predicted <= measured <= 2.2 * predicted
        # epidemic relaying clearly beats the direct-only bound 1/beta
        assert measured < 0.6 / beta

    def test_immunity_equals_pure_for_single_bundle(self, homogeneous_trace):
        """With one bundle there is nothing to purge before delivery, so
        pure and immunity must have identical delays."""
        flows = [Flow(flow_id=0, source=0, destination=7, num_bundles=1)]
        r_pure = Simulation(
            homogeneous_trace, make_protocol_config("pure"), flows, seed=3
        ).run()
        r_imm = Simulation(
            homogeneous_trace, make_protocol_config("immunity"), flows, seed=3
        ).run()
        assert r_pure.delay == r_imm.delay
