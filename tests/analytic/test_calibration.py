"""The surrogate cross-validation gate: pooling, noise floor, refusal."""

import math

import pytest

from repro.analytic.calibration import (
    CrossValidationReport,
    PooledResidual,
    SurrogateAccuracyError,
    compare_sweeps,
    cross_validate_scenario,
    pool_sweeps,
)
from repro.core.results import RunResult, SweepResult
from repro.scenarios import MobilitySpec, ProtocolSpec, ScenarioSpec, WorkloadSpec


def run(protocol="pure", load=5, *, delay, dup=0.2, ratio=1.0, seed=0):
    return RunResult(
        protocol=protocol,
        protocol_label=protocol,
        trace_name="t",
        load=load,
        seed=seed,
        source=0,
        destination=1,
        delivered=load if delay is not None else 0,
        delivery_ratio=ratio,
        delay=delay,
        success=delay is not None,
        buffer_occupancy=0.1,
        duplication_rate=dup,
        signaling={},
        transmissions=load,
        wasted_slots=0,
        removals={},
        end_time=delay if delay is not None else 1_000.0,
    )


def sweep(*runs):
    return SweepResult(runs=list(runs))


def pooled_by(pooled, protocol, metric):
    return next(r for r in pooled if r.protocol == protocol and r.metric == metric)


class TestPoolSweeps:
    def test_pools_whole_grid_means_with_noise_floor(self):
        des = sweep(
            run(delay=100.0, seed=1), run(delay=120.0, seed=2),
            run(load=10, delay=110.0, seed=3), run(load=10, delay=130.0, seed=4),
        )
        ode = sweep(run(delay=112.0), run(load=10, delay=118.0))
        row = pooled_by(pool_sweeps(des, ode), "pure", "delay")
        assert row.des == pytest.approx(115.0)
        assert row.surrogate == pytest.approx(115.0)
        assert row.rel_error == pytest.approx(0.0, abs=1e-12)
        # 2·SEM of {100,120,110,130}: var = 166.67, sem = 6.455
        assert row.noise_floor == pytest.approx(2 * 6.4550 / 115.0, rel=1e-3)

    def test_failed_runs_excluded_from_delay_pool(self):
        des = sweep(run(delay=100.0, seed=1), run(delay=None, seed=2))
        ode = sweep(run(delay=100.0))
        row = pooled_by(pool_sweeps(des, ode), "pure", "delay")
        assert row.des == pytest.approx(100.0)
        assert row.noise_floor is None  # one surviving value -> no SEM

    def test_one_sided_absence_is_infinite_error(self):
        des = sweep(run(delay=None))
        ode = sweep(run(delay=50.0))
        row = pooled_by(pool_sweeps(des, ode), "pure", "delay")
        assert row.rel_error == math.inf


class TestEnsure:
    def report(self, *pooled):
        return CrossValidationReport(
            residuals=[],
            pooled=list(pooled),
            loads=(5, 10),
            replications=12,
            reference={"kind": "poisson"},
        )

    def pooled_row(self, rel_error, noise_floor, metric="delay"):
        return PooledResidual(
            protocol="pure",
            metric=metric,
            des=100.0,
            surrogate=100.0 * (1 + rel_error),
            rel_error=rel_error,
            noise_floor=noise_floor,
        )

    def test_within_tolerance_passes(self):
        self.report(self.pooled_row(0.05, 0.01)).ensure(0.10)

    def test_resolved_disagreement_refused(self):
        with pytest.raises(SurrogateAccuracyError, match="pure/delay: 30.0%"):
            self.report(self.pooled_row(0.30, 0.05)).ensure(0.10)

    def test_unresolvable_disagreement_tolerated(self):
        """Error above tolerance but below the DES noise floor: reported,
        not fatal — the grid cannot statistically distinguish the two."""
        self.report(self.pooled_row(0.30, 0.40)).ensure(0.10)

    def test_missing_floor_counts_as_zero(self):
        with pytest.raises(SurrogateAccuracyError):
            self.report(self.pooled_row(0.30, None)).ensure(0.10)

    def test_summary_and_dict_carry_both_numbers(self):
        report = self.report(self.pooled_row(0.30, 0.40))
        text = report.summary()
        assert "30.00%" in text and "40.00%" in text
        data = report.to_dict()
        assert data["pooled"][0]["rel_error"] == pytest.approx(0.30)
        assert data["pooled"][0]["noise_floor"] == pytest.approx(0.40)
        assert data["metrics"]["delay"]["max"] == pytest.approx(0.30)


class TestCompareSweeps:
    def test_per_cell_residuals_keep_load_structure(self):
        des = sweep(run(delay=100.0), run(load=10, delay=200.0))
        ode = sweep(run(delay=110.0), run(load=10, delay=180.0))
        cells = compare_sweeps(des, ode, metrics=("delay",))
        by_load = {c.load: c for c in cells}
        assert by_load[5].rel_error == pytest.approx(0.10)
        assert by_load[10].rel_error == pytest.approx(0.10)


class TestCrossValidateScenario:
    def spec(self, **overrides):
        kwargs = dict(
            name="gate",
            seed=11,
            mobility=MobilitySpec(
                "poisson",
                {
                    "num_nodes": 12,
                    "beta": 5e-4,
                    "horizon": 20_000.0,
                    "duration": 40.0,
                },
            ),
            protocols=(ProtocolSpec("pure"),),
            workload=WorkloadSpec(loads=(2, 4, 8), replications=2),
            engine="ode",
            bundle_tx_time=1.0,
            buffer_capacity=64,
        )
        kwargs.update(overrides)
        return ScenarioSpec(**kwargs)

    def test_reference_grid_runs_both_engines(self):
        report = cross_validate_scenario(self.spec(), loads=(2, 4), replications=2)
        assert report.loads == (2, 4)
        assert report.replications == 2
        assert report.reference["kind"] == "poisson"
        assert pooled_by(report.pooled, "Pure epidemic", "delivery_ratio").des == 1.0
        # 2 loads × 3 metrics per protocol
        assert len(report.residuals) == 6

    def test_analytic_mobility_requires_reference(self):
        spec = self.spec(
            mobility=MobilitySpec(
                "analytic", {"num_nodes": 1000, "beta": 1e-7, "horizon": 1e6}
            )
        )
        with pytest.raises(ValueError, match="surrogate_reference"):
            cross_validate_scenario(spec, replications=2)

    def test_spec_run_attaches_report(self):
        result = self.spec(workload=WorkloadSpec(loads=(2, 4), replications=2)).run()
        assert result.surrogate_report is not None
        assert result.surrogate_report["loads"] == [2, 4]
        assert result.surrogate_report["replications"] >= 2

    def test_spec_run_honours_no_check(self):
        spec = self.spec(
            workload=WorkloadSpec(loads=(2,), replications=1), surrogate_check=False
        )
        assert spec.run().surrogate_report is None

    def test_resolved_disagreement_refuses_the_run(self, monkeypatch):
        """spec.run() must refuse when the gate reports a resolved miss."""
        import repro.analytic.calibration as calibration

        bad_report = CrossValidationReport(
            residuals=[],
            pooled=[
                PooledResidual(
                    protocol="Pure epidemic",
                    metric="delay",
                    des=100.0,
                    surrogate=150.0,
                    rel_error=0.5,
                    noise_floor=0.02,
                )
            ],
            loads=(2, 4),
            replications=12,
            reference={"kind": "poisson"},
        )
        monkeypatch.setattr(
            calibration, "cross_validate_scenario", lambda spec, progress=None: bad_report
        )
        with pytest.raises(SurrogateAccuracyError, match="refusing to extrapolate"):
            self.spec().run()
