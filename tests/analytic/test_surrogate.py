"""The mean-field surrogate engine: model math, run mapping, dispatch."""

import dataclasses
import math

import numpy as np
import pytest

from repro import SimulationConfig, SweepConfig, make_protocol_config, run_sweep
from repro.analytic.surrogate import (
    EXACT_LIMIT,
    AnalyticContactModel,
    UnsupportedProtocolError,
    _birth_rates,
    _rank_time_averages,
    holder_curves,
    make_analytic_model,
    resolve_meeting_rate,
    surrogate_run,
    transmission_coins,
)
from repro.core.results import RunResult
from repro.core.workload import Flow
from repro.mobility.poisson import PoissonContactConfig, generate_poisson_trace

N, BETA = 36, 1.0 / 6000.0


def paper_model(horizon: float = 200_000.0) -> AnalyticContactModel:
    return make_analytic_model(num_nodes=N, beta=BETA, horizon=horizon)


class TestTransmissionCoins:
    def test_pure_is_certain_coins(self):
        assert transmission_coins(make_protocol_config("pure")) == (1.0, 1.0)

    def test_pq_coins_pass_through(self):
        cfg = make_protocol_config("pq", p=0.5, q=0.25)
        assert transmission_coins(cfg) == (0.5, 0.25)

    def test_anti_packet_pq_unsupported(self):
        cfg = make_protocol_config("pq", p=1.0, q=1.0, anti_packets=True)
        with pytest.raises(UnsupportedProtocolError, match="anti-packet"):
            transmission_coins(cfg)

    @pytest.mark.parametrize("name", ["ttl", "ec", "immunity"])
    def test_removal_side_protocols_unsupported(self, name):
        kwargs = {"ttl": 300.0} if name == "ttl" else {}
        with pytest.raises(UnsupportedProtocolError, match="supported"):
            transmission_coins(make_protocol_config(name, **kwargs))


class TestAnalyticContactModel:
    def test_carries_rate_and_horizon(self):
        model = paper_model()
        assert model.beta == BETA
        assert model.num_nodes == N
        assert len(model) == 0
        assert resolve_meeting_rate(model, SimulationConfig()) == BETA

    def test_rejects_explicit_contacts(self):
        from repro.mobility.contact import Contact

        with pytest.raises(ValueError, match="no explicit contacts"):
            AnalyticContactModel(
                [Contact(1.0, 2.0, 0, 1)], 4, horizon=10.0, beta=1e-4
            )

    @pytest.mark.parametrize("kwargs", [{"beta": 0.0}, {"horizon": 0.0}])
    def test_rejects_degenerate_parameters(self, kwargs):
        params = {"num_nodes": 8, "beta": 1e-4, "horizon": 100.0}
        params.update(kwargs)
        with pytest.raises(ValueError):
            make_analytic_model(**params)

    def test_des_engine_rejects_it(self):
        # the executor wraps the in-cell ValueError, naming the cell and
        # chaining the original misconfiguration message
        from repro.core.executors import CellExecutionError

        with pytest.raises(CellExecutionError, match="analytic") as err:
            run_sweep(
                paper_model(),
                [make_protocol_config("pure")],
                SweepConfig(loads=(5,), replications=1, master_seed=1),
            )
        assert isinstance(err.value.__cause__, ValueError)


class TestHolderCurves:
    def test_validation(self):
        for bad in (
            dict(n=1, beta=BETA, p=1, q=1, horizon=10.0),
            dict(n=8, beta=0.0, p=1, q=1, horizon=10.0),
            dict(n=8, beta=BETA, p=1, q=1, horizon=0.0),
            dict(n=8, beta=BETA, p=1.5, q=1, horizon=10.0),
            dict(n=8, beta=BETA, p=1, q=-0.1, horizon=10.0),
        ):
            with pytest.raises(ValueError):
                holder_curves(**bad)

    def test_exact_regime_spans_one_to_n(self):
        ts, mean, cond = holder_curves(N, BETA, 1.0, 1.0, 200_000.0)
        assert ts[0] == 0.0 and ts[-1] == pytest.approx(200_000.0)
        assert mean[0] == pytest.approx(1.0)
        assert mean[-1] == pytest.approx(N, rel=1e-3)
        assert np.all(np.diff(mean) >= -1e-9)
        # destination-susceptible conditioning lags the unconditional mean
        assert np.all(cond <= mean + 1e-9)

    def test_p_zero_never_spreads(self):
        ts, mean, cond = holder_curves(12, BETA, 0.0, 1.0, 10_000.0)
        assert np.all(mean == 1.0) and np.all(cond == 1.0)

    def test_fluid_tracks_exact_at_crossover(self):
        """Forcing the fluid path at an exactly-integrable N stays close.

        The fluid curve has no early-phase randomness, so at fixed t it
        leads the exact mean; the honest comparison is the *time* each
        regime needs to reach a holder level, which agrees to ~10% at
        N = 400 (the stochastic delay shrinks as ln N / N).
        """
        n, beta, horizon = 400, 2e-5, 3_000_000.0
        ts_e, mean_e, _ = holder_curves(n, beta, 1.0, 1.0, horizon)
        ts_f, mean_f, _ = holder_curves(n, beta, 1.0, 1.0, horizon, exact_limit=0)
        for frac in (0.5, 0.75, 0.95):
            level = 1 + frac * (n - 1)
            t_exact = ts_e[int(np.searchsorted(mean_e, level))]
            t_fluid = ts_f[int(np.searchsorted(mean_f, level))]
            assert t_fluid == pytest.approx(t_exact, rel=0.15)
        assert float(mean_f[-1]) == pytest.approx(float(mean_e[-1]), rel=1e-3)


class TestRankTimeAverages:
    def test_two_node_ratio_is_exactly_one(self):
        """N=2: the only rank has I ≡ 1 before delivery, so (1/T)∫I dt = 1."""
        rates = _birth_rates(2, BETA, 1.0, 1.0)[:-1]
        holders, relays = _rank_time_averages(rates, 1)
        assert holders == pytest.approx(1.0, rel=1e-3)
        assert relays == pytest.approx(0.0, abs=1e-4)

    def test_three_node_closed_form(self):
        """N=3 pure epidemic has λ1 = λ2, so E2/(E1+E2) ~ Uniform(0,1):

        rank 1: (1/T)∫I dt = 1; rank 2: 1 + E[E2/(E1+E2)] = 1.5.
        Averaged over the uniform rank: holders 1.25, relays 0.25.
        """
        rates = _birth_rates(3, BETA, 1.0, 1.0)[:-1]
        assert rates[0] == pytest.approx(rates[1])
        holders, relays = _rank_time_averages(rates, 2)
        assert holders == pytest.approx(1.25, rel=1e-3)
        assert relays == pytest.approx(0.25, rel=1e-3)

    def test_degenerate_rates_fall_back_to_lone_holder(self):
        assert _rank_time_averages(np.array([0.0, 1.0]), 2) == (1.0, 0.0)


class TestSurrogateRun:
    def run_cell(self, protocol=None, *, k=10, horizon=200_000.0, **cfg):
        return surrogate_run(
            paper_model(horizon),
            protocol or make_protocol_config("pure"),
            [Flow(0, 0, 1, k)],
            config=SimulationConfig(**cfg) if cfg else None,
            seed=4,
        )

    def test_emits_complete_run_result(self):
        res = self.run_cell()
        assert isinstance(res, RunResult)
        assert res.protocol == "pure" and res.load == 10 and res.seed == 4
        assert res.success and res.delivered == 10
        assert res.delivery_ratio == pytest.approx(1.0, abs=1e-3)
        assert res.end_time == res.delay
        assert res.signaling == {
            "anti_packet": 0, "immunity_table": 0, "summary_vector": 0
        }

    def test_delay_matches_rank_sum(self):
        """E[T] = Σ_j P(R ≥ j)/λ_j = Σ_j (N − j) / ((N − 1) λ_j)."""
        rates = _birth_rates(N, BETA, 1.0, 1.0)
        expected = sum((N - j) / ((N - 1) * rates[j - 1]) for j in range(1, N))
        assert self.run_cell().delay == pytest.approx(expected, rel=0.01)

    def test_rejects_active_fault_spec(self):
        """Satellite acceptance: the mean-field surrogate has no node
        identity to crash or link to sever — a non-trivial FaultSpec is
        refused, never silently ignored."""
        from repro.faults import FaultSpec

        with pytest.raises(ValueError, match="unsupported by the surrogate"):
            self.run_cell(
                faults=FaultSpec(churn_rate=1e-4, mean_downtime=100.0)
            )

    def test_trivial_fault_spec_is_fine(self):
        from repro.faults import FaultSpec

        res = self.run_cell(faults=FaultSpec())
        assert res == self.run_cell()

    def test_deterministic_across_seeds(self):
        a = self.run_cell()
        b = dataclasses.replace(self.run_cell(), seed=a.seed)
        assert a == b

    def test_occupancy_scales_with_load(self):
        lo = self.run_cell(k=10)
        hi = self.run_cell(k=20)
        assert hi.buffer_occupancy == pytest.approx(2 * lo.buffer_occupancy, rel=1e-6)
        assert hi.peak_occupancy == pytest.approx(2 * lo.peak_occupancy, rel=1e-6)

    def test_peak_occupancy_reflects_uniform_rank(self):
        """E[relays at delivery] = mean rank − 1 = (N − 1)/2 − 1/2 = N/2 − 1."""
        res = self.run_cell(k=1, buffer_capacity=64)
        assert res.peak_occupancy == pytest.approx(
            (N / 2 - 1) / (64.0 * N), rel=0.01
        )

    def test_short_horizon_fails_cell(self):
        res = self.run_cell(horizon=500.0)
        assert not res.success and res.delay is None
        assert res.end_time == 500.0
        assert res.delivery_ratio < 0.5

    def test_occupancy_series_opt_in(self):
        assert self.run_cell().occupancy_series is None
        res = self.run_cell(record_occupancy=True)
        assert res.occupancy_series is not None
        times = [t for t, _ in res.occupancy_series]
        fills = [v for _, v in res.occupancy_series]
        assert times == sorted(times) and times[-1] <= res.end_time + 1e-9
        assert all(0.0 <= v <= 1.0 for v in fills)

    def test_calibrates_beta_from_real_traces(self):
        trace = generate_poisson_trace(
            PoissonContactConfig(
                num_nodes=20, beta=2e-4, horizon=40_000.0, duration=40.0
            ),
            seed=2,
        )
        res = surrogate_run(
            trace,
            make_protocol_config("pure"),
            [Flow(0, 0, 1, 5)],
            config=SimulationConfig(bundle_tx_time=1.0),
        )
        assert res.success

    def test_rejects_unmodelable_workloads(self):
        model = paper_model()
        pure = make_protocol_config("pure")
        with pytest.raises(ValueError, match="single-flow"):
            surrogate_run(model, pure, [Flow(0, 0, 1, 5), Flow(1, 2, 3, 5)])
        with pytest.raises(ValueError, match="t=0"):
            surrogate_run(model, pure, [Flow(0, 0, 1, 5, created_at=10.0)])
        with pytest.raises(ValueError, match="outside"):
            surrogate_run(model, pure, [Flow(0, 0, N + 3, 5)])
        with pytest.raises(UnsupportedProtocolError):
            surrogate_run(model, make_protocol_config("ec"), [Flow(0, 0, 1, 5)])


class TestEngineDispatch:
    def test_sweep_runs_on_the_surrogate(self):
        result = run_sweep(
            paper_model(),
            [make_protocol_config("pure"), make_protocol_config("pq", p=1.0, q=1.0)],
            SweepConfig(
                loads=(5, 10),
                replications=3,
                master_seed=11,
                sim=SimulationConfig(engine="ode"),
            ),
        )
        assert len(result) == 12
        for run in result.runs:
            assert run.success and run.delay is not None

    def test_fluid_scale_is_fast_and_matches_theory(self):
        n, beta = 100_000, 1.25e-9
        result = run_sweep(
            make_analytic_model(num_nodes=n, beta=beta, horizon=4_000_000.0),
            [make_protocol_config("pure")],
            SweepConfig(
                loads=(10,),
                replications=2,
                master_seed=1,
                sim=SimulationConfig(engine="ode"),
            ),
        )
        theory = math.log(n) / (beta * (n - 1))
        for run in result.runs:
            assert run.delay == pytest.approx(theory, rel=0.01)

    def test_engine_knob_validated(self):
        with pytest.raises(ValueError):
            SimulationConfig(engine="quantum")
