"""Disruption model: deterministic fault injection for the DES.

The simulator's world is perfectly reliable by default — contacts are
oracle intervals, buffers and i-lists are immortal, transfers always
complete. :class:`FaultSpec` describes the three disruption axes the
robustness studies sweep:

* **node churn** — per-node crash/recovery processes, either sampled
  (exponential up/down times) or scheduled explicitly
  (``downtime_schedule``). A crashed node misses contacts; on reboot it
  optionally loses its buffer and/or knowledge state (``state_loss``).
* **lossy links** — whole contacts dropped with ``contact_drop_prob``,
  and mid-contact interruption (``interrupt_prob``) that severs the link
  partway through, truncating in-flight transfers.
* **transfer failure** — i.i.d. per-bundle transmission failure
  (``transfer_failure_prob``): the slot is charged but the copy is not
  delivered.

All randomness is drawn from seeded streams derived from the fault seed
(see :class:`repro.des.rng.RngHub`), so faulted runs stay bit-identical
between serial and parallel executors and across checkpoint resume. The
spec itself is a frozen, hashable value object with an exact JSON
round-trip, carried on ``SimulationConfig``/``ScenarioSpec``.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Any

#: Accepted ``state_loss`` modes, in increasing order of amnesia.
STATE_LOSS_MODES = ("none", "buffer", "knowledge", "all")


def _require_prob(name: str, value: float) -> None:
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be a probability in [0, 1], got {value!r}")


def _require_nonneg(name: str, value: float) -> None:
    if value < 0.0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")


@dataclass(frozen=True)
class FaultSpec:
    """Declarative description of one fault environment.

    An all-defaults spec is *trivial*: it injects nothing and a run
    carrying it is byte-identical to an unfaulted run.
    """

    #: crash intensity per node per second of up-time (exponential).
    churn_rate: float = 0.0
    #: mean repair time in seconds (exponential); required when churning.
    mean_downtime: float = 0.0
    #: what a rebooting node forgets: ``none``/``buffer``/``knowledge``/``all``.
    state_loss: str = "none"
    #: explicit outages as ``(node, down_at, up_at)`` triples, merged with
    #: the sampled churn process (union of down-intervals).
    downtime_schedule: tuple[tuple[int, float, float], ...] = ()
    #: probability an entire contact never happens.
    contact_drop_prob: float = 0.0
    #: probability a surviving contact is severed partway through.
    interrupt_prob: float = 0.0
    #: i.i.d. probability any single bundle transfer fails (charged slot).
    transfer_failure_prob: float = 0.0

    def __post_init__(self) -> None:
        _require_nonneg("churn_rate", self.churn_rate)
        _require_nonneg("mean_downtime", self.mean_downtime)
        _require_prob("contact_drop_prob", self.contact_drop_prob)
        _require_prob("interrupt_prob", self.interrupt_prob)
        _require_prob("transfer_failure_prob", self.transfer_failure_prob)
        if self.state_loss not in STATE_LOSS_MODES:
            raise ValueError(
                f"state_loss must be one of {STATE_LOSS_MODES}, "
                f"got {self.state_loss!r}"
            )
        if self.churn_rate > 0.0 and self.mean_downtime <= 0.0:
            raise ValueError("churn_rate > 0 requires mean_downtime > 0")
        normalized = []
        for entry in self.downtime_schedule:
            if len(entry) != 3:
                raise ValueError(
                    f"downtime_schedule entries are (node, down_at, up_at), "
                    f"got {entry!r}"
                )
            node, down_at, up_at = entry
            node = int(node)
            down_at = float(down_at)
            up_at = float(up_at)
            if node < 0:
                raise ValueError(f"downtime_schedule node must be >= 0, got {node}")
            if not 0.0 <= down_at < up_at:
                raise ValueError(
                    f"downtime_schedule requires 0 <= down_at < up_at, "
                    f"got ({node}, {down_at}, {up_at})"
                )
            normalized.append((node, down_at, up_at))
        object.__setattr__(self, "downtime_schedule", tuple(sorted(normalized)))

    # ------------------------------------------------------------ predicates

    @property
    def has_churn(self) -> bool:
        """True when any node can ever go down."""
        return self.churn_rate > 0.0 or bool(self.downtime_schedule)

    @property
    def has_link_faults(self) -> bool:
        return self.contact_drop_prob > 0.0 or self.interrupt_prob > 0.0

    @property
    def is_trivial(self) -> bool:
        """True when this spec injects nothing at all.

        ``state_loss`` alone does not count: with no churn there is never
        a reboot to lose state at.
        """
        return not (
            self.has_churn or self.has_link_faults or self.transfer_failure_prob > 0.0
        )

    @property
    def wipes_buffer(self) -> bool:
        return self.has_churn and self.state_loss in ("buffer", "all")

    @property
    def wipes_knowledge(self) -> bool:
        return self.has_churn and self.state_loss in ("knowledge", "all")

    # ------------------------------------------------------------- round-trip

    def to_dict(self) -> dict[str, Any]:
        return {
            "churn_rate": self.churn_rate,
            "mean_downtime": self.mean_downtime,
            "state_loss": self.state_loss,
            "downtime_schedule": [list(entry) for entry in self.downtime_schedule],
            "contact_drop_prob": self.contact_drop_prob,
            "interrupt_prob": self.interrupt_prob,
            "transfer_failure_prob": self.transfer_failure_prob,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> FaultSpec:
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"FaultSpec: unknown key(s) {sorted(unknown)}; known: {sorted(known)}"
            )
        kwargs = dict(data)
        if "downtime_schedule" in kwargs:
            kwargs["downtime_schedule"] = tuple(
                tuple(entry) for entry in kwargs["downtime_schedule"]
            )
        return cls(**kwargs)
