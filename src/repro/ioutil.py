"""Crash-safe file writes — the one atomic-write helper for the repo.

A plain ``open(path, "w")`` destroys the previous contents the moment it
runs; a crash (or ``SIGKILL``, or a full disk) mid-write leaves a
truncated, unparseable file where a good one used to be. Every on-disk
artefact the framework produces — trace files, CSV/JSON exports, the
sweep checkpoint manifest — is written through :func:`atomic_write`
instead: the content goes to a temporary file in the *same directory*
(same filesystem, so the final rename cannot cross devices) and is moved
into place with :func:`os.replace`, which POSIX guarantees to be atomic.
Readers therefore only ever observe the old complete file or the new
complete file, never a half-written one.

The checkpoint *journal* (:mod:`repro.core.checkpoint`) is the one
deliberate exception: it is append-only, so it uses flushed+fsynced
appends of whole records and tolerates a torn final line on read
instead of rewriting the file per record.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path
from collections.abc import Callable
from typing import TextIO

__all__ = ["atomic_write", "atomic_write_text"]


def atomic_write(
    path: str | Path,
    writer: Callable[[TextIO], None],
    *,
    encoding: str = "utf-8",
    newline: str | None = None,
) -> None:
    """Write a text file atomically via temp file + :func:`os.replace`.

    ``writer`` receives an open text stream positioned at the start of an
    empty temporary file in ``path``'s directory. Once it returns, the
    data is flushed and fsynced, and the temp file is renamed over
    ``path`` in one atomic step. If ``writer`` raises, the temp file is
    removed and ``path`` is left untouched.

    Args:
        path: Final destination.
        writer: Callback that writes the full content to the stream.
        encoding: Text encoding (default UTF-8).
        newline: Forwarded to :func:`open` (pass ``""`` for ``csv``).
    """
    target = Path(path)
    directory = target.parent if str(target.parent) else Path(".")
    fd, tmp_name = tempfile.mkstemp(
        dir=directory, prefix=target.name + ".", suffix=".tmp"
    )
    try:
        with open(fd, "w", encoding=encoding, newline=newline) as stream:
            writer(stream)
            stream.flush()
            os.fsync(stream.fileno())
        os.replace(tmp_name, target)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:  # pragma: no cover - already gone / fd cleanup race
            pass
        raise


def atomic_write_text(
    path: str | Path, text: str, *, encoding: str = "utf-8"
) -> None:
    """Atomically replace ``path``'s contents with ``text``."""

    def _write(stream: TextIO) -> None:
        stream.write(text)

    atomic_write(path, _write, encoding=encoding)
