"""Declarative scenario specifications.

A scenario is everything a sweep needs, as plain data: *which mobility*
(by registry name + parameters), *which protocols* (by registry name +
parameters), *which grid* (loads × replications), and the mechanism
constants. Specs round-trip through JSON, so a scenario can live in a
file, ship to a cluster, or be diffed in a code review::

    spec = ScenarioSpec(
        name="campus-baselines",
        mobility=MobilitySpec("campus"),
        protocols=(ProtocolSpec("pq", {"p": 1.0, "q": 1.0}), ProtocolSpec("ec")),
        workload=WorkloadSpec(loads=(5, 25, 50), replications=3),
        seed=7,
    )
    spec.save("scenario.json")
    result = ScenarioSpec.load("scenario.json").run(jobs=4)

The **mobility registry** is the extension point that makes user-defined
mobility models first-class: ``register_mobility("mine")(builder)`` and
``MobilitySpec(kind="mine", params={...})`` immediately works everywhere a
built-in does — the experiment runner, scenario files, the CLI.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from pathlib import Path
from collections.abc import Callable, Mapping, Sequence
from typing import Any, TextIO

from repro.core.executors import Executor, FailurePolicy
from repro.core.protocols.registry import ProtocolConfig, make_protocol_config
from repro.core.results import SweepResult
from repro.core.simulation import SimulationConfig
from repro.core.sweep import SweepConfig, TraceFactory
from repro.core.workload import PAPER_LOADS, PAPER_REPLICATIONS
from repro.des.rng import derive_seed
from repro.faults import FaultSpec
from repro.mobility.contact import ContactTrace

# --------------------------------------------------------------------------
# mobility registry

#: A mobility builder: ``builder(seed=..., **params) -> ContactTrace``.
MobilityBuilder = Callable[..., ContactTrace]

_MOBILITY_REGISTRY: dict[str, MobilityBuilder] = {}


def register_mobility(
    name: str, builder: MobilityBuilder | None = None
) -> Callable[[MobilityBuilder], MobilityBuilder] | MobilityBuilder:
    """Register a mobility builder under ``name``.

    Usable directly (``register_mobility("mine", build_mine)``) or as a
    decorator (``@register_mobility("mine")``). The builder must accept a
    ``seed`` keyword plus its model parameters and return a
    :class:`~repro.mobility.contact.ContactTrace`.

    Raises:
        ValueError: if the name is already taken by a different builder.
    """

    def _register(fn: MobilityBuilder) -> MobilityBuilder:
        existing = _MOBILITY_REGISTRY.get(name)
        if existing is not None and existing is not fn:
            raise ValueError(f"mobility kind {name!r} already registered")
        _MOBILITY_REGISTRY[name] = fn
        return fn

    if builder is not None:
        return _register(builder)
    return _register


def mobility_names() -> list[str]:
    """All registered mobility kinds, sorted."""
    return sorted(_MOBILITY_REGISTRY)


def build_mobility(kind: str, *, seed: int = 0, **params: Any) -> ContactTrace:
    """Build a trace from a registered mobility kind.

    Raises:
        KeyError: for an unknown kind (message lists what is available).
        ValueError: for parameters the kind does not accept.
    """
    try:
        builder = _MOBILITY_REGISTRY[kind]
    except KeyError:
        raise KeyError(
            f"unknown mobility kind {kind!r}; available: {', '.join(mobility_names())}"
        ) from None
    try:
        return builder(seed=seed, **params)
    except TypeError as exc:
        # Builders forward **params into config dataclasses; surface an
        # unknown/extra parameter as a value error, not a call-site bug.
        raise ValueError(f"bad parameters for mobility {kind!r}: {exc}") from exc


def _config_from_params(cls: type[Any], params: Mapping[str, Any]) -> Any:
    """Instantiate a config dataclass, rejecting unknown parameter names."""
    known = {f.name for f in dataclasses.fields(cls)}
    unknown = sorted(set(params) - known)
    if unknown:
        raise ValueError(
            f"unknown {cls.__name__} parameter(s): {', '.join(unknown)}; "
            f"known: {', '.join(sorted(known))}"
        )
    return cls(**params)


def _register_builtins() -> None:
    from repro.mobility.interval import IntervalScenarioConfig, generate_interval_scenario
    from repro.mobility.rwp import (
        ClassicRWP,
        ClassicRWPConfig,
        RWPConfig,
        SubscriberPointRWP,
    )
    from repro.mobility.synthetic import CampusTraceConfig, CampusTraceGenerator
    from repro.mobility.trace_file import read_contact_trace, read_haggle_trace

    @register_mobility("campus")
    def _campus(*, seed: int = 0, **params: Any) -> ContactTrace:
        cfg = _config_from_params(CampusTraceConfig, params)
        return CampusTraceGenerator(cfg, seed=seed).generate()

    @register_mobility("rwp")
    def _rwp(*, seed: int = 0, **params: Any) -> ContactTrace:
        cfg = _config_from_params(RWPConfig, params)
        return SubscriberPointRWP(cfg, seed=seed).generate()

    @register_mobility("classic_rwp")
    def _classic_rwp(*, seed: int = 0, **params: Any) -> ContactTrace:
        cfg = _config_from_params(ClassicRWPConfig, params)
        return ClassicRWP(cfg, seed=seed).generate()

    @register_mobility("interval")
    def _interval(*, seed: int = 0, **params: Any) -> ContactTrace:
        cfg = _config_from_params(IntervalScenarioConfig, params)
        return generate_interval_scenario(cfg, seed=seed)

    @register_mobility("poisson")
    def _poisson(*, seed: int = 0, **params: Any) -> ContactTrace:
        from repro.mobility.poisson import PoissonContactConfig, generate_poisson_trace

        cfg = _config_from_params(PoissonContactConfig, params)
        return generate_poisson_trace(cfg, seed=seed)

    @register_mobility("analytic")
    def _analytic(
        *,
        seed: int = 0,
        num_nodes: int = 0,
        beta: float = 0.0,
        horizon: float = 0.0,
        name: str = "",
        **extra: Any,
    ) -> ContactTrace:
        from repro.analytic.surrogate import make_analytic_model

        del seed  # the model is a rate, not a realisation
        if extra:
            raise ValueError(
                f"unknown analytic parameter(s): {', '.join(sorted(extra))}"
            )
        return make_analytic_model(
            num_nodes=num_nodes, beta=beta, horizon=horizon, name=name
        )

    @register_mobility("trace_file")
    def _trace_file(
        *, seed: int = 0, path: str = "", format: str = "canonical", **extra: Any
    ) -> ContactTrace:
        del seed  # on-disk traces are deterministic
        if extra:
            raise ValueError(
                f"unknown trace_file parameter(s): {', '.join(sorted(extra))}"
            )
        if not path:
            raise ValueError("trace_file mobility requires a 'path' parameter")
        if format == "canonical":
            return read_contact_trace(path)
        if format == "haggle":
            return read_haggle_trace(path)
        raise ValueError(f"unknown trace format {format!r} (canonical or haggle)")


_register_builtins()


# --------------------------------------------------------------------------
# spec dataclasses

def _check_keys(cls_name: str, data: Mapping[str, Any], known: Sequence[str]) -> None:
    if not isinstance(data, Mapping):
        raise ValueError(f"{cls_name} spec must be a mapping, got {type(data).__name__}")
    unknown = sorted(set(data) - set(known))
    if unknown:
        raise ValueError(
            f"unknown {cls_name} key(s): {', '.join(unknown)}; "
            f"known: {', '.join(known)}"
        )


def _check_params(cls_name: str, params: Any) -> dict[str, Any]:
    if not isinstance(params, Mapping):
        raise ValueError(f"{cls_name}.params must be a mapping")
    bad = [k for k in params if not isinstance(k, str)]
    if bad:
        raise ValueError(f"{cls_name}.params keys must be strings, got {bad!r}")
    return dict(params)


@dataclass(frozen=True)
class MobilitySpec:
    """A mobility input, by registry kind + parameters.

    Attributes:
        kind: Registered mobility kind (``campus``, ``rwp``,
            ``classic_rwp``, ``interval``, ``trace_file``, or any kind added
            via :func:`register_mobility`).
        params: Keyword parameters for the kind's builder (e.g. the fields
            of :class:`~repro.mobility.rwp.RWPConfig` for ``rwp``; that
            includes the contact-extraction ``engine`` knob — fast or
            exact — for the trajectory-based kinds, so scenario files can
            pin the reference detector).
        seed: Fixed generation seed; ``None`` (default) inherits the seed
            the caller builds with (for a scenario: the scenario seed).
    """

    kind: str
    params: dict[str, Any] = field(default_factory=dict)
    seed: int | None = None

    def __post_init__(self) -> None:
        if not self.kind:
            raise ValueError("mobility kind must be non-empty")
        object.__setattr__(self, "params", _check_params("MobilitySpec", self.params))

    def build(self, *, seed: int = 0) -> ContactTrace:
        """Build the trace (``self.seed``, when set, wins over ``seed``)."""
        effective = self.seed if self.seed is not None else seed
        return build_mobility(self.kind, seed=effective, **self.params)

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {"kind": self.kind}
        if self.params:
            out["params"] = dict(self.params)
        if self.seed is not None:
            out["seed"] = self.seed
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> MobilitySpec:
        _check_keys("MobilitySpec", data, ["kind", "params", "seed"])
        if "kind" not in data:
            raise ValueError("MobilitySpec requires a 'kind' key")
        return cls(
            kind=data["kind"],
            params=dict(data.get("params", {})),
            seed=data.get("seed"),
        )


@dataclass(frozen=True)
class ProtocolSpec:
    """A protocol under test, by registry name + parameter overrides."""

    name: str
    params: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("protocol name must be non-empty")
        object.__setattr__(self, "params", _check_params("ProtocolSpec", self.params))

    def build(self) -> ProtocolConfig:
        """Instantiate the protocol configuration from the registry."""
        try:
            return make_protocol_config(self.name, **self.params)
        except TypeError as exc:
            raise ValueError(
                f"bad parameters for protocol {self.name!r}: {exc}"
            ) from exc

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {"name": self.name}
        if self.params:
            out["params"] = dict(self.params)
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> ProtocolSpec:
        _check_keys("ProtocolSpec", data, ["name", "params"])
        if "name" not in data:
            raise ValueError("ProtocolSpec requires a 'name' key")
        return cls(name=data["name"], params=dict(data.get("params", {})))


@dataclass(frozen=True)
class WorkloadSpec:
    """The sweep grid: offered loads × replications (paper defaults)."""

    loads: tuple[int, ...] = PAPER_LOADS
    replications: int = PAPER_REPLICATIONS

    def __post_init__(self) -> None:
        for x in self.loads:
            if float(x) != int(x):
                raise ValueError(f"loads must be integers, got {x!r}")
        loads = tuple(int(x) for x in self.loads)
        object.__setattr__(self, "loads", loads)
        if not loads:
            raise ValueError("loads must be non-empty")
        if any(load < 1 for load in loads):
            raise ValueError("loads must be >= 1")
        if self.replications < 1:
            raise ValueError("replications must be >= 1")

    def to_dict(self) -> dict[str, Any]:
        return {"loads": list(self.loads), "replications": self.replications}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> WorkloadSpec:
        _check_keys("WorkloadSpec", data, ["loads", "replications"])
        kwargs: dict[str, Any] = {}
        if "loads" in data:
            loads = data["loads"]
            if isinstance(loads, (str, bytes)) or not isinstance(loads, Sequence):
                raise ValueError("WorkloadSpec.loads must be a list of integers")
            kwargs["loads"] = tuple(loads)
        if "replications" in data:
            kwargs["replications"] = data["replications"]
        return cls(**kwargs)


@dataclass(frozen=True)
class ScenarioSpec:
    """A complete, serialisable experiment scenario.

    Attributes:
        mobility: The mobility input (see :class:`MobilitySpec`).
        protocols: Protocols under comparison, in figure order.
        workload: The sweep grid (defaults to the paper's 5..50 × 10).
        name: Label used in reports and export file names.
        seed: Master seed for every random stream in the scenario.
        shared_trace: True (paper's setup) = one trace shared by all runs;
            False = a fresh trace per replication index, each generated
            with a seed derived from ``(base, "mobility", rep)`` where
            ``base`` is the mobility's pinned seed or, by default, ``seed``.
        buffer_capacity / bundle_tx_time: Mechanism constants, forwarded
            into :class:`~repro.core.simulation.SimulationConfig`. Each
            accepts one scalar (homogeneous population) or a JSON list with
            one entry per node (heterogeneous devices).
        drop_policy: Buffer drop policy consulted on buffer pressure
            (``reject``, ``drop-tail``, ``drop-oldest``, ``drop-youngest``,
            ``drop-random`` — see :mod:`repro.core.policies`). The default
            ``reject`` reproduces the classic refuse-incoming behaviour.
        record_occupancy: Record the per-change ``(time, fill)`` occupancy
            series in every run's :class:`~repro.core.results.RunResult`
            (see :attr:`~repro.core.simulation.SimulationConfig.record_occupancy`).
            Off by default — an append per buffer delta is pure overhead
            for sweeps that only consume the distilled scalars.
        engine: ``"des"`` (default) runs every cell on the event-driven
            simulator; ``"ode"`` runs them on the mean-field surrogate
            (:mod:`repro.analytic.surrogate`), which is what lets a
            scenario sweep 10^5–10^6-node populations in seconds.
        kernel: Execution kernel for DES cells — ``"auto"`` (default)
            runs each cell on the array-resident contact-sweep kernel
            (:mod:`repro.core.sweepkernel`) whenever the cell qualifies
            and falls back to the event engine otherwise; ``"event"``
            forces the classic per-event path; ``"soa"`` forces the
            sweep kernel and fails fast (at spec load for faulted
            scenarios, at run start otherwise) when a cell cannot run on
            it. Both kernels produce byte-identical results, so this is
            purely a speed dial. Ignored by the ``ode`` engine.
        surrogate_check: When the engine is ``"ode"``, run the
            cross-validation gate (:mod:`repro.analytic.calibration`)
            before the sweep: both engines execute a small reference grid
            and the scenario is refused if they disagree beyond
            ``surrogate_tolerance``. On by default — disable only for
            grids you have already validated.
        surrogate_tolerance: Per-metric mean relative error the gate
            tolerates (default 10%).
        surrogate_reference: Mobility the gate anchors the DES side on.
            Defaults to the scenario's own mobility; **required** when
            that mobility is ``analytic`` (a meeting rate has no contacts
            to simulate).
        retries: Extra attempts for cells interrupted by a transient
            worker-process death (see
            :class:`~repro.core.executors.FailurePolicy`).
        retry_backoff: Base seconds of the exponential pause between
            worker-pool rebuilds after such a death.
        cell_timeout: Wall-clock seconds one cell may run before being
            declared hung and failed (parallel execution only); None
            disables the watchdog.
        on_error: ``"abort"`` (default) stops the campaign at the first
            permanently failed cell; ``"keep-going"`` records the
            failure in :attr:`SweepResult.failures
            <repro.core.results.SweepResult.failures>` and completes the
            rest of the grid.
        faults: Optional disruption model (:class:`repro.faults.FaultSpec`)
            applied to every cell: node churn with reboot state loss,
            lossy links, per-bundle transfer failure. The fault
            environment is seeded from ``(seed, "faults", load, rep)`` —
            independent of the protocol — so every protocol in the
            scenario faces the identical disruptions. Unsupported by the
            ``ode`` engine (the surrogate has no node identity to crash).
    """

    mobility: MobilitySpec
    protocols: tuple[ProtocolSpec, ...]
    workload: WorkloadSpec = WorkloadSpec()
    name: str = ""
    seed: int = 0
    shared_trace: bool = True
    buffer_capacity: int | tuple[int, ...] = 10
    bundle_tx_time: float | tuple[float, ...] = 100.0
    drop_policy: str = "reject"
    record_occupancy: bool = False
    engine: str = "des"
    kernel: str = "auto"
    surrogate_check: bool = True
    surrogate_tolerance: float = 0.10
    surrogate_reference: MobilitySpec | None = None
    retries: int = 0
    retry_backoff: float = 0.5
    cell_timeout: float | None = None
    on_error: str = "abort"
    faults: FaultSpec | None = None

    def __post_init__(self) -> None:
        protocols = tuple(self.protocols)
        object.__setattr__(self, "protocols", protocols)
        if not protocols:
            raise ValueError("scenario needs at least one protocol")
        # Fail fast on bad mechanism constants; SimulationConfig also
        # normalises per-node lists, so adopt its tuple forms.
        sim = SimulationConfig(
            buffer_capacity=self.buffer_capacity,
            bundle_tx_time=self.bundle_tx_time,
            drop_policy=self.drop_policy,
            record_occupancy=self.record_occupancy,
            engine=self.engine,
            kernel=self.kernel,
            faults=self.faults,
        )
        object.__setattr__(self, "buffer_capacity", sim.buffer_capacity)
        object.__setattr__(self, "bundle_tx_time", sim.bundle_tx_time)
        if self.engine == "ode" and sim.active_faults is not None:
            raise ValueError(
                "fault injection is unsupported by the surrogate: the ODE "
                "engine models an anonymous mean-field population with no "
                "node identity to crash or link to sever — run faulted "
                'cells with engine="des", or clear the fault spec'
            )
        if not (0.0 < self.surrogate_tolerance <= 1.0):
            raise ValueError(
                f"surrogate_tolerance must be in (0, 1], got {self.surrogate_tolerance}"
            )
        if self.surrogate_reference is not None and not isinstance(
            self.surrogate_reference, MobilitySpec
        ):
            raise ValueError("surrogate_reference must be a MobilitySpec or None")
        # Fail fast on a bad failure policy (FailurePolicy validates
        # retries >= 0, backoff >= 0, positive timeout, on_error mode).
        self.failure_policy()

    # ------------------------------------------------------------- building

    def build_trace(self, rep: int = 0) -> ContactTrace:
        """The mobility input for replication ``rep``.

        The mobility's pinned seed (when set) — otherwise the scenario
        seed — is the *base*; with ``shared_trace=False`` the effective
        seed is derived from ``(base, "mobility", rep)`` so replications
        stay independent even when the base is pinned.
        """
        base = self.mobility.seed if self.mobility.seed is not None else self.seed
        if not self.shared_trace:
            base = int(derive_seed(base, "mobility", rep).generate_state(1)[0])
        return build_mobility(self.mobility.kind, seed=base, **self.mobility.params)

    def trace_factory(self) -> TraceFactory:
        """Replication-index → trace callable for :func:`run_sweep`."""
        return self.build_trace

    def build_protocols(self) -> list[ProtocolConfig]:
        """Instantiate every protocol configuration."""
        return [p.build() for p in self.protocols]

    def sweep_config(self) -> SweepConfig:
        """The equivalent :class:`~repro.core.sweep.SweepConfig`."""
        return SweepConfig(
            loads=self.workload.loads,
            replications=self.workload.replications,
            master_seed=self.seed,
            shared_trace=self.shared_trace,
            sim=SimulationConfig(
                buffer_capacity=self.buffer_capacity,
                bundle_tx_time=self.bundle_tx_time,
                drop_policy=self.drop_policy,
                record_occupancy=self.record_occupancy,
                engine=self.engine,
                kernel=self.kernel,
                faults=self.faults,
            ),
        )

    def failure_policy(self) -> FailurePolicy:
        """The equivalent :class:`~repro.core.executors.FailurePolicy`."""
        return FailurePolicy(
            retries=self.retries,
            backoff=self.retry_backoff,
            cell_timeout=self.cell_timeout,
            on_error=self.on_error,
        )

    def run(
        self,
        *,
        executor: Executor | None = None,
        jobs: int | None = None,
        progress: Callable[[str], None] | None = None,
        checkpoint: str | Path | None = None,
        resume: bool = False,
    ) -> SweepResult:
        """Execute the scenario's full sweep grid.

        Args:
            executor: Explicit execution backend; mutually exclusive with
                ``jobs``.
            jobs: Convenience: >1 selects a
                :class:`~repro.core.executors.ParallelExecutor` with that
                many worker processes.
            progress: Per-cell progress callback (one line per completed
                replication, with a ``[done/total]`` counter).
            checkpoint: Campaign directory for crash-safe per-cell
                journaling (see :mod:`repro.core.checkpoint`); as each
                cell completes its result is durably appended, and a
                killed campaign can be continued with ``resume=True``.
            resume: Continue the campaign journaled in ``checkpoint``:
                journaled cells are restored from disk (bit-identical —
                cell randomness derives from cell coordinates alone) and
                only the missing cells execute.

        Raises:
            repro.analytic.calibration.SurrogateAccuracyError: when the
                engine is ``"ode"``, the gate is enabled, and the
                surrogate misses the event simulator beyond
                ``surrogate_tolerance`` on the reference grid.
            repro.core.checkpoint.CheckpointError: when ``checkpoint``
                holds a different campaign, is corrupt, or already holds
                results and ``resume`` is False.
            repro.core.executors.CellExecutionError: when a cell fails
                permanently and ``on_error`` is ``"abort"``.
        """
        from repro.core.checkpoint import CheckpointJournal
        from repro.core.executors import make_executor
        from repro.core.sweep import run_sweep

        if executor is not None and jobs is not None:
            raise ValueError("pass either executor or jobs, not both")
        if resume and checkpoint is None:
            raise ValueError("resume=True requires a checkpoint directory")
        if executor is None:
            executor = make_executor(jobs)
        report_data: dict[str, Any] | None = None
        if self.engine == "ode" and self.surrogate_check:
            from repro.analytic.calibration import cross_validate_scenario

            report = cross_validate_scenario(self, progress=progress)
            report.ensure(self.surrogate_tolerance)
            report_data = report.to_dict()
        journal = (
            CheckpointJournal(checkpoint, resume=resume)
            if checkpoint is not None
            else None
        )
        result = run_sweep(
            self.trace_factory(),
            self.build_protocols(),
            self.sweep_config(),
            executor=executor,
            progress=progress,
            policy=self.failure_policy(),
            checkpoint=journal,
        )
        result.surrogate_report = report_data
        return result

    # -------------------------------------------------------- serialisation

    def to_dict(self) -> dict[str, Any]:
        def plain(value: Any) -> Any:
            return list(value) if isinstance(value, tuple) else value

        out = {
            "name": self.name,
            "seed": self.seed,
            "mobility": self.mobility.to_dict(),
            "protocols": [p.to_dict() for p in self.protocols],
            "workload": self.workload.to_dict(),
            "shared_trace": self.shared_trace,
            "buffer_capacity": plain(self.buffer_capacity),
            "bundle_tx_time": plain(self.bundle_tx_time),
            "drop_policy": self.drop_policy,
            "record_occupancy": self.record_occupancy,
            "engine": self.engine,
            "kernel": self.kernel,
            "surrogate_check": self.surrogate_check,
            "surrogate_tolerance": self.surrogate_tolerance,
            "retries": self.retries,
            "retry_backoff": self.retry_backoff,
            "cell_timeout": self.cell_timeout,
            "on_error": self.on_error,
        }
        if self.surrogate_reference is not None:
            out["surrogate_reference"] = self.surrogate_reference.to_dict()
        if self.faults is not None:
            out["faults"] = self.faults.to_dict()
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> ScenarioSpec:
        _check_keys(
            "ScenarioSpec",
            data,
            [
                "name",
                "seed",
                "mobility",
                "protocols",
                "workload",
                "shared_trace",
                "buffer_capacity",
                "bundle_tx_time",
                "drop_policy",
                "record_occupancy",
                "engine",
                "kernel",
                "surrogate_check",
                "surrogate_tolerance",
                "surrogate_reference",
                "retries",
                "retry_backoff",
                "cell_timeout",
                "on_error",
                "faults",
            ],
        )
        if "mobility" not in data:
            raise ValueError("ScenarioSpec requires a 'mobility' key")
        if "protocols" not in data:
            raise ValueError("ScenarioSpec requires a 'protocols' key")
        protocols = data["protocols"]
        if isinstance(protocols, Mapping) or not isinstance(protocols, Sequence):
            raise ValueError("ScenarioSpec.protocols must be a list of protocol specs")
        kwargs: dict[str, Any] = {
            "mobility": MobilitySpec.from_dict(data["mobility"]),
            "protocols": tuple(ProtocolSpec.from_dict(p) for p in protocols),
        }
        if "workload" in data:
            kwargs["workload"] = WorkloadSpec.from_dict(data["workload"])
        if data.get("surrogate_reference") is not None:
            kwargs["surrogate_reference"] = MobilitySpec.from_dict(
                data["surrogate_reference"]
            )
        if data.get("faults") is not None:
            faults = data["faults"]
            if not isinstance(faults, Mapping):
                raise ValueError("ScenarioSpec.faults must be a mapping")
            kwargs["faults"] = FaultSpec.from_dict(dict(faults))
        for key in (
            "name",
            "seed",
            "shared_trace",
            "buffer_capacity",
            "bundle_tx_time",
            "drop_policy",
            "record_occupancy",
            "engine",
            "kernel",
            "surrogate_check",
            "surrogate_tolerance",
            "retries",
            "retry_backoff",
            "cell_timeout",
            "on_error",
        ):
            if key in data:
                value = data[key]
                if key in ("buffer_capacity", "bundle_tx_time") and isinstance(value, list):
                    value = tuple(value)
                kwargs[key] = value
        return cls(**kwargs)

    def to_json(self, *, indent: int = 2) -> str:
        """The scenario as a JSON document."""
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> ScenarioSpec:
        """Parse a scenario from a JSON document.

        Raises:
            ValueError: on malformed JSON, unknown keys, or bad values.
        """
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ValueError(f"scenario is not valid JSON: {exc}") from exc
        return cls.from_dict(data)

    def save(self, dest: str | Path | TextIO) -> None:
        """Write the scenario as JSON to a path (atomically) or stream."""
        text = self.to_json() + "\n"
        if isinstance(dest, (str, Path)):
            from repro.ioutil import atomic_write_text

            atomic_write_text(dest, text)
        else:
            dest.write(text)

    @classmethod
    def load(cls, source: str | Path | TextIO) -> ScenarioSpec:
        """Read a scenario JSON file (path or open stream)."""
        if isinstance(source, (str, Path)):
            text = Path(source).read_text(encoding="utf-8")
        else:
            text = source.read()
        return cls.from_json(text)


def run_scenario(
    spec: ScenarioSpec,
    *,
    executor: Executor | None = None,
    jobs: int | None = None,
    progress: Callable[[str], None] | None = None,
    checkpoint: str | Path | None = None,
    resume: bool = False,
) -> SweepResult:
    """Functional alias for :meth:`ScenarioSpec.run`."""
    return spec.run(
        executor=executor,
        jobs=jobs,
        progress=progress,
        checkpoint=checkpoint,
        resume=resume,
    )
