"""Declarative scenarios: experiments as data, execution as a backend.

This package is the configuration layer of the library. A
:class:`ScenarioSpec` captures one full experiment — mobility input,
protocol set, sweep grid, seeds, mechanism constants — as a plain,
JSON-round-trippable value; :func:`run_scenario` (or
:meth:`ScenarioSpec.run`) executes it on any
:class:`~repro.core.executors.Executor` backend, serially or across worker
processes, with bit-identical results either way.

Two registries make the spec vocabulary open-ended:

* the **mobility registry** (:func:`register_mobility`) maps ``kind``
  strings to trace builders — built-ins cover ``campus``, ``rwp``,
  ``classic_rwp``, ``interval`` and ``trace_file``;
* the protocol registry (:mod:`repro.core.protocols`) resolves
  :class:`ProtocolSpec` names.

See ``examples/scenario_workflow.py`` and ``python -m repro run-scenario``
for the file-driven workflow.
"""

from repro.core.executors import (
    Cell,
    Executor,
    ParallelExecutor,
    SerialExecutor,
    make_executor,
)
from repro.scenarios.spec import (
    MobilitySpec,
    ProtocolSpec,
    ScenarioSpec,
    WorkloadSpec,
    build_mobility,
    mobility_names,
    register_mobility,
    run_scenario,
)

__all__ = [
    "MobilitySpec",
    "ProtocolSpec",
    "ScenarioSpec",
    "WorkloadSpec",
    "register_mobility",
    "build_mobility",
    "mobility_names",
    "run_scenario",
    "Cell",
    "Executor",
    "SerialExecutor",
    "ParallelExecutor",
    "make_executor",
]
