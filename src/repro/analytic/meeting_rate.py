"""Meeting-rate estimation from contact traces.

Bridges simulation inputs and the analytic models: β is the pairwise
meeting rate the fluid/Markov formulas need, estimated here from the same
:class:`~repro.mobility.contact.ContactTrace` the simulator consumes.
"""

from __future__ import annotations

from repro.mobility.contact import ContactTrace


def pairwise_meeting_rates(trace: ContactTrace) -> dict[tuple[int, int], float]:
    """Meetings per second for every pair that met at least once."""
    assert trace.horizon is not None
    counts: dict[tuple[int, int], int] = {}
    for c in trace:
        counts[c.pair] = counts.get(c.pair, 0) + 1
    return {pair: n / trace.horizon for pair, n in counts.items()}


def estimate_meeting_rate(trace: ContactTrace, *, min_capacity: float | None = None) -> float:
    """Population-average pairwise meeting rate β.

    Args:
        min_capacity: If given, only contacts of at least this duration
            count (e.g. pass the simulator's ``bundle_tx_time`` so β counts
            only meetings that can actually carry a bundle — the rate the
            delivery-delay formulas need).

    Returns:
        Average meetings per second per pair, over *all* pairs (pairs that
        never met contribute zero, matching the homogeneous-β model).
    """
    assert trace.horizon is not None
    if trace.horizon <= 0:
        raise ValueError("trace horizon must be positive")
    total_pairs = trace.num_nodes * (trace.num_nodes - 1) // 2
    if min_capacity is None:
        meetings = len(trace)
    else:
        meetings = sum(1 for c in trace if c.duration >= min_capacity)
    return meetings / (trace.horizon * total_pairs)
