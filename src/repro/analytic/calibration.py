"""Cross-validation gate between the event simulator and the surrogate.

Before an ``engine="ode"`` scenario extrapolates to populations the event
simulator cannot touch, the gate re-runs a small reference grid on *both*
engines and compares the per-(protocol, load) series means of the headline
metrics — delivery ratio, delay, and duplication (copies/N). If the
surrogate disagrees with the simulator beyond the scenario's tolerance,
the run is refused with :class:`SurrogateAccuracyError`: an extrapolation
is only as trustworthy as its anchored error, and a silent wrong answer at
10^6 nodes is worse than no answer.

The reference grid defaults to the scenario's own mobility at its two
smallest loads with at least :data:`MIN_REPLICATIONS` replications.
Scenarios whose mobility is itself analytic (no contacts to simulate)
must pin a DES-able ``surrogate_reference`` mobility instead.

The gate is a *statistical* test. Per-run DES metrics are dominated by
the destination's infection rank — uniform on {1..N−1} — so duplication
and delay carry relative standard deviations above 50%: a 24-run
reference grid cannot certify (or refute) surrogate accuracy tighter
than its own ≈2·SEM sampling noise. The gate therefore compares means
*pooled* over the whole grid per protocol, and only refuses the run when
the disagreement exceeds both the tolerance and the DES noise floor;
both numbers appear in the report, so a pass at high noise is visibly a
weak pass. Per-(protocol, load) cell residuals are still reported for
inspection, but they do not decide the gate.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass
from collections.abc import Callable, Sequence
from typing import TYPE_CHECKING, Any

from repro.core.results import RunResult, Series, SweepResult

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.scenarios.spec import ScenarioSpec

#: Metrics the gate compares (ISSUE wording: delivery ratio, delay, copies).
GATE_METRICS: tuple[str, ...] = ("delivery_ratio", "delay", "duplication_rate")

#: Replication floor for the DES side of the comparison.
MIN_REPLICATIONS = 12

_SERIES: dict[str, Callable[[SweepResult], list[Series]]] = {
    "delivery_ratio": lambda r: r.delivery_ratio_series(),
    "delay": lambda r: r.delay_series(),
    "duplication_rate": lambda r: r.duplication_series(),
}

_RUN_VALUES: dict[str, Callable[[RunResult], float | None]] = {
    "delivery_ratio": lambda r: r.delivery_ratio,
    "delay": lambda r: r.delay,
    "duplication_rate": lambda r: r.duplication_rate,
}


class SurrogateAccuracyError(ValueError):
    """The surrogate missed the event simulator beyond the tolerance."""


@dataclass(frozen=True)
class CellResidual:
    """Surrogate-vs-DES disagreement of one (protocol, load, metric) cell."""

    protocol: str  #: protocol label
    load: int
    metric: str
    des: float | None  #: DES series mean; None when no run had a value
    surrogate: float | None
    #: |surrogate − des| / max(|des|, ε); ``inf`` when exactly one side
    #: has no value (e.g. the DES never succeeded but the surrogate did);
    #: None when neither has one (nothing to compare)
    rel_error: float | None

    def to_dict(self) -> dict[str, Any]:
        return {
            "protocol": self.protocol,
            "load": self.load,
            "metric": self.metric,
            "des": self.des,
            "surrogate": self.surrogate,
            "rel_error": self.rel_error,
        }


@dataclass(frozen=True)
class PooledResidual:
    """Surrogate-vs-DES disagreement of one protocol's whole-grid mean.

    These are what the gate decides on: pooling every (load, replication)
    run of a protocol divides the DES rank noise by √(grid size), where a
    single cell would drown a 10% tolerance in its own sampling error.
    """

    protocol: str  #: protocol label
    metric: str
    des: float | None  #: DES whole-grid mean; None when no run had a value
    surrogate: float | None
    #: |surrogate − des| / max(|des|, ε); ``inf`` when exactly one side
    #: has no value; None when neither has one
    rel_error: float | None
    #: 2·SEM of the DES mean, relative to it — the resolution limit of
    #: this grid; None when fewer than two DES runs carried a value
    noise_floor: float | None

    def to_dict(self) -> dict[str, Any]:
        return {
            "protocol": self.protocol,
            "metric": self.metric,
            "des": self.des,
            "surrogate": self.surrogate,
            "rel_error": self.rel_error,
            "noise_floor": self.noise_floor,
        }


@dataclass
class CrossValidationReport:
    """Pooled per-protocol residuals (which decide the gate) plus
    per-(protocol, load) cell residuals (for inspection)."""

    residuals: list[CellResidual]
    pooled: list[PooledResidual]
    loads: tuple[int, ...]
    replications: int
    reference: dict[str, Any]  #: the reference MobilitySpec, dict form

    def metric_errors(self) -> dict[str, dict[str, float]]:
        """``{metric: {"mean": ..., "max": ..., "noise_floor": ...}}``
        over the pooled per-protocol residuals."""
        out: dict[str, dict[str, float]] = {}
        for metric in GATE_METRICS:
            rows = [r for r in self.pooled if r.metric == metric]
            errs = [r.rel_error for r in rows if r.rel_error is not None]
            floors = [r.noise_floor for r in rows if r.noise_floor is not None]
            out[metric] = {
                "mean": sum(errs) / len(errs) if errs else math.nan,
                "max": max(errs) if errs else math.nan,
                "noise_floor": max(floors) if floors else math.nan,
            }
        return out

    def ensure(self, tolerance: float) -> None:
        """Refuse the scenario if any pooled residual is out of tolerance.

        A residual fails when its error exceeds **both** the tolerance and
        its DES noise floor: a disagreement the reference grid cannot
        statistically resolve is reported, not fatal — and a genuinely
        resolved one within tolerance is fine by definition.

        Raises:
            SurrogateAccuracyError: with the summary table in the message.
        """
        bad = [
            r
            for r in self.pooled
            if r.rel_error is not None
            and not math.isnan(r.rel_error)
            and r.rel_error > tolerance
            and r.rel_error > (r.noise_floor or 0.0)
        ]
        if bad:
            worst = ", ".join(
                f"{r.protocol}/{r.metric}: {r.rel_error:.1%}"
                for r in sorted(bad, key=lambda r: -(r.rel_error or 0.0))
            )
            raise SurrogateAccuracyError(
                f"surrogate disagrees with the event simulator beyond "
                f"{tolerance:.0%} ({worst}); refusing to extrapolate.\n"
                + self.summary()
            )

    def summary(self) -> str:
        """Human-readable pooled-residual table of the gate outcome."""

        def fmt(value: float | None, spec: str = ".4g") -> str:
            return "—" if value is None else format(value, spec)

        lines = [
            "surrogate cross-validation "
            f"(loads={list(self.loads)}, replications={self.replications})",
            f"  {'protocol':<26} {'metric':<18} {'des':>9} {'ode':>9}"
            f" {'err':>8} {'2·SEM':>8}",
        ]
        for r in self.pooled:
            lines.append(
                f"  {r.protocol:<26} {r.metric:<18} {fmt(r.des):>9}"
                f" {fmt(r.surrogate):>9} {fmt(r.rel_error, '.2%'):>8}"
                f" {fmt(r.noise_floor, '.2%'):>8}"
            )
        lines.append(
            "  (a residual fails the gate only when err exceeds both the "
            "tolerance and the 2·SEM DES noise floor)"
        )
        return "\n".join(lines)

    def to_dict(self) -> dict[str, Any]:
        def clean(value: float) -> float | None:
            return None if math.isnan(value) else value

        return {
            "loads": list(self.loads),
            "replications": self.replications,
            "reference": self.reference,
            "metrics": {
                metric: {key: clean(v) for key, v in agg.items()}
                for metric, agg in self.metric_errors().items()
            },
            "pooled": [r.to_dict() for r in self.pooled],
            "residuals": [r.to_dict() for r in self.residuals],
        }


def _clean(value: float) -> float | None:
    return None if math.isnan(value) else value


def _relative_error(des: float | None, surrogate: float | None) -> float | None:
    if des is None and surrogate is None:
        return None
    if des is None or surrogate is None:
        return math.inf
    return abs(surrogate - des) / max(abs(des), 1e-9)


def compare_sweeps(
    des: SweepResult,
    surrogate: SweepResult,
    *,
    metrics: Sequence[str] = GATE_METRICS,
) -> list[CellResidual]:
    """Per-(protocol, load, metric) residuals between two sweep results."""
    residuals: list[CellResidual] = []
    for metric in metrics:
        series_of = _SERIES[metric]
        surrogate_series = {s.label: s for s in series_of(surrogate)}
        for ds in series_of(des):
            ss = surrogate_series.get(ds.label)
            for i, load in enumerate(ds.loads):
                dval = _clean(ds.values[i])
                sval = None
                if ss is not None and i < len(ss.values):
                    sval = _clean(ss.values[i])
                residuals.append(
                    CellResidual(
                        protocol=ds.label,
                        load=load,
                        metric=metric,
                        des=dval,
                        surrogate=sval,
                        rel_error=_relative_error(dval, sval),
                    )
                )
    return residuals


def pool_sweeps(
    des: SweepResult,
    surrogate: SweepResult,
    *,
    metrics: Sequence[str] = GATE_METRICS,
) -> list[PooledResidual]:
    """Per-(protocol, metric) residuals of the whole-grid means.

    Pools every (load, replication) run of a protocol on each side, and
    attaches the DES side's 2·SEM noise floor so the comparison knows its
    own resolution. Runs without a value (delay of failed runs) are
    excluded from both the mean and the floor, mirroring
    :meth:`~repro.core.results.SweepResult.series`.
    """
    pooled: list[PooledResidual] = []
    for proto in des.protocols():
        des_runs = des.filter(protocol_label=proto)
        sur_runs = surrogate.filter(protocol_label=proto)
        for metric in metrics:
            value_of = _RUN_VALUES[metric]
            dvals = [v for r in des_runs if (v := value_of(r)) is not None]
            svals = [v for r in sur_runs if (v := value_of(r)) is not None]
            dmean = sum(dvals) / len(dvals) if dvals else None
            smean = sum(svals) / len(svals) if svals else None
            noise = None
            if dmean is not None and len(dvals) > 1:
                var = sum((v - dmean) ** 2 for v in dvals) / (len(dvals) - 1)
                noise = 2.0 * math.sqrt(var / len(dvals)) / max(abs(dmean), 1e-9)
            pooled.append(
                PooledResidual(
                    protocol=proto,
                    metric=metric,
                    des=dmean,
                    surrogate=smean,
                    rel_error=_relative_error(dmean, smean),
                    noise_floor=noise,
                )
            )
    return pooled


def cross_validate_scenario(
    spec: ScenarioSpec,
    *,
    loads: Sequence[int] | None = None,
    replications: int | None = None,
    progress: Callable[[str], None] | None = None,
) -> CrossValidationReport:
    """Run the reference grid on both engines and report the residuals.

    Args:
        spec: The scenario asking to run on the surrogate. Its
            ``surrogate_reference`` mobility — or, when unset, its own
            mobility — anchors the DES side.
        loads: Gate loads; defaults to the two smallest of the scenario.
        replications: DES replications; defaults to the scenario's, with
            a floor of :data:`MIN_REPLICATIONS`.
        progress: Forwarded to both sweep runs.

    Raises:
        ValueError: when no DES-able reference mobility is available.
    """
    from repro.scenarios.spec import WorkloadSpec

    reference = spec.surrogate_reference or spec.mobility
    gate_loads = (
        tuple(int(x) for x in loads)
        if loads
        else tuple(sorted(spec.workload.loads)[:2])
    )
    reps = (
        int(replications)
        if replications is not None
        else max(spec.workload.replications, MIN_REPLICATIONS)
    )
    base = dataclasses.replace(
        spec,
        mobility=reference,
        workload=WorkloadSpec(loads=gate_loads, replications=reps),
        engine="des",
        surrogate_check=False,
        record_occupancy=False,
    )
    if len(base.build_trace(0)) == 0:
        raise ValueError(
            "cross-validation needs a contact-bearing reference mobility; "
            "the scenario's mobility has no contacts to simulate — pin a "
            "DES-able 'surrogate_reference' on the scenario"
        )
    if progress is not None:
        progress(f"cross-validation: DES reference grid {list(gate_loads)} × {reps}")
    des_result = base.run(progress=progress)
    if progress is not None:
        progress("cross-validation: surrogate on the same grid")
    ode_result = dataclasses.replace(base, engine="ode").run(progress=progress)
    return CrossValidationReport(
        residuals=compare_sweeps(des_result, ode_result),
        pooled=pool_sweeps(des_result, ode_result),
        loads=gate_loads,
        replications=reps,
        reference=reference.to_dict(),
    )
