"""Classical fluid and Markov models of epidemic routing.

Model (Zhang et al., Computer Networks 2007): N nodes meet pairwise as
independent Poisson processes with rate β. One source holds a bundle at
t = 0 and every holder copies it at each meeting (pure epidemic with ample
buffers and one-bundle contacts).

* The *fluid* (ODE) limit of the number of holders I(t) is logistic:

      dI/dt = β I (N − I),   I(0) = 1
      I(t)  = N / (1 + (N − 1) e^{−β N t})

* The delivery delay T_d of a randomly chosen destination satisfies

      P(T_d < t) = 1 − (N / (N − 1 + e^{β N t}))        (CDF)
      E[T_d]     = ln N / (β (N − 1))                    (mean)

* Direct transmission (no relaying — the regime TTL-crippled epidemic
  degenerates to) waits a single exponential: E[T_d] = 1/β.

These formulas assume homogeneous meeting rates; the validation tests
therefore run the simulator on a homogeneous synthetic trace and check the
measured spreading/delay curves against these functions.
"""

from __future__ import annotations

import math

import numpy as np


def _validate(n: int, beta: float) -> None:
    if n < 2:
        raise ValueError(f"need at least 2 nodes, got {n}")
    if beta <= 0:
        raise ValueError(f"meeting rate must be positive, got {beta}")


def infected_fraction(t: float | np.ndarray, n: int, beta: float) -> np.ndarray:
    """Fluid-limit fraction of nodes holding the bundle at time ``t``.

    Args:
        t: Time(s) since the bundle was created, seconds.
        n: Population size (including the source).
        beta: Pairwise meeting rate (meetings per second per pair).

    Returns:
        I(t)/N as an array broadcast like ``t``.
    """
    _validate(n, beta)
    t_arr = np.asarray(t, dtype=float)
    if np.any(t_arr < 0):
        raise ValueError("time must be >= 0")
    with np.errstate(over="ignore"):  # exp overflow saturates correctly
        return 1.0 / (1.0 + (n - 1) * np.exp(-beta * n * t_arr))


def infected_count_markov(t: float, n: int, beta: float) -> np.ndarray:
    """Exact Markov-chain distribution of the holder count at time ``t``.

    The holder count is a pure birth chain with rate λ_i = β i (N − i).
    Returns the probability vector over holder counts 1..N (index 0 ↦ one
    holder), computed by uniformisation-free forward integration of the
    Kolmogorov equations (N is small in all our studies).
    """
    _validate(n, beta)
    if t < 0:
        raise ValueError("time must be >= 0")
    rates = np.array([beta * i * (n - i) for i in range(1, n + 1)], dtype=float)
    p = np.zeros(n, dtype=float)
    p[0] = 1.0
    # integrate dp/dt = A p with a step well under the fastest rate
    max_rate = rates.max() if rates.size else 0.0
    if max_rate == 0.0 or t == 0.0:
        return p
    steps = max(1, int(math.ceil(t * max_rate * 20)))
    steps = min(steps, 2_000_000)  # hard cap; plenty at study scales
    dt = t / steps
    for _ in range(steps):
        outflow = rates * p
        p = p - dt * outflow
        p[1:] = p[1:] + dt * outflow[:-1]
        # the absorbing state keeps its inflow (rates[n-1] == 0 anyway)
    p = np.clip(p, 0.0, None)
    s = p.sum()
    if s > 0:
        p /= s
    return p


def delivery_cdf(t: float | np.ndarray, n: int, beta: float) -> np.ndarray:
    """P(delivery delay < t) under pure epidemic relaying."""
    _validate(n, beta)
    t_arr = np.asarray(t, dtype=float)
    if np.any(t_arr < 0):
        raise ValueError("time must be >= 0")
    with np.errstate(over="ignore"):  # exp overflow saturates correctly
        return 1.0 - n / (n - 1.0 + np.exp(beta * n * t_arr))


def mean_delivery_delay(n: int, beta: float) -> float:
    """E[T_d] = ln N / (β (N − 1)) for pure epidemic relaying."""
    _validate(n, beta)
    return math.log(n) / (beta * (n - 1))


def direct_mean_delay(beta: float) -> float:
    """E[T_d] = 1/β when only the source may deliver (direct transmission)."""
    if beta <= 0:
        raise ValueError(f"meeting rate must be positive, got {beta}")
    return 1.0 / beta


def epidemic_speedup(n: int) -> float:
    """Theoretical delay ratio direct/epidemic = (N−1)/ln N.

    The headline reason the paper studies epidemic protocols at all: for
    12 nodes, relaying is ~4.4× faster than waiting for the destination.
    """
    if n < 2:
        raise ValueError(f"need at least 2 nodes, got {n}")
    return (n - 1) / math.log(n)
