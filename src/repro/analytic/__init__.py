"""Analytic models of epidemic routing (Zhang, Neglia, Kurose & Towsley).

The paper leans on reference [8] — "Performance modeling of epidemic
routing" — for the claim that epidemic protocols reach minimum delivery
delay at the cost of resources. This package implements those classical
fluid/Markov results so the simulator can be cross-validated against
theory:

* :func:`~repro.analytic.epidemic_ode.infected_fraction` — the logistic
  growth of the number of bundle holders under pairwise meeting rate β.
* :func:`~repro.analytic.epidemic_ode.delivery_cdf` /
  :func:`~repro.analytic.epidemic_ode.mean_delivery_delay` — the delivery
  delay law of a single bundle under epidemic relaying.
* :func:`~repro.analytic.epidemic_ode.direct_mean_delay` — the
  direct-transmission baseline (the lower bound every TTL-crippled variant
  degenerates to).
* :func:`~repro.analytic.meeting_rate.estimate_meeting_rate` — β estimated
  from a contact trace, so theory and simulation share inputs.

The validation tests in ``tests/analytic`` check the simulator's pure
epidemic spreading and delay against these curves on homogeneous traces.

Beyond validation, the models are a production backend: the **surrogate
engine** (:mod:`repro.analytic.surrogate`) runs whole sweep cells on the
mean-field curves (``engine="ode"`` on a scenario), and the
**cross-validation gate** (:mod:`repro.analytic.calibration`) anchors each
extrapolation against small event-driven runs before it is trusted.
"""

from repro.analytic.calibration import (
    CrossValidationReport,
    SurrogateAccuracyError,
    cross_validate_scenario,
)
from repro.analytic.epidemic_ode import (
    delivery_cdf,
    direct_mean_delay,
    infected_count_markov,
    infected_fraction,
    mean_delivery_delay,
)
from repro.analytic.meeting_rate import estimate_meeting_rate, pairwise_meeting_rates
from repro.analytic.surrogate import (
    AnalyticContactModel,
    UnsupportedProtocolError,
    holder_curves,
    make_analytic_model,
    surrogate_run,
    transmission_coins,
)

__all__ = [
    "infected_fraction",
    "infected_count_markov",
    "delivery_cdf",
    "mean_delivery_delay",
    "direct_mean_delay",
    "estimate_meeting_rate",
    "pairwise_meeting_rates",
    "AnalyticContactModel",
    "UnsupportedProtocolError",
    "holder_curves",
    "make_analytic_model",
    "surrogate_run",
    "transmission_coins",
    "CrossValidationReport",
    "SurrogateAccuracyError",
    "cross_validate_scenario",
]
