"""The mean-field surrogate engine: sweep cells without event simulation.

``engine="ode"`` replaces the discrete-event run of a sweep cell with the
classical fluid/Markov epidemic model (Zhang et al.; see
:mod:`repro.analytic.epidemic_ode`), generalised to the P-Q transmission
coins. The surrogate emits a complete
:class:`~repro.core.results.RunResult`, so every table, figure and export
downstream of a sweep consumes it unchanged.

Model: the holders of a bundle form a pure-birth chain

    i → i + 1   at rate   λ_i = β (N − i) (p + q (i − 1))

— the source transmits with probability *p*, each of the i − 1 relays with
*q*; pure epidemic is p = q = 1. Two integration regimes:

* **exact** (N ≤ :data:`EXACT_LIMIT`): forward integration of the chain's
  Kolmogorov equations. Finite-N effects included, which matters at paper
  scale (N = 12 gives visibly non-logistic growth).
* **fluid** (large N): the mean-field ODE dI/dt = β (N − I)(p + q (I − 1)),
  which has a closed logistic form for every (p, q) — this is what makes
  10^5–10^6-node sweeps effectively free.

Both regimes expose the same two curves: the unconditional mean holder
count E[I(t)] — the delivery CDF is (E[I(t)] − 1)/(N − 1) by
exchangeability of the non-source nodes — and the holder count conditioned
on the destination still being susceptible, which is what buffer-occupancy
and duplication integrals see *before* the run completes.

Deliberately unmodeled: buffer contention (occupancy is clamped at
capacity but spreading is not slowed by refusals) and control signaling
(reported as zero). The cross-validation gate in
:mod:`repro.analytic.calibration` is the guard rail: it measures the
surrogate against the event simulator on a small grid before any
extrapolation is trusted.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from collections.abc import Sequence

import numpy as np

from repro.analytic.meeting_rate import estimate_meeting_rate
from repro.core.protocols.registry import ProtocolConfig
from repro.core.results import RunResult
from repro.core.simulation import SimulationConfig
from repro.core.workload import Flow
from repro.mobility.contact import ContactTrace

#: Population size up to which the exact Markov chain is integrated;
#: larger populations use the closed-form fluid limit.
EXACT_LIMIT = 512

#: Protocol registry names the surrogate has a mean-field model for.
SUPPORTED_PROTOCOLS: tuple[str, ...] = ("pure", "pq")

#: Points kept per returned curve (the integrator decimates to this).
_CURVE_POINTS = 2048

#: Hard cap on integration steps of the exact regime.
_MAX_STEPS = 500_000


class UnsupportedProtocolError(ValueError):
    """The surrogate has no mean-field model for this protocol."""


@dataclass
class AnalyticContactModel(ContactTrace):
    """A population described by its meeting rate instead of its contacts.

    The analytic mobility kind produces one of these: an *empty* contact
    trace carrying the pairwise meeting rate β and an explicit horizon.
    Only the surrogate engine can consume it — populations of 10^5–10^6
    nodes have no materialisable contact list — and the event-driven
    engine rejects it with a clear error instead of silently simulating
    zero contacts.

    Attributes:
        beta: Pairwise meeting rate, meetings per second per pair.
    """

    beta: float = 0.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.contacts:
            raise ValueError("an analytic contact model carries no explicit contacts")
        if self.beta <= 0:
            raise ValueError(f"meeting rate must be positive, got {self.beta}")
        if self.horizon is None or self.horizon <= 0:
            raise ValueError(
                "an analytic contact model needs an explicit positive horizon"
            )


def make_analytic_model(
    *, num_nodes: int, beta: float, horizon: float, name: str = ""
) -> AnalyticContactModel:
    """Build an :class:`AnalyticContactModel` (the ``analytic`` mobility kind)."""
    return AnalyticContactModel(
        [],
        num_nodes,
        horizon=horizon,
        name=name or f"analytic(n={num_nodes}, beta={beta:g})",
        beta=beta,
    )


def transmission_coins(protocol: ProtocolConfig) -> tuple[float, float]:
    """Map a protocol configuration onto the (p, q) transmission coins.

    Pure epidemic is (1, 1); coins-only P-Q is its own (p, q). Everything
    else — purging, TTLs, quota protocols — changes the *removal* side of
    the process, which the birth chain has no state for.

    Raises:
        UnsupportedProtocolError: for any protocol outside
            :data:`SUPPORTED_PROTOCOLS` (or P-Q with anti-packets).
    """
    name = protocol.protocol_name
    if name == "pure":
        return 1.0, 1.0
    if name == "pq":
        if getattr(protocol, "anti_packets", False):
            raise UnsupportedProtocolError(
                "the surrogate models coins-only P-Q; anti-packet purging "
                "has no mean-field model here"
            )
        return float(getattr(protocol, "p")), float(getattr(protocol, "q"))
    raise UnsupportedProtocolError(
        f"no mean-field model for protocol {name!r}; "
        f"supported: {', '.join(SUPPORTED_PROTOCOLS)}"
    )


# ---------------------------------------------------------------- curves


def _birth_rates(n: int, beta: float, p: float, q: float) -> np.ndarray:
    """λ_i = β (N − i)(p + q (i − 1)) for holder counts i = 1..N."""
    i = np.arange(1, n + 1, dtype=np.float64)
    return beta * (n - i) * (p + q * (i - 1.0))


def _flat_curves(horizon: float) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Degenerate result when nothing ever spreads: one holder forever."""
    ts = np.array([0.0, horizon])
    return ts, np.ones(2), np.ones(2)


def _conditional_mean(prob: np.ndarray, idx: np.ndarray, n: int) -> float:
    """E[I | destination susceptible] from the holder-count distribution.

    Given I = i holders, the destination (a fixed non-source node) is
    still susceptible with probability (n − i)/(n − 1) by exchangeability;
    the (n − 1) cancels between numerator and denominator.
    """
    weights = prob * (n - idx)
    denom = float(weights.sum())
    if denom <= 1e-15:  # delivery is (numerically) certain by now
        return float(n)
    return float((weights * idx).sum() / denom)


def _holder_curves_exact(
    n: int, beta: float, p: float, q: float, horizon: float
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Integrate the Kolmogorov equations of the birth chain (RK2 midpoint).

    Returns ``(ts, mean, cond)`` with ``ts[0] == 0`` and
    ``ts[-1] == horizon``; ``mean`` is E[I(t)] and ``cond`` is
    E[I(t) | destination still susceptible].
    """
    rates = _birth_rates(n, beta, p, q)
    if rates[0] <= 0.0:  # the lone source never transmits
        return _flat_curves(horizon)
    max_rate = float(rates.max())
    dt = 0.05 / max_rate
    # Bound the interesting window by the chain's expected absorption
    # time when every transient state drains; a stuck chain (some λ_i = 0
    # before N) keeps evolving below the block forever, so integrate the
    # whole horizon.
    transient = rates[:-1]
    if np.all(transient > 0.0):
        t_interest = min(horizon, 4.0 * float((1.0 / transient).sum()))
    else:
        t_interest = horizon
    est_steps = max(1, int(math.ceil(t_interest / dt)))
    if est_steps > _MAX_STEPS:
        dt = t_interest / _MAX_STEPS
        est_steps = _MAX_STEPS
    stride = max(1, est_steps // _CURVE_POINTS)

    idx = np.arange(1, n + 1, dtype=np.float64)
    prob = np.zeros(n, dtype=np.float64)
    prob[0] = 1.0
    ts = [0.0]
    mean = [1.0]
    cond = [1.0]
    t = 0.0
    step = 0
    while t < horizon and prob[-1] < 1.0 - 1e-9 and step < _MAX_STEPS:
        h = min(dt, horizon - t)
        flow = rates * prob
        k1 = -flow
        k1[1:] += flow[:-1]
        mid = prob + (0.5 * h) * k1
        flow = rates * mid
        k2 = -flow
        k2[1:] += flow[:-1]
        prob = prob + h * k2
        np.clip(prob, 0.0, None, out=prob)
        s = float(prob.sum())
        if s > 0.0:
            prob /= s
        t += h
        step += 1
        if step % stride == 0:
            ts.append(t)
            mean.append(float((prob * idx).sum()))
            cond.append(_conditional_mean(prob, idx, n))
    if ts[-1] < t:
        ts.append(t)
        mean.append(float((prob * idx).sum()))
        cond.append(_conditional_mean(prob, idx, n))
    if ts[-1] < horizon:
        # absorbed (or step-capped) before the horizon: extend flat
        ts.append(horizon)
        mean.append(mean[-1])
        cond.append(cond[-1])
    return np.asarray(ts), np.asarray(mean), np.asarray(cond)


def _holder_curves_fluid(
    n: int, beta: float, p: float, q: float, horizon: float
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Closed-form mean-field I(t); ``cond ≡ mean`` (the susceptible-
    destination correction is O(1/N), negligible at fluid scale).

    For q > 0 substitute J = I + (p − q)/q: the ODE becomes logistic in J
    with carrying capacity K = N + (p − q)/q and rate βq, so every (p, q)
    has a closed form; q = 0 degenerates to source-only (exponential
    approach), and p = 0 never leaves one holder.
    """
    nf = float(n)
    if p <= 0.0:
        return _flat_curves(horizon)
    # exp(-x) below 1e-15 ≈ fully saturated; no point resolving further
    tail = 34.5
    if q > 0.0:
        c = (p - q) / q
        cap = nf + c
        j0 = p / q
        ratio = max(cap / j0 - 1.0, 1e-300)
        t_sat = (math.log(ratio) + tail) / (beta * q * cap)
        t_stop = min(horizon, max(t_sat, 0.0))
        ts = np.linspace(0.0, t_stop, _CURVE_POINTS)
        if t_stop < horizon:
            ts = np.append(ts, horizon)
        with np.errstate(over="ignore"):
            j = cap / (1.0 + ratio * np.exp(-beta * q * cap * ts))
        mean = np.clip(j - c, 1.0, nf)
    else:
        t_sat = tail / (beta * p)
        t_stop = min(horizon, t_sat)
        ts = np.linspace(0.0, t_stop, _CURVE_POINTS)
        if t_stop < horizon:
            ts = np.append(ts, horizon)
        mean = nf - (nf - 1.0) * np.exp(-beta * p * ts)
    return ts, mean, mean.copy()


def holder_curves(
    n: int,
    beta: float,
    p: float,
    q: float,
    horizon: float,
    *,
    exact_limit: int = EXACT_LIMIT,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Holder-count curves ``(ts, mean, cond)`` over ``[0, horizon]``.

    ``mean`` is the unconditional E[I(t)]; ``cond`` is
    E[I(t) | destination still susceptible] — identical in the fluid
    regime, distinct (and load-bearing for occupancy) at small N.
    """
    if n < 2:
        raise ValueError(f"need at least 2 nodes, got {n}")
    if beta <= 0:
        raise ValueError(f"meeting rate must be positive, got {beta}")
    if horizon <= 0:
        raise ValueError(f"horizon must be positive, got {horizon}")
    for label, v in (("p", p), ("q", q)):
        if not (0.0 <= v <= 1.0):
            raise ValueError(f"{label} must be a probability, got {v}")
    if n <= exact_limit:
        return _holder_curves_exact(n, beta, p, q, horizon)
    return _holder_curves_fluid(n, beta, p, q, horizon)


# ----------------------------------------------------------- run mapping
#
# Duplication and occupancy are *per-delivery* time-averages: the metrics
# collector freezes each bundle's copy curve at that bundle's own delivery
# instant, so the DES reports E[(1/T) ∫₀ᵀ I dt] over the random delivery
# time T — not the deterministic curve integrated to the mean delay. The
# two differ by a Jensen gap (T and the trajectory are positively
# correlated), ~7% at paper scale. The rank decomposition below closes it.
#
# The destination's infection rank R is uniform on {1..N−1}: whatever the
# coins, every susceptible is equally likely to be the next infectee.
# Given R, delivery happens at T = Σ_{j≤R} E_j with independent
# E_j ~ Exp(λ_j), during which ∫₀ᵀ I dt = Σ_{j≤R} j·E_j. The ratio
# expectation follows from E[A/S] = ∫₀^∞ E[A e^{−uS}] du, which for
# independent exponentials reduces to a one-dimensional u-integral of
# G_R(u)·H_R(u) with G_R = Π_{j≤R} λ_j/(λ_j+u) (a cumulative product over
# ranks) and H_R = Σ_{j≤R} w_j/(λ_j+u) (a cumulative sum) — O(N·U) for the
# whole rank family at once.


def _rank_time_averages(rates: np.ndarray, m: int) -> tuple[float, float]:
    """Exact E[(1/T) ∫₀ᵀ I dt] and E[(1/T) ∫₀ᵀ (I − 1) dt] over ranks ≤ m.

    Args:
        rates: Transient birth rates λ_1..λ_{N−1} of the holder chain.
        m: Highest destination rank included (all of them when delivery is
            certain; the first ⌈F(H)·(N−1)⌉ when the horizon truncates).
    """
    lam = np.asarray(rates[:m], dtype=np.float64)
    if lam.size == 0 or float(lam.min()) <= 0.0:
        return 1.0, 0.0
    u = np.exp(
        np.linspace(
            math.log(float(lam.min()) * 1e-7),
            math.log(float(lam.max()) * 1e4),
            1600,
        )
    )
    inv = 1.0 / (lam[:, None] + u[None, :])
    g = np.cumprod(lam[:, None] * inv, axis=0)
    ranks = np.arange(1, lam.size + 1, dtype=np.float64)[:, None]
    h_holders = np.cumsum(ranks * inv, axis=0)
    h_relays = h_holders - np.cumsum(inv, axis=0)
    # ∫ f(u) du on the log grid is ∫ f(u)·u d(ln u)
    dln = np.diff(np.log(u))

    def integral(rows: np.ndarray) -> float:
        fu = rows.sum(axis=0) * u
        return float(np.sum(0.5 * (fu[1:] + fu[:-1]) * dln)) / lam.size

    return integral(g * h_holders), integral(g * h_relays)


def _delivery_weighted_average(
    ts: np.ndarray, curve: np.ndarray, cdf: np.ndarray
) -> float:
    """E[(1/T) ∫₀ᵀ curve dt | T ≤ horizon] with T distributed as ``cdf``.

    Fluid-regime counterpart of :func:`_rank_time_averages`: at large N the
    trajectory is deterministic and the only randomness left is the
    delivery time itself, so the running time-average weighted by the
    delivery density is the exact rank average.
    """
    seg = 0.5 * (curve[1:] + curve[:-1]) * np.diff(ts)
    running_int = np.concatenate([[0.0], np.cumsum(seg)])
    running = np.where(ts > 0.0, running_int / np.maximum(ts, 1e-300), curve[0])
    mass = float(cdf[-1] - cdf[0])
    if mass <= 0.0:
        return float(curve[0])
    return float(np.sum(0.5 * (running[1:] + running[:-1]) * np.diff(cdf))) / mass


def _trapz(xs: np.ndarray, ys: np.ndarray) -> float:
    """Trapezoid integral of a sampled curve."""
    if xs.size < 2:
        return 0.0
    return float(np.sum((ys[1:] + ys[:-1]) * np.diff(xs)) * 0.5)


def _clip_curve(
    ts: np.ndarray, ys: np.ndarray, t_end: float
) -> tuple[np.ndarray, np.ndarray]:
    """Restrict a sampled curve to ``[0, t_end]`` (interpolated endpoint)."""
    if t_end >= ts[-1]:
        return ts, ys
    idx = int(np.searchsorted(ts, t_end, side="right"))
    xs = np.concatenate([ts[:idx], [t_end]])
    vals = np.concatenate([ys[:idx], [np.interp(t_end, ts, ys)]])
    return xs, vals


def _carrying_contact(config: SimulationConfig) -> float:
    """Minimum contact duration that can carry a bundle (slowest radio)."""
    tx = config.bundle_tx_time
    return float(max(tx)) if isinstance(tx, tuple) else float(tx)


def _total_capacity(config: SimulationConfig, num_nodes: int) -> float:
    caps = config.buffer_capacity
    if isinstance(caps, tuple):
        return float(sum(caps))
    return float(caps) * float(num_nodes)


def resolve_meeting_rate(trace: ContactTrace, config: SimulationConfig) -> float:
    """The β a surrogate run of ``trace`` uses.

    An :class:`AnalyticContactModel` carries β explicitly; any other trace
    is calibrated with :func:`~repro.analytic.meeting_rate.estimate_meeting_rate`,
    counting only contacts long enough to carry a bundle — the same
    opportunities the event simulator can use.
    """
    if isinstance(trace, AnalyticContactModel):
        return trace.beta
    beta = estimate_meeting_rate(trace, min_capacity=_carrying_contact(config))
    if beta <= 0.0:
        raise ValueError(
            "estimated meeting rate is zero — no contact in the trace "
            "lasts a full bundle transmission"
        )
    return beta


def surrogate_run(
    trace: ContactTrace,
    protocol: ProtocolConfig,
    flows: Sequence[Flow],
    *,
    config: SimulationConfig | None = None,
    seed: int = 0,
) -> RunResult:
    """One sweep cell on the mean-field surrogate.

    Metric mapping (mirroring the event simulator's accounting exactly):

    * delivery CDF of one bundle: F(t) = (E[I(t)] − 1)/(N − 1);
      ``delivery_ratio`` is F at the horizon.
    * load completion CDF: G = F for p = q = 1 (ample bandwidth moves all
      k bundles together), G = F^k under fractional coins (per-bundle
      coins decouple the bundles). ``success`` when G(horizon) ≥ ½;
      ``delay`` is then E[T | T ≤ horizon] and ``end_time`` — the window
      every time-average runs over — equals the delay, exactly like a
      successful DES run ends at its completion instant.
    * ``duplication_rate``: E[(1/T) ∫₀ᵀ I dt]/N over the *random* delivery
      time T — the collector freezes each bundle's copy curve at its own
      delivery instant, so the deterministic-window ratio is biased low
      (Jensen). Exact rank decomposition at small N
      (:func:`_rank_time_averages`), delivery-density weighting in the
      fluid regime; undelivered mass runs to the horizon on the
      destination-susceptible curve.
    * ``buffer_occupancy``: the same averages over relay slots only —
      k·(I − 1) of ``total capacity`` — because origin copies sit in the
      unbounded origin queue and the destination's copy leaves the relay
      pool. ``peak_occupancy`` uses E[holders at delivery] = N/2 + ½
      (the delivery rank is uniform).
    * signaling, drops, evictions: zero (unmodeled; the gate, not the
      reader, is responsible for knowing when that approximation breaks).

    Args:
        trace: Contact trace or :class:`AnalyticContactModel`.
        protocol: A surrogate-supported protocol configuration.
        flows: The cell's workload; the model covers the paper's single
            flow created at t = 0.
        config: Mechanism constants (capacities size the occupancy
            denominator).
        seed: Recorded in the result for provenance/CSV parity; the
            surrogate itself is deterministic.

    Raises:
        UnsupportedProtocolError: for protocols without a mean-field model.
        ValueError: for workloads or traces the model cannot represent.
    """
    config = config or SimulationConfig()
    n = trace.num_nodes
    config.validate_population(n)
    if config.active_faults is not None:
        raise ValueError(
            "fault injection (FaultSpec) is unsupported by the surrogate: "
            "the mean-field model has no node identity to crash or link to "
            'sever — run faulted cells with engine="des"'
        )
    if len(flows) != 1:
        raise ValueError(
            f"the surrogate models the paper's single-flow workload; got {len(flows)} flows"
        )
    flow = flows[0]
    if flow.created_at != 0.0:
        raise ValueError("the surrogate requires the flow to be created at t=0")
    if not (0 <= flow.source < n and 0 <= flow.destination < n):
        raise ValueError(f"flow {flow} references nodes outside the trace population")
    horizon = trace.horizon
    assert horizon is not None
    if horizon <= 0:
        raise ValueError("trace horizon must be positive")
    p, q = transmission_coins(protocol)
    beta = resolve_meeting_rate(trace, config)

    ts, mean_i, cond_i = holder_curves(n, beta, p, q, float(horizon))
    nf = float(n)
    k = flow.num_bundles
    frac = np.clip((mean_i - 1.0) / (nf - 1.0), 0.0, 1.0)
    f_h = float(frac[-1])
    complete = frac if (p >= 1.0 and q >= 1.0) else frac**k
    g_h = float(complete[-1])

    success = g_h >= 0.5
    if success:
        s_tail = _trapz(ts, 1.0 - complete)
        delay: float | None = (s_tail - float(horizon) * (1.0 - g_h)) / g_h
        delay = min(max(delay, 0.0), float(horizon))
        end_time = delay
    else:
        delay = None
        end_time = float(horizon)

    total_capacity = _total_capacity(config, n)
    cond_h = float(cond_i[-1])
    # Delivered bundles freeze their copy curves at their own delivery
    # instant — the rank averages below; undelivered ones run to the
    # horizon conditioned on the destination still being susceptible.
    m = (n - 1) if f_h >= 0.999 else max(1, int(round(f_h * (n - 1))))
    mean_rank = 0.5 * (m + 1)
    if f_h > 0.0:
        if n <= EXACT_LIMIT:
            transient = _birth_rates(n, beta, p, q)[:-1]
            avg_holders, avg_relays = _rank_time_averages(transient, m)
        else:
            avg_holders = _delivery_weighted_average(ts, mean_i, frac)
            avg_relays = max(avg_holders - 1.0, 0.0)
    else:
        avg_holders, avg_relays = 1.0, 0.0
    fail_holders = _trapz(ts, cond_i) / float(horizon)
    fail_relays = max(fail_holders - 1.0, 0.0)
    duplication = (f_h * avg_holders + (1.0 - f_h) * fail_holders) / nf
    relay_copies = f_h * avg_relays + (1.0 - f_h) * fail_relays
    buffer_occupancy = min(float(k) * relay_copies / total_capacity, 1.0)
    peak_relays = f_h * (mean_rank - 1.0) + (1.0 - f_h) * max(cond_h - 1.0, 0.0)
    peak_occupancy = min(float(k) * peak_relays / total_capacity, 1.0)
    copies_made = f_h * mean_rank + (1.0 - f_h) * max(cond_h - 1.0, 0.0)

    occupancy_series: tuple[tuple[float, float], ...] | None = None
    if config.record_occupancy:
        w_ts, w_cond = _clip_curve(ts, cond_i, end_time)
        fill = np.clip(float(k) * (w_cond - 1.0) / total_capacity, 0.0, 1.0)
        stride = max(1, w_ts.size // 512)
        occupancy_series = tuple(
            (float(t), float(v)) for t, v in zip(w_ts[::stride], fill[::stride])
        )

    return RunResult(
        protocol=protocol.protocol_name,
        protocol_label=protocol.label,
        trace_name=trace.name,
        load=k,
        seed=seed,
        source=flow.source,
        destination=flow.destination,
        delivered=int(round(k * f_h)),
        delivery_ratio=f_h,
        delay=delay,
        success=success,
        buffer_occupancy=buffer_occupancy,
        peak_occupancy=peak_occupancy,
        duplication_rate=duplication,
        signaling={"anti_packet": 0, "immunity_table": 0, "summary_vector": 0},
        transmissions=int(round(k * copies_made)),
        wasted_slots=0,
        removals={"evicted": 0, "expired": 0, "immunized": 0, "ec_aged_out": 0},
        drops={},
        end_time=end_time,
        occupancy_series=occupancy_series,
    )
