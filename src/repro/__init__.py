"""repro — a unified study of epidemic routing protocols for DTNs.

A from-scratch reproduction of Feng & Chin, *"A Unified Study of Epidemic
Routing Protocols and their Enhancements"* (IPDPSW 2012): a contact-driven
discrete-event simulator, the paper's five baseline epidemic protocols and
three enhancements, two mobility substrates (a synthetic campus trace
standing in for the CRAWDAD Haggle dataset, and the paper's subscriber-point
Random-Way-Point model), and an experiment harness that regenerates every
figure and table of the evaluation.

Quickstart::

    from repro import (
        CampusTraceGenerator, SweepConfig, run_sweep, make_protocol_config,
    )

    trace = CampusTraceGenerator(seed=7).generate()
    result = run_sweep(
        trace,
        [make_protocol_config("pq"), make_protocol_config("ttl", ttl=300.0)],
        SweepConfig(loads=(5, 25, 50), replications=3, master_seed=7),
    )
    for series in result.delivery_ratio_series():
        print(series.label, series.values)

The declarative entry point — the same experiment as data, runnable from a
JSON file and parallelisable across worker processes with bit-identical
results::

    from repro import MobilitySpec, ProtocolSpec, ScenarioSpec, WorkloadSpec

    spec = ScenarioSpec(
        name="campus-pq-vs-ttl",
        mobility=MobilitySpec("campus"),
        protocols=(
            ProtocolSpec("pq"),
            ProtocolSpec("ttl", {"ttl": 300.0}),
        ),
        workload=WorkloadSpec(loads=(5, 25, 50), replications=3),
        seed=7,
    )
    spec.save("scenario.json")                  # share / version it
    result = ScenarioSpec.load("scenario.json").run(jobs=4)

``python -m repro run-scenario scenario.json --jobs 4`` runs the same file
from the shell. New mobility models become first-class scenario inputs via
:func:`repro.register_mobility`; new protocols via
:func:`repro.register_protocol`.

See ``examples/`` for runnable scenarios and ``python -m repro`` for the
experiment CLI.
"""

from repro.core import (
    PAPER_LOADS,
    PAPER_REPLICATIONS,
    Bundle,
    BundleId,
    Cell,
    DropPolicy,
    Executor,
    Flow,
    ParallelExecutor,
    RunResult,
    SerialExecutor,
    Series,
    Simulation,
    SimulationConfig,
    SweepConfig,
    SweepResult,
    drop_policy_names,
    make_drop_policy,
    make_executor,
    register_drop_policy,
    run_single,
    run_sweep,
    single_flow,
)
from repro.core.protocols import (
    default_baseline_configs,
    default_enhanced_configs,
    make_protocol_config,
    protocol_names,
    register_protocol,
)
from repro.mobility import (
    CampusTraceConfig,
    CampusTraceGenerator,
    ClassicRWP,
    Contact,
    ContactTrace,
    IntervalScenarioConfig,
    RWPConfig,
    SubscriberPointRWP,
    compute_trace_stats,
    generate_interval_scenario,
    read_contact_trace,
    read_haggle_trace,
    write_contact_trace,
)
from repro.scenarios import (
    MobilitySpec,
    ProtocolSpec,
    ScenarioSpec,
    WorkloadSpec,
    build_mobility,
    mobility_names,
    register_mobility,
    run_scenario,
)

__version__ = "1.1.0"

__all__ = [
    "__version__",
    # core
    "Bundle",
    "BundleId",
    "Flow",
    "RunResult",
    "Series",
    "Simulation",
    "SimulationConfig",
    "SweepConfig",
    "SweepResult",
    "run_single",
    "run_sweep",
    "single_flow",
    "PAPER_LOADS",
    "PAPER_REPLICATIONS",
    # buffer drop policies
    "DropPolicy",
    "drop_policy_names",
    "make_drop_policy",
    "register_drop_policy",
    # executors
    "Cell",
    "Executor",
    "SerialExecutor",
    "ParallelExecutor",
    "make_executor",
    # scenarios
    "MobilitySpec",
    "ProtocolSpec",
    "ScenarioSpec",
    "WorkloadSpec",
    "register_mobility",
    "build_mobility",
    "mobility_names",
    "run_scenario",
    # protocols
    "default_baseline_configs",
    "default_enhanced_configs",
    "make_protocol_config",
    "protocol_names",
    "register_protocol",
    # mobility
    "Contact",
    "ContactTrace",
    "CampusTraceConfig",
    "CampusTraceGenerator",
    "ClassicRWP",
    "RWPConfig",
    "SubscriberPointRWP",
    "IntervalScenarioConfig",
    "generate_interval_scenario",
    "compute_trace_stats",
    "read_contact_trace",
    "read_haggle_trace",
    "write_contact_trace",
]
