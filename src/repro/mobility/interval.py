"""Controlled inter-encounter-interval scenarios (paper Fig. 14).

Section V-B1 evaluates constant-TTL epidemic under two scenarios that differ
*only* in the maximum interval between a node's successive encounters:

    "Both scenarios include 20 nodes, each of which has at most 20
     encounters with other nodes. The only difference ... is that the
     interval time between two successive encounters is set to a maximum
     of 400 and 2000 seconds respectively."

:func:`generate_interval_scenario` builds such a trace: every node
participates in at most ``max_encounters_per_node`` encounters, and the gap
between a node's successive encounters is uniform in
``[min_interval, max_interval]``.
"""

from __future__ import annotations


from dataclasses import dataclass

import numpy as np

from repro.mobility.contact import Contact, ContactTrace


@dataclass(frozen=True)
class IntervalScenarioConfig:
    """Parameters for a controlled-interval scenario.

    Attributes:
        num_nodes: Population size (paper: 20).
        max_encounters_per_node: Encounter budget per node (paper: 20).
        min_interval / max_interval: Uniform bounds on the gap between a
            node's successive encounters (paper compares max 400 vs 2000 s).
        min_duration / max_duration: Uniform bounds on encounter duration;
            the default range carries 1–3 bundle transfers at the paper's
            100 s per-bundle transmission time, short enough that the
            inter-encounter interval (not the contact itself) dominates a
            relay copy's survival window — the effect Fig. 14 isolates.
    """

    num_nodes: int = 20
    max_encounters_per_node: int = 20
    min_interval: float = 50.0
    max_interval: float = 400.0
    min_duration: float = 150.0
    max_duration: float = 350.0

    def __post_init__(self) -> None:
        if self.num_nodes < 2:
            raise ValueError("num_nodes must be >= 2")
        if self.max_encounters_per_node < 1:
            raise ValueError("max_encounters_per_node must be >= 1")
        if not (0 <= self.min_interval <= self.max_interval):
            raise ValueError("need 0 <= min_interval <= max_interval")
        if not (0 < self.min_duration <= self.max_duration):
            raise ValueError("need 0 < min_duration <= max_duration")


def generate_interval_scenario(
    config: IntervalScenarioConfig | None = None, *, seed: int = 0
) -> ContactTrace:
    """Generate a trace respecting the per-node encounter budget and gaps.

    Construction — a *controlled comparison* by design: encounters happen
    in rounds. Each round shuffles the population and pairs adjacent nodes
    (an odd node sits the round out), so every node has exactly one
    encounter per round and at most ``max_encounters_per_node`` in total.
    Timing then flows from the interval draws alone: a node becomes
    available one uniform ``[min_interval, max_interval]`` draw after its
    previous encounter ends, and an encounter starts when both partners
    are available.

    Because the pairing structure, durations and the *uniform quantiles* of
    the interval draws depend only on ``seed`` — never on ``max_interval``
    — two scenarios generated with the same seed differ exactly the way
    the paper's Fig 14 scenarios do: same who-meets-whom, stretched
    inter-encounter intervals.
    """
    c = config or IntervalScenarioConfig()
    rng = np.random.default_rng(np.random.SeedSequence([seed & 0xFFFFFFFF, 0x14E5]))
    rounds = c.max_encounters_per_node
    # draw ALL structure first, in a max_interval-independent order
    pairings: list[list[tuple[int, int]]] = []
    durations: list[list[float]] = []
    interval_u: list[list[float]] = []  # uniform quantiles per (round, node)
    for _ in range(rounds):
        order = rng.permutation(c.num_nodes).tolist()
        pairs = [
            (order[k], order[k + 1]) for k in range(0, c.num_nodes - 1, 2)
        ]
        pairings.append(pairs)
        durations.append(
            [float(rng.uniform(c.min_duration, c.max_duration)) for _ in pairs]
        )
        interval_u.append([float(rng.random()) for _ in range(c.num_nodes)])

    def interval(u: float) -> float:
        return c.min_interval + u * (c.max_interval - c.min_interval)

    next_free = [interval(interval_u[0][i]) for i in range(c.num_nodes)]
    contacts: list[Contact] = []
    for rnd in range(rounds):
        for pair_idx, (a, b) in enumerate(pairings[rnd]):
            start = max(next_free[a], next_free[b])
            dur = durations[rnd][pair_idx]
            contacts.append(Contact(start=start, end=start + dur, a=a, b=b))
            for node in (a, b):
                # the node's next availability: rest one interval draw
                u = interval_u[(rnd + 1) % rounds][node]
                next_free[node] = start + dur + interval(u)
    trace = ContactTrace(
        contacts,
        c.num_nodes,
        name=f"interval(max={c.max_interval:g},seed={seed})",
    )
    trace.validate_disjoint_pairs()
    return trace
