"""Vectorized large-population contact extraction.

:func:`repro.mobility.trajectory.contacts_from_trajectories` historically
solved the below-range quadratic once per overlapping segment pair in pure
Python — an O(n²·segments) sweep that caps populations at a few dozen nodes.
This module is the scalable engine behind its default ``engine="fast"`` path:

1. **Packing** — every segment of every trajectory goes into flat NumPy
   arrays (times, endpoints, owner node), so all later stages are
   array-at-a-time.
2. **Broad phase** — segments are split into *pieces* of bounded
   displacement and hashed into a uniform spatial grid keyed on the
   piece's midpoint. Within each cell (and its forward half-neighbourhood)
   a vectorized time-interval sweep joins only the pieces that genuinely
   coexist in time, so far-apart or non-contemporaneous nodes never reach
   the quadratic solver. The join is conservative: two nodes within
   ``comm_range`` at time *t* always occupy pieces in cells at most one
   apart whose (quantized) time intervals overlap (see
   :func:`_candidate_segment_pairs`), so no contact can be lost.
3. **Narrow phase** — the below-range quadratic is evaluated for all
   surviving segment pairs in batched NumPy, replicating the scalar
   arithmetic of :func:`~repro.mobility.trajectory._window_below_range`
   operation-for-operation. Because IEEE-754 addition, multiplication,
   division and square root are correctly rounded in both scalar Python
   and NumPy float64, the produced windows are *bit-identical* to the
   ``engine="exact"`` reference, not merely close.

Per-pair window merging, the encounter cap and the minimum-duration filter
mirror the scalar fold in
:func:`~repro.mobility.trajectory._merge_windows`, so the resulting
:class:`ContactTrace` is exactly the one the reference path builds — only
faster.
"""

from __future__ import annotations

import numpy as np

from repro.mobility.contact import Contact, ContactTrace

#: Time-axis quantization of the broad-phase interval sweep. Piece times are
#: ranked on a 2³¹-step grid over the trace span; the floor quantization is
#: applied to both interval ends, so an overlap can only be *over*-reported
#: (extra candidates, discarded exactly by the narrow phase), never missed.
_TIME_QUANTS = np.int64(1) << 31

#: Forward half-neighbourhood of a grid cell: joining every cell group with
#: itself and these four offsets visits each adjacent cell pair exactly once.
_FORWARD_OFFSETS = ((0, 1), (1, -1), (1, 0), (1, 1))


def _pack_segments(trajectories):
    """Flatten all trajectories' segments into parallel float64/int64 arrays."""
    counts = [len(t.segments) for t in trajectories]
    node = np.repeat(
        np.asarray([t.node for t in trajectories], dtype=np.int64), counts
    )
    flat = [s for t in trajectories for s in t.segments]
    t0 = np.asarray([s.t0 for s in flat], dtype=np.float64)
    t1 = np.asarray([s.t1 for s in flat], dtype=np.float64)
    x0 = np.asarray([s.x0 for s in flat], dtype=np.float64)
    y0 = np.asarray([s.y0 for s in flat], dtype=np.float64)
    x1 = np.asarray([s.x1 for s in flat], dtype=np.float64)
    y1 = np.asarray([s.y1 for s in flat], dtype=np.float64)
    return node, t0, t1, x0, y0, x1, y1


def _segmented_arange(counts: np.ndarray) -> np.ndarray:
    """``[0..counts[0]), [0..counts[1]), ...`` concatenated (vectorized)."""
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    offsets = np.cumsum(counts) - counts
    return np.arange(total, dtype=np.int64) - np.repeat(offsets, counts)


def _sweep_join(
    group_id: np.ndarray, qlo: np.ndarray, qhi: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """All position pairs ``(i, j)``, ``i < j``, in the same group with
    overlapping quantized time intervals.

    Requires the arrays sorted by ``(group_id, qlo)``. Within a group the
    intervals starting no later than ``qhi[i]`` form a contiguous run after
    ``i`` (their ``qlo >= qlo[i]`` guarantees the symmetric condition), so
    each element's partners are read off one ``searchsorted`` bound.
    """
    comp_lo = group_id * _TIME_QUANTS + qlo
    comp_hi = group_id * _TIME_QUANTS + qhi
    pos = np.arange(group_id.size, dtype=np.int64)
    cnt = np.searchsorted(comp_lo, comp_hi, side="right") - pos - 1
    total = int(cnt.sum())
    if total == 0:
        return (np.empty(0, dtype=np.int64),) * 2
    first = np.repeat(pos, cnt)
    second = np.repeat(pos + 1, cnt) + _segmented_arange(cnt)
    return first, second


def _candidate_segment_pairs(
    node: np.ndarray,
    t0: np.ndarray,
    t1: np.ndarray,
    x0: np.ndarray,
    y0: np.ndarray,
    x1: np.ndarray,
    y1: np.ndarray,
    comm_range: float,
    *,
    cell_size: float | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Broad phase: segment index pairs that *might* come within range.

    Conservative by construction. Every piece has displacement at most
    ``L`` (the piece cap), so any of its points lies within ``L/2`` of its
    midpoint. If nodes A and B are within ``comm_range`` at time ``t``,
    the pieces containing ``t`` have midpoints at most
    ``L/2 + comm_range + L/2 = L + comm_range`` apart — which is the grid
    pitch — so their anchor cells differ by at most one per axis, their
    time intervals share ``t`` (floor quantization preserves interval
    overlap), and the within-cell or half-neighbourhood sweep emits the
    pair. No in-range pair is ever pruned.
    """
    nseg = t0.size
    if nseg < 2:
        return (np.empty(0, dtype=np.int64),) * 2

    tmin = float(t0.min())
    tmax = float(t1.max())
    span = max(tmax - tmin, 1e-9)
    extent = max(
        float(max(x0.max(), x1.max()) - min(x0.min(), x1.min())),
        float(max(y0.max(), y1.max()) - min(y0.min(), y1.min())),
        1e-9,
    )
    # Piece displacement cap L; grid pitch L + comm_range (any positive L is
    # correct — the knob trades pieces against candidate count).
    L = cell_size if cell_size is not None else max(2.0 * comm_range, extent / 256.0)
    cell = L + comm_range

    # --- split segments into pieces of displacement <= L --------------------
    seg_len = np.hypot(x1 - x0, y1 - y0)
    pieces_per_seg = np.maximum(1, np.ceil(seg_len / L).astype(np.int64))
    piece_seg = np.repeat(np.arange(nseg, dtype=np.int64), pieces_per_seg)
    k = pieces_per_seg[piece_seg].astype(np.float64)
    piece_idx = _segmented_arange(pieces_per_seg)
    f0 = piece_idx / k
    f1 = (piece_idx + 1) / k
    st0, st1 = t0[piece_seg], t1[piece_seg]
    pt0 = st0 + f0 * (st1 - st0)
    pt1 = st0 + f1 * (st1 - st0)
    fm = (f0 + f1) * 0.5
    ax = x0[piece_seg] + fm * (x1[piece_seg] - x0[piece_seg])
    ay = y0[piece_seg] + fm * (y1[piece_seg] - y0[piece_seg])

    # anchor cells, +1 shift so neighbour offsets never wrap across rows
    cx = np.floor(ax / cell).astype(np.int64)
    cy = np.floor(ay / cell).astype(np.int64)
    cx -= cx.min() - 1
    cy -= cy.min() - 1
    nyp = int(cy.max()) + 2
    cellkey = cx * nyp + cy

    # quantized piece intervals (floor on both ends: overlap-preserving)
    scale = float(_TIME_QUANTS - 1) / span
    qlo = np.clip(((pt0 - tmin) * scale).astype(np.int64), 0, _TIME_QUANTS - 1)
    qhi = np.clip(((pt1 - tmin) * scale).astype(np.int64), 0, _TIME_QUANTS - 1)

    order = np.lexsort((qlo, cellkey))
    ck = cellkey[order]
    ql = qlo[order]
    qh = qhi[order]
    pseg = piece_seg[order]

    new_group = np.empty(ck.size, dtype=bool)
    new_group[0] = True
    np.not_equal(ck[1:], ck[:-1], out=new_group[1:])
    group_id = np.cumsum(new_group) - 1
    starts = np.flatnonzero(new_group)
    counts = np.diff(np.append(starts, ck.size))
    uniq = ck[starts]

    pair_parts_a: list[np.ndarray] = []
    pair_parts_b: list[np.ndarray] = []

    # within-cell: exact interval sweep
    f_pos, s_pos = _sweep_join(group_id, ql, qh)
    if f_pos.size:
        pair_parts_a.append(pseg[f_pos])
        pair_parts_b.append(pseg[s_pos])

    # forward-neighbour cells: interval sweep over the two groups' union
    for ox, oy in _FORWARD_OFFSETS:
        target = uniq + ox * nyp + oy
        idx = np.searchsorted(uniq, target)
        idx_c = np.minimum(idx, uniq.size - 1)
        valid = uniq[idx_c] == target
        if not valid.any():
            continue
        ga = np.flatnonzero(valid)
        gb = idx_c[ga]
        ca, cb = counts[ga], counts[gb]
        usz = ca + cb
        join_id = np.repeat(np.arange(ga.size, dtype=np.int64), usz)
        loc = _segmented_arange(usz)
        ca_rep = np.repeat(ca, usz)
        from_a = loc < ca_rep
        pos = np.where(
            from_a,
            np.repeat(starts[ga], usz) + loc,
            np.repeat(starts[gb], usz) + loc - ca_rep,
        )
        sub = np.lexsort((ql[pos], join_id))
        pos = pos[sub]
        side = from_a[sub]
        f_pos, s_pos = _sweep_join(join_id, ql[pos], qh[pos])
        if f_pos.size == 0:
            continue
        cross = side[f_pos] != side[s_pos]
        if cross.any():
            pair_parts_a.append(pseg[pos[f_pos[cross]]])
            pair_parts_b.append(pseg[pos[s_pos[cross]]])

    if not pair_parts_a:
        return (np.empty(0, dtype=np.int64),) * 2
    a_seg = np.concatenate(pair_parts_a)
    b_seg = np.concatenate(pair_parts_b)

    # Drop same-node pairs, canonicalise, and de-duplicate across cells.
    keep = node[a_seg] != node[b_seg]
    a_seg, b_seg = a_seg[keep], b_seg[keep]
    pair_code = np.minimum(a_seg, b_seg) * np.int64(nseg) + np.maximum(a_seg, b_seg)
    pair_code.sort()
    if pair_code.size:
        first_seen = np.empty(pair_code.size, dtype=bool)
        first_seen[0] = True
        np.not_equal(pair_code[1:], pair_code[:-1], out=first_seen[1:])
        pair_code = pair_code[first_seen]
    return pair_code // nseg, pair_code % nseg


def _batched_windows(
    A: np.ndarray,
    B: np.ndarray,
    node: np.ndarray,
    t0: np.ndarray,
    t1: np.ndarray,
    x0: np.ndarray,
    y0: np.ndarray,
    x1: np.ndarray,
    y1: np.ndarray,
    range_sq: float,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Narrow phase: below-range windows for candidate segment pairs.

    Replicates :func:`repro.mobility.trajectory._window_below_range`
    operation-for-operation in float64 so results are bit-identical to the
    scalar reference. Returns ``(start, end, node_a, node_b)`` arrays with
    ``node_a < node_b``.
    """
    empty = (
        np.empty(0, dtype=np.float64),
        np.empty(0, dtype=np.float64),
        np.empty(0, dtype=np.int64),
        np.empty(0, dtype=np.int64),
    )
    ov0 = np.maximum(t0[A], t0[B])
    ov1 = np.minimum(t1[A], t1[B])
    m = ov1 > ov0
    A, B, ov0, ov1 = A[m], B[m], ov0[m], ov1[m]
    if A.size == 0:
        return empty

    # positions at the overlap start (Segment.position arithmetic)
    sa = (ov0 - t0[A]) / (t1[A] - t0[A])
    ax = x0[A] + sa * (x1[A] - x0[A])
    ay = y0[A] + sa * (y1[A] - y0[A])
    sb = (ov0 - t0[B]) / (t1[B] - t0[B])
    bx = x0[B] + sb * (x1[B] - x0[B])
    by = y0[B] + sb * (y1[B] - y0[B])
    # relative velocity (Segment.vx / .vy arithmetic)
    dvx = (x1[A] - x0[A]) / (t1[A] - t0[A]) - (x1[B] - x0[B]) / (t1[B] - t0[B])
    dvy = (y1[A] - y0[A]) / (t1[A] - t0[A]) - (y1[B] - y0[B]) / (t1[B] - t0[B])
    dx = ax - bx
    dy = ay - by

    a = dvx * dvx + dvy * dvy
    b = 2.0 * (dx * dvx + dy * dvy)
    c = dx * dx + dy * dy - range_sq
    span = ov1 - ov0

    const = a < 1e-15  # no relative motion: distance constant
    starts_parts: list[np.ndarray] = []
    ends_parts: list[np.ndarray] = []
    na_parts: list[np.ndarray] = []
    nb_parts: list[np.ndarray] = []

    mc = const & (c <= 0.0)
    if mc.any():
        starts_parts.append(ov0[mc])
        ends_parts.append(ov1[mc])
        na_parts.append(node[A[mc]])
        nb_parts.append(node[B[mc]])

    mq = ~const
    if mq.any():
        aq, bq, cq = a[mq], b[mq], c[mq]
        disc = bq * bq - 4.0 * aq * cq
        pos = disc >= 0.0
        if pos.any():
            aq, bq = aq[pos], bq[pos]
            sqrt_disc = np.sqrt(disc[pos])
            s_lo = (-bq - sqrt_disc) / (2.0 * aq)
            s_hi = (-bq + sqrt_disc) / (2.0 * aq)
            lo = np.maximum(s_lo, 0.0)
            hi = np.minimum(s_hi, span[mq][pos])
            ok = hi > lo
            if ok.any():
                base = ov0[mq][pos][ok]
                starts_parts.append(base + lo[ok])
                ends_parts.append(base + hi[ok])
                na_parts.append(node[A[mq][pos][ok]])
                nb_parts.append(node[B[mq][pos][ok]])

    if not starts_parts:
        return empty
    starts = np.concatenate(starts_parts)
    ends = np.concatenate(ends_parts)
    na = np.concatenate(na_parts)
    nb_ = np.concatenate(nb_parts)
    swap = na > nb_
    na, nb_ = np.where(swap, nb_, na), np.where(swap, na, nb_)
    return starts, ends, na, nb_


def _fold_contacts(
    starts: np.ndarray,
    ends: np.ndarray,
    na: np.ndarray,
    nb_: np.ndarray,
    *,
    contact_cap: float | None,
    min_duration: float,
) -> list[Contact]:
    """Merge per-pair windows and emit contacts in (start, end, a, b) order.

    One pass over the windows sorted by (pair, start, end) — the same
    order and fold as :func:`~repro.mobility.trajectory._merge_windows`
    (gap 1e-9), followed by the scalar path's cap and minimum-duration
    filter, so the emitted contacts are identical to the reference. The
    final numeric pre-sort means :class:`ContactTrace`'s own ``sorted()``
    sees already-ordered data instead of comparing dataclasses pairwise.
    """
    if starts.size == 0:
        return []
    order = np.lexsort((ends, starts, nb_, na))
    s_l = starts[order].tolist()
    e_l = ends[order].tolist()
    a_l = na[order].tolist()
    b_l = nb_[order].tolist()

    out_s: list[float] = []
    out_e: list[float] = []
    out_a: list[int] = []
    out_b: list[int] = []

    def emit(i: int, j: int, s: float, e: float) -> None:
        if contact_cap is not None:
            e = min(e, s + contact_cap)
        if e - s >= min_duration:
            out_s.append(s)
            out_e.append(e)
            out_a.append(i)
            out_b.append(j)

    cur_a, cur_b = a_l[0], b_l[0]
    cur_s, cur_e = s_l[0], e_l[0]
    for s, e, i, j in zip(s_l[1:], e_l[1:], a_l[1:], b_l[1:], strict=True):
        if i == cur_a and j == cur_b and s <= cur_e + 1e-9:
            if e > cur_e:
                cur_e = e
        else:
            emit(cur_a, cur_b, cur_s, cur_e)
            cur_a, cur_b, cur_s, cur_e = i, j, s, e
    emit(cur_a, cur_b, cur_s, cur_e)

    final = np.lexsort(
        (np.asarray(out_b), np.asarray(out_a), np.asarray(out_e), np.asarray(out_s))
    )
    return [
        Contact(start=out_s[k], end=out_e[k], a=out_a[k], b=out_b[k])
        for k in final.tolist()
    ]


def extract_contacts_fast(
    trajectories,
    comm_range: float,
    *,
    contact_cap: float | None = 500.0,
    min_duration: float = 1.0,
    horizon: float | None = None,
    name: str = "",
    cell_size: float | None = None,
) -> ContactTrace:
    """Vectorized equivalent of the scalar ``engine="exact"`` extraction.

    Prefer calling
    :func:`repro.mobility.trajectory.contacts_from_trajectories` (which
    validates inputs and dispatches here by default); this entry point
    exposes the broad-phase tuning knob for benchmarks.

    Args:
        cell_size: Override the broad-phase piece displacement cap in
            metres (grid pitch is ``cell_size + comm_range``; default
            ``max(2 * comm_range, extent / 256)``). Any positive value
            yields the same contacts — the knob trades hash table size
            against candidate pair count, never correctness.
    """
    n = len(trajectories)
    node, t0, t1, x0, y0, x1, y1 = _pack_segments(trajectories)
    A, B = _candidate_segment_pairs(
        node, t0, t1, x0, y0, x1, y1, comm_range, cell_size=cell_size
    )
    starts, ends, na, nb_ = _batched_windows(
        A, B, node, t0, t1, x0, y0, x1, y1, comm_range * comm_range
    )
    contacts = _fold_contacts(
        starts, ends, na, nb_, contact_cap=contact_cap, min_duration=min_duration
    )
    if horizon is None:
        horizon = max(t.end_time for t in trajectories)
    horizon = max(horizon, max((c.end for c in contacts), default=0.0))
    return ContactTrace(contacts, n, horizon=horizon, name=name)
