"""Synthetic campus contact trace — substitute for the CRAWDAD Haggle dataset.

The paper's trace-based study uses the CRAWDAD
``cambridge/haggle/imote/intel`` dataset: 12 short-range devices carried by
students for five days (observation horizon 524,162 s), recording encounter
begin times, durations and counts. That dataset is not redistributable and
this environment has no network access, so :class:`CampusTraceGenerator`
produces a statistically equivalent trace:

* **Pairwise renewal process** — each unordered device pair meets according
  to its own renewal process, reproducing "nodes are not always connected
  and experience large delays between meetings".
* **Friendship graph** — only a fraction of pairs (``pair_activity``) ever
  meet, connected via a random spanning tree, as in real student cohorts
  where each participant regularly sees a handful of others. This makes
  multi-hop relaying *essential* for most (source, destination) draws —
  the property all of the paper's protocol separations rest on.
* **Log-normal inter-contact gaps** — heavy-tailed inter-contact times, the
  well-documented property of the Haggle traces (Chaintreau et al.); median
  gaps of hours with a tail of a day+.
* **Pair heterogeneity** — per-pair rate multipliers model friend pairs that
  meet often vs. strangers that almost never do.
* **Log-normal encounter durations** — a few minutes median, matching the
  paper's worked example (a 314 s encounter carrying 3 bundles).
* **Diurnal thinning** — optional day/night activity modulation: candidate
  encounters at night are accepted with reduced probability.

Epidemic-routing behaviour depends on the contact process only — who meets
whom, when, for how long — so this generator exercises exactly the code
paths the real dataset would. The adapter in
:mod:`repro.mobility.trace_file` loads the genuine dataset unchanged when
available.

Unlike the trajectory-based models in :mod:`repro.mobility.rwp`, this
generator draws encounters directly from the renewal process — there is no
geometric contact detection, hence no ``engine`` knob: the per-pair draws
are already vectorised and scale linearly in the number of active pairs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.mobility.contact import Contact, ContactTrace

#: The last timestamp of the paper's campus trace (Section IV).
CAMPUS_HORIZON_S = 524_162.0


@dataclass(frozen=True)
class CampusTraceConfig:
    """Statistical model parameters for the synthetic campus trace.

    Defaults are calibrated so a generated trace matches the paper's setup:
    12 nodes over 524,162 s; node-level encounter gaps of a few minutes
    (frequent sightings, as in the iMote listings) but pair-level gaps of
    hours with a heavy tail — so constant-TTL protocols function yet
    end-to-end delivery still takes ~10⁵ s, matching Figs 7 and 13.

    Attributes:
        num_nodes: Devices in the experiment (paper: 12).
        horizon: Observation end in seconds (paper: 524,162).
        mean_intercontact: Mean pair inter-contact gap in seconds before
            heterogeneity scaling (default 6 h).
        intercontact_sigma: Log-normal sigma of the gap distribution; ~1.1
            gives the heavy tail reported for Haggle traces.
        heterogeneity_sigma: Log-normal sigma of the per-pair rate
            multiplier (0 = homogeneous pairs).
        pair_activity: Fraction of node pairs that meet regularly (the
            friendship graph density). A random spanning tree keeps the
            graph connected so every endpoint draw is in principle
            deliverable; 1.0 disables the friendship structure.
        background_activity: Contact-rate multiplier for non-friend pairs
            (strangers still bump into each other occasionally — at
            ``background_activity`` times the friend rate). 0 restores a
            hard friendship cut.
        duration_median: Median encounter duration in seconds.
        duration_sigma: Log-normal sigma of durations.
        min_duration / max_duration: Duration clamp in seconds.
        diurnal: Apply day/night thinning.
        night_activity: Acceptance probability for night-time encounters
            (day-time encounters are always kept).
        day_start / day_end: Active window within each 86,400 s day.
        day_phase: Time-of-day that t = 0 corresponds to. The paper's
            experiment starts when devices were handed out (mid-morning),
            so sources are active from the first simulated second; without
            the phase, t = 0 would fall at "midnight" and TTL-based
            protocols would lose their bundles before the first encounter
            purely as a calibration artefact.
        handout_burst: Model the device-handout gathering: in the first
            ``burst_window`` seconds, each pair additionally meets with
            probability ``burst_pair_prob`` for a long contact. Relevant
            for the ``expire_origin`` TTL ablation — with a handout burst,
            sources flush part of their queue before the first TTL
            deadline, which is how the paper's trace study can show
            non-trivial constant-TTL delivery even if origin copies expire.
    """

    num_nodes: int = 12
    horizon: float = CAMPUS_HORIZON_S
    mean_intercontact: float = 4_000.0
    intercontact_sigma: float = 0.5
    heterogeneity_sigma: float = 0.3
    pair_activity: float = 0.45
    background_activity: float = 0.08
    duration_median: float = 120.0
    duration_sigma: float = 0.9
    min_duration: float = 20.0
    max_duration: float = 2_000.0
    diurnal: bool = True
    night_activity: float = 0.25
    day_start: float = 8 * 3600.0
    day_end: float = 22 * 3600.0
    day_phase: float = 9 * 3600.0
    handout_burst: bool = False
    burst_window: float = 600.0
    burst_pair_prob: float = 0.6
    burst_min_duration: float = 180.0
    burst_max_duration: float = 480.0

    def __post_init__(self) -> None:
        if self.num_nodes < 2:
            raise ValueError("num_nodes must be >= 2")
        if self.horizon <= 0:
            raise ValueError("horizon must be positive")
        if self.mean_intercontact <= 0:
            raise ValueError("mean_intercontact must be positive")
        if not (0 < self.min_duration <= self.duration_median <= self.max_duration):
            raise ValueError(
                "need 0 < min_duration <= duration_median <= max_duration"
            )
        if not (0.0 <= self.night_activity <= 1.0):
            raise ValueError("night_activity must be a probability")
        if not (0.0 < self.pair_activity <= 1.0):
            raise ValueError("pair_activity must be in (0, 1]")
        if not (0.0 <= self.background_activity <= 1.0):
            raise ValueError("background_activity must be in [0, 1]")
        if not (0.0 <= self.day_start < self.day_end <= 86_400.0):
            raise ValueError("need 0 <= day_start < day_end <= 86400")


class CampusTraceGenerator:
    """Generates reproducible synthetic campus traces.

    Example:
        >>> trace = CampusTraceGenerator(seed=42).generate()
        >>> trace.num_nodes
        12
    """

    def __init__(self, config: CampusTraceConfig | None = None, *, seed: int = 0) -> None:
        self.config = config or CampusTraceConfig()
        self.seed = seed

    # ------------------------------------------------------------ internals

    def _gap_mu(self) -> float:
        """Log-normal mu so the gap mean equals ``mean_intercontact``."""
        c = self.config
        return math.log(c.mean_intercontact) - 0.5 * c.intercontact_sigma**2

    def _is_daytime(self, t: float) -> bool:
        c = self.config
        tod = (t + c.day_phase) % 86_400.0
        return c.day_start <= tod < c.day_end

    def _pair_contacts(
        self, a: int, b: int, rate_scale: float, rng: np.random.Generator
    ) -> list[Contact]:
        """Renewal process for one pair: gaps then durations, vectorised."""
        c = self.config
        mu = self._gap_mu() + math.log(rate_scale)
        mean_gap = math.exp(mu + 0.5 * c.intercontact_sigma**2)
        # Draw enough gaps to cover the horizon with margin, then cumsum.
        est = max(8, int(c.horizon / mean_gap * 2.5) + 8)
        gaps = rng.lognormal(mu, c.intercontact_sigma, size=est)
        starts = np.cumsum(gaps)
        while starts[-1] < c.horizon:  # rare: extend until past the horizon
            more = rng.lognormal(mu, c.intercontact_sigma, size=est)
            starts = np.concatenate([starts, starts[-1] + np.cumsum(more)])
        starts = starts[starts < c.horizon]
        if starts.size == 0:
            return []
        durations = np.clip(
            rng.lognormal(math.log(c.duration_median), c.duration_sigma, starts.size),
            c.min_duration,
            c.max_duration,
        )
        contacts: list[Contact] = []
        prev_end = -math.inf
        for s, d in zip(starts.tolist(), durations.tolist(), strict=True):
            if c.diurnal and not self._is_daytime(s):
                if rng.random() > c.night_activity:
                    continue
            e = min(s + d, c.horizon)
            if e - s < c.min_duration:
                continue
            if s < prev_end:  # renewal overlap after clamping: skip
                continue
            contacts.append(Contact(start=s, end=e, a=a, b=b))
            prev_end = e
        return contacts

    def _active_pairs(self, rng: np.random.Generator) -> list[tuple[int, int]]:
        """The friendship graph: a random spanning tree plus extra pairs.

        The tree guarantees connectivity; additional pairs are sampled so
        the expected total density matches ``pair_activity``.
        """
        c = self.config
        nodes = list(range(c.num_nodes))
        order = rng.permutation(nodes).tolist()
        tree: set[tuple[int, int]] = set()
        for k in range(1, len(order)):
            attach = order[int(rng.integers(k))]
            a, b = order[k], attach
            tree.add((min(a, b), max(a, b)))
        all_pairs = [
            (i, j) for i in range(c.num_nodes) for j in range(i + 1, c.num_nodes)
        ]
        if c.pair_activity >= 1.0:
            return all_pairs
        target = c.pair_activity * len(all_pairs)
        extra_needed = max(0.0, target - len(tree))
        remaining = [p for p in all_pairs if p not in tree]
        p_extra = min(1.0, extra_needed / len(remaining)) if remaining else 0.0
        active = set(tree)
        for pair in remaining:
            if rng.random() < p_extra:
                active.add(pair)
        return sorted(active)

    def _add_handout_burst(
        self, contacts: list[Contact], root: np.random.SeedSequence
    ) -> list[Contact]:
        """Inject the device-handout gathering at the start of the trace.

        Burst contacts replace (rather than stack on) any renewal contact
        of the same pair that would overlap the burst window.
        """
        c = self.config
        rng = np.random.default_rng(root.spawn(1)[0])
        burst_end = c.burst_window + c.burst_max_duration
        kept = [ct for ct in contacts if ct.start >= burst_end]
        burst: list[Contact] = []
        for i in range(c.num_nodes):
            for j in range(i + 1, c.num_nodes):
                if rng.random() >= c.burst_pair_prob:
                    continue
                start = float(rng.uniform(0.0, c.burst_window))
                dur = float(rng.uniform(c.burst_min_duration, c.burst_max_duration))
                burst.append(Contact(start=start, end=start + dur, a=i, b=j))
        return burst + kept

    # ------------------------------------------------------------ public API

    def generate(self) -> ContactTrace:
        """Generate the full trace (deterministic in ``seed``)."""
        c = self.config
        root = np.random.SeedSequence([self.seed & 0xFFFFFFFF, 0xCA3B05])
        graph_rng = np.random.default_rng(root.spawn(1)[0])
        friends = set(self._active_pairs(graph_rng))
        pair_list = [
            (i, j) for i in range(c.num_nodes) for j in range(i + 1, c.num_nodes)
        ]
        het_rng = np.random.default_rng(root.spawn(2)[1])
        if c.heterogeneity_sigma > 0:
            scales = het_rng.lognormal(0.0, c.heterogeneity_sigma, len(pair_list))
        else:
            scales = np.ones(len(pair_list))
        contacts: list[Contact] = []
        pair_seeds = root.spawn(len(pair_list) + 2)[2:]
        for (i, j), scale, ss in zip(pair_list, scales.tolist(), pair_seeds, strict=True):
            if (i, j) not in friends:
                if c.background_activity <= 0.0:
                    continue
                # strangers: same renewal process, background_activity times
                # the rate, i.e. gaps 1/background_activity times longer
                scale = scale / c.background_activity
            rng = np.random.default_rng(ss)
            contacts.extend(self._pair_contacts(i, j, scale, rng))
        if c.handout_burst:
            contacts = self._add_handout_burst(contacts, root)
        trace = ContactTrace(
            contacts,
            c.num_nodes,
            horizon=c.horizon,
            name=f"campus-synthetic(seed={self.seed})",
        )
        trace.validate_disjoint_pairs()
        return trace

    def describe(self) -> dict[str, float | int | bool]:
        """The statistical model as a flat dict (for reports/EXPERIMENTS.md)."""
        c = self.config
        return {
            "num_nodes": c.num_nodes,
            "horizon_s": c.horizon,
            "mean_intercontact_s": c.mean_intercontact,
            "intercontact_sigma": c.intercontact_sigma,
            "heterogeneity_sigma": c.heterogeneity_sigma,
            "duration_median_s": c.duration_median,
            "duration_sigma": c.duration_sigma,
            "diurnal": c.diurnal,
            "seed": self.seed,
        }
