"""Piecewise-linear trajectories and exact geometric contact extraction.

A node's movement is a :class:`Trajectory`: a sequence of time segments, each
either a pause (endpoints equal) or a constant-velocity move. Contact
extraction between two trajectories is *exact*: on every overlapping segment
pair the squared inter-node distance is a quadratic in time, so the
below-range window is obtained from the quadratic's roots rather than by
sampling. This is both faster and free of the missed-short-contact artefacts
a sampling detector would have.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from collections.abc import Sequence

from repro.mobility.contact import Contact, ContactTrace
from repro.mobility.fastcontact import extract_contacts_fast


@dataclass(frozen=True, slots=True)
class Segment:
    """Constant-velocity movement (or pause) during ``[t0, t1]``."""

    t0: float
    t1: float
    x0: float
    y0: float
    x1: float
    y1: float

    def __post_init__(self) -> None:
        if not (self.t1 > self.t0):
            raise ValueError(f"segment requires t1 > t0, got [{self.t0}, {self.t1}]")

    @property
    def duration(self) -> float:
        return self.t1 - self.t0

    @property
    def vx(self) -> float:
        return (self.x1 - self.x0) / (self.t1 - self.t0)

    @property
    def vy(self) -> float:
        return (self.y1 - self.y0) / (self.t1 - self.t0)

    @property
    def speed(self) -> float:
        return math.hypot(self.x1 - self.x0, self.y1 - self.y0) / (self.t1 - self.t0)

    def position(self, t: float) -> tuple[float, float]:
        """Position at time ``t`` (must lie within the segment)."""
        if not (self.t0 <= t <= self.t1):
            raise ValueError(f"t={t} outside segment [{self.t0}, {self.t1}]")
        s = (t - self.t0) / (self.t1 - self.t0)
        return (self.x0 + s * (self.x1 - self.x0), self.y0 + s * (self.y1 - self.y0))


class Trajectory:
    """A node's full movement: contiguous segments covering [start, end]."""

    def __init__(self, node: int, segments: Sequence[Segment]) -> None:
        if not segments:
            raise ValueError("trajectory needs at least one segment")
        for prev, nxt in zip(segments, segments[1:], strict=False):
            if not math.isclose(prev.t1, nxt.t0, rel_tol=0, abs_tol=1e-9):
                raise ValueError(
                    f"segments not contiguous: {prev.t1} -> {nxt.t0}"
                )
            if not (
                math.isclose(prev.x1, nxt.x0, abs_tol=1e-6)
                and math.isclose(prev.y1, nxt.y0, abs_tol=1e-6)
            ):
                raise ValueError("segments not spatially contiguous")
        self.node = node
        self.segments = list(segments)

    @property
    def start_time(self) -> float:
        return self.segments[0].t0

    @property
    def end_time(self) -> float:
        return self.segments[-1].t1

    def position(self, t: float) -> tuple[float, float]:
        """Position at time ``t`` by binary search over segments."""
        if not (self.start_time <= t <= self.end_time):
            raise ValueError(f"t={t} outside trajectory span")
        lo, hi = 0, len(self.segments) - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if self.segments[mid].t1 < t:
                lo = mid + 1
            else:
                hi = mid
        return self.segments[lo].position(t)

    def max_speed(self) -> float:
        return max(s.speed for s in self.segments)


def _window_below_range(
    sa: Segment, sb: Segment, t0: float, t1: float, range_sq: float
) -> tuple[float, float] | None:
    """Sub-interval of [t0, t1] where |pos_a - pos_b| <= range.

    Both segments must cover [t0, t1]. Returns None if never in range.
    """
    ax, ay = sa.position(t0)
    bx, by = sb.position(t0)
    dx, dy = ax - bx, ay - by
    dvx, dvy = sa.vx - sb.vx, sa.vy - sb.vy
    # |d + dv*s|^2 <= range_sq  for s in [0, t1 - t0]
    a = dvx * dvx + dvy * dvy
    b = 2.0 * (dx * dvx + dy * dvy)
    c = dx * dx + dy * dy - range_sq
    span = t1 - t0
    if a < 1e-15:  # no relative motion: distance constant
        return (t0, t1) if c <= 0.0 else None
    disc = b * b - 4.0 * a * c
    if disc < 0.0:
        return None
    sqrt_disc = math.sqrt(disc)
    s_lo = (-b - sqrt_disc) / (2.0 * a)
    s_hi = (-b + sqrt_disc) / (2.0 * a)
    lo = max(s_lo, 0.0)
    hi = min(s_hi, span)
    if hi <= lo:
        return None
    return (t0 + lo, t0 + hi)


def _merge_windows(
    windows: list[tuple[float, float]], *, gap: float = 1e-9
) -> list[tuple[float, float]]:
    """Fuse touching/overlapping windows (within ``gap``)."""
    if not windows:
        return []
    windows.sort()
    merged = [windows[0]]
    for s, e in windows[1:]:
        ps, pe = merged[-1]
        if s <= pe + gap:
            merged[-1] = (ps, max(pe, e))
        else:
            merged.append((s, e))
    return merged


def pair_contact_windows(
    ta: Trajectory, tb: Trajectory, comm_range: float
) -> list[tuple[float, float]]:
    """All maximal time windows in which the two nodes are within range."""
    if comm_range <= 0:
        raise ValueError("comm_range must be positive")
    range_sq = comm_range * comm_range
    windows: list[tuple[float, float]] = []
    i = j = 0
    segs_a, segs_b = ta.segments, tb.segments
    while i < len(segs_a) and j < len(segs_b):
        sa, sb = segs_a[i], segs_b[j]
        t0 = max(sa.t0, sb.t0)
        t1 = min(sa.t1, sb.t1)
        if t1 > t0:
            w = _window_below_range(sa, sb, t0, t1, range_sq)
            if w is not None:
                windows.append(w)
        # advance whichever segment ends first
        if sa.t1 <= sb.t1:
            i += 1
        else:
            j += 1
    return _merge_windows(windows)


#: Contact-extraction engines accepted by :func:`contacts_from_trajectories`.
CONTACT_ENGINES = ("fast", "exact")


def contacts_from_trajectories(
    trajectories: Sequence[Trajectory],
    comm_range: float,
    *,
    contact_cap: float | None = 500.0,
    min_duration: float = 1.0,
    horizon: float | None = None,
    name: str = "",
    engine: str = "fast",
) -> ContactTrace:
    """Extract the full contact trace from a set of trajectories.

    Args:
        comm_range: Radio range in metres.
        contact_cap: Truncate each encounter to at most this many seconds
            (the paper caps encounters at 500 s); None disables.
        min_duration: Discard encounters shorter than this.
        horizon: Trace horizon; defaults to the latest trajectory end.
        engine: ``"fast"`` (default) uses the vectorized broad/narrow-phase
            detector in :mod:`repro.mobility.fastcontact`; ``"exact"`` is
            the scalar per-pair reference sweep. Both produce bit-identical
            traces — ``"exact"`` exists as the independent oracle the fast
            path is validated against.

    Returns:
        A validated :class:`ContactTrace` over ``len(trajectories)`` nodes
        (node ids must be 0..n-1).
    """
    if comm_range <= 0:
        raise ValueError("comm_range must be positive")
    if engine not in CONTACT_ENGINES:
        raise ValueError(
            f"unknown contact engine {engine!r}; available: {', '.join(CONTACT_ENGINES)}"
        )
    n = len(trajectories)
    ids = sorted(t.node for t in trajectories)
    if ids != list(range(n)):
        raise ValueError(f"trajectory node ids must be 0..{n - 1}, got {ids}")
    if engine == "fast":
        return extract_contacts_fast(
            trajectories,
            comm_range,
            contact_cap=contact_cap,
            min_duration=min_duration,
            horizon=horizon,
            name=name,
        )
    by_id = {t.node: t for t in trajectories}
    contacts: list[Contact] = []
    for i in range(n):
        for j in range(i + 1, n):
            for s, e in pair_contact_windows(by_id[i], by_id[j], comm_range):
                if contact_cap is not None:
                    e = min(e, s + contact_cap)
                if e - s >= min_duration:
                    contacts.append(Contact(start=s, end=e, a=i, b=j))
    if horizon is None:
        horizon = max(t.end_time for t in trajectories)
    horizon = max(horizon, max((c.end for c in contacts), default=0.0))
    return ContactTrace(contacts, n, horizon=horizon, name=name)
