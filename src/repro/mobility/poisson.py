"""Homogeneous Poisson contact generation — the analytic model's twin.

The fluid/Markov formulas in :mod:`repro.analytic` assume every node pair
meets as an independent Poisson process with rate β. The trace-driven
mobility models (campus, RWP) only *approximate* that — their inter-meeting
gaps are lognormal or geometry-induced, which is exactly right for
reproducing the paper but muddies surrogate validation: any disagreement
mixes genuine model error with mobility-assumption mismatch. This generator
produces the assumption itself, so the cross-validation gate
(:mod:`repro.analytic.calibration`) measures pure surrogate error.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.mobility.contact import Contact, ContactTrace


@dataclass(frozen=True)
class PoissonContactConfig:
    """Shape of a homogeneous Poisson contact process.

    Attributes:
        num_nodes: Population size.
        beta: Pairwise meeting rate, meetings per second per pair.
        horizon: Observation window, seconds.
        duration: Length of every encounter, seconds. Keep it well below
            the mean inter-meeting gap ``1/beta`` (so one pair's meetings
            stay disjoint) and at or above the simulator's
            ``bundle_tx_time`` (so every meeting can carry a bundle — the
            analytic model counts every meeting as a transfer
            opportunity).
    """

    num_nodes: int = 40
    beta: float = 1.25e-4
    horizon: float = 60_000.0
    duration: float = 30.0

    def __post_init__(self) -> None:
        if self.num_nodes < 2:
            raise ValueError(f"need at least 2 nodes, got {self.num_nodes}")
        if self.beta <= 0:
            raise ValueError(f"meeting rate must be positive, got {self.beta}")
        if self.horizon <= 0:
            raise ValueError(f"horizon must be positive, got {self.horizon}")
        if self.duration <= 0:
            raise ValueError(f"duration must be positive, got {self.duration}")


def generate_poisson_trace(
    config: PoissonContactConfig, *, seed: int = 0
) -> ContactTrace:
    """Draw one realisation of the homogeneous Poisson contact process.

    Every unordered pair receives Poisson(β) meeting instants over
    ``[0, horizon)``; each meeting becomes a ``duration``-second contact,
    clipped at the horizon. Overlapping windows of the same pair (rare
    when ``duration ≪ 1/β``) are fused by
    :meth:`~repro.mobility.contact.ContactTrace.coalesced`, so per-pair
    windows are always disjoint, as the simulator expects.
    """
    rng = np.random.default_rng(
        np.random.SeedSequence([seed & 0xFFFFFFFF, 0x9015507])
    )
    n = config.num_nodes
    mean_gap = 1.0 / config.beta
    contacts: list[Contact] = []
    for a in range(n - 1):
        for b in range(a + 1, n):
            t = float(rng.exponential(mean_gap))
            while t < config.horizon:
                end = min(t + config.duration, config.horizon)
                if end > t:
                    contacts.append(Contact(t, end, a, b))
                t += float(rng.exponential(mean_gap))
    trace = ContactTrace(
        contacts,
        n,
        horizon=config.horizon,
        name=f"poisson(n={n}, beta={config.beta:g})",
    )
    return trace.coalesced()
