"""Contact-trace statistics.

Used three ways:

* calibration tests assert the synthetic campus generator produces traces
  with the qualitative properties the paper relies on (sparse meetings,
  heavy-tailed inter-contact gaps, variable durations);
* EXPERIMENTS.md reports the mobility inputs next to each result;
* the dynamic-TTL analysis relates per-node encounter intervals to TTL
  choices.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.mobility.contact import ContactTrace


@dataclass(frozen=True)
class SeriesSummary:
    """Five-number-ish summary of a sample."""

    count: int
    mean: float
    median: float
    p90: float
    minimum: float
    maximum: float

    @classmethod
    def of(cls, values: list[float]) -> SeriesSummary:
        if not values:
            return cls(0, math.nan, math.nan, math.nan, math.nan, math.nan)
        arr = np.asarray(values, dtype=float)
        return cls(
            count=int(arr.size),
            mean=float(arr.mean()),
            median=float(np.median(arr)),
            p90=float(np.percentile(arr, 90)),
            minimum=float(arr.min()),
            maximum=float(arr.max()),
        )


@dataclass(frozen=True)
class TraceStats:
    """Aggregate statistics of a contact trace."""

    num_nodes: int
    num_contacts: int
    horizon: float
    durations: SeriesSummary
    intercontact_pair: SeriesSummary  #: gaps between successive meetings of a pair
    intercontact_node: SeriesSummary  #: gaps between a node's successive encounters
    encounters_per_node: SeriesSummary
    pairs_that_met: int
    pair_coverage: float  #: fraction of all pairs that met at least once
    contact_time_fraction: float  #: sum of durations / (horizon · #pairs)

    def as_dict(self) -> dict[str, float | int]:
        """Flatten for CSV/JSON reporting."""
        out: dict[str, float | int] = {
            "num_nodes": self.num_nodes,
            "num_contacts": self.num_contacts,
            "horizon": self.horizon,
            "pairs_that_met": self.pairs_that_met,
            "pair_coverage": self.pair_coverage,
            "contact_time_fraction": self.contact_time_fraction,
        }
        for label, s in (
            ("duration", self.durations),
            ("intercontact_pair", self.intercontact_pair),
            ("intercontact_node", self.intercontact_node),
            ("encounters_per_node", self.encounters_per_node),
        ):
            out[f"{label}_mean"] = s.mean
            out[f"{label}_median"] = s.median
            out[f"{label}_p90"] = s.p90
        return out


def per_pair_gaps(trace: ContactTrace) -> dict[tuple[int, int], list[float]]:
    """Gaps between successive contacts of each pair (end -> next start)."""
    by_pair: dict[tuple[int, int], list[tuple[float, float]]] = {}
    for c in trace:
        by_pair.setdefault(c.pair, []).append((c.start, c.end))
    gaps: dict[tuple[int, int], list[float]] = {}
    for pair, windows in by_pair.items():
        windows.sort()
        gaps[pair] = [
            max(0.0, nxt[0] - prev[1]) for prev, nxt in zip(windows, windows[1:], strict=False)
        ]
    return gaps


def per_node_encounter_times(trace: ContactTrace) -> dict[int, list[float]]:
    """Encounter start times per node, in time order."""
    times: dict[int, list[float]] = {i: [] for i in range(trace.num_nodes)}
    for c in trace:
        times[c.a].append(c.start)
        times[c.b].append(c.start)
    return times


def per_node_gaps(trace: ContactTrace) -> dict[int, list[float]]:
    """Gaps between a node's successive encounter starts."""
    out: dict[int, list[float]] = {}
    for node, starts in per_node_encounter_times(trace).items():
        out[node] = [b - a for a, b in zip(starts, starts[1:], strict=False)]
    return out


def compute_trace_stats(trace: ContactTrace) -> TraceStats:
    """Compute the full :class:`TraceStats` summary of a trace."""
    durations = [c.duration for c in trace]
    pair_gap_values = [g for gaps in per_pair_gaps(trace).values() for g in gaps]
    node_gap_values = [g for gaps in per_node_gaps(trace).values() for g in gaps]
    per_node_counts: dict[int, int] = {i: 0 for i in range(trace.num_nodes)}
    pairs: set[tuple[int, int]] = set()
    for c in trace:
        per_node_counts[c.a] += 1
        per_node_counts[c.b] += 1
        pairs.add(c.pair)
    total_pairs = trace.num_nodes * (trace.num_nodes - 1) // 2
    assert trace.horizon is not None
    contact_time_fraction = (
        sum(durations) / (trace.horizon * total_pairs) if durations else 0.0
    )
    return TraceStats(
        num_nodes=trace.num_nodes,
        num_contacts=len(trace),
        horizon=trace.horizon,
        durations=SeriesSummary.of(durations),
        intercontact_pair=SeriesSummary.of(pair_gap_values),
        intercontact_node=SeriesSummary.of(node_gap_values),
        encounters_per_node=SeriesSummary.of(
            [float(v) for v in per_node_counts.values()]
        ),
        pairs_that_met=len(pairs),
        pair_coverage=len(pairs) / total_pairs if total_pairs else 0.0,
        contact_time_fraction=contact_time_fraction,
    )


def heavy_tail_index(values: list[float]) -> float:
    """Crude tail-weight indicator: p90 / median.

    Exponential samples give ≈ 3.3; heavy-tailed (log-normal σ≳1) samples
    give substantially more. Used by calibration tests, not by the
    simulation itself.
    """
    if not values:
        return math.nan
    arr = np.asarray(values, dtype=float)
    med = float(np.median(arr))
    if med <= 0:
        return math.inf
    return float(np.percentile(arr, 90)) / med
