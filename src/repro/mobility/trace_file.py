"""On-disk contact trace formats.

Two formats are supported:

1. **Canonical format** (``read_contact_trace`` / ``write_contact_trace``) —
   the library's own format. Header directives then one contact per line::

       # repro contact trace v1
       nodes 12
       horizon 524162
       # a   b   start     end
       3     9   3568.0    3882.0
       ...

2. **CRAWDAD-Haggle-style adapter** (``read_haggle_trace``) — whitespace
   columns ``id1 id2 start end [count ...]`` with 1-based device ids and no
   header, matching the published ``cambridge/haggle/imote`` contact listings.
   Extra columns are ignored, so the genuine dataset drops in unchanged.
"""

from __future__ import annotations

import io
from pathlib import Path
from collections.abc import Iterable
from typing import TextIO

from repro.ioutil import atomic_write
from repro.mobility.contact import Contact, ContactTrace

_MAGIC = "# repro contact trace v1"


class TraceFormatError(ValueError):
    """Raised when a trace file cannot be parsed."""

    def __init__(self, message: str, *, line_no: int | None = None) -> None:
        if line_no is not None:
            message = f"line {line_no}: {message}"
        super().__init__(message)
        self.line_no = line_no


def _open_text(source: str | Path | TextIO) -> tuple[TextIO, bool]:
    """Return (stream, should_close)."""
    if isinstance(source, (str, Path)):
        return open(source, "r", encoding="utf-8"), True
    return source, False


def write_contact_trace(trace: ContactTrace, dest: str | Path | TextIO) -> None:
    """Write a trace in the canonical format.

    A path destination is written atomically (temp file + rename), so a
    crash mid-write never leaves a truncated trace under the target name.
    """
    if isinstance(dest, (str, Path)):
        atomic_write(dest, lambda stream: _write_canonical(trace, stream))
        return
    _write_canonical(trace, dest)


def _write_canonical(trace: ContactTrace, stream: TextIO) -> None:
    stream.write(_MAGIC + "\n")
    if trace.name:
        stream.write(f"# name: {trace.name}\n")
    stream.write(f"nodes {trace.num_nodes}\n")
    # float() normalises NumPy scalars that mobility generators may
    # leave in contact fields (np.float64 repr is not parseable here).
    stream.write(f"horizon {float(trace.horizon)!r}\n")
    stream.write("# a b start end\n")
    for c in trace.contacts:
        stream.write(f"{int(c.a)} {int(c.b)} {float(c.start)!r} {float(c.end)!r}\n")


def read_contact_trace(source: str | Path | TextIO) -> ContactTrace:
    """Parse a canonical-format trace.

    Raises:
        TraceFormatError: on any malformed header or record.
    """
    stream, close = _open_text(source)
    try:
        num_nodes: int | None = None
        horizon: float | None = None
        name = ""
        contacts: list[Contact] = []
        first = stream.readline()
        if first.strip() != _MAGIC:
            raise TraceFormatError(
                f"missing magic header {_MAGIC!r} (got {first.strip()!r})", line_no=1
            )
        for line_no, raw in enumerate(stream, start=2):
            line = raw.strip()
            if not line:
                continue
            if line.startswith("#"):
                if line.startswith("# name:"):
                    name = line[len("# name:") :].strip()
                continue
            fields = line.split()
            if fields[0] == "nodes":
                if len(fields) != 2:
                    raise TraceFormatError("nodes directive takes one value", line_no=line_no)
                try:
                    num_nodes = int(fields[1])
                except ValueError as exc:
                    raise TraceFormatError(f"bad node count {fields[1]!r}", line_no=line_no) from exc
                continue
            if fields[0] == "horizon":
                if len(fields) != 2:
                    raise TraceFormatError("horizon directive takes one value", line_no=line_no)
                try:
                    horizon = float(fields[1])
                except ValueError as exc:
                    raise TraceFormatError(f"bad horizon {fields[1]!r}", line_no=line_no) from exc
                continue
            if len(fields) != 4:
                raise TraceFormatError(
                    f"expected 'a b start end', got {len(fields)} fields", line_no=line_no
                )
            try:
                a, b = int(fields[0]), int(fields[1])
                start, end = float(fields[2]), float(fields[3])
            except ValueError as exc:
                raise TraceFormatError(f"unparsable record {line!r}", line_no=line_no) from exc
            try:
                contacts.append(Contact(start=start, end=end, a=a, b=b))
            except ValueError as exc:
                raise TraceFormatError(str(exc), line_no=line_no) from exc
        if num_nodes is None:
            raise TraceFormatError("missing 'nodes' directive")
        try:
            return ContactTrace(contacts, num_nodes, horizon=horizon, name=name)
        except ValueError as exc:
            raise TraceFormatError(str(exc)) from exc
    finally:
        if close:
            stream.close()


def read_haggle_trace(
    source: str | Path | TextIO,
    *,
    num_nodes: int | None = None,
    one_based_ids: bool = True,
    horizon: float | None = None,
    name: str = "haggle",
) -> ContactTrace:
    """Parse a CRAWDAD-Haggle-style contact listing.

    Each non-comment line is ``id1 id2 start end [extra columns...]``. The
    published iMote listings use 1-based device ids; pass
    ``one_based_ids=False`` for 0-based variants.

    Args:
        num_nodes: Population size; inferred as ``max(id) + 1`` if omitted.
        horizon: Observation end; defaults to the last contact end.

    Raises:
        TraceFormatError: on malformed records.
    """
    stream, close = _open_text(source)
    try:
        rows: list[tuple[int, int, float, float]] = []
        for line_no, raw in enumerate(stream, start=1):
            line = raw.strip()
            if not line or line.startswith(("#", "%", "//")):
                continue
            fields = line.split()
            if len(fields) < 4:
                raise TraceFormatError(
                    f"expected at least 4 columns, got {len(fields)}", line_no=line_no
                )
            try:
                a, b = int(fields[0]), int(fields[1])
                start, end = float(fields[2]), float(fields[3])
            except ValueError as exc:
                raise TraceFormatError(f"unparsable record {line!r}", line_no=line_no) from exc
            if one_based_ids:
                a -= 1
                b -= 1
            if a < 0 or b < 0:
                raise TraceFormatError(f"negative node id in {line!r}", line_no=line_no)
            if end <= start:
                # Haggle listings occasionally contain zero-length sightings;
                # they carry no exchange opportunity, so drop them.
                continue
            rows.append((a, b, start, end))
        if not rows:
            raise TraceFormatError("trace contains no usable contacts")
        inferred = max(max(a, b) for a, b, _, _ in rows) + 1
        n = num_nodes if num_nodes is not None else inferred
        if n < inferred:
            raise TraceFormatError(
                f"num_nodes={n} but records reference node {inferred - 1}"
            )
        contacts = [Contact(start=s, end=e, a=a, b=b) for a, b, s, e in rows]
        try:
            return ContactTrace(contacts, n, horizon=horizon, name=name)
        except ValueError as exc:
            raise TraceFormatError(str(exc)) from exc
    finally:
        if close:
            stream.close()


def trace_to_string(trace: ContactTrace) -> str:
    """Serialise a trace to a canonical-format string."""
    buf = io.StringIO()
    write_contact_trace(trace, buf)
    return buf.getvalue()


def trace_from_string(text: str) -> ContactTrace:
    """Parse a canonical-format string."""
    return read_contact_trace(io.StringIO(text))


def write_haggle_trace(
    trace: ContactTrace, dest: str | Path | TextIO, *, one_based_ids: bool = True
) -> None:
    """Write a trace as Haggle-style ``id1 id2 start end`` rows.

    A path destination is written atomically, like
    :func:`write_contact_trace`.
    """
    off = 1 if one_based_ids else 0

    def _write(stream: TextIO) -> None:
        for c in trace.contacts:
            stream.write(f"{c.a + off} {c.b + off} {c.start!r} {c.end!r}\n")

    if isinstance(dest, (str, Path)):
        atomic_write(dest, _write)
        return
    _write(dest)


def iter_contact_rows(trace: ContactTrace) -> Iterable[tuple[int, int, float, float]]:
    """Yield ``(a, b, start, end)`` rows (convenience for exporters)."""
    for c in trace.contacts:
        yield (c.a, c.b, c.start, c.end)
