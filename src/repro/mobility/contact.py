"""Contact events and contact traces — the common currency of the framework.

A :class:`Contact` is one encounter between two nodes: both are within radio
range during ``[start, end)``. A :class:`ContactTrace` is a validated,
time-sorted sequence of contacts over a fixed node population and time
horizon; every mobility model in :mod:`repro.mobility` produces one and the
simulation core consumes one.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from collections.abc import Iterable, Iterator, Sequence
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    import numpy as np


@dataclass(frozen=True, slots=True, order=True)
class Contact:
    """One encounter between two nodes.

    Node ids are normalised so ``a < b``; ordering is by ``(start, end, a, b)``
    which matches processing order in the simulator.

    Attributes:
        start: Encounter begin time (inclusive), seconds.
        end: Encounter end time (exclusive), seconds; must exceed ``start``.
        a: Lower node id.
        b: Higher node id.
    """

    start: float
    end: float
    a: int
    b: int

    def __post_init__(self) -> None:
        if self.a == self.b:
            raise ValueError(f"self-contact for node {self.a}")
        if self.a > self.b:
            # normalise: dataclass is frozen, so go through object.__setattr__
            lo, hi = self.b, self.a
            object.__setattr__(self, "a", lo)
            object.__setattr__(self, "b", hi)
        if not (self.end > self.start >= 0.0):
            raise ValueError(
                f"contact requires 0 <= start < end, got [{self.start}, {self.end})"
            )

    @property
    def duration(self) -> float:
        """Encounter duration in seconds."""
        return self.end - self.start

    @property
    def pair(self) -> tuple[int, int]:
        """Normalised ``(a, b)`` node pair."""
        return (self.a, self.b)

    def involves(self, node: int) -> bool:
        """True if ``node`` participates in this contact."""
        return node == self.a or node == self.b

    def peer_of(self, node: int) -> int:
        """Return the other participant.

        Raises:
            ValueError: if ``node`` is not a participant.
        """
        if node == self.a:
            return self.b
        if node == self.b:
            return self.a
        raise ValueError(f"node {node} is not part of contact {self}")

    def overlaps(self, other: Contact) -> bool:
        """True if the two contacts' time windows intersect."""
        return self.start < other.end and other.start < self.end


@dataclass
class ContactTrace:
    """A time-sorted contact sequence over ``num_nodes`` nodes.

    Args:
        contacts: Encounters; sorted on construction.
        num_nodes: Population size. Node ids must lie in ``[0, num_nodes)``.
        horizon: End of observation. Defaults to the last contact end. A
            simulation run that exceeds the horizon is marked *failed* (the
            paper's rule for its 524,162 s campus trace).
        name: Optional label used in reports.
    """

    contacts: list[Contact]
    num_nodes: int
    horizon: float | None = None
    name: str = ""
    _starts: list[float] = field(init=False, repr=False, default_factory=list)
    _by_node: dict[int, list[Contact]] | None = field(
        init=False, repr=False, compare=False, default=None
    )
    _by_pair: dict[tuple[int, int], list[Contact]] | None = field(
        init=False, repr=False, compare=False, default=None
    )
    _arrays: tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray] | None = field(
        init=False, repr=False, compare=False, default=None
    )
    _streams: (
        tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray] | None
    ) = field(init=False, repr=False, compare=False, default=None)

    def __post_init__(self) -> None:
        if self.num_nodes < 2:
            raise ValueError(f"need at least 2 nodes, got {self.num_nodes}")
        self.contacts = sorted(self.contacts)
        for c in self.contacts:
            if not (0 <= c.a < self.num_nodes and 0 <= c.b < self.num_nodes):
                raise ValueError(
                    f"contact {c} references nodes outside [0, {self.num_nodes})"
                )
        last_end = max((c.end for c in self.contacts), default=0.0)
        if self.horizon is None:
            self.horizon = last_end
        elif self.horizon < last_end:
            raise ValueError(
                f"horizon {self.horizon} precedes last contact end {last_end}"
            )
        self._starts = [c.start for c in self.contacts]

    # ----------------------------------------------------------- container API

    def __len__(self) -> int:
        return len(self.contacts)

    def __iter__(self) -> Iterator[Contact]:
        return iter(self.contacts)

    def __getitem__(self, idx: int) -> Contact:
        return self.contacts[idx]

    # -------------------------------------------------------------- queries

    def nodes(self) -> list[int]:
        """All node ids in the population (0..num_nodes-1)."""
        return list(range(self.num_nodes))

    def active_nodes(self) -> set[int]:
        """Node ids that appear in at least one contact."""
        out: set[int] = set()
        for c in self.contacts:
            out.add(c.a)
            out.add(c.b)
        return out

    def _node_index(self) -> dict[int, list[Contact]]:
        """Per-node contact lists, built lazily on first query."""
        if self._by_node is None:
            idx: dict[int, list[Contact]] = {}
            for c in self.contacts:  # self.contacts is time-sorted
                idx.setdefault(c.a, []).append(c)
                idx.setdefault(c.b, []).append(c)
            self._by_node = idx
        return self._by_node

    def _pair_index(self) -> dict[tuple[int, int], list[Contact]]:
        """Per-pair contact lists, built lazily on first query."""
        if self._by_pair is None:
            idx: dict[tuple[int, int], list[Contact]] = {}
            for c in self.contacts:
                idx.setdefault(c.pair, []).append(c)
            self._by_pair = idx
        return self._by_pair

    def contacts_of(self, node: int) -> list[Contact]:
        """All contacts involving ``node``, in time order.

        O(k) per call after a one-off lazy index build (the contact list
        is immutable once the trace is constructed).
        """
        return list(self._node_index().get(node, ()))

    def contacts_between(self, a: int, b: int) -> list[Contact]:
        """All contacts between the (unordered) pair ``{a, b}``, in time
        order. O(k) per call after a one-off lazy index build."""
        return list(self._pair_index().get(pair_key(a, b), ()))

    def contact_arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """The trace as columnar NumPy arrays ``(starts, ends, a, b)``.

        Built lazily on first call and cached (the contact list is
        immutable once the trace is constructed). Time columns are
        float64 — bit-identical to the per-contact Python floats — and
        node columns are intp, so bulk consumers (the simulation's
        degenerate-encounter pre-classification, trace statistics) can
        vectorize without touching :class:`Contact` objects.
        """
        if self._arrays is None:
            import numpy as np

            n = len(self.contacts)
            starts = np.empty(n, dtype=np.float64)
            ends = np.empty(n, dtype=np.float64)
            a = np.empty(n, dtype=np.intp)
            b = np.empty(n, dtype=np.intp)
            for i, c in enumerate(self.contacts):
                starts[i] = c.start
                ends[i] = c.end
                a[i] = c.a
                b[i] = c.b
            self._arrays = (starts, ends, a, b)
        return self._arrays

    def encounter_streams(
        self,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Per-node encounter-time streams ``(offsets, ts, nid_tail, same, dts)``.

        ``ts[offsets[i] : offsets[i + 1]]`` is node ``i``'s chronological
        sequence of contact start times: both endpoints of every contact
        contribute one entry, endpoint ``a`` ranked before ``b`` at equal
        contact index — the event loop's own per-node visitation order,
        recovered by a stable sort of the interleaved endpoint columns.
        ``nid_tail``, ``same`` and ``dts`` are the companion difference
        columns (``nid_sorted[1:]``, the same-node mask and
        ``ts[1:] - ts[:-1]``) that per-run consumers combine with their
        own gap thresholds. Built lazily once per trace and cached; a run
        truncated at ``end_time`` selects each node's prefix with
        ``searchsorted(ts[lo:hi], end_time, "right")``.
        """
        if self._streams is None:
            import numpy as np

            starts, _ends, a, b = self.contact_arrays()
            m = len(starts)
            nids = np.empty(2 * m, dtype=np.intp)
            nids[0::2] = a
            nids[1::2] = b
            times = np.empty(2 * m, dtype=np.float64)
            times[0::2] = starts
            times[1::2] = starts
            order = np.argsort(nids, kind="stable")
            nid_sorted = nids[order]
            ts = times[order]
            offsets = np.zeros(self.num_nodes + 1, dtype=np.intp)
            np.cumsum(np.bincount(nids, minlength=self.num_nodes), out=offsets[1:])
            nid_tail = nid_sorted[1:]
            same = nid_tail == nid_sorted[:-1]
            dts = ts[1:] - ts[:-1]
            self._streams = (offsets, ts, nid_tail, same, dts)
        return self._streams

    def first_contact_at_or_after(self, t: float) -> Contact | None:
        """Earliest contact with ``start >= t``, or None."""
        i = bisect.bisect_left(self._starts, t)
        return self.contacts[i] if i < len(self.contacts) else None

    def window(self, t0: float, t1: float, *, clip: bool = False) -> ContactTrace:
        """Sub-trace over ``[t0, t1)``, re-based to start at 0.

        Args:
            t0: Window start (inclusive).
            t1: Window end (exclusive); must exceed ``t0``.
            clip: How to treat contacts that straddle a window edge.
                False (default): drop them — only contacts fully contained
                in the window survive, so a long encounter spanning the cut
                vanishes entirely. True: truncate them to the overlapping
                portion instead, which conserves in-window contact time
                (the windows of a partition sum to the original trace's
                total contact time).
        """
        if not t1 > t0:
            raise ValueError("window requires t1 > t0")
        if clip:
            sub = [
                Contact(max(c.start, t0) - t0, min(c.end, t1) - t0, c.a, c.b)
                for c in self.contacts
                if min(c.end, t1) > max(c.start, t0)
            ]
        else:
            sub = [
                Contact(c.start - t0, c.end - t0, c.a, c.b)
                for c in self.contacts
                if c.start >= t0 and c.end <= t1
            ]
        return ContactTrace(
            sub, self.num_nodes, horizon=t1 - t0, name=f"{self.name}[{t0},{t1})"
        )

    def total_contact_time(self) -> float:
        """Sum of all encounter durations."""
        return sum(c.duration for c in self.contacts)

    # ------------------------------------------------------------- assembly

    @classmethod
    def from_tuples(
        cls,
        rows: Iterable[tuple[float, float, int, int]],
        num_nodes: int,
        *,
        horizon: float | None = None,
        name: str = "",
    ) -> ContactTrace:
        """Build a trace from ``(start, end, a, b)`` tuples."""
        return cls(
            [Contact(start=s, end=e, a=a, b=b) for (s, e, a, b) in rows],
            num_nodes,
            horizon=horizon,
            name=name,
        )

    def merged_with(self, other: ContactTrace) -> ContactTrace:
        """Union of two traces over the same population."""
        if other.num_nodes != self.num_nodes:
            raise ValueError("cannot merge traces with different populations")
        assert self.horizon is not None and other.horizon is not None
        return ContactTrace(
            self.contacts + other.contacts,
            self.num_nodes,
            horizon=max(self.horizon, other.horizon),
            name=self.name or other.name,
        )

    def coalesced(self) -> ContactTrace:
        """Merge overlapping/adjacent contacts of the same pair into one.

        Mobility generators can emit back-to-back encounters for a pair (e.g.
        a node pausing twice at the same subscriber point); the simulator
        treats a contact as one uninterrupted exchange opportunity, so
        adjacent windows are fused.
        """
        by_pair: dict[tuple[int, int], list[Contact]] = {}
        for c in self.contacts:
            by_pair.setdefault(c.pair, []).append(c)
        fused: list[Contact] = []
        for pair, cs in by_pair.items():
            cs.sort()
            cur_s, cur_e = cs[0].start, cs[0].end
            for c in cs[1:]:
                if c.start <= cur_e:  # overlapping or touching
                    cur_e = max(cur_e, c.end)
                else:
                    fused.append(Contact(cur_s, cur_e, *pair))
                    cur_s, cur_e = c.start, c.end
            fused.append(Contact(cur_s, cur_e, *pair))
        return ContactTrace(fused, self.num_nodes, horizon=self.horizon, name=self.name)

    def validate_disjoint_pairs(self) -> None:
        """Raise if any node pair has overlapping contact windows."""
        by_pair: dict[tuple[int, int], list[Contact]] = {}
        for c in self.contacts:
            by_pair.setdefault(c.pair, []).append(c)
        for pair, cs in by_pair.items():
            cs.sort()
            for prev, nxt in zip(cs, cs[1:], strict=False):
                if nxt.start < prev.end:
                    raise ValueError(
                        f"pair {pair} has overlapping contacts {prev} and {nxt}"
                    )


def zero_transfer_mask(
    trace: ContactTrace,
    bundle_tx_time: float | Sequence[float],
    *,
    arrays: tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray] | None = None,
) -> np.ndarray:
    """Boolean mask of contacts whose duration admits zero transfers.

    A contact carries ``floor(duration / tx_time)`` bundles, with the
    per-pair transfer time being the slower of the two radios when
    ``bundle_tx_time`` is per-node. This classifies the whole trace in one
    vectorized pass — the simulation uses it during bulk schedule load to
    route *degenerate* encounters (zero transfer budget) around the
    per-event machinery. The comparison reproduces the scalar
    ``int(duration / tx_time) == 0`` bit-for-bit: both are IEEE-754
    float64 divisions and truncation toward zero of a non-negative
    quotient is zero exactly when the quotient is below 1.

    Args:
        arrays: The trace's ``(starts, ends, a, b)`` columns when the
            caller already materialised them — one run fetches the columnar
            form once and threads it through every bulk consumer.
    """
    import numpy as np

    starts, ends, a, b = arrays if arrays is not None else trace.contact_arrays()
    if isinstance(bundle_tx_time, (int, float)):
        tx: float | np.ndarray = float(bundle_tx_time)
    else:
        per_node = np.asarray(bundle_tx_time, dtype=np.float64)
        tx = np.maximum(per_node[a], per_node[b])
    return (ends - starts) / tx < 1.0


def pair_key(a: int, b: int) -> tuple[int, int]:
    """Normalised unordered pair key."""
    return (a, b) if a < b else (b, a)


def all_pairs(num_nodes: int) -> list[tuple[int, int]]:
    """All unordered node pairs of a population."""
    return [(i, j) for i in range(num_nodes) for j in range(i + 1, num_nodes)]


def contacts_sorted(contacts: Sequence[Contact]) -> bool:
    """True if ``contacts`` is sorted by (start, end, a, b)."""
    return all(x <= y for x, y in zip(contacts, contacts[1:], strict=False))
