"""Mobility substrate: everything that produces or consumes contact traces.

The unified framework of the paper evaluates every protocol on the *same*
mobility inputs. All mobility models in this package therefore reduce to one
common currency — a :class:`~repro.mobility.contact.ContactTrace`, i.e. a
time-ordered list of ``(node_a, node_b, start, end)`` encounters — which the
simulation core consumes without knowing where it came from.

Producers:

* :class:`~repro.mobility.synthetic.CampusTraceGenerator` — substitute for
  the CRAWDAD ``cambridge/haggle/imote/intel`` dataset (12 devices, 5 days).
* :class:`~repro.mobility.rwp.SubscriberPointRWP` — the paper's modified
  Random-Way-Point model (subscriber points, pause < 1000 s, 0–10 m/s).
* :class:`~repro.mobility.rwp.ClassicRWP` — textbook RWP over a free area.
* :func:`~repro.mobility.interval.generate_interval_scenario` — the
  controlled inter-encounter-interval scenarios of Fig. 14.
* :mod:`~repro.mobility.trace_file` — parsers/writers for on-disk traces,
  including a CRAWDAD-Haggle-style adapter so the genuine dataset drops in.

Trajectory-based producers accept an ``engine`` knob: ``"fast"`` (default)
routes contact extraction through the vectorized broad/narrow-phase
detector in :mod:`~repro.mobility.fastcontact`, ``"exact"`` through the
scalar reference sweep in :mod:`~repro.mobility.trajectory`; both yield
bit-identical traces.

Analysis:

* :mod:`~repro.mobility.stats` — inter-contact / duration statistics used by
  the synthetic generator's calibration tests and by EXPERIMENTS.md.
"""

from repro.mobility.contact import Contact, ContactTrace
from repro.mobility.fastcontact import extract_contacts_fast
from repro.mobility.interval import IntervalScenarioConfig, generate_interval_scenario
from repro.mobility.rwp import ClassicRWP, RWPConfig, SubscriberPointRWP
from repro.mobility.stats import TraceStats, compute_trace_stats
from repro.mobility.synthetic import CampusTraceConfig, CampusTraceGenerator
from repro.mobility.trace_file import (
    TraceFormatError,
    read_contact_trace,
    read_haggle_trace,
    write_contact_trace,
)
from repro.mobility.trajectory import (
    CONTACT_ENGINES,
    Segment,
    Trajectory,
    contacts_from_trajectories,
)

__all__ = [
    "Contact",
    "ContactTrace",
    "CONTACT_ENGINES",
    "Segment",
    "Trajectory",
    "contacts_from_trajectories",
    "extract_contacts_fast",
    "CampusTraceConfig",
    "CampusTraceGenerator",
    "ClassicRWP",
    "RWPConfig",
    "SubscriberPointRWP",
    "IntervalScenarioConfig",
    "generate_interval_scenario",
    "TraceStats",
    "compute_trace_stats",
    "TraceFormatError",
    "read_contact_trace",
    "read_haggle_trace",
    "write_contact_trace",
]
