"""Random-Way-Point mobility models.

Two variants are provided, both emitting a
:class:`~repro.mobility.contact.ContactTrace` through the geometric
contact detector — the vectorized engine in
:mod:`repro.mobility.fastcontact` by default, or the scalar reference in
:mod:`repro.mobility.trajectory` via ``engine="exact"`` (identical
output):

* :class:`SubscriberPointRWP` — the paper's modified RWP (Section IV). Nodes
  hop between at most 100 fixed *subscriber points* inside a 1 km² area,
  pause < 1000 s at each, and travel with speed = distance / travel-time
  where travel time is at least 100 s, bounding speeds to (0, 10] m/s.
  This construction avoids the two classic-RWP pathologies the paper cites
  (Resta & Santi): nodes never decay to zero speed and keep moving along
  rendezvous points until the simulation horizon.
* :class:`ClassicRWP` — the textbook model (uniform waypoint in the free
  area, uniform speed, optional pause) for comparison studies.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.mobility.contact import ContactTrace
from repro.mobility.trajectory import (
    CONTACT_ENGINES,
    Segment,
    Trajectory,
    contacts_from_trajectories,
)


@dataclass(frozen=True)
class RWPConfig:
    """Shared Random-Way-Point parameters (paper Section IV defaults).

    Attributes:
        num_nodes: Population size (paper: 12).
        horizon: Simulated period in seconds (paper: 600,000).
        area_side: Side of the square area in metres (paper: 1 km²).
        comm_range: Radio range in metres (paper surveys ranges ≤ 300 m;
            the 25 m default keeps the network sparse enough that relaying
            — not direct source→destination transfer — carries delivery,
            the regime all of the paper's RWP separations live in).
        contact_cap: Maximum encounter duration (paper: 500 s); None = off.
        num_subscriber_points: Fixed rendezvous points (< 100 per km²).
        max_pause: Maximum pause at a waypoint (paper: < 1000 s).
        min_travel_time: Minimum point-to-point travel time (paper: 100 s).
        max_travel_time: Maximum draw for the travel-time; the effective
            travel time is also floored so speed never exceeds ``max_speed``.
        max_speed: Speed ceiling in m/s (paper: 10 m/s).
        max_hop_distance: Subscriber points further apart than this are not
            chosen as consecutive waypoints (paper: < 1000 m).
        engine: Contact-extraction engine — ``"fast"`` (vectorized,
            default) or ``"exact"`` (scalar reference); both produce
            identical traces (see :mod:`repro.mobility.fastcontact`).
    """

    num_nodes: int = 12
    horizon: float = 600_000.0
    area_side: float = 1_000.0
    comm_range: float = 25.0
    contact_cap: float | None = 500.0
    num_subscriber_points: int = 96
    max_pause: float = 1_000.0
    min_travel_time: float = 100.0
    max_travel_time: float = 900.0
    max_speed: float = 10.0
    max_hop_distance: float = 1_000.0
    engine: str = "fast"

    def __post_init__(self) -> None:
        if self.engine not in CONTACT_ENGINES:
            raise ValueError(
                f"unknown contact engine {self.engine!r}; "
                f"available: {', '.join(CONTACT_ENGINES)}"
            )
        if self.num_nodes < 2:
            raise ValueError("num_nodes must be >= 2")
        if self.horizon <= 0:
            raise ValueError("horizon must be positive")
        if not (0 < self.num_subscriber_points <= 100):
            raise ValueError("subscriber points must be in (0, 100] per km²")
        if self.min_travel_time <= 0 or self.max_travel_time < self.min_travel_time:
            raise ValueError("need 0 < min_travel_time <= max_travel_time")
        if self.max_speed <= 0:
            raise ValueError("max_speed must be positive")
        if self.comm_range <= 0:
            raise ValueError("comm_range must be positive")


class SubscriberPointRWP:
    """The paper's subscriber-point RWP trace generator."""

    def __init__(self, config: RWPConfig | None = None, *, seed: int = 0) -> None:
        self.config = config or RWPConfig()
        self.seed = seed

    def _place_points(self, rng: np.random.Generator) -> np.ndarray:
        """Uniformly scatter subscriber points over the area."""
        c = self.config
        return rng.uniform(0.0, c.area_side, size=(c.num_subscriber_points, 2))

    def _neighbour_lists(self, points: np.ndarray) -> list[np.ndarray]:
        """For each point, the candidate next-hop points within max distance."""
        c = self.config
        diff = points[:, None, :] - points[None, :, :]
        dist = np.hypot(diff[..., 0], diff[..., 1])
        out: list[np.ndarray] = []
        for i in range(len(points)):
            mask = (dist[i] <= c.max_hop_distance) & (dist[i] > 0.0)
            cand = np.flatnonzero(mask)
            if cand.size == 0:  # isolated point: allow any other point
                cand = np.array([j for j in range(len(points)) if j != i])
            out.append(cand)
        return out

    def _node_trajectory(
        self,
        node: int,
        points: np.ndarray,
        neighbours: list[np.ndarray],
        rng: np.random.Generator,
    ) -> Trajectory:
        c = self.config
        segments: list[Segment] = []
        t = 0.0
        here = int(rng.integers(len(points)))
        while t < c.horizon:
            # pause at the current subscriber point
            pause = float(rng.uniform(0.0, c.max_pause))
            if pause > 0.0:
                end = min(t + pause, c.horizon)
                if end > t:
                    x, y = points[here]
                    segments.append(Segment(t, end, x, y, x, y))
                    t = end
                if t >= c.horizon:
                    break
            # travel to a random neighbouring subscriber point
            nxt = int(rng.choice(neighbours[here]))
            dist = float(np.hypot(*(points[nxt] - points[here])))
            travel = float(rng.uniform(c.min_travel_time, c.max_travel_time))
            travel = max(travel, dist / c.max_speed)  # speed <= max_speed
            end = min(t + travel, c.horizon)
            if end > t:
                x0, y0 = points[here]
                x1, y1 = points[nxt]
                if end < t + travel:  # clipped at horizon: interpolate endpoint
                    frac = (end - t) / travel
                    x1 = x0 + frac * (x1 - x0)
                    y1 = y0 + frac * (y1 - y0)
                segments.append(Segment(t, end, x0, y0, float(x1), float(y1)))
                t = end
            here = nxt
        if not segments:  # degenerate horizon: stand still
            x, y = points[here]
            segments.append(Segment(0.0, c.horizon, x, y, x, y))
        return Trajectory(node, segments)

    def generate(self) -> ContactTrace:
        """Produce the full contact trace for this configuration."""
        c = self.config
        rng = np.random.default_rng(
            np.random.SeedSequence([self.seed & 0xFFFFFFFF, 0x5297])
        )
        points = self._place_points(rng)
        neighbours = self._neighbour_lists(points)
        trajectories = [
            self._node_trajectory(i, points, neighbours, rng)
            for i in range(c.num_nodes)
        ]
        return contacts_from_trajectories(
            trajectories,
            c.comm_range,
            contact_cap=c.contact_cap,
            horizon=c.horizon,
            name=f"rwp-subscriber(seed={self.seed})",
            engine=c.engine,
        )

    def generate_trajectories(self) -> list[Trajectory]:
        """Expose raw trajectories (used by tests and visual inspection)."""
        c = self.config
        rng = np.random.default_rng(
            np.random.SeedSequence([self.seed & 0xFFFFFFFF, 0x5297])
        )
        points = self._place_points(rng)
        neighbours = self._neighbour_lists(points)
        return [
            self._node_trajectory(i, points, neighbours, rng)
            for i in range(c.num_nodes)
        ]


@dataclass(frozen=True)
class ClassicRWPConfig:
    """Parameters for the textbook RWP model.

    ``engine`` selects the contact-extraction path exactly as in
    :class:`RWPConfig`.
    """

    num_nodes: int = 12
    horizon: float = 600_000.0
    area_side: float = 1_000.0
    comm_range: float = 100.0
    contact_cap: float | None = 500.0
    min_speed: float = 0.5
    max_speed: float = 10.0
    max_pause: float = 120.0
    engine: str = "fast"

    def __post_init__(self) -> None:
        if self.engine not in CONTACT_ENGINES:
            raise ValueError(
                f"unknown contact engine {self.engine!r}; "
                f"available: {', '.join(CONTACT_ENGINES)}"
            )
        if self.min_speed <= 0:
            # min_speed == 0 reproduces the Resta & Santi decay pathology the
            # paper warns about; forbid it instead of silently degrading.
            raise ValueError("min_speed must be > 0 (zero speed stalls the model)")
        if self.max_speed < self.min_speed:
            raise ValueError("max_speed must be >= min_speed")


class ClassicRWP:
    """Textbook Random-Way-Point over a free square area."""

    def __init__(self, config: ClassicRWPConfig | None = None, *, seed: int = 0) -> None:
        self.config = config or ClassicRWPConfig()
        self.seed = seed

    def _node_trajectory(self, node: int, rng: np.random.Generator) -> Trajectory:
        c = self.config
        segments: list[Segment] = []
        t = 0.0
        x, y = rng.uniform(0.0, c.area_side, size=2)
        while t < c.horizon:
            tx, ty = rng.uniform(0.0, c.area_side, size=2)
            speed = float(rng.uniform(c.min_speed, c.max_speed))
            dist = math.hypot(tx - x, ty - y)
            travel = dist / speed if dist > 0 else 0.0
            if travel > 0:
                end = min(t + travel, c.horizon)
                fx, fy = tx, ty
                if end < t + travel:
                    frac = (end - t) / travel
                    fx = x + frac * (tx - x)
                    fy = y + frac * (ty - y)
                segments.append(Segment(t, end, float(x), float(y), float(fx), float(fy)))
                t = end
                x, y = fx, fy
                if t >= c.horizon:
                    break
            pause = float(rng.uniform(0.0, c.max_pause))
            if pause > 0:
                end = min(t + pause, c.horizon)
                if end > t:
                    segments.append(Segment(t, end, float(x), float(y), float(x), float(y)))
                    t = end
        if not segments:
            segments.append(Segment(0.0, c.horizon, float(x), float(y), float(x), float(y)))
        return Trajectory(node, segments)

    def generate(self) -> ContactTrace:
        """Produce the contact trace."""
        c = self.config
        rng = np.random.default_rng(
            np.random.SeedSequence([self.seed & 0xFFFFFFFF, 0xC1A5])
        )
        trajectories = [self._node_trajectory(i, rng) for i in range(c.num_nodes)]
        return contacts_from_trajectories(
            trajectories,
            c.comm_range,
            contact_cap=c.contact_cap,
            horizon=c.horizon,
            name=f"rwp-classic(seed={self.seed})",
            engine=c.engine,
        )
