"""Dependency-free ASCII line plots.

matplotlib is not available offline, so figures are rendered as terminal
plots: one glyph per curve, a y-axis with min/max labels, and a legend.
Good enough to eyeball every shape the paper's figures show (orderings,
crossovers, growth rates), and exactly what the benchmark harness prints.
"""

from __future__ import annotations

import math

from repro.core.results import Series

#: Curve glyphs, assigned in series order.
GLYPHS = "ox+*#@%&"


def _fmt(v: float) -> str:
    """Compact numeric label (engineering-ish)."""
    if v == 0:
        return "0"
    if not math.isfinite(v):
        return str(v)
    a = abs(v)
    if a >= 100_000 or a < 0.01:
        return f"{v:.1e}"
    if a >= 100:
        return f"{v:.0f}"
    return f"{v:.2f}"


def render_plot(
    series: list[Series],
    *,
    width: int = 64,
    height: int = 16,
    title: str = "",
    y_label: str = "",
    x_label: str = "Load",
) -> str:
    """Render curves as an ASCII plot.

    NaN points (e.g. delay at loads where no run succeeded) are skipped.

    Raises:
        ValueError: if there is nothing to plot.
    """
    points: list[tuple[float, float]] = [
        (float(p.load), p.value)
        for s in series
        for p in s.points
        if math.isfinite(p.value)
    ]
    if not points:
        raise ValueError("no finite data points to plot")
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    if y_hi == y_lo:
        y_hi = y_lo + 1.0
    if x_hi == x_lo:
        x_hi = x_lo + 1.0

    grid = [[" "] * width for _ in range(height)]

    def put(x: float, y: float, glyph: str) -> None:
        col = round((x - x_lo) / (x_hi - x_lo) * (width - 1))
        row = round((y - y_lo) / (y_hi - y_lo) * (height - 1))
        grid[height - 1 - row][col] = glyph

    for idx, s in enumerate(series):
        glyph = GLYPHS[idx % len(GLYPHS)]
        pts = [
            (float(p.load), p.value) for p in s.points if math.isfinite(p.value)
        ]
        # connect consecutive points with interpolated glyphs
        for (x0, y0), (x1, y1) in zip(pts, pts[1:], strict=False):
            steps = max(2, int(abs(x1 - x0) / (x_hi - x_lo) * width))
            for k in range(steps + 1):
                t = k / steps
                put(x0 + t * (x1 - x0), y0 + t * (y1 - y0), glyph)
        for x, y in pts:  # markers last so they sit on top
            put(x, y, glyph)

    lines: list[str] = []
    if title:
        lines.append(title)
    if y_label:
        lines.append(y_label)
    y_hi_s, y_lo_s = _fmt(y_hi), _fmt(y_lo)
    margin = max(len(y_hi_s), len(y_lo_s)) + 1
    for r, row in enumerate(grid):
        if r == 0:
            label = y_hi_s
        elif r == height - 1:
            label = y_lo_s
        else:
            label = ""
        lines.append(f"{label:>{margin}} |" + "".join(row))
    lines.append(" " * margin + " +" + "-" * width)
    x_axis = f"{_fmt(x_lo)}{' ' * (width - len(_fmt(x_lo)) - len(_fmt(x_hi)))}{_fmt(x_hi)}"
    lines.append(" " * (margin + 2) + x_axis + f"  ({x_label})")
    for idx, s in enumerate(series):
        lines.append(f"  {GLYPHS[idx % len(GLYPHS)]} {s.label}")
    return "\n".join(lines)


def render_series_table(series: list[Series], *, value_fmt: str = "{:.3f}") -> str:
    """Render curves as an aligned text table (loads as columns)."""
    if not series:
        raise ValueError("no series to tabulate")
    loads = series[0].loads
    for s in series:
        if s.loads != loads:
            raise ValueError("series have mismatched load grids")
    label_w = max(len(s.label) for s in series)
    header = " " * label_w + " | " + " ".join(f"{ld:>9}" for ld in loads)
    sep = "-" * len(header)
    rows = [header, sep]
    for s in series:
        cells = " ".join(
            f"{value_fmt.format(v) if math.isfinite(v) else '—':>9}" for v in s.values
        )
        rows.append(f"{s.label:<{label_w}} | {cells}")
    return "\n".join(rows)
