"""The paper's tables.

* **Table I** — the survey of experiment parameters used by prior epidemic
  routing studies (static data, reproduced for completeness and used as
  the bound-check reference for our own configurations).
* **Table II** — per-protocol whole-sweep means of delivery rate, buffer
  occupancy level and duplication rate, for both mobility models.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.results import SweepResult

#: Table I of the paper: parameters used in studies [10]-[13].
TABLE1_ROWS: list[tuple[str, str]] = [
    ("Number of Nodes", "<= 100"),
    ("Mobility Pattern", "Random Waypoint"),
    ("Network Area", "<= 50 km^2"),
    ("Transmission Range", "<= 300 m"),
    ("Metrics", "Delivery ratio, average delay, time to deliver all bundles"),
    ("Buffer Size", "Infinite or up to 5 MB"),
    ("Bundle Size", "<= 14 MB"),
]


def render_table1() -> str:
    """Table I as aligned text."""
    key_w = max(len(k) for k, _ in TABLE1_ROWS)
    lines = ["Table I — experiment parameters used in prior studies [10]-[13]"]
    lines.append("-" * 72)
    for k, v in TABLE1_ROWS:
        lines.append(f"{k:<{key_w}}  {v}")
    return "\n".join(lines)


@dataclass(frozen=True)
class Table2Row:
    """One protocol's whole-sweep means under both mobility models."""

    protocol_label: str
    delivery_rwp: float
    delivery_trace: float
    buffer_rwp: float
    buffer_trace: float
    duplication_rwp: float
    duplication_trace: float

    def as_dict(self) -> dict[str, object]:
        return {
            "protocol": self.protocol_label,
            "delivery_rwp_pct": 100 * self.delivery_rwp,
            "delivery_trace_pct": 100 * self.delivery_trace,
            "buffer_rwp_pct": 100 * self.buffer_rwp,
            "buffer_trace_pct": 100 * self.buffer_trace,
            "duplication_rwp_pct": 100 * self.duplication_rwp,
            "duplication_trace_pct": 100 * self.duplication_trace,
        }


def build_table2(
    rwp_sweep: SweepResult,
    trace_sweep: SweepResult,
    *,
    protocols: list[str] | None = None,
) -> list[Table2Row]:
    """Compute Table II from the two mobility studies.

    Args:
        protocols: Protocol labels (row order); defaults to the labels
            present in the RWP sweep.

    Raises:
        ValueError: if a requested protocol is missing from either sweep.
    """
    labels = protocols if protocols is not None else rwp_sweep.protocols()
    rows: list[Table2Row] = []
    for label in labels:
        m_rwp = rwp_sweep.protocol_means(label)
        m_trace = trace_sweep.protocol_means(label)
        rows.append(
            Table2Row(
                protocol_label=label,
                delivery_rwp=m_rwp["delivery_ratio"],
                delivery_trace=m_trace["delivery_ratio"],
                buffer_rwp=m_rwp["buffer_occupancy"],
                buffer_trace=m_trace["buffer_occupancy"],
                duplication_rwp=m_rwp["duplication_rate"],
                duplication_trace=m_trace["duplication_rate"],
            )
        )
    return rows


def render_table2(rows: list[Table2Row]) -> str:
    """Table II as aligned text (percentages, like the paper)."""
    if not rows:
        raise ValueError("no rows to render")
    label_w = max(len(r.protocol_label) for r in rows)
    header = (
        f"{'Protocol':<{label_w}} | {'Delivery %':>19} | {'Buffer %':>19} | "
        f"{'Duplication %':>19}"
    )
    sub = (
        f"{'':<{label_w}} | {'RWP':>9} {'Trace':>9} | {'RWP':>9} {'Trace':>9} | "
        f"{'RWP':>9} {'Trace':>9}"
    )
    lines = [
        "Table II — comparison of original and enhanced protocols (sweep means)",
        header,
        sub,
        "-" * len(header),
    ]
    for r in rows:
        lines.append(
            f"{r.protocol_label:<{label_w}} | "
            f"{100 * r.delivery_rwp:>9.1f} {100 * r.delivery_trace:>9.1f} | "
            f"{100 * r.buffer_rwp:>9.1f} {100 * r.buffer_trace:>9.1f} | "
            f"{100 * r.duplication_rwp:>9.1f} {100 * r.duplication_trace:>9.1f}"
        )
    return "\n".join(lines)
