"""The paper's tables, plus the buffer-contention tradeoff table.

* **Table I** — the survey of experiment parameters used by prior epidemic
  routing studies (static data, reproduced for completeness and used as
  the bound-check reference for our own configurations).
* **Table II** — per-protocol whole-sweep means of delivery rate, buffer
  occupancy level and duplication rate, for both mobility models.
* **Resilience table** — churn-rate × state-loss grid of delivery ratio
  and re-infection counts per protocol (the disruption-tolerance study;
  see :mod:`repro.experiments.resilience`).
* **Tradeoff table** — capacity × drop-policy grid of delivery ratio,
  mean/peak occupancy and drop counts per protocol (the
  occupancy/delivery tradeoff study; see
  :mod:`repro.experiments.tradeoff`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.results import SweepResult

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.experiments.resilience import ResilienceStudy
    from repro.experiments.tradeoff import TradeoffStudy

#: Table I of the paper: parameters used in studies [10]-[13].
TABLE1_ROWS: list[tuple[str, str]] = [
    ("Number of Nodes", "<= 100"),
    ("Mobility Pattern", "Random Waypoint"),
    ("Network Area", "<= 50 km^2"),
    ("Transmission Range", "<= 300 m"),
    ("Metrics", "Delivery ratio, average delay, time to deliver all bundles"),
    ("Buffer Size", "Infinite or up to 5 MB"),
    ("Bundle Size", "<= 14 MB"),
]


def render_table1() -> str:
    """Table I as aligned text."""
    key_w = max(len(k) for k, _ in TABLE1_ROWS)
    lines = ["Table I — experiment parameters used in prior studies [10]-[13]"]
    lines.append("-" * 72)
    for k, v in TABLE1_ROWS:
        lines.append(f"{k:<{key_w}}  {v}")
    return "\n".join(lines)


@dataclass(frozen=True)
class Table2Row:
    """One protocol's whole-sweep means under both mobility models."""

    protocol_label: str
    delivery_rwp: float
    delivery_trace: float
    buffer_rwp: float
    buffer_trace: float
    duplication_rwp: float
    duplication_trace: float

    def as_dict(self) -> dict[str, object]:
        return {
            "protocol": self.protocol_label,
            "delivery_rwp_pct": 100 * self.delivery_rwp,
            "delivery_trace_pct": 100 * self.delivery_trace,
            "buffer_rwp_pct": 100 * self.buffer_rwp,
            "buffer_trace_pct": 100 * self.buffer_trace,
            "duplication_rwp_pct": 100 * self.duplication_rwp,
            "duplication_trace_pct": 100 * self.duplication_trace,
        }


def build_table2(
    rwp_sweep: SweepResult,
    trace_sweep: SweepResult,
    *,
    protocols: list[str] | None = None,
) -> list[Table2Row]:
    """Compute Table II from the two mobility studies.

    Args:
        protocols: Protocol labels (row order); defaults to the labels
            present in the RWP sweep.

    Raises:
        ValueError: if a requested protocol is missing from either sweep.
    """
    labels = protocols if protocols is not None else rwp_sweep.protocols()
    rows: list[Table2Row] = []
    for label in labels:
        m_rwp = rwp_sweep.protocol_means(label)
        m_trace = trace_sweep.protocol_means(label)
        rows.append(
            Table2Row(
                protocol_label=label,
                delivery_rwp=m_rwp["delivery_ratio"],
                delivery_trace=m_trace["delivery_ratio"],
                buffer_rwp=m_rwp["buffer_occupancy"],
                buffer_trace=m_trace["buffer_occupancy"],
                duplication_rwp=m_rwp["duplication_rate"],
                duplication_trace=m_trace["duplication_rate"],
            )
        )
    return rows


@dataclass(frozen=True)
class TradeoffRow:
    """One (capacity, policy, protocol) cell of the tradeoff study."""

    capacity: str  #: capacity label ("10" or "per-node[...]")
    policy: str
    protocol_label: str
    delivery_ratio: float  #: sweep mean
    buffer_occupancy: float  #: sweep mean of the time-averaged fill
    peak_occupancy: float  #: sweep mean of the per-run peak fill
    drops: float  #: mean buffer-pressure evictions per run

    def as_dict(self) -> dict[str, object]:
        return {
            "capacity": self.capacity,
            "policy": self.policy,
            "protocol": self.protocol_label,
            "delivery_pct": 100 * self.delivery_ratio,
            "buffer_pct": 100 * self.buffer_occupancy,
            "peak_pct": 100 * self.peak_occupancy,
            "drops": self.drops,
        }


def build_tradeoff_table(study: TradeoffStudy) -> list[TradeoffRow]:
    """Flatten a tradeoff study into (capacity, policy, protocol) rows.

    Row order is the study's grid order: capacity, then policy, then
    protocol — the ``reject`` rows of each capacity come first when the
    study uses the default policy order.
    """
    rows: list[TradeoffRow] = []
    for cap_label in study.capacity_labels:
        for policy in study.policies:
            sweep = study.sweep(cap_label, policy)
            for label in sweep.protocols():
                means = sweep.protocol_means(label)
                rows.append(
                    TradeoffRow(
                        capacity=cap_label,
                        policy=policy,
                        protocol_label=label,
                        delivery_ratio=means["delivery_ratio"],
                        buffer_occupancy=means["buffer_occupancy"],
                        peak_occupancy=means["peak_occupancy"],
                        drops=means["drops"],
                    )
                )
    return rows


def render_tradeoff_table(study: TradeoffStudy) -> str:
    """The tradeoff study as aligned text, one block per protocol.

    Each block is a capacity × policy matrix of
    ``delivery% / occupancy% / peak%`` triples (drops appended when any
    occurred), so the occupancy cost of each delivery gain reads across
    one row.
    """
    rows = build_tradeoff_table(study)
    if not rows:
        raise ValueError("no rows to render")
    policies = study.policies
    cap_labels = study.capacity_labels
    by_key = {(r.capacity, r.policy, r.protocol_label): r for r in rows}
    protocols: list[str] = []
    for r in rows:
        if r.protocol_label not in protocols:
            protocols.append(r.protocol_label)

    def cell_text(r: TradeoffRow) -> str:
        text = (
            f"{100 * r.delivery_ratio:.1f}/"
            f"{100 * r.buffer_occupancy:.1f}/"
            f"{100 * r.peak_occupancy:.1f}"
        )
        if r.drops:
            text += f" d={r.drops:.1f}"
        return text

    cap_w = max(len("capacity"), max(len(c) for c in cap_labels))
    col_w = max(
        len(p) for p in policies
    )
    col_w = max(col_w, max(len(cell_text(r)) for r in rows))
    lines = [
        "Tradeoff Table — occupancy vs delivery under capacity x drop policy "
        "(delivery% / occupancy% / peak%, sweep means)",
    ]
    for proto in protocols:
        lines.append("")
        lines.append(f"Protocol: {proto}")
        header = f"{'capacity':<{cap_w}} | " + " | ".join(
            f"{p:>{col_w}}" for p in policies
        )
        lines.append(header)
        lines.append("-" * len(header))
        for cap in cap_labels:
            cells = [
                f"{cell_text(by_key[(cap, pol, proto)]):>{col_w}}" for pol in policies
            ]
            lines.append(f"{cap:<{cap_w}} | " + " | ".join(cells))
    return "\n".join(lines)


@dataclass(frozen=True)
class ResilienceRow:
    """One (churn rate, state-loss mode, protocol) cell of the study."""

    churn_rate: str  #: rate label ("0" for the fault-free baseline)
    state_loss: str
    protocol_label: str
    delivery_ratio: float  #: sweep mean
    delay: float  #: sweep mean over successful runs (NaN if none)
    reinfections: float  #: mean post-wipe re-infections per run

    def as_dict(self) -> dict[str, object]:
        return {
            "churn_rate": self.churn_rate,
            "state_loss": self.state_loss,
            "protocol": self.protocol_label,
            "delivery_pct": 100 * self.delivery_ratio,
            "delay": self.delay,
            "reinfections": self.reinfections,
        }


def build_resilience_table(study: ResilienceStudy) -> list[ResilienceRow]:
    """Flatten a resilience study into (rate, mode, protocol) rows.

    Row order is the study's grid order: churn rate, then state-loss
    mode, then protocol — the fault-free baseline rows come first when
    the study puts 0.0 first in its rate axis.
    """
    rows: list[ResilienceRow] = []
    for rate_label in study.rate_labels:
        for mode in study.modes:
            sweep = study.sweep(rate_label, mode)
            for label in sweep.protocols():
                means = sweep.protocol_means(label)
                runs = sweep.filter(protocol_label=label)
                reinfections = sum(
                    r.churn.get("reinfections", 0.0) for r in runs
                ) / len(runs)
                rows.append(
                    ResilienceRow(
                        churn_rate=rate_label,
                        state_loss=mode,
                        protocol_label=label,
                        delivery_ratio=means["delivery_ratio"],
                        delay=means["delay"],
                        reinfections=reinfections,
                    )
                )
    return rows


def render_resilience_table(study: ResilienceStudy) -> str:
    """The resilience study as aligned text, one block per protocol.

    Each block is a churn-rate × state-loss matrix of ``delivery%``
    cells (mean post-wipe re-infections appended when any occurred), so
    the cost of losing state on reboot reads across one row.
    """
    rows = build_resilience_table(study)
    if not rows:
        raise ValueError("no rows to render")
    modes = study.modes
    rate_labels = study.rate_labels
    by_key = {(r.churn_rate, r.state_loss, r.protocol_label): r for r in rows}
    protocols: list[str] = []
    for r in rows:
        if r.protocol_label not in protocols:
            protocols.append(r.protocol_label)

    def cell_text(r: ResilienceRow) -> str:
        text = f"{100 * r.delivery_ratio:.1f}"
        if r.reinfections:
            text += f" r={r.reinfections:.1f}"
        return text

    rate_w = max(len("churn rate"), max(len(label) for label in rate_labels))
    col_w = max(len(m) for m in modes)
    col_w = max(col_w, max(len(cell_text(r)) for r in rows))
    lines = [
        "Resilience Table — delivery under churn rate x state-loss mode "
        "(delivery%, sweep means; r= mean re-infections after wipe)",
    ]
    for proto in protocols:
        lines.append("")
        lines.append(f"Protocol: {proto}")
        header = f"{'churn rate':<{rate_w}} | " + " | ".join(
            f"{m:>{col_w}}" for m in modes
        )
        lines.append(header)
        lines.append("-" * len(header))
        for rate in rate_labels:
            cells = [
                f"{cell_text(by_key[(rate, mode, proto)]):>{col_w}}"
                for mode in modes
            ]
            lines.append(f"{rate:<{rate_w}} | " + " | ".join(cells))
    return "\n".join(lines)


def render_table2(rows: list[Table2Row]) -> str:
    """Table II as aligned text (percentages, like the paper)."""
    if not rows:
        raise ValueError("no rows to render")
    label_w = max(len(r.protocol_label) for r in rows)
    header = (
        f"{'Protocol':<{label_w}} | {'Delivery %':>19} | {'Buffer %':>19} | "
        f"{'Duplication %':>19}"
    )
    sub = (
        f"{'':<{label_w}} | {'RWP':>9} {'Trace':>9} | {'RWP':>9} {'Trace':>9} | "
        f"{'RWP':>9} {'Trace':>9}"
    )
    lines = [
        "Table II — comparison of original and enhanced protocols (sweep means)",
        header,
        sub,
        "-" * len(header),
    ]
    for r in rows:
        lines.append(
            f"{r.protocol_label:<{label_w}} | "
            f"{100 * r.delivery_rwp:>9.1f} {100 * r.delivery_trace:>9.1f} | "
            f"{100 * r.buffer_rwp:>9.1f} {100 * r.buffer_trace:>9.1f} | "
            f"{100 * r.duplication_rwp:>9.1f} {100 * r.duplication_trace:>9.1f}"
        )
    return "\n".join(lines)
