"""CSV/JSON exports for runs and figure series.

All experiment artefacts are written as plain CSV (stdlib ``csv``) or JSON
so they can be post-processed anywhere; ``read_series_csv`` round-trips the
series format for downstream tooling and tests. Every writer goes through
:func:`repro.ioutil.atomic_write`, so an export either appears complete
under its target name or not at all — a killed campaign never leaves a
truncated CSV that downstream tooling would happily half-read.
"""

from __future__ import annotations

import csv
import json
import math
from pathlib import Path
from typing import TextIO

from repro.core.results import RunResult, Series, SeriesPoint, SweepResult
from repro.ioutil import atomic_write


def write_runs_csv(sweep: SweepResult, path: str | Path) -> None:
    """One row per run, with all metrics and counters flattened."""
    if not sweep.runs:
        raise ValueError("sweep has no runs")
    rows = [r.as_row() for r in sweep.runs]
    fieldnames = list(rows[0].keys())
    for row in rows[1:]:  # later runs may add signaling/removal columns
        for key in row:
            if key not in fieldnames:
                fieldnames.append(key)
    def _write(fh: TextIO) -> None:
        writer = csv.DictWriter(fh, fieldnames=fieldnames, restval="")
        writer.writeheader()
        writer.writerows(rows)

    atomic_write(path, _write, newline="")


def write_series_csv(series: list[Series], path: str | Path) -> None:
    """Long-format curve export: series, load, value, n."""
    def _write(fh: TextIO) -> None:
        writer = csv.writer(fh)
        writer.writerow(["series", "load", "value", "n"])
        for s in series:
            for p in s.points:
                writer.writerow(
                    [s.label, p.load, "" if math.isnan(p.value) else repr(p.value), p.n]
                )

    atomic_write(path, _write, newline="")


def read_series_csv(path: str | Path) -> list[Series]:
    """Round-trip reader for :func:`write_series_csv`.

    Raises:
        ValueError: on a malformed header or row.
    """
    out: dict[str, Series] = {}
    with open(path, "r", encoding="utf-8", newline="") as fh:
        reader = csv.reader(fh)
        header = next(reader, None)
        if header != ["series", "load", "value", "n"]:
            raise ValueError(f"unexpected header {header!r}")
        for line_no, row in enumerate(reader, start=2):
            if len(row) != 4:
                raise ValueError(f"line {line_no}: expected 4 cells, got {len(row)}")
            label, load_s, value_s, n_s = row
            try:
                load = int(load_s)
                value = float(value_s) if value_s else math.nan
                n = int(n_s)
            except ValueError as exc:
                raise ValueError(f"line {line_no}: unparsable row {row!r}") from exc
            out.setdefault(label, Series(label=label)).points.append(
                SeriesPoint(load=load, value=value, n=n)
            )
    return list(out.values())


def write_series_json(
    series: list[Series], path: str | Path, *, meta: dict[str, object] | None = None
) -> None:
    """JSON export: {meta, series: [{label, points: [{load, value, n}]}]}."""
    doc = {
        "meta": meta or {},
        "series": [
            {
                "label": s.label,
                "points": [
                    {
                        "load": p.load,
                        "value": None if math.isnan(p.value) else p.value,
                        "n": p.n,
                    }
                    for p in s.points
                ],
            }
            for s in series
        ],
    }
    atomic_write(path, lambda fh: json.dump(doc, fh, indent=2))


def summarize_runs(sweep: SweepResult) -> dict[str, dict[str, float]]:
    """Per-protocol whole-sweep means (convenience for reports)."""
    return {label: sweep.protocol_means(label) for label in sweep.protocols()}


def runresult_fields() -> list[str]:
    """The stable leading columns of the runs CSV (testing helper)."""
    import dataclasses

    return [f.name for f in dataclasses.fields(RunResult)]
