"""Result analysis: figure series, paper tables, plots and exports.

Everything here is presentation-side: it consumes
:class:`~repro.core.results.SweepResult` objects and produces the artefacts
the paper reports — per-figure curves (:mod:`~repro.analysis.figures`),
Table I/II (:mod:`~repro.analysis.tables`), dependency-free ASCII line
plots (:mod:`~repro.analysis.ascii_plot`), and CSV/JSON exports
(:mod:`~repro.analysis.io`).
"""

from repro.analysis.ascii_plot import render_plot, render_series_table
from repro.analysis.figures import FigureData, build_figure
from repro.analysis.io import (
    read_series_csv,
    write_runs_csv,
    write_series_csv,
    write_series_json,
)
from repro.analysis.tables import (
    TABLE1_ROWS,
    build_table2,
    render_table1,
    render_table2,
)

__all__ = [
    "FigureData",
    "build_figure",
    "render_plot",
    "render_series_table",
    "write_runs_csv",
    "write_series_csv",
    "write_series_json",
    "read_series_csv",
    "TABLE1_ROWS",
    "render_table1",
    "build_table2",
    "render_table2",
]
