"""Figure assembly: map a sweep result to one of the paper's figures.

A figure is a metric plus a curve set. :func:`build_figure` extracts the
right series from a :class:`~repro.core.results.SweepResult` and labels
them as the paper's legends do, producing a :class:`FigureData` that the
ASCII plotter, CSV writer and benchmark harness all consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Callable

from repro.core.results import RunResult, Series, SweepResult

#: metric name -> RunResult accessor (None values are dropped from means)
METRIC_ACCESSORS: dict[str, Callable[[RunResult], float | None]] = {
    "delay": lambda r: r.delay,
    "delivery_ratio": lambda r: r.delivery_ratio,
    "buffer_occupancy": lambda r: r.buffer_occupancy,
    "peak_occupancy": lambda r: r.peak_occupancy,
    "duplication_rate": lambda r: r.duplication_rate,
    "signaling_overhead": lambda r: float(r.signaling_overhead),
}

#: metric name -> axis label used by plots (mirrors the paper's y-axes)
METRIC_AXIS_LABELS: dict[str, str] = {
    "delay": "Average delay (s)",
    "delivery_ratio": "Average delivery ratio",
    "buffer_occupancy": "Average buffer occupancy level",
    "peak_occupancy": "Peak buffer occupancy level",
    "duplication_rate": "Average bundle duplication rate",
    "signaling_overhead": "Control units transmitted",
}


@dataclass
class FigureData:
    """One reproduced figure: labelled curves of a metric vs load."""

    figure_id: str  #: e.g. ``"fig13"``
    title: str
    metric: str
    series: list[Series] = field(default_factory=list)

    @property
    def y_label(self) -> str:
        return METRIC_AXIS_LABELS[self.metric]

    @property
    def x_label(self) -> str:
        return "Load"

    def series_by_label(self, label: str) -> Series:
        """Find a curve by its legend label.

        Raises:
            KeyError: if no curve has that label.
        """
        for s in self.series:
            if s.label == label:
                return s
        raise KeyError(
            f"no series {label!r} in {self.figure_id}; have {[s.label for s in self.series]}"
        )

    def as_rows(self) -> list[dict[str, object]]:
        """Long-format rows (figure, series, load, value) for CSV export."""
        rows: list[dict[str, object]] = []
        for s in self.series:
            for p in s.points:
                rows.append(
                    {
                        "figure": self.figure_id,
                        "series": s.label,
                        "load": p.load,
                        "value": p.value,
                        "n": p.n,
                    }
                )
        return rows


def build_figure(
    figure_id: str,
    title: str,
    metric: str,
    sweep: SweepResult,
    *,
    include: list[str] | None = None,
    relabel: dict[str, str] | None = None,
) -> FigureData:
    """Assemble a figure from a sweep result.

    Args:
        metric: One of :data:`METRIC_ACCESSORS`.
        include: Optional protocol-label filter (and ordering) — the
            paper's figures often plot a subset of the protocols swept.
        relabel: Optional label renames (e.g. shorten legends).

    Raises:
        KeyError: for an unknown metric or an ``include`` label absent
            from the sweep.
    """
    if metric not in METRIC_ACCESSORS:
        raise KeyError(
            f"unknown metric {metric!r}; available: {sorted(METRIC_ACCESSORS)}"
        )
    all_series = {
        s.label: s for s in sweep.series(METRIC_ACCESSORS[metric])
    }
    if include is None:
        chosen = list(all_series.values())
    else:
        missing = [lbl for lbl in include if lbl not in all_series]
        if missing:
            raise KeyError(
                f"series {missing} not in sweep; have {sorted(all_series)}"
            )
        chosen = [all_series[lbl] for lbl in include]
    if relabel:
        chosen = [
            Series(label=relabel.get(s.label, s.label), points=s.points)
            for s in chosen
        ]
    return FigureData(figure_id=figure_id, title=title, metric=metric, series=chosen)
