"""Workload generation: which flows exist and how endpoints are drawn.

The paper's workload is a single flow per run: a uniformly random source
sends *k* bundles to a uniformly random destination; *k* is the load,
swept 5..50 in steps of 5 with 10 replications (re-drawn endpoints) each.
:func:`single_flow` reproduces exactly that. :func:`multi_flow` is the
natural extension (several simultaneous conversations) used by the
extension examples and ablations.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: The paper's load sweep: 5, 10, ..., 50 bundles.
PAPER_LOADS: tuple[int, ...] = tuple(range(5, 55, 5))
#: Replications per load in the paper.
PAPER_REPLICATIONS = 10


@dataclass(frozen=True)
class Flow:
    """One source → destination conversation.

    Attributes:
        flow_id: Unique id; bundle ids are (flow_id, 1..num_bundles).
        source / destination: Node ids (must differ).
        num_bundles: Bundles the source offers (the load).
        created_at: When the bundles enter the source's origin queue.
    """

    flow_id: int
    source: int
    destination: int
    num_bundles: int
    created_at: float = 0.0

    def __post_init__(self) -> None:
        # Endpoint samplers draw with numpy; coerce to builtin types here so
        # np.int64 never leaks into results/JSON (json.dumps rejects it).
        for name in ("flow_id", "source", "destination", "num_bundles"):
            object.__setattr__(self, name, int(getattr(self, name)))
        object.__setattr__(self, "created_at", float(self.created_at))
        if self.source == self.destination:
            raise ValueError("flow source and destination must differ")
        if self.num_bundles < 1:
            raise ValueError("flow needs at least one bundle")
        if self.created_at < 0:
            raise ValueError("created_at must be >= 0")


def draw_endpoints(num_nodes: int, rng: np.random.Generator) -> tuple[int, int]:
    """Uniformly draw a (source, destination) pair of distinct nodes."""
    if num_nodes < 2:
        raise ValueError("need at least 2 nodes")
    src, dst = rng.choice(num_nodes, size=2, replace=False)
    return int(src), int(dst)


def single_flow(
    num_nodes: int, load: int, rng: np.random.Generator, *, flow_id: int = 0
) -> list[Flow]:
    """The paper's workload: one flow of ``load`` bundles, random endpoints."""
    src, dst = draw_endpoints(num_nodes, rng)
    return [Flow(flow_id=flow_id, source=src, destination=dst, num_bundles=load)]


def multi_flow(
    num_nodes: int,
    num_flows: int,
    bundles_per_flow: int,
    rng: np.random.Generator,
    *,
    stagger: float = 0.0,
) -> list[Flow]:
    """Extension workload: several simultaneous flows.

    Args:
        stagger: Gap between successive flow creation times (0 = all at
            t=0, like the paper's single flow).
    """
    if num_flows < 1:
        raise ValueError("need at least one flow")
    flows = []
    for i in range(num_flows):
        src, dst = draw_endpoints(num_nodes, rng)
        flows.append(
            Flow(
                flow_id=i,
                source=src,
                destination=dst,
                num_bundles=bundles_per_flow,
                created_at=i * stagger,
            )
        )
    return flows


def total_offered(flows: list[Flow]) -> int:
    """Total bundles offered across flows (the denominator of delivery ratio)."""
    return sum(f.num_bundles for f in flows)
