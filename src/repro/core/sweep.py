"""Replicated load sweeps — the experiment engine behind every figure.

The paper's procedure (Section IV): for each load k ∈ {5, 10, …, 50} run 10
replications, re-drawing the (source, destination) pair each run, and
average. Comparisons between protocols use **common random numbers**: the
endpoint draw for (load, replication) is protocol-independent, so every
protocol faces the same sequence of workloads — variance reduction the
paper gets implicitly by replaying the same trace.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.core.protocols.registry import ProtocolConfig
from repro.core.results import RunResult, SweepResult
from repro.core.simulation import Simulation, SimulationConfig
from repro.core.workload import PAPER_LOADS, PAPER_REPLICATIONS, single_flow
from repro.des.rng import derive_seed
from repro.mobility.contact import ContactTrace

#: Builds (or returns a cached) trace for a replication index.
TraceFactory = Callable[[int], ContactTrace]


@dataclass(frozen=True)
class SweepConfig:
    """Sweep shape.

    Attributes:
        loads: Load values to sweep (paper: 5..50 step 5).
        replications: Runs per load (paper: 10).
        master_seed: Root of every random stream in the sweep.
        shared_trace: True (paper's trace study): one trace reused by all
            runs; False: a fresh trace per replication index (the factory
            receives the replication index).
    """

    loads: Sequence[int] = PAPER_LOADS
    replications: int = PAPER_REPLICATIONS
    master_seed: int = 0
    shared_trace: bool = True
    sim: SimulationConfig = field(default_factory=SimulationConfig)

    def __post_init__(self) -> None:
        if not self.loads:
            raise ValueError("loads must be non-empty")
        if any(load < 1 for load in self.loads):
            raise ValueError("loads must be >= 1")
        if self.replications < 1:
            raise ValueError("replications must be >= 1")


def constant_trace(trace: ContactTrace) -> TraceFactory:
    """Trace factory that always returns the same trace (paper's setup)."""
    return lambda rep: trace


def run_single(
    trace: ContactTrace,
    protocol: ProtocolConfig,
    load: int,
    rep: int,
    sweep: SweepConfig,
) -> RunResult:
    """One run of the sweep grid, with derived, reproducible seeds.

    Endpoint draws depend on (master_seed, load, rep) only — not on the
    protocol — so all protocols see identical workloads (common random
    numbers). Protocol-internal randomness (P-Q coins) additionally keys on
    the protocol name.
    """
    endpoint_rng = np.random.default_rng(
        derive_seed(sweep.master_seed, "workload", load, rep)
    )
    flows = single_flow(trace.num_nodes, load, endpoint_rng)
    run_seed = int(
        derive_seed(
            sweep.master_seed, "run", protocol.protocol_name, load, rep
        ).generate_state(1)[0]
    )
    sim = Simulation(
        trace, protocol, flows, config=sweep.sim, seed=run_seed
    )
    return sim.run()


def run_sweep(
    trace_factory: TraceFactory | ContactTrace,
    protocols: Sequence[ProtocolConfig],
    sweep: SweepConfig | None = None,
    *,
    progress: Callable[[str], None] | None = None,
) -> SweepResult:
    """Run the full (protocol × load × replication) grid.

    Args:
        trace_factory: A :class:`ContactTrace` (shared by all runs) or a
            callable mapping replication index → trace.
        protocols: Protocol configurations to compare.
        sweep: Sweep shape; defaults to the paper's.
        progress: Optional callback receiving one line per (protocol, load).

    Returns:
        A :class:`SweepResult` with one :class:`RunResult` per grid cell.
    """
    sweep = sweep or SweepConfig()
    if isinstance(trace_factory, ContactTrace):
        factory = constant_trace(trace_factory)
    else:
        factory = trace_factory
    if not protocols:
        raise ValueError("at least one protocol is required")
    result = SweepResult()
    trace_cache: dict[int, ContactTrace] = {}

    def trace_for(rep: int) -> ContactTrace:
        key = 0 if sweep.shared_trace else rep
        if key not in trace_cache:
            trace_cache[key] = factory(key)
        return trace_cache[key]

    for protocol in protocols:
        for load in sweep.loads:
            for rep in range(sweep.replications):
                result.runs.append(
                    run_single(trace_for(rep), protocol, load, rep, sweep)
                )
            if progress is not None:
                progress(f"{protocol.label}: load={load} done")
    return result
