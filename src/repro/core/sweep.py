"""Replicated load sweeps — the experiment engine behind every figure.

The paper's procedure (Section IV): for each load k ∈ {5, 10, …, 50} run 10
replications, re-drawing the (source, destination) pair each run, and
average. Comparisons between protocols use **common random numbers**: the
endpoint draw for (load, replication) is protocol-independent, so every
protocol faces the same sequence of workloads — variance reduction the
paper gets implicitly by replaying the same trace.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Callable, Sequence

import numpy as np

from pathlib import Path

from repro.core.checkpoint import CheckpointJournal, cell_key
from repro.core.executors import (
    Cell,
    CellFailure,
    CellOutcome,
    Executor,
    FailurePolicy,
    SerialExecutor,
)
from repro.core.protocols.registry import ProtocolConfig
from repro.core.results import RunResult, SweepResult
from repro.core.simulation import Simulation, SimulationConfig
from repro.core.workload import PAPER_LOADS, PAPER_REPLICATIONS, single_flow
from repro.des.rng import derive_seed
from repro.mobility.contact import ContactTrace

#: Builds (or returns a cached) trace for a replication index.
TraceFactory = Callable[[int], ContactTrace]


@dataclass(frozen=True)
class SweepConfig:
    """Sweep shape.

    Attributes:
        loads: Load values to sweep (paper: 5..50 step 5).
        replications: Runs per load (paper: 10).
        master_seed: Root of every random stream in the sweep.
        shared_trace: True (paper's trace study): one trace reused by all
            runs; False: a fresh trace per replication index (the factory
            receives the replication index).
    """

    loads: Sequence[int] = PAPER_LOADS
    replications: int = PAPER_REPLICATIONS
    master_seed: int = 0
    shared_trace: bool = True
    sim: SimulationConfig = field(default_factory=SimulationConfig)

    def __post_init__(self) -> None:
        if not self.loads:
            raise ValueError("loads must be non-empty")
        if any(load < 1 for load in self.loads):
            raise ValueError("loads must be >= 1")
        if self.replications < 1:
            raise ValueError("replications must be >= 1")


def constant_trace(trace: ContactTrace) -> TraceFactory:
    """Trace factory that always returns the same trace (paper's setup)."""
    return lambda rep: trace


def run_single(
    trace: ContactTrace,
    protocol: ProtocolConfig,
    load: int,
    rep: int,
    sweep: SweepConfig,
) -> RunResult:
    """One run of the sweep grid, with derived, reproducible seeds.

    Endpoint draws depend on (master_seed, load, rep) only — not on the
    protocol — so all protocols see identical workloads (common random
    numbers). Protocol-internal randomness (P-Q coins) additionally keys on
    the protocol name. The endpoint draw is also engine-independent:
    ``engine="ode"`` cells face the exact same flow sequence as their DES
    twins, which is what makes the cross-validation residuals
    (:mod:`repro.analytic.calibration`) pure model error.
    """
    endpoint_rng = np.random.default_rng(
        derive_seed(sweep.master_seed, "workload", load, rep)
    )
    flows = single_flow(trace.num_nodes, load, endpoint_rng)
    run_seed = int(
        derive_seed(
            sweep.master_seed, "run", protocol.protocol_name, load, rep
        ).generate_state(1)[0]
    )
    # Lazy import: repro.analytic.surrogate imports this module's siblings;
    # a function-level import keeps the module graph acyclic.
    from repro.analytic.surrogate import AnalyticContactModel, surrogate_run

    if sweep.sim.engine == "ode":
        return surrogate_run(trace, protocol, flows, config=sweep.sim, seed=run_seed)
    if isinstance(trace, AnalyticContactModel):
        raise ValueError(
            "an analytic contact model has no contacts for the event-driven "
            "engine; run this cell with engine='ode'"
        )
    # The fault environment keys on (load, rep) only — like the endpoint
    # draw, and unlike the run seed — so every protocol at the same grid
    # coordinates faces the identical crashes, outages, and link losses
    # (common random numbers across the protocol axis).
    fault_seed = None
    if sweep.sim.active_faults is not None:
        fault_seed = int(
            derive_seed(sweep.master_seed, "faults", load, rep).generate_state(1)[0]
        )
    sim = Simulation(
        trace, protocol, flows, config=sweep.sim, seed=run_seed, fault_seed=fault_seed
    )
    return sim.run()


def build_cells(
    trace_factory: TraceFactory | ContactTrace,
    protocols: Sequence[ProtocolConfig],
    sweep: SweepConfig,
) -> list[Cell]:
    """Materialise the (protocol × load × replication) grid as cells.

    Traces are built up front (once if shared, once per replication index
    otherwise) so cells are self-contained and can ship to worker processes.
    """
    if isinstance(trace_factory, ContactTrace):
        factory = constant_trace(trace_factory)
    else:
        factory = trace_factory
    trace_cache: dict[int, ContactTrace] = {}

    def trace_for(rep: int) -> ContactTrace:
        key = 0 if sweep.shared_trace else rep
        if key not in trace_cache:
            trace_cache[key] = factory(key)
        return trace_cache[key]

    return [
        Cell(trace_for(rep), protocol, load, rep, sweep)
        for protocol in protocols
        for load in sweep.loads
        for rep in range(sweep.replications)
    ]


def campaign_fingerprint(
    cells: Sequence[Cell], sweep: SweepConfig
) -> dict[str, object]:
    """JSON-safe identity of a sweep campaign, for the checkpoint manifest.

    Two invocations that would produce different grids — different seed,
    loads, replications, protocol set, traces, engine, or fault
    environment — must produce different fingerprints, so a ``--resume``
    against the wrong campaign directory is refused instead of silently
    mixing results (e.g. faulted and unfaulted cells).

    The execution ``kernel`` is deliberately **excluded**: the sweep
    kernel is byte-identical to the event engine, so a campaign may be
    resumed under a different kernel setting without changing a single
    result — the fingerprint identifies *what* is computed, not how
    fast.
    """
    protocols: dict[str, None] = {}
    traces: dict[str, None] = {}
    for cell in cells:
        protocols.setdefault(cell.protocol.label, None)
        traces.setdefault(cell.trace.name, None)
    active = sweep.sim.active_faults
    return {
        "master_seed": sweep.master_seed,
        "loads": [int(x) for x in sweep.loads],
        "replications": sweep.replications,
        "shared_trace": sweep.shared_trace,
        "engine": sweep.sim.engine,
        "protocols": list(protocols),
        "traces": list(traces),
        # a trivial spec normalises to None: it runs the identical grid
        "faults": None if active is None else active.to_dict(),
    }


def run_sweep(
    trace_factory: TraceFactory | ContactTrace,
    protocols: Sequence[ProtocolConfig],
    sweep: SweepConfig | None = None,
    *,
    executor: Executor | None = None,
    progress: Callable[[str], None] | None = None,
    policy: FailurePolicy | None = None,
    checkpoint: CheckpointJournal | str | Path | None = None,
) -> SweepResult:
    """Run the full (protocol × load × replication) grid.

    Args:
        trace_factory: A :class:`ContactTrace` (shared by all runs) or a
            callable mapping replication index → trace.
        protocols: Protocol configurations to compare.
        sweep: Sweep shape; defaults to the paper's.
        executor: Execution backend; defaults to
            :class:`~repro.core.executors.SerialExecutor`. Pass a
            :class:`~repro.core.executors.ParallelExecutor` to fan the grid
            out over worker processes — results are bit-identical because
            every cell's randomness derives from its own coordinates.
        progress: Optional callback receiving one ``[done/total]`` line per
            completed (protocol, load, replication) cell. With a parallel
            executor, lines arrive in completion order.
        policy: Failure policy (retries / per-cell timeout / abort vs
            keep-going); defaults to
            :class:`~repro.core.executors.FailurePolicy`'s abort-on-first-
            failure behaviour.
        checkpoint: Campaign directory (or a prepared
            :class:`~repro.core.checkpoint.CheckpointJournal`) for
            crash-safe per-cell journaling. Cells already journaled are
            *not* re-executed: their results are restored from disk, which
            is exact because every cell's randomness derives from its own
            coordinates. Pass a ``CheckpointJournal(dir, resume=True)`` to
            continue a killed campaign.

    Returns:
        A :class:`SweepResult` with one :class:`RunResult` per completed
        grid cell, in (protocol, load, replication) order regardless of
        backend, and — under ``on_error="keep-going"`` — one structured
        :class:`~repro.core.executors.CellFailure` per failed cell in
        :attr:`~repro.core.results.SweepResult.failures`.
    """
    sweep = sweep or SweepConfig()
    if not protocols:
        raise ValueError("at least one protocol is required")
    cells = build_cells(trace_factory, protocols, sweep)

    outcomes: list[CellOutcome | None] = [None] * len(cells)
    pending = list(range(len(cells)))
    journal: CheckpointJournal | None = None
    if checkpoint is not None:
        journal = (
            checkpoint
            if isinstance(checkpoint, CheckpointJournal)
            else CheckpointJournal(checkpoint)
        )
        journal.begin(campaign_fingerprint(cells, sweep))
        pending = []
        for i, cell in enumerate(cells):
            cached = journal.get(cell_key(cell))
            if cached is None:
                pending.append(i)
            else:
                outcomes[i] = cached
        if progress is not None and len(pending) < len(cells):
            progress(
                f"resume: restored {len(cells) - len(pending)} journaled "
                f"cell(s) from {journal.directory}"
            )

    hook = None
    if progress is not None:
        report = progress

        def hook(done: int, total: int, cell: Cell) -> None:
            report(
                f"[{done}/{total}] {cell.protocol.label}: "
                f"load={cell.load} rep={cell.rep} done"
            )

    on_result = None
    if journal is not None:
        bound = journal

        def on_result(idx: int, cell: Cell, outcome: CellOutcome) -> None:
            # failures are deliberately not journaled: a resumed campaign
            # re-attempts them instead of replaying the failure
            if isinstance(outcome, RunResult):
                bound.record(cell_key(cell), outcome)

    backend = executor or SerialExecutor()
    try:
        executed = backend.run(
            [cells[i] for i in pending],
            progress=hook,
            policy=policy,
            on_result=on_result,
        )
    finally:
        if journal is not None:
            journal.close()
    for slot, outcome in zip(pending, executed, strict=True):
        outcomes[slot] = outcome

    result = SweepResult()
    for outcome in outcomes:
        if isinstance(outcome, CellFailure):
            result.failures.append(outcome)
        else:
            assert outcome is not None, "executor left a cell without outcome"
            result.runs.append(outcome)
    return result
