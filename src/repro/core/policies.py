"""Pluggable buffer drop policies — what happens when a relay buffer is full.

The paper's buffer-contention results (Figs 13-14: 10 relay slots vs up to
50 offered bundles) all assume one fixed acceptance rule: a full buffer
refuses the incoming copy. Real DTN stacks expose the queue policy as a
knob (ns-3's epidemic implementation, Rohrer & Mauldin, arXiv:1805.10539),
and the occupancy/delivery tradeoff literature (Chen et al.,
arXiv:1601.06345) sweeps exactly this axis. This module makes the rule a
first-class, registered *mechanism* that the protocol layer consults
instead of hard-coding drop-tail:

* ``reject`` — never evict; a full buffer refuses the incoming copy. This
  is the historical behaviour and the default everywhere, so existing
  results are reproduced bit-for-bit. (Classic networking calls refusing
  the arrival "drop-tail" — here that behaviour is ``reject``.)
* ``drop-tail`` — evict the most recently *stored* copy (the tail of the
  insertion-ordered queue) to admit the incoming one. Unlike ``reject``,
  the arrival is always admitted.
* ``drop-oldest`` — evict the copy whose bundle was *created* longest ago
  (ns-3's DropHead / "drop least recently generated" rule: old bundles
  have had the most spreading opportunities).
* ``drop-youngest`` — evict the copy whose bundle was created most
  recently (protects old, rare bundles at the cost of fresh ones).
* ``drop-random`` — evict a uniformly random stored copy, drawn from a
  seeded per-node stream so runs stay deterministic and executor-independent.

Policies are *mechanism*: they rank victims among stored relay copies.
Protocols whose identity **is** an eviction rule (EC and EC+TTL evict the
highest-encounter-count copy) keep their own rule and simply report their
drops under the ``max-ec`` policy name; every other protocol delegates to
the node's configured policy via the base :class:`~repro.core.protocols.base.Protocol`
``can_accept``/``_make_room`` hooks.

Victim selection never evicts origin-queue copies (the application queue is
not the relay buffer) and is deterministic for every policy except
``drop-random``, whose draws come from the generator handed to
:func:`make_drop_policy`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.buffer import RelayStore
from repro.core.bundle import Bundle, StoredBundle

if TYPE_CHECKING:  # pragma: no cover - typing only
    import numpy as np


class DropPolicy:
    """Base drop policy: ranks eviction victims in a full relay buffer.

    Subclasses set :attr:`name` and implement :meth:`select_victim`.
    ``can_make_room`` is the *planning-time* check used by anti-entropy
    (``Protocol.can_accept``): it must not consume randomness, so a
    stochastic policy can be consulted many times per contact without
    perturbing its stream.
    """

    #: Registry name; subclasses must set this.
    name = "abstract"

    def __init__(self, rng: np.random.Generator | None = None) -> None:
        self.rng = rng

    def can_make_room(self, store: RelayStore, incoming: Bundle) -> bool:
        """True if a victim could be evicted to admit ``incoming``."""
        return len(store) > 0

    def select_victim(
        self, store: RelayStore, incoming: Bundle, now: float
    ) -> StoredBundle | None:
        """The copy to evict for ``incoming``, or None to refuse it."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class RejectPolicy(DropPolicy):
    """Never evict: a full buffer refuses the incoming copy (the default)."""

    name = "reject"

    def can_make_room(self, store: RelayStore, incoming: Bundle) -> bool:
        return False

    def select_victim(
        self, store: RelayStore, incoming: Bundle, now: float
    ) -> StoredBundle | None:
        return None


class DropTailPolicy(DropPolicy):
    """Evict the most recently stored copy (the queue's tail)."""

    name = "drop-tail"

    def select_victim(
        self, store: RelayStore, incoming: Bundle, now: float
    ) -> StoredBundle | None:
        entries = store.values()
        return entries[-1] if entries else None


class DropOldestPolicy(DropPolicy):
    """Evict the copy of the oldest bundle (earliest ``created_at``)."""

    name = "drop-oldest"

    def select_victim(
        self, store: RelayStore, incoming: Bundle, now: float
    ) -> StoredBundle | None:
        entries = store.values()
        if not entries:
            return None
        return min(entries, key=lambda sb: (sb.bundle.created_at, sb.stored_at, sb.bid))


class DropYoungestPolicy(DropPolicy):
    """Evict the copy of the youngest bundle (latest ``created_at``)."""

    name = "drop-youngest"

    def select_victim(
        self, store: RelayStore, incoming: Bundle, now: float
    ) -> StoredBundle | None:
        entries = store.values()
        if not entries:
            return None
        return max(entries, key=lambda sb: (sb.bundle.created_at, sb.stored_at, sb.bid))


class DropRandomPolicy(DropPolicy):
    """Evict a uniformly random stored copy (seeded stream)."""

    name = "drop-random"

    def select_victim(
        self, store: RelayStore, incoming: Bundle, now: float
    ) -> StoredBundle | None:
        entries = store.values()
        if not entries:
            return None
        if self.rng is None:
            raise ValueError("drop-random requires a seeded rng; use make_drop_policy")
        return entries[int(self.rng.integers(len(entries)))]


_POLICY_REGISTRY: dict[str, type[DropPolicy]] = {}


def register_drop_policy(policy_cls: type[DropPolicy]) -> type[DropPolicy]:
    """Class decorator: add a drop policy to the registry.

    Raises:
        ValueError: if the class lacks a ``name`` or the name is already
            taken by a different class.
    """
    name = getattr(policy_cls, "name", None)
    if not name or name == DropPolicy.name:
        raise ValueError(f"{policy_cls.__name__} must define a policy name")
    existing = _POLICY_REGISTRY.get(name)
    if existing is not None and existing is not policy_cls:
        raise ValueError(
            f"drop policy {name!r} already registered by {existing.__name__}"
        )
    _POLICY_REGISTRY[name] = policy_cls
    return policy_cls


def drop_policy_names() -> list[str]:
    """All registered drop-policy names, sorted."""
    return sorted(_POLICY_REGISTRY)


def make_drop_policy(
    name: str, rng: np.random.Generator | None = None
) -> DropPolicy:
    """Instantiate a registered drop policy.

    Args:
        name: Registry name (``reject``, ``drop-oldest``, ...).
        rng: Seeded generator for stochastic policies (``drop-random``).

    Raises:
        KeyError: for an unknown name (message lists what is available).
    """
    try:
        cls = _POLICY_REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown drop policy {name!r}; available: {', '.join(drop_policy_names())}"
        ) from None
    return cls(rng=rng)


for _cls in (
    RejectPolicy,
    DropTailPolicy,
    DropOldestPolicy,
    DropYoungestPolicy,
    DropRandomPolicy,
):
    register_drop_policy(_cls)


__all__ = [
    "DropPolicy",
    "DropOldestPolicy",
    "DropRandomPolicy",
    "DropTailPolicy",
    "DropYoungestPolicy",
    "RejectPolicy",
    "drop_policy_names",
    "make_drop_policy",
    "register_drop_policy",
]
