"""The paper's primary contribution: the unified evaluation framework.

Everything needed to run one protocol on one mobility input and measure the
paper's four metrics lives here:

* data plane: :mod:`~repro.core.bundle`, :mod:`~repro.core.buffer`,
  :mod:`~repro.core.policies` (pluggable buffer drop policies),
  :mod:`~repro.core.node`
* policy plane: :mod:`~repro.core.protocols` (the 5 baselines and 3
  enhancements)
* mechanism: :mod:`~repro.core.session` (encounter semantics),
  :mod:`~repro.core.planner` (transfer selection: incremental + reference),
  :mod:`~repro.core.simulation` (the DES driver)
* measurement: :mod:`~repro.core.metrics` (exact time-weighted integrals),
  :mod:`~repro.core.results`
* experiment engine: :mod:`~repro.core.workload`, :mod:`~repro.core.sweep`,
  :mod:`~repro.core.executors` (serial / multi-process sweep backends)
"""

from repro.core.buffer import BufferFullError, RelayStore
from repro.core.executors import (
    Cell,
    Executor,
    ParallelExecutor,
    SerialExecutor,
    make_executor,
)
from repro.core.bundle import (
    NO_EXPIRY,
    Bundle,
    BundleId,
    StoredBundle,
    make_flow_bundles,
)
from repro.core.knowledge import (
    CumulativeKnowledgeStore,
    KnowledgeStore,
    exchange_control,
)
from repro.core.metrics import MetricsCollector, TimeWeightedAccumulator
from repro.core.node import EncounterHistory, Node
from repro.core.policies import (
    DropPolicy,
    drop_policy_names,
    make_drop_policy,
    register_drop_policy,
)
from repro.core.planner import IncrementalPlanner, ReferencePlanner, planner_names
from repro.core.results import RunResult, Series, SeriesPoint, SweepResult
from repro.core.session import ContactSession, begin_contact
from repro.core.simulation import Simulation, SimulationConfig
from repro.core.sweep import (
    SweepConfig,
    build_cells,
    constant_trace,
    run_single,
    run_sweep,
)
from repro.core.workload import (
    PAPER_LOADS,
    PAPER_REPLICATIONS,
    Flow,
    draw_endpoints,
    multi_flow,
    single_flow,
    total_offered,
)

__all__ = [
    "NO_EXPIRY",
    "Bundle",
    "BundleId",
    "StoredBundle",
    "make_flow_bundles",
    "BufferFullError",
    "RelayStore",
    "DropPolicy",
    "drop_policy_names",
    "make_drop_policy",
    "register_drop_policy",
    "Node",
    "EncounterHistory",
    "MetricsCollector",
    "TimeWeightedAccumulator",
    "ContactSession",
    "begin_contact",
    "KnowledgeStore",
    "CumulativeKnowledgeStore",
    "exchange_control",
    "IncrementalPlanner",
    "ReferencePlanner",
    "planner_names",
    "Simulation",
    "SimulationConfig",
    "RunResult",
    "Series",
    "SeriesPoint",
    "SweepResult",
    "SweepConfig",
    "run_sweep",
    "run_single",
    "build_cells",
    "constant_trace",
    "Cell",
    "Executor",
    "SerialExecutor",
    "ParallelExecutor",
    "make_executor",
    "Flow",
    "single_flow",
    "multi_flow",
    "draw_endpoints",
    "total_offered",
    "PAPER_LOADS",
    "PAPER_REPLICATIONS",
]
