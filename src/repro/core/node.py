"""The DTN node model.

A :class:`Node` owns its stores (relay buffer + origin queue + delivered
log), its encounter history (which the dynamic-TTL enhancement reads), and a
protocol instance that encodes all policy. Everything that mutates copy
counts or buffer fill goes through the simulation services so metrics stay
exact; the node itself is bookkeeping only.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterator
from typing import TYPE_CHECKING

from repro.core.buffer import RelayStore
from repro.core.bundle import Bundle, BundleId, StoredBundle
from repro.core.policies import DropPolicy, RejectPolicy

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.core.protocols.base import Protocol


@dataclass(slots=True)
class EncounterHistory:
    """Per-node encounter timing, feeding the dynamic-TTL rule (Algo 1).

    ``last_interval`` is the gap between the node's last two *rendezvous*
    — encounters closer together than ``min_rendezvous_gap`` (e.g. several
    devices gathered at one spot, or an iMote sighting the same crowd on
    consecutive scans) count as a single rendezvous. Without this
    debouncing, a burst of encounters seconds apart would collapse the
    interval estimate to ~0 and the dynamic-TTL rule (TTL = 2 × interval)
    would discard every buffered bundle on the spot. The 120 s default
    matches the scan granularity of the iMote hardware behind the paper's
    trace.
    """

    #: Encounters closer than this are one rendezvous for interval purposes.
    min_rendezvous_gap: float = 120.0
    last_encounter_time: float | None = None
    last_interval: float | None = None
    encounter_count: int = 0

    def note_encounter(self, now: float) -> None:
        """Record an encounter start at ``now``."""
        self.encounter_count += 1
        if self.last_encounter_time is None:
            self.last_encounter_time = now
            return
        gap = now - self.last_encounter_time
        if gap <= self.min_rendezvous_gap:
            # Same rendezvous burst: keep measuring from the burst start.
            return
        self.last_interval = gap
        self.last_encounter_time = now


@dataclass(slots=True)
class NodeCounters:
    """Per-node event counters (diagnostics and signaling metrics)."""

    bundles_sent: int = 0
    bundles_received: int = 0
    bundles_delivered: int = 0  #: received as final destination
    evictions: int = 0
    expiries: int = 0
    immunized_purges: int = 0
    rejections: int = 0  #: offers refused at completion time (wasted slots)
    control_units_sent: int = 0


class Node:
    """One DTN device: stores, history, counters, and a protocol."""

    def __init__(
        self,
        node_id: int,
        buffer_capacity: int,
        *,
        drop_policy: DropPolicy | None = None,
    ) -> None:
        self.id = node_id
        self.relay = RelayStore(buffer_capacity)
        #: mutations of the origin store (the relay store keeps its own
        #: counter); see :attr:`store_epoch`
        self._origin_epoch = 0
        #: buffer drop policy consulted by the protocol when the relay
        #: store is full (``reject`` = historical refuse-incoming default)
        self.drop_policy: DropPolicy = drop_policy or RejectPolicy()
        self.origin: dict[BundleId, StoredBundle] = {}
        self.delivered: dict[BundleId, float] = {}
        self.history = EncounterHistory()
        self.counters = NodeCounters()
        #: buffer slots (fractional) consumed by stored control state
        #: (immunity tables / anti-packets); maintained via the simulation's
        #: ``set_control_storage`` so the occupancy metric stays exact
        self.control_storage = 0.0
        self.protocol: Protocol = None  # type: ignore[assignment]  # bound by Simulation

    def __repr__(self) -> str:
        return (
            f"Node({self.id}, relay={len(self.relay)}/{self.relay.capacity}, "
            f"origin={len(self.origin)}, delivered={len(self.delivered)})"
        )

    # ----------------------------------------------------------- copy queries

    def has_copy(self, bid: BundleId) -> bool:
        """True if this node holds (or has consumed) the bundle."""
        return bid in self.relay or bid in self.origin or bid in self.delivered

    def get_copy(self, bid: BundleId) -> StoredBundle | None:
        """The live stored copy (origin or relay), if any."""
        sb = self.origin.get(bid)
        if sb is not None:
            return sb
        return self.relay.get(bid)

    def sendable(self) -> list[StoredBundle]:
        """Copies this node can forward: origin first, then relay.

        Within each store, copies keep insertion order (origin = seq order,
        relay = arrival order). The contact session applies
        destination-priority on top of this ordering.
        """
        return list(self.origin.values()) + self.relay.values()

    def iter_sendable(self) -> Iterator[StoredBundle]:
        """Allocation-light :meth:`sendable`: iterate, don't materialise.

        Callers must not mutate either store while iterating; collect ids
        first (or use :meth:`sendable`) when removals follow.
        """
        yield from self.origin.values()
        yield from self.relay.entries_view().values()

    def live_copy_count(self) -> int:
        """Number of live copies held (origin + relay)."""
        return len(self.origin) + len(self.relay)

    @property
    def store_epoch(self) -> int:
        """Monotonic counter bumped by every origin/relay store mutation.

        The incremental session planner caches candidate order per
        (sender, receiver) direction and rebuilds it when this changes —
        cheap O(1) invalidation instead of per-slot rebuilds.
        """
        return self._origin_epoch + self.relay.version

    # -------------------------------------------------------------- mutation

    def add_origin(self, bundle: Bundle, now: float) -> StoredBundle:
        """Place a self-originated bundle in the (unbounded) origin queue."""
        if bundle.source != self.id:
            raise ValueError(
                f"node {self.id} cannot originate bundle from {bundle.source}"
            )
        if self.has_copy(bundle.bid):
            raise ValueError(f"bundle {bundle.bid} already present at node {self.id}")
        sb = StoredBundle(bundle=bundle, stored_at=now, is_origin=True)
        self.origin[bundle.bid] = sb
        self._origin_epoch += 1
        return sb

    def remove_copy(self, bid: BundleId) -> StoredBundle:
        """Remove a live copy from whichever store holds it.

        Raises:
            KeyError: if no live copy exists.
        """
        if bid in self.origin:
            self._origin_epoch += 1
            return self.origin.pop(bid)
        return self.relay.remove(bid)

    def mark_delivered(self, bid: BundleId, now: float) -> None:
        """Record final delivery at this node (the flow destination)."""
        if bid in self.delivered:
            raise ValueError(f"bundle {bid} delivered twice at node {self.id}")
        self.delivered[bid] = now
