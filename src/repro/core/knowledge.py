"""Delivery-knowledge subsystem: epoch-versioned control-plane state.

The framework's contact-start processing is layered::

    trace  →  encounter  →  knowledge  →  transfer planner
    (who meets whom)  (history)  (what is already delivered)  (what moves)

This module owns the *knowledge* layer. Every protocol that tracks
delivery knowledge (anti-packets, per-bundle immunity tables, cumulative
immunity tables) keeps it in a store with a monotonic **knowledge epoch**:
a counter bumped by every mutation of the state a peer's
``receive_control`` consumes. The epoch buys two things:

* **Payload caching** — the store caches the :class:`~repro.core.protocols.base.ControlMessage`
  built from its state and reuses it verbatim while the epoch is
  unchanged. Control payloads are built twice per contact (once per
  direction) and, for the anti-packet family, snapshotting the i-list is
  the dominant per-contact cost at scale; with the cache a node that
  learned nothing since its last encounter pays one attribute load.
* **Exchange elision** — :func:`exchange_control` remembers, per node
  pair, the two epochs at the end of their last control swap. When both
  are unchanged at the next meeting the swap is provably a no-op (both
  sides already hold the union of what they knew), so only the signaling
  *accounting* runs — the paper's overhead metric charges the full table
  transmission at every encounter regardless of novelty.

Both optimizations are bit-identical by construction: the cached message
carries the same frozen snapshots a fresh build would, and an elided swap
is one whose ``receive_control`` would have returned without mutating
anything. The elision is gated on
:attr:`~repro.core.protocols.base.Protocol.epoch_gated_control`, which
subclasses lose automatically when they override a control hook without
re-declaring it (see ``Protocol.__init_subclass__``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.bundle import BundleId
    from repro.core.node import Node
    from repro.core.protocols.base import ControlMessage
    from repro.core.simulation import Simulation


class KnowledgeStore:
    """Set-valued delivery knowledge (the i-list) behind a knowledge epoch.

    Owns the mutable id set, its cached frozen snapshot, and the cached
    control payload. All mutations go through :meth:`add` / :meth:`merge`
    so the epoch can never miss a change; protocols must not reach into
    the underlying set.
    """

    __slots__ = ("_known", "_snapshot", "epoch", "message")

    def __init__(self) -> None:
        self._known: set[BundleId] = set()
        self._snapshot: frozenset[BundleId] | None = None
        #: monotonic counter, bumped by every mutation
        self.epoch = 0
        #: cached control payload for the current epoch (maintained by the
        #: owning protocol's ``control_payload``; cleared on mutation)
        self.message: ControlMessage | None = None

    def __contains__(self, bid: BundleId) -> bool:
        return bid in self._known

    def __len__(self) -> int:
        return len(self._known)

    def __repr__(self) -> str:
        return f"KnowledgeStore({len(self._known)} ids, epoch={self.epoch})"

    @property
    def snapshot(self) -> frozenset[BundleId]:
        """Frozen view of the current knowledge, cached per epoch."""
        snap = self._snapshot
        if snap is None:
            snap = self._snapshot = frozenset(self._known)
        return snap

    def _invalidate(self) -> None:
        self.epoch += 1
        self._snapshot = None
        self.message = None

    def add(self, bid: BundleId) -> bool:
        """Learn one id. Returns True if it was new (epoch bumped)."""
        known = self._known
        if bid in known:
            return False
        known.add(bid)
        self._invalidate()
        return True

    def merge(self, bids: frozenset[BundleId] | set[BundleId]) -> list[BundleId]:
        """Merge a peer's knowledge; return the newly learned ids.

        The common steady-state case — the peer knows nothing new — is a
        C-level subset probe that never walks the set in Python.
        """
        known = self._known
        if not bids or (len(bids) <= len(known) and bids <= known):
            return []
        # Membership filtering first (order-free), then one small sort so
        # the returned list — which callers feed into remove_copy / event
        # scheduling — never exposes set iteration order.
        fresh = [b for b in bids if b not in known]  # lint: disable=DET002
        if fresh:
            fresh.sort()
            known.update(fresh)
            self._invalidate()
        return fresh

    def reset(self) -> None:
        """Forget everything (reboot state loss — see :mod:`repro.faults`).

        The epoch bumps unconditionally, so cached control payloads and
        per-pair exchange memos built against the pre-wipe state can never
        be replayed as current.
        """
        self._known.clear()
        self._invalidate()


class CumulativeKnowledgeStore:
    """Per-flow cumulative-acknowledgment tables behind a knowledge epoch.

    The cumulative-immunity enhancement keeps one dominating table per
    flow (``{flow: highest contiguous delivered seq}``) instead of one id
    per bundle; the epoch bumps whenever any flow's table advances.
    """

    __slots__ = ("tables", "epoch", "message")

    def __init__(self) -> None:
        #: flow id -> highest seq such that bundles 1..seq are delivered
        self.tables: dict[int, int] = {}
        self.epoch = 0
        self.message: ControlMessage | None = None

    def __len__(self) -> int:
        return len(self.tables)

    def __repr__(self) -> str:
        return f"CumulativeKnowledgeStore({len(self.tables)} flows, epoch={self.epoch})"

    def seq_for(self, flow: int) -> int:
        """Highest acknowledged seq of ``flow`` (0 when unknown)."""
        return self.tables.get(flow, 0)

    def covers(self, bid: BundleId) -> bool:
        return bid.seq <= self.tables.get(bid.flow, 0)

    def advance(self, flow: int, seq: int) -> bool:
        """Adopt a table if it dominates ours. Returns True if it did."""
        if seq <= self.tables.get(flow, 0):
            return False
        self.tables[flow] = seq
        self.epoch += 1
        self.message = None
        return True

    def reset(self) -> None:
        """Forget every table (reboot state loss — see :mod:`repro.faults`).

        Bumps the epoch unconditionally so cached payloads and per-pair
        exchange memos cannot survive the wipe.
        """
        self.tables.clear()
        self.epoch += 1
        self.message = None


def exchange_control(sim: Simulation, node_a: Node, node_b: Node, now: float) -> None:
    """The knowledge-swap layer of contact start.

    Both payloads' *consumed* fields (delivered_ids, cumulative tables,
    extras) are snapshots of pre-exchange state, then delivered — a
    symmetric, simultaneous swap. (The summary vector is lazy and unread
    in-simulation; see :class:`~repro.core.protocols.base.ControlMessage`.)
    When neither protocol carries control state (pure epidemic, coins-only
    P-Q) the payloads would be inert and nothing runs. Signaling
    accounting for protocol-specific state lives here, behind the store —
    the contact session never sees control units.

    When both protocols are epoch-gated, the per-pair epoch memo elides
    the swap whenever neither side learned anything since this pair's
    last exchange: the accounting still runs (the full table travels every
    encounter in the paper's cost model), but no payload is rebuilt and no
    ``receive_control`` — guaranteed a no-op — is dispatched.
    """
    proto_a = node_a.protocol
    proto_b = node_b.protocol
    if not (proto_a.exchanges_control or proto_b.exchanges_control):
        return
    ka = proto_a.knowledge
    kb = proto_b.knowledge
    pair = None
    elide = False
    if (
        proto_a.epoch_gated_control
        and proto_b.epoch_gated_control
        and ka is not None
        and kb is not None
    ):
        pair = (node_a.id, node_b.id)
        elide = sim.pair_knowledge.get(pair) == (ka.epoch, kb.epoch)
    msg_a = proto_a.control_payload(now)
    msg_b = proto_b.control_payload(now)
    units_a = proto_a.control_units(msg_a)
    if units_a:
        sim.count_control_units(node_a, proto_a.control_kind, units_a)
    units_b = proto_b.control_units(msg_b)
    if units_b:
        sim.count_control_units(node_b, proto_b.control_kind, units_b)
    if elide:
        # Elided swap: accounting only (see docstring).
        return
    proto_b.receive_control(msg_a, now)
    proto_a.receive_control(msg_b, now)
    if pair is not None and ka is not None and kb is not None:
        # Record post-exchange epochs: both sides now hold the union, so
        # equal epochs at the next meeting prove the swap is a no-op.
        sim.pair_knowledge[pair] = (ka.epoch, kb.epoch)


__all__ = ["CumulativeKnowledgeStore", "KnowledgeStore", "exchange_control"]
