"""Per-node bundle storage.

Two stores per node, mirroring how the paper's setup is self-consistent:

* :class:`RelayStore` — the bounded buffer (paper: 10 slots) holding copies
  accepted from peers. All buffer-occupancy metrics and eviction policies
  operate here.
* The *origin store* (a plain dict managed by :class:`~repro.core.node.Node`)
  — the unbounded application queue holding the bundles this node itself
  generated. Sources inject up to 50 bundles while buffers hold 10; origin
  copies are never *evicted*, but TTL-based protocols do *expire* them
  (the premature-discard failure mode of Figs 13–14).

The store is mechanism-only: eviction/acceptance *policy* lives above it.
When a full store receives a new copy, the protocol layer consults the
node's configured :class:`~repro.core.policies.DropPolicy` (``reject``,
``drop-tail``, ``drop-oldest``, ``drop-youngest``, ``drop-random``) to rank
an eviction victim — see :mod:`repro.core.policies`; protocols with an
intrinsic replacement rule (EC's highest-encounter-count eviction, exposed
here as :meth:`RelayStore.max_ec_entry`) bypass that delegation. Capacity
may differ per node (heterogeneous populations): each node's store is
constructed with its own ``capacity``.
"""

from __future__ import annotations

from collections.abc import Iterator, KeysView

from repro.core.bundle import BundleId, StoredBundle


class BufferFullError(RuntimeError):
    """Raised when adding to a full :class:`RelayStore` without eviction."""


class RelayStore:
    """Bounded store of relayed bundle copies, insertion-ordered."""

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._entries: dict[BundleId, StoredBundle] = {}
        #: monotonic mutation counter (every add/remove bumps it); feeds
        #: :attr:`repro.core.node.Node.store_epoch` cache invalidation
        self.version = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, bid: BundleId) -> bool:
        return bid in self._entries

    def __iter__(self) -> Iterator[StoredBundle]:
        return iter(list(self._entries.values()))

    @property
    def free_slots(self) -> int:
        """Remaining capacity."""
        return self.capacity - len(self._entries)

    @property
    def is_full(self) -> bool:
        return len(self._entries) >= self.capacity

    @property
    def fill_fraction(self) -> float:
        """Occupied fraction in [0, 1] — the paper's buffer occupancy level."""
        return len(self._entries) / self.capacity

    def get(self, bid: BundleId) -> StoredBundle | None:
        """The stored copy for ``bid``, or None."""
        return self._entries.get(bid)

    def add(self, sb: StoredBundle) -> None:
        """Insert a copy.

        Raises:
            BufferFullError: if the store is full.
            ValueError: if a copy of the same bundle is already stored.
        """
        if sb.bid in self._entries:
            raise ValueError(f"bundle {sb.bid} already in store")
        if self.is_full:
            raise BufferFullError(
                f"store full ({self.capacity} slots), cannot add {sb.bid}"
            )
        self._entries[sb.bid] = sb
        self.version += 1

    def remove(self, bid: BundleId) -> StoredBundle:
        """Remove and return the copy for ``bid``.

        Raises:
            KeyError: if not present.
        """
        sb = self._entries.pop(bid)
        self.version += 1
        return sb

    def ids(self) -> set[BundleId]:
        """Ids of all stored copies."""
        return set(self._entries.keys())

    def id_view(self) -> KeysView[BundleId]:
        """Allocation-free live view of the stored ids (read-only)."""
        return self._entries.keys()

    def values(self) -> list[StoredBundle]:
        """Stored copies in insertion order."""
        return list(self._entries.values())

    def entries_view(self) -> dict[BundleId, StoredBundle]:
        """The live id → copy mapping — read-only by convention.

        Hot paths (the session planner's membership probes and candidate
        rebuilds) use this to skip method-call and copy overhead; all
        mutation must still go through :meth:`add`/:meth:`remove` so
        :attr:`version` stays honest.
        """
        return self._entries

    def expired(self, now: float) -> list[StoredBundle]:
        """Copies whose TTL has run out at ``now``."""
        return [sb for sb in self._entries.values() if sb.is_expired(now)]

    def max_ec_entry(
        self, *, min_ec: int = 0, exclude: BundleId | None = None
    ) -> StoredBundle | None:
        """The eviction candidate with the highest EC.

        Args:
            min_ec: Only copies with ``ec >= min_ec`` are eligible (the
                EC+TTL enhancement's "minimum EC before deletion" rule).
            exclude: Optional id to skip (never evict the bundle being
                inserted).

        Returns:
            The eligible copy with the highest EC (ties broken by older
            ``stored_at`` first), or None if no copy is eligible.
        """
        best: StoredBundle | None = None
        for sb in self._entries.values():
            if sb.ec < min_ec:
                continue
            if exclude is not None and sb.bid == exclude:
                continue
            if (
                best is None
                or sb.ec > best.ec
                or (sb.ec == best.ec and sb.stored_at < best.stored_at)
            ):
                best = sb
        return best
