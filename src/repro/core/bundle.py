"""Bundles — the unit of data in a DTN — and per-copy state.

Terminology follows the paper: a *bundle* is a (large) application message;
nodes buffer *copies* of bundles and exchange them during encounters. The
immutable :class:`Bundle` describes the message itself; the mutable
:class:`StoredBundle` describes one node's copy (its encounter count, TTL
expiry, where it came from).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any

#: Expiry value meaning "never expires".
NO_EXPIRY = math.inf


class BundleId:
    """Globally unique bundle identity.

    ``flow`` identifies the (source, destination) conversation; ``seq`` is
    the 1-based position within the flow. Sequential ``seq`` values are what
    the cumulative immunity table compresses ("table id 30 means bundles
    1..30 were delivered").

    Immutable, ordered, and hashable — and hashed on *every* buffer /
    summary / knowledge probe of the simulation, so the hash is computed
    once at construction and cached. The cached value equals
    ``hash((flow, seq))``, exactly what the former frozen dataclass
    generated, so set/dict iteration orders (and therefore simulation
    results) are unchanged.
    """

    __slots__ = ("flow", "seq", "_hash")

    flow: int
    seq: int
    _hash: int

    def __init__(self, flow: int, seq: int) -> None:
        if seq < 1:
            raise ValueError(f"bundle seq is 1-based, got {seq}")
        if flow < 0:
            raise ValueError(f"flow id must be >= 0, got {flow}")
        object.__setattr__(self, "flow", flow)
        object.__setattr__(self, "seq", seq)
        object.__setattr__(self, "_hash", hash((flow, seq)))

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError(f"BundleId is immutable; cannot set {name!r}")

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        if other.__class__ is BundleId:
            return self.flow == other.flow and self.seq == other.seq
        return NotImplemented

    def __lt__(self, other: BundleId) -> bool:
        if other.__class__ is BundleId:
            return (self.flow, self.seq) < (other.flow, other.seq)
        return NotImplemented

    def __le__(self, other: BundleId) -> bool:
        if other.__class__ is BundleId:
            return (self.flow, self.seq) <= (other.flow, other.seq)
        return NotImplemented

    def __gt__(self, other: BundleId) -> bool:
        if other.__class__ is BundleId:
            return (self.flow, self.seq) > (other.flow, other.seq)
        return NotImplemented

    def __ge__(self, other: BundleId) -> bool:
        if other.__class__ is BundleId:
            return (self.flow, self.seq) >= (other.flow, other.seq)
        return NotImplemented

    def __reduce__(self) -> tuple[type[BundleId], tuple[int, int]]:
        return (BundleId, (self.flow, self.seq))

    def __repr__(self) -> str:
        return f"BundleId(flow={self.flow}, seq={self.seq})"

    def __str__(self) -> str:  # compact rendering for logs/tests
        return f"{self.flow}.{self.seq}"


@dataclass(frozen=True, slots=True)
class Bundle:
    """An immutable DTN message.

    Attributes:
        bid: Unique id (flow, seq).
        source: Originating node id.
        destination: Final recipient node id.
        created_at: Creation time at the source, seconds.
    """

    bid: BundleId
    source: int
    destination: int
    created_at: float

    def __post_init__(self) -> None:
        if self.source == self.destination:
            raise ValueError("bundle source and destination must differ")
        if self.created_at < 0:
            raise ValueError("created_at must be >= 0")


class StoredBundle:
    """One node's copy of a bundle, with per-copy protocol state.

    One instance per stored copy — the unit the whole simulation allocates
    most of — so this is a plain ``__slots__`` class with a trivial
    constructor and a *lazy* ``meta`` dict (only the extension protocols
    that carry per-copy state, e.g. spray tokens, ever materialise it).

    Attributes:
        bundle: The message this copy carries.
        stored_at: When this node obtained the copy.
        is_origin: True for the source's own application-queue copy.
        ec: Encounter count carried by the copy — incremented every time the
            copy is transmitted, and inherited by the receiver's new copy
            (paper Fig. "Epidemic with EC" worked example).
        expiry: Absolute expiry time; ``NO_EXPIRY`` if the protocol assigns
            no TTL. Maintained by the protocol, enforced by the simulation.
        expiry_event: Handle of the scheduled expiry event (simulation-owned).
    """

    __slots__ = ("bundle", "stored_at", "is_origin", "ec", "expiry", "expiry_event", "_meta")

    def __init__(
        self,
        bundle: Bundle,
        stored_at: float,
        is_origin: bool = False,
        ec: int = 0,
        expiry: float = NO_EXPIRY,
        expiry_event: Any = None,
        meta: dict[str, Any] | None = None,
    ) -> None:
        self.bundle = bundle
        self.stored_at = stored_at
        self.is_origin = is_origin
        self.ec = ec
        self.expiry = expiry
        self.expiry_event = expiry_event
        self._meta = meta

    @property
    def bid(self) -> BundleId:
        return self.bundle.bid

    @property
    def meta(self) -> dict[str, Any]:
        """Free-form per-copy protocol state (e.g. spray tokens).

        Travels with the node's copy, not with the bundle. Materialised on
        first access.
        """
        m = self._meta
        if m is None:
            m = self._meta = {}
        return m

    def is_expired(self, now: float) -> bool:
        """True if the copy's TTL has run out at time ``now``."""
        return now >= self.expiry

    def remaining_ttl(self, now: float) -> float:
        """Seconds of TTL left (inf when no TTL is set)."""
        return self.expiry - now

    def __repr__(self) -> str:
        origin = ", origin" if self.is_origin else ""
        return (
            f"StoredBundle({self.bid}, stored_at={self.stored_at}, "
            f"ec={self.ec}, expiry={self.expiry}{origin})"
        )


def make_flow_bundles(
    flow: int, source: int, destination: int, count: int, created_at: float = 0.0
) -> list[Bundle]:
    """Create the ``count`` sequential bundles of one flow (seq 1..count)."""
    if count < 1:
        raise ValueError(f"a flow needs at least one bundle, got {count}")
    return [
        Bundle(
            bid=BundleId(flow=flow, seq=s),
            source=source,
            destination=destination,
            created_at=created_at,
        )
        for s in range(1, count + 1)
    ]
