"""Bundles — the unit of data in a DTN — and per-copy state.

Terminology follows the paper: a *bundle* is a (large) application message;
nodes buffer *copies* of bundles and exchange them during encounters. The
immutable :class:`Bundle` describes the message itself; the mutable
:class:`StoredBundle` describes one node's copy (its encounter count, TTL
expiry, where it came from).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any

#: Expiry value meaning "never expires".
NO_EXPIRY = math.inf


@dataclass(frozen=True, slots=True, order=True)
class BundleId:
    """Globally unique bundle identity.

    ``flow`` identifies the (source, destination) conversation; ``seq`` is
    the 1-based position within the flow. Sequential ``seq`` values are what
    the cumulative immunity table compresses ("table id 30 means bundles
    1..30 were delivered").
    """

    flow: int
    seq: int

    def __post_init__(self) -> None:
        if self.seq < 1:
            raise ValueError(f"bundle seq is 1-based, got {self.seq}")
        if self.flow < 0:
            raise ValueError(f"flow id must be >= 0, got {self.flow}")

    def __str__(self) -> str:  # compact rendering for logs/tests
        return f"{self.flow}.{self.seq}"


@dataclass(frozen=True, slots=True)
class Bundle:
    """An immutable DTN message.

    Attributes:
        bid: Unique id (flow, seq).
        source: Originating node id.
        destination: Final recipient node id.
        created_at: Creation time at the source, seconds.
    """

    bid: BundleId
    source: int
    destination: int
    created_at: float

    def __post_init__(self) -> None:
        if self.source == self.destination:
            raise ValueError("bundle source and destination must differ")
        if self.created_at < 0:
            raise ValueError("created_at must be >= 0")


@dataclass(slots=True)
class StoredBundle:
    """One node's copy of a bundle, with per-copy protocol state.

    Attributes:
        bundle: The message this copy carries.
        stored_at: When this node obtained the copy.
        is_origin: True for the source's own application-queue copy.
        ec: Encounter count carried by the copy — incremented every time the
            copy is transmitted, and inherited by the receiver's new copy
            (paper Fig. "Epidemic with EC" worked example).
        expiry: Absolute expiry time; ``NO_EXPIRY`` if the protocol assigns
            no TTL. Maintained by the protocol, enforced by the simulation.
        expiry_event: Handle of the scheduled expiry event (simulation-owned).
    """

    bundle: Bundle
    stored_at: float
    is_origin: bool = False
    ec: int = 0
    expiry: float = NO_EXPIRY
    expiry_event: Any = field(default=None, repr=False)
    #: Free-form per-copy protocol state (e.g. spray tokens). Travels with
    #: the node's copy, not with the bundle.
    meta: dict = field(default_factory=dict)

    @property
    def bid(self) -> BundleId:
        return self.bundle.bid

    def is_expired(self, now: float) -> bool:
        """True if the copy's TTL has run out at time ``now``."""
        return now >= self.expiry

    def remaining_ttl(self, now: float) -> float:
        """Seconds of TTL left (inf when no TTL is set)."""
        return self.expiry - now


def make_flow_bundles(
    flow: int, source: int, destination: int, count: int, created_at: float = 0.0
) -> list[Bundle]:
    """Create the ``count`` sequential bundles of one flow (seq 1..count)."""
    if count < 1:
        raise ValueError(f"a flow needs at least one bundle, got {count}")
    return [
        Bundle(
            bid=BundleId(flow=flow, seq=s),
            source=source,
            destination=destination,
            created_at=created_at,
        )
        for s in range(1, count + 1)
    ]
