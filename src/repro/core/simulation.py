"""The simulation driver: one run = one protocol × one trace × one workload.

Wiring: contacts become contact-start events on the DES engine; each spawns
a :class:`~repro.core.session.ContactSession` which schedules per-bundle
transfer completions. TTL expiries are first-class events so occupancy and
duplication integrals change at the *right* instant even when a node sits
idle. The run ends when every offered bundle is delivered (success — the
delay metric is that instant) or when the trace horizon is reached first
(failure — the paper records no delay, but delivery ratio, occupancy and
duplication still count).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.bundle import NO_EXPIRY, Bundle, BundleId, StoredBundle
from repro.core.metrics import MetricsCollector
from repro.core.node import Node
from repro.core.planner import PLANNERS, planner_names
from repro.core.policies import make_drop_policy
from repro.core.protocols.antipacket import AntiPacketProtocol
from repro.core.protocols.base import Protocol
from repro.core.protocols.registry import ProtocolConfig
from repro.core.results import RunResult
from repro.core.session import ContactSession, begin_contact, contact_bookkeeping
from repro.core.workload import Flow, total_offered
from repro.des.engine import Engine
from repro.des.event import PRIORITY_EARLY
from repro.des.rng import RngHub
from repro.faults import FaultSpec
from repro.mobility.contact import ContactTrace, zero_transfer_mask

#: Sweep-cell execution engines: the event simulator and the mean-field
#: surrogate (:mod:`repro.analytic.surrogate`).
ENGINES: tuple[str, ...] = ("des", "ode")

#: DES execution kernels: ``auto`` picks the SoA sweep kernel
#: (:mod:`repro.core.sweepkernel`) when the run is eligible and falls back
#: to the event loop otherwise; ``event``/``soa`` pin one tier.
KERNELS: tuple[str, ...] = ("auto", "event", "soa")


@dataclass(frozen=True)
class SimulationConfig:
    """Mechanism parameters common to every protocol (paper Section IV).

    Attributes:
        buffer_capacity: Relay buffer slots per node (paper: 10 bundles).
            Either one scalar for a homogeneous population or a sequence
            with one entry per node (heterogeneous devices — e.g. a few
            high-capacity ferries among constrained sensors).
        bundle_tx_time: Seconds to transmit one bundle (paper: 100 s —
            bundles are large; a contact of duration d carries
            floor(d / bundle_tx_time) bundles). Scalar, or one entry per
            node; a contact between two nodes moves bundles at the pace of
            the *slower* radio (``pair_tx_time``).
        drop_policy: Registered buffer drop policy consulted when a full
            relay buffer receives a new copy (see
            :mod:`repro.core.policies`). The default ``reject`` reproduces
            the historical drop-tail-refusal behaviour exactly. Protocols
            with an intrinsic eviction rule (EC, EC+TTL) keep their own
            rule regardless of this knob.
        record_occupancy: Record the per-change ``(time, fill)`` occupancy
            series on the metrics collector (and in the
            :class:`~repro.core.results.RunResult`). Off by default —
            sweeps normally consume only the distilled scalars and should
            not pay an append per buffer delta.
        engine: Which engine executes a sweep cell: ``"des"`` (this
            event-driven simulator) or ``"ode"`` (the mean-field surrogate,
            :func:`repro.analytic.surrogate.surrogate_run`). The sweep
            layer dispatches on this; :class:`Simulation` itself always
            runs event-driven.
        kernel: Which DES execution kernel carries the run: ``"event"``
            (the event heap, always available), ``"soa"`` (the
            array-resident contact-sweep kernel,
            :mod:`repro.core.sweepkernel` — encounter-inert protocol
            populations without faults only, byte-identical results), or
            ``"auto"`` (default: the kernel when eligible, the event loop
            otherwise). ``"soa"`` fails fast — at config construction for
            statically-known conflicts (ODE engine, active faults), at
            :meth:`Simulation.run` for population-dependent ones.
        faults: Optional disruption model (:class:`repro.faults.FaultSpec`):
            node churn with reboot state loss, lossy links, and per-bundle
            transfer failure. ``None`` (or a trivial, all-defaults spec)
            keeps the perfectly-reliable world and costs nothing — the run
            is byte-identical to one without fault support.
    """

    buffer_capacity: int | tuple[int, ...] = 10
    bundle_tx_time: float | tuple[float, ...] = 100.0
    drop_policy: str = "reject"
    record_occupancy: bool = False
    engine: str = "des"
    kernel: str = "auto"
    faults: FaultSpec | None = None

    def __post_init__(self) -> None:
        if isinstance(self.buffer_capacity, (list, tuple)):
            caps = tuple(int(c) for c in self.buffer_capacity)
            if not caps:
                raise ValueError("per-node buffer_capacity must be non-empty")
            object.__setattr__(self, "buffer_capacity", caps)
            if any(c < 1 for c in caps):
                raise ValueError("every buffer_capacity must be >= 1")
        elif self.buffer_capacity < 1:
            raise ValueError("buffer_capacity must be >= 1")
        if isinstance(self.bundle_tx_time, (list, tuple)):
            times = tuple(float(t) for t in self.bundle_tx_time)
            if not times:
                raise ValueError("per-node bundle_tx_time must be non-empty")
            object.__setattr__(self, "bundle_tx_time", times)
            if any(t <= 0 for t in times):
                raise ValueError("every bundle_tx_time must be positive")
        elif self.bundle_tx_time <= 0:
            raise ValueError("bundle_tx_time must be positive")
        from repro.core.policies import drop_policy_names

        if self.drop_policy not in drop_policy_names():
            raise ValueError(
                f"unknown drop policy {self.drop_policy!r}; "
                f"available: {', '.join(drop_policy_names())}"
            )
        if self.engine not in ENGINES:
            raise ValueError(
                f"unknown engine {self.engine!r}; available: {', '.join(ENGINES)}"
            )
        if self.kernel not in KERNELS:
            raise ValueError(
                f"unknown kernel {self.kernel!r}; available: {', '.join(KERNELS)}"
            )
        if self.faults is not None and not isinstance(self.faults, FaultSpec):
            raise ValueError(
                f"faults must be a FaultSpec or None, got {type(self.faults).__name__}"
            )
        if self.kernel == "soa":
            if self.engine != "des":
                raise ValueError(
                    "kernel='soa' selects a DES execution tier; it cannot be "
                    f"combined with engine={self.engine!r} — use kernel='auto' "
                    "or engine='des'"
                )
            if self.active_faults is not None:
                raise ValueError(
                    "kernel='soa' cannot run under fault injection: the sweep "
                    "kernel has no crash/recovery or link-severance machinery "
                    "— run faulted cells with kernel='auto' or 'event', or "
                    "clear the fault spec"
                )

    @property
    def active_faults(self) -> FaultSpec | None:
        """The fault spec when it actually injects something, else None.

        A trivial (all-defaults) spec is indistinguishable from no spec:
        callers gate the entire disruption machinery on this so fault
        support costs nothing when faults are off.
        """
        if self.faults is None or self.faults.is_trivial:
            return None
        return self.faults

    # ----------------------------------------------------- per-node accessors

    def validate_population(self, num_nodes: int) -> None:
        """Check per-node sequences match the population size.

        Raises:
            ValueError: if a per-node sequence has the wrong length.
        """
        for label, value in (
            ("buffer_capacity", self.buffer_capacity),
            ("bundle_tx_time", self.bundle_tx_time),
        ):
            if isinstance(value, tuple) and len(value) != num_nodes:
                raise ValueError(
                    f"per-node {label} has {len(value)} entries "
                    f"for a {num_nodes}-node population"
                )

    def capacity_for(self, node_id: int) -> int:
        """Relay buffer slots of ``node_id``."""
        if isinstance(self.buffer_capacity, tuple):
            return self.buffer_capacity[node_id]
        return self.buffer_capacity

    def capacities(self, num_nodes: int) -> tuple[int, ...]:
        """Per-node relay capacities for a ``num_nodes`` population."""
        if isinstance(self.buffer_capacity, tuple):
            return self.buffer_capacity
        return (self.buffer_capacity,) * num_nodes

    def tx_time_for(self, node_id: int) -> float:
        """Seconds ``node_id``'s radio needs to transmit one bundle."""
        if isinstance(self.bundle_tx_time, tuple):
            return self.bundle_tx_time[node_id]
        return self.bundle_tx_time

    def pair_tx_time(self, a: int, b: int) -> float:
        """Per-bundle transfer time of the (a, b) link: the slower radio."""
        return max(self.tx_time_for(a), self.tx_time_for(b))


class Simulation:
    """A single, deterministic simulation run."""

    def __init__(
        self,
        trace: ContactTrace,
        protocol_config: ProtocolConfig,
        flows: list[Flow],
        *,
        config: SimulationConfig | None = None,
        seed: int = 0,
        planner: str = "incremental",
        record_occupancy: bool = False,
        batch_degenerate: bool = True,
        fault_seed: int | None = None,
    ) -> None:
        if not flows:
            raise ValueError("at least one flow is required")
        for f in flows:
            if not (0 <= f.source < trace.num_nodes and 0 <= f.destination < trace.num_nodes):
                raise ValueError(f"flow {f} references nodes outside the trace population")
        if planner not in PLANNERS:
            raise ValueError(
                f"unknown planner {planner!r}; available: {', '.join(planner_names())}"
            )
        self.trace = trace
        self.protocol_config = protocol_config
        self.flows = flows
        self.config = config or SimulationConfig()
        self.config.validate_population(trace.num_nodes)
        self.seed = seed
        self.engine = Engine()
        #: session-planner factory — ``incremental`` (production) and
        #: ``reference`` (the slow oracle) are bit-identical by contract
        self._planner_factory = PLANNERS[planner]
        #: optional observer called as ``hook(now, sender_id, receiver_id,
        #: bid)`` whenever a session plans a transfer (planner-equivalence
        #: tests record the pick sequence through this)
        self.on_transfer_planned = None
        #: copy-population observer installed by the SoA sweep kernel for
        #: the duration of a kernel run (``copy_added``/``copy_removed``/
        #: ``delivered`` hooks); None on the event path, costing one
        #: is-None test per state change
        self._state_observer = None
        #: :meth:`link_tx_time` fast path: the constant per-link transfer
        #: time when the population is homogeneous, else None
        self._uniform_tx_time = (
            None
            if isinstance(self.config.bundle_tx_time, tuple)
            else float(self.config.bundle_tx_time)
        )
        self.metrics = MetricsCollector(
            trace.num_nodes,
            self.config.capacities(trace.num_nodes),
            record_occupancy=record_occupancy or self.config.record_occupancy,
        )
        #: per-pair ``(epoch_a, epoch_b)`` memo of the knowledge layer —
        #: the epochs at the end of each pair's last control swap (see
        #: :func:`repro.core.knowledge.exchange_control`)
        self.pair_knowledge: dict[tuple[int, int], tuple[int, int]] = {}
        #: trace-layer degenerate-encounter batching (see :meth:`run`);
        #: the knob exists so equivalence tests can force the per-event
        #: reference path
        self._batch_degenerate = batch_degenerate
        #: True while encounter bookkeeping is deferred to the end-of-run
        #: batched flush (encounter-inert protocol populations only)
        self._defer_history = False
        #: degenerate encounters processed without their own event (chunked
        #: or flushed); ``engine.events_fired + batched_encounters`` equals
        #: the event count of the unbatched reference schedule exactly
        self.batched_encounters = 0
        self._chunk_horizon = math.inf
        self._chunk_control_kind = ""
        hub = RngHub(seed)
        self.nodes: list[Node] = []
        for i in range(trace.num_nodes):
            # Lazy streams: the generators (and their SeedSequence math)
            # are only built if the policy/protocol actually draws, and a
            # materialised stream is identical to the eager one.
            node = Node(
                i,
                self.config.capacity_for(i),
                drop_policy=make_drop_policy(
                    self.config.drop_policy, rng=hub.lazy_stream("drop-policy", i)
                ),
            )
            node.protocol = protocol_config.build(
                node, self, hub.lazy_stream("protocol", i)
            )
            self.nodes.append(node)
        self._offered = total_offered(flows)
        self._delivered_total = 0
        self._ran = False
        # ---------------------------------------------------- disruption model
        #: the active fault spec, or None for the perfectly-reliable world
        #: (a trivial spec deactivates the machinery entirely)
        self.faults = self.config.active_faults
        if self.faults is not None:
            #: fault randomness is decoupled from the run seed so sweep
            #: layers can hold the fault environment fixed (common random
            #: numbers) while the protocol/run seed varies
            self._fault_hub = RngHub(seed if fault_seed is None else fault_seed)
            self._node_down = [False] * trace.num_nodes
            #: lifetime crash count per node — sessions capture the pair's
            #: epochs at contact start and tear down on any change
            self._crash_count = [0] * trace.num_nodes
            #: per-node ids the node knew were delivered before a knowledge
            #: wipe — re-accepting one of these counts as a re-infection
            self._wiped_known: dict[int, set[BundleId]] = {}
            self._transfer_fault_rng = (
                self._fault_hub.stream("transfer-failure")
                if self.faults.transfer_failure_prob > 0.0
                else None
            )
            self._contact_dropped = None
            self._contact_severed_at = None

    # ---------------------------------------------------------------- services
    # (the SimulationServices surface protocols and sessions rely on)

    @property
    def now(self) -> float:
        return self.engine.now

    def link_tx_time(self, a: int, b: int) -> float:
        """Per-bundle transfer time of the (a, b) link (cached fast path)."""
        uniform = self._uniform_tx_time
        if uniform is not None:
            return uniform
        return self.config.pair_tx_time(a, b)

    def remove_copy(self, node: Node, bid: BundleId, reason: str) -> None:
        """Remove a live copy with full metric/counter bookkeeping."""
        was_relay = bid in node.relay
        sb = node.remove_copy(bid)
        observer = self._state_observer
        if observer is not None:
            observer.copy_removed(node, sb)
        self._cancel_expiry(sb)
        if was_relay:
            self.metrics.on_buffer_delta(-1, self.now)
        self.metrics.on_copy_delta(bid, -1, self.now)
        self.metrics.on_removal(reason)
        if reason == "expired":
            node.counters.expiries += 1
        elif reason == "immunized":
            node.counters.immunized_purges += 1

    def evict_copy(self, node: Node, bid: BundleId, policy: str) -> None:
        """Evict a relay copy under buffer pressure, attributed to ``policy``.

        ``policy`` is the drop-policy name charged in the per-policy drop
        counters — the node's configured policy for the base protocol path,
        ``"max-ec"`` for the EC protocols' intrinsic rule.
        """
        node.counters.evictions += 1
        self.metrics.on_policy_drop(policy)
        self.remove_copy(node, bid, reason="evicted")

    def set_expiry(self, node: Node, sb: StoredBundle, expiry: float) -> None:
        """(Re)arm a copy's TTL expiry event."""
        self._cancel_expiry(sb)
        sb.expiry = expiry
        if math.isinf(expiry):
            return
        if expiry <= self.now:
            # Zero/negative TTL: the copy dies right away, but via an event
            # so ordering with the current action stays well-defined.
            expiry = self.now
        sb.expiry_event = self.engine.at(expiry, self._on_expiry, node, sb)

    def count_control_units(self, node: Node, kind: str, units: int) -> None:
        self.metrics.on_control_units(kind, units)
        node.counters.control_units_sent += units

    def set_control_storage(self, node: Node, slots: float) -> None:
        """Set a node's stored-table footprint (fractional buffer slots)."""
        if slots < 0:
            raise ValueError("control storage cannot be negative")
        delta = slots - node.control_storage
        if delta:
            node.control_storage = slots
            self.metrics.on_control_storage_delta(delta, self.now)

    def deliver(
        self, receiver: Node, bundle: Bundle, now: float, via: int | None = None
    ) -> None:
        """Final delivery at the destination (``via`` = handing-over node)."""
        receiver.mark_delivered(bundle.bid, now)
        observer = self._state_observer
        if observer is not None:
            observer.delivered(receiver, bundle.bid)
        receiver.counters.bundles_delivered += 1
        self.metrics.on_delivered(bundle.bid, now, via=via)
        self.metrics.on_copy_delta(bundle.bid, +1, now)
        self._delivered_total += 1
        receiver.protocol.on_delivered(bundle, now)
        if self._delivered_total >= self._offered:
            # Success: stop after the current event completes. Halting here
            # replaces a stop-predicate evaluated before every event — the
            # run ends at the same event boundary either way.
            self.engine.halt()

    def store_received_copy(
        self,
        receiver: Node,
        bundle: Bundle,
        ec: int,
        now: float,
        sender_copy: StoredBundle | None = None,
    ) -> StoredBundle | None:
        """Run the receiver's buffer policy; account the stored copy."""
        sb = receiver.protocol.accept(bundle, ec, now, sender_copy=sender_copy)
        if sb is None:
            return None
        receiver.counters.bundles_received += 1
        self.metrics.on_buffer_delta(+1, now)
        self.metrics.on_copy_delta(bundle.bid, +1, now)
        observer = self._state_observer
        if observer is not None:
            observer.copy_added(receiver, sb)
        if self.faults is not None and self._wiped_known:
            wiped = self._wiped_known.get(receiver.id)
            if wiped and bundle.bid in wiped:
                # The node knew this bundle was delivered before a reboot
                # wiped that knowledge — it just got re-infected.
                wiped.discard(bundle.bid)
                self.metrics.churn.reinfections += 1
        return sb

    # ---------------------------------------------------------------- internals

    def _cancel_expiry(self, sb: StoredBundle) -> None:
        if sb.expiry_event is not None:
            self.engine.cancel(sb.expiry_event)
            sb.expiry_event = None
        sb.expiry = NO_EXPIRY

    def _on_expiry(self, node: Node, sb: StoredBundle) -> None:
        # The handle is cancelled on removal/renewal, so if we fire, the
        # copy should still be live — but guard against same-instant races.
        if node.get_copy(sb.bid) is not sb:
            return
        if not sb.is_expired(self.now):
            return
        self.remove_copy(node, sb.bid, reason="expired")

    def _begin_contact(self, contact) -> None:
        begin_contact(self, contact)

    def _degenerate_contact(self, contact) -> None:
        # Pre-classified zero-transfer encounter: bookkeeping layers only,
        # no link-budget recomputation and no session machinery.
        nodes = self.nodes
        contact_bookkeeping(self, nodes[contact.a], nodes[contact.b], contact.start)

    def _antipacket_native(self) -> bool:
        """True when every node runs the unmodified anti-packet substrate.

        The degenerate-chunk fast path inlines the substrate's control
        hooks, so it is only safe when none of them is overridden —
        checked by method identity, which any subclass customisation
        (different payloads, unit costs, or merge semantics) breaks.
        """
        if not self.nodes:
            return False
        proto_cls = type(self.nodes[0].protocol)
        return (
            issubclass(proto_cls, AntiPacketProtocol)
            and proto_cls.control_payload is AntiPacketProtocol.control_payload
            and proto_cls.receive_control is AntiPacketProtocol.receive_control
            and proto_cls.control_units is AntiPacketProtocol.control_units
            and proto_cls.learn_delivered is AntiPacketProtocol.learn_delivered
            and proto_cls.on_encounter_started is Protocol.on_encounter_started
            and all(type(node.protocol) is proto_cls for node in self.nodes)
        )

    def _degenerate_chunk(self, lo: int, hi: int) -> None:
        """Process a run of consecutive degenerate contacts in one event.

        Selected by :meth:`run` only for homogeneous populations of the
        *native* anti-packet substrate (method-identity-checked), whose
        zero-transfer contact processing is exactly: history, i-list
        accounting, and an epoch-gated i-list swap. The chunk walks the
        contacts ``lo..hi`` in trace order, advancing the engine clock to
        each contact's start so purge-time metric integrals stay exact,
        and stops at the first contact that would fire *after* the next
        pending event (or the horizon) — it then re-parks itself at that
        contact's start with ``PRIORITY_EARLY``, preserving the original
        contact-before-completion ordering at equal timestamps. Everything
        in between needs no event round-trip: by construction no other
        event fires inside the processed span, so the per-contact
        bookkeeping sequence (and therefore every metric) is bit-identical
        to one event per contact.
        """
        contacts = self.trace.contacts
        engine = self.engine
        nodes = self.nodes
        memo = self.pair_knowledge
        signaling = self.metrics.signaling
        kind = self._chunk_control_kind
        # The bound is loop-invariant: chunk processing never schedules new
        # events, and the native substrate arms no expiries so its purges
        # never cancel one — the pending-event horizon cannot move.
        bound = engine.next_event_time()
        if bound > self._chunk_horizon:
            bound = self._chunk_horizon
        kind_units = 0
        processed = 0
        i = lo
        while i <= hi:
            contact = contacts[i]
            start = contact.start
            if start > bound:
                engine.at(
                    start, self._degenerate_chunk, i, hi, priority=PRIORITY_EARLY
                )
                break
            engine.advance_clock(start)
            node_a = nodes[contact.a]
            node_b = nodes[contact.b]
            # encounter layer, note_encounter inlined (EncounterHistory
            # semantics: bursts within the rendezvous gap keep measuring
            # from the burst start)
            history = node_a.history
            history.encounter_count += 1
            last = history.last_encounter_time
            if last is None:
                history.last_encounter_time = start
            else:
                gap = start - last
                if gap > history.min_rendezvous_gap:
                    history.last_interval = gap
                    history.last_encounter_time = start
            history = node_b.history
            history.encounter_count += 1
            last = history.last_encounter_time
            if last is None:
                history.last_encounter_time = start
            else:
                gap = start - last
                if gap > history.min_rendezvous_gap:
                    history.last_interval = gap
                    history.last_encounter_time = start
            store_a = node_a.protocol.knowledge
            store_b = node_b.protocol.knowledge
            known_a = store_a._known
            known_b = store_b._known
            # pre-exchange unit charges (the full i-list travels each way)
            units_a = len(known_a)
            if units_a:
                kind_units += units_a
                node_a.counters.control_units_sent += units_a
            units_b = len(known_b)
            if units_b:
                kind_units += units_b
                node_b.counters.control_units_sent += units_b
            # epoch-gated swap; passing the live sets is equivalent to the
            # pre-exchange snapshots: the first merge only adds ids the
            # second direction's receiver already holds. The subset probe
            # (merge's no-op fast path) is inlined so the steady state —
            # both sides already converged — costs no Python call.
            epochs = (store_a.epoch, store_b.epoch)
            pair = (contact.a, contact.b)
            if memo.get(pair) != epochs:
                if units_a and not (units_a <= units_b and known_a <= known_b):
                    node_b.protocol.learn_delivered(known_a, start)
                if units_b and not (len(known_a) >= units_b and known_b <= known_a):
                    node_a.protocol.learn_delivered(known_b, start)
                memo[pair] = (store_a.epoch, store_b.epoch)
            node_a.counters.control_units_sent += 1
            node_b.counters.control_units_sent += 1
            processed += 1
            i += 1
        if kind_units:
            signaling.add(kind, kind_units)
        signaling.summary_vector += 2 * processed
        # every invocation is itself one fired event standing in for one
        # contact; the rest were spared an event round-trip
        if processed > 1:
            self.batched_encounters += processed - 1

    def _flush_deferred_bookkeeping(
        self, zero_mask, end_time: float, *, arrays=None
    ) -> None:
        """Batched bookkeeping for an encounter-inert protocol population.

        Replays, in one pass, everything the per-event path would have
        done for contacts that started by ``end_time``: encounter history
        for *every* fired contact (identical mutation sequence — the trace
        is processed in the same ``(start, end, a, b)`` order the event
        queue fires it, and ``note_encounter`` depends only on the passed
        times), and the per-contact signaling accounting for the
        degenerate contacts that were never scheduled. Contacts past
        ``end_time`` are excluded exactly as the event loop would have
        left them unfired: an early-delivery halt happens in a
        transfer-completion event, which by bulk-load seq ordering fires
        *after* every contact event of the same timestamp.
        """
        starts, _ends, a_ids, b_ids = (
            arrays if arrays is not None else self.trace.contact_arrays()
        )
        fired = int(np.searchsorted(starts, end_time, side="right"))
        nodes = self.nodes
        if fired:
            self._replay_encounter_history(a_ids[:fired], b_ids[:fired])
        zmask = zero_mask[:fired]
        batched = int(zmask.sum())
        if batched:
            self.batched_encounters += batched
            self.metrics.on_batched_contacts(batched)
            counts = np.bincount(a_ids[:fired][zmask], minlength=len(nodes))
            counts += np.bincount(b_ids[:fired][zmask], minlength=len(nodes))
            for node, encounters in zip(nodes, counts.tolist(), strict=True):
                if encounters:
                    node.counters.control_units_sent += encounters
        self._defer_history = False

    def _replay_encounter_history(self, a_ids, b_ids) -> None:
        """Bulk-replay ``note_encounter`` for every fired contact endpoint.

        Bit-exact replacement for calling ``note_encounter(c.start)`` on
        both endpoints of each fired contact in trace order. Each node's
        chronological encounter stream comes from the trace's cached
        :meth:`~repro.mobility.contact.ContactTrace.encounter_streams`
        (stable sort of the interleaved endpoint columns, a then b at
        equal contact rank — built once per immutable trace, not per
        run); a run that halts early consumes each node's prefix of that
        stream, whose length is exactly the node's endpoint count among
        the fired contacts because times ascend within a node's stream.
        Encounters of *different* nodes commute, so the global
        interleaving is irrelevant.

        The per-encounter recurrence ("advance the rendezvous anchor when
        the gap from it exceeds the debounce threshold") collapses: at any
        encounter whose gap from the *previous encounter* already exceeds
        the threshold, the anchor provably resets to that encounter —
        whatever the earlier anchor was, it is at most the previous
        encounter time, so the advance fires and lands exactly there. The
        final state therefore depends only on the (typically short) run
        after the node's last such reset, plus — when that run never
        advances — one preceding inter-reset chunk to recover the anchor
        the reset measured its interval from. Both walks execute the
        recurrence's own float subtractions, so results are bit-identical
        to calling ``note_encounter`` per contact. Nodes carrying
        pre-existing history state fall back to the full recurrence.
        """
        nodes = self.nodes
        n = len(nodes)
        offsets, ts, nid_tail, same, dts = self.trace.encounter_streams()
        counts = np.bincount(a_ids, minlength=n)
        counts += np.bincount(b_ids, minlength=n)
        thresholds = np.array(
            [node.history.min_rendezvous_gap for node in nodes], dtype=np.float64
        )
        # reset flags are valid for the fired prefixes even though they are
        # computed over the full stream: a flag at position p < hi compares
        # ts[p] to ts[p-1], both inside the prefix (times ascend per node)
        reset = same & (dts > thresholds[nid_tail])
        reset_pos = np.flatnonzero(reset) + 1
        resets_below_hi = np.searchsorted(reset_pos, offsets[:-1] + counts).tolist()
        reset_pos_l = reset_pos.tolist()
        counts_l = counts.tolist()
        offsets_l = offsets.tolist()
        # only the short post-reset tails are walked in Python, so convert
        # slices on demand instead of materializing all 2·fired floats
        ts_item = ts.item
        for nid, node in enumerate(nodes):
            k = counts_l[nid]
            if not k:
                continue
            history = node.history
            history.encounter_count += k
            lo = offsets_l[nid]
            gap_min = history.min_rendezvous_gap
            last = history.last_encounter_time
            if last is not None:
                # resumed history: full recurrence (no fresh-start reset)
                interval = history.last_interval
                for t in ts[lo : lo + k].tolist():
                    gap = t - last
                    if gap > gap_min:
                        interval = gap
                        last = t
                history.last_encounter_time = last
                history.last_interval = interval
                continue
            hi = lo + k
            j = resets_below_hi[nid]
            r = reset_pos_l[j - 1] if j else 0
            if r <= lo:
                r = r_prev = lo
            else:
                r_prev = reset_pos_l[j - 2] if j > 1 else 0
                if r_prev < lo:
                    r_prev = lo
            # recurrence over the post-reset tail, anchored exactly at t_r
            last = ts_item(r)
            interval = None
            for t in ts[r + 1 : hi].tolist():
                gap = t - last
                if gap > gap_min:
                    interval = gap
                    last = t
            history.last_encounter_time = last
            if interval is not None:
                history.last_interval = interval
            elif r > lo:
                # tail never advanced, so the final interval is the one the
                # reset at r set: t_r minus the anchor the preceding chunk
                # ended on
                anchor = ts_item(r_prev)
                for t in ts[r_prev + 1 : r].tolist():
                    gap = t - anchor
                    if gap > gap_min:
                        anchor = t
                history.last_interval = ts_item(r) - anchor

    # ----------------------------------------------------------------- faults
    # (active only when self.faults is not None; see repro.faults)

    def _transfer_failed(self) -> bool:
        """Draw the i.i.d. per-bundle transfer-failure coin."""
        rng = self._transfer_fault_rng
        return rng is not None and rng.random() < self.faults.transfer_failure_prob

    def _schedule_faults(self, horizon: float) -> None:
        """Turn the churn model into crash/recover events on the engine.

        Per node, the sampled exponential up/down process and the explicit
        ``downtime_schedule`` entries are merged into a union of down
        intervals, then scheduled as first-class events. Scheduling happens
        *before* the contact bulk-load, so at equal timestamps a crash
        fires before the contact it should kill — deterministically.
        """
        spec = self.faults
        intervals: dict[int, list[list[float]]] = {}
        for node_id, down_at, up_at in spec.downtime_schedule:
            if node_id >= self.trace.num_nodes:
                raise ValueError(
                    f"downtime_schedule references node {node_id} in a "
                    f"{self.trace.num_nodes}-node population"
                )
            intervals.setdefault(node_id, []).append([down_at, up_at])
        if spec.churn_rate > 0.0:
            mean_uptime = 1.0 / spec.churn_rate
            for i in range(self.trace.num_nodes):
                rng = self._fault_hub.stream("churn", i)
                t = 0.0
                while True:
                    t += rng.exponential(mean_uptime)
                    if t >= horizon:
                        break
                    down_at = t
                    t += rng.exponential(spec.mean_downtime)
                    intervals.setdefault(i, []).append([down_at, t])
        for node_id in sorted(intervals):
            spans = sorted(intervals[node_id])
            merged = [spans[0]]
            for span in spans[1:]:
                if span[0] <= merged[-1][1]:
                    if span[1] > merged[-1][1]:
                        merged[-1][1] = span[1]
                else:
                    merged.append(span)
            for down_at, up_at in merged:
                if down_at >= horizon:
                    continue
                self.engine.at(down_at, self._on_crash, node_id)
                if up_at < horizon:
                    self.engine.at(up_at, self._on_recover, node_id)

    def _draw_link_faults(self, arrays=None) -> None:
        """Pre-draw per-contact link faults in trace order (one pass each).

        Drawing against the trace index — not the executed schedule —
        keeps the streams independent of protocol behaviour, so every
        protocol at the same fault seed faces the identical environment.
        """
        spec = self.faults
        n = len(self.trace.contacts)
        if spec.contact_drop_prob > 0.0:
            rng = self._fault_hub.stream("link-drop")
            self._contact_dropped = rng.random(n) < spec.contact_drop_prob
        if spec.interrupt_prob > 0.0:
            rng = self._fault_hub.stream("link-interrupt")
            flags = rng.random(n) < spec.interrupt_prob
            fracs = rng.random(n)
            starts, ends, _a, _b = (
                arrays if arrays is not None else self.trace.contact_arrays()
            )
            self._contact_severed_at = np.where(
                flags, starts + fracs * (ends - starts), np.inf
            )

    def _on_crash(self, node_id: int) -> None:
        if self._node_down[node_id]:
            return
        self._node_down[node_id] = True
        self._crash_count[node_id] += 1
        now = self.now
        self.metrics.on_node_down(now)
        spec = self.faults
        node = self.nodes[node_id]
        if spec.wipes_buffer:
            # All live copies (origin and relay) die at the crash instant;
            # per-copy removals at one timestamp coalesce into a single
            # occupancy-series step, so integrals stay exact. The delivered
            # log is not a buffer and survives: delivered stays delivered.
            for sb in node.sendable():
                self.remove_copy(node, sb.bid, reason="crashed")
        if spec.wipes_knowledge:
            forgotten = node.protocol.on_knowledge_wiped(now)
            if forgotten:
                self._wiped_known.setdefault(node_id, set()).update(forgotten)

    def _on_recover(self, node_id: int) -> None:
        if not self._node_down[node_id]:
            return
        self._node_down[node_id] = False
        self.metrics.on_node_up(self.now)

    def _begin_contact_faulted(self, idx: int) -> None:
        """Contact start under the disruption model (reference schedule).

        The drop coin erases the contact outright; a down endpoint misses
        it (no bookkeeping — the radios never met). Surviving contacts run
        the normal layers, plus a pre-drawn mid-contact severance event and
        the crash-epoch stamp that tears the session down if an endpoint
        crashes mid-encounter.
        """
        contact = self.trace.contacts[idx]
        dropped = self._contact_dropped
        if dropped is not None and dropped[idx]:
            self.metrics.churn.dropped_contacts += 1
            return
        if self._node_down[contact.a] or self._node_down[contact.b]:
            self.metrics.churn.missed_contacts += 1
            return
        now = contact.start
        nodes = self.nodes
        contact_bookkeeping(self, nodes[contact.a], nodes[contact.b], now)
        tx_time, budget = ContactSession.link_budget(self, contact)
        if not budget:
            return
        session = ContactSession(self, contact, tx_time=tx_time, budget=budget)
        session.crash_epoch = (
            self._crash_count[contact.a],
            self._crash_count[contact.b],
        )
        severed_at = self._contact_severed_at
        if severed_at is not None:
            t = float(severed_at[idx])
            if t < contact.end:
                # Scheduled before the first transfer completion, so at an
                # equal timestamp the severance wins deterministically.
                self.engine.at(t, session._on_severed)
        session._schedule_next(now)

    def _inject_flow(self, flow: Flow) -> None:
        now = self.engine.now
        source = self.nodes[flow.source]
        for seq in range(1, flow.num_bundles + 1):
            bundle = Bundle(
                bid=BundleId(flow=flow.flow_id, seq=seq),
                source=flow.source,
                destination=flow.destination,
                created_at=now,
            )
            sb = source.add_origin(bundle, now)
            self.metrics.on_bundle_born(bundle.bid, now)
            source.protocol.on_bundle_created(sb, now)
            observer = self._state_observer
            if observer is not None:
                observer.copy_added(source, sb)

    def _all_delivered(self) -> bool:
        return self._delivered_total >= self._offered

    # ------------------------------------------------------------------- run

    def run(self) -> RunResult:
        """Execute the run and return its :class:`RunResult`.

        A simulation object is single-use; running twice raises.
        """
        if self._ran:
            raise RuntimeError("Simulation objects are single-use; build a new one")
        self._ran = True
        if self.trace.horizon is None:
            raise ValueError(
                "trace has no horizon; ContactTrace normally derives one from "
                "the last contact end — pass horizon= explicitly for this trace"
            )
        horizon = self.trace.horizon
        for flow in self.flows:
            if flow.created_at > horizon:
                raise ValueError(
                    f"flow {flow.flow_id} is created at t={flow.created_at}, "
                    f"after the trace horizon t={horizon}: its bundles would "
                    "never be offered yet still count against the delivery "
                    "ratio — extend the trace or move the flow earlier"
                )
        if self.config.kernel != "event":
            from repro.core.sweepkernel import SweepKernel, kernel_unsupported_reason

            reason = kernel_unsupported_reason(self)
            if reason is None:
                # The SoA tier owns the whole run (including flow
                # injection — seq ordering must be established under its
                # calendar) and produces a byte-identical RunResult.
                return SweepKernel(self).run(horizon)
            if self.config.kernel == "soa":
                raise ValueError(
                    f"kernel='soa' cannot execute this run: {reason}; use "
                    "kernel='auto' (event fallback) or kernel='event'"
                )
        for flow in self.flows:
            if flow.created_at == 0.0:
                self._inject_flow(flow)
            else:
                self.engine.at(flow.created_at, self._inject_flow, flow)
        # The trace is time-sorted (ContactTrace sorts on construction), so
        # the whole contact schedule bulk-loads in O(n) — no per-contact
        # heap push before t=0. Sessions are constructed when their contact
        # actually begins: a run that delivers early never pays for the
        # contacts behind the stop point. Degenerate encounters — contacts
        # whose duration admits zero transfers, the majority in dense
        # traces — are pre-classified in one vectorized pass at the trace
        # layer: control-bearing protocols get a slimmer bookkeeping-only
        # event (no link-budget recomputation, no session gate), and an
        # encounter-inert population skips their events entirely in favour
        # of one batched flush after the run.
        contacts = self.trace.contacts
        # one columnar materialization per run, shared by the degenerate
        # pre-classification, the link-fault draw, and the deferred flush
        arrays = self.trace.contact_arrays() if contacts else None
        if self.faults is not None:
            # Disruption model: crash/recover events first (so a crash at a
            # contact's start time fires before the contact), pre-drawn
            # link faults, and the per-event reference schedule — faulted
            # populations are ineligible for degenerate-encounter batching
            # (a "degenerate" contact can still be missed or dropped, and
            # chunk bookkeeping cannot see downtime).
            self._schedule_faults(horizon)
            self._draw_link_faults(arrays)
            self.engine.schedule_sorted(
                (contact.start, self._begin_contact_faulted, (i,))
                for i, contact in enumerate(contacts)
            )
            self.engine.run(until=horizon)
            return self._build_result()
        zero_mask = None
        if self._batch_degenerate and contacts:
            zero_mask = zero_transfer_mask(
                self.trace, self.config.bundle_tx_time, arrays=arrays
            )
            if not zero_mask.any():
                zero_mask = None
        if zero_mask is None:
            self.engine.schedule_sorted(
                (contact.start, self._begin_contact, (contact,))
                for contact in contacts
            )
        elif all(node.protocol.encounter_inert for node in self.nodes):
            self._defer_history = True
            zero_list = zero_mask.tolist()
            self.engine.schedule_sorted(
                (contact.start, self._begin_contact, (contact,))
                for contact, degenerate in zip(contacts, zero_list, strict=True)
                if not degenerate
            )
        elif self._antipacket_native():
            # Native anti-packet substrate: maximal runs of consecutive
            # degenerate contacts become one chunk event each, processed
            # in-order between the surrounding events (the chunk re-parks
            # itself whenever another event intervenes). Scheduling the
            # chunk at the run's head position keeps the bulk-load seq
            # ordering — and with it every equal-timestamp tie-break —
            # identical to the one-event-per-contact schedule.
            self._chunk_horizon = horizon
            self._chunk_control_kind = self.nodes[0].protocol.control_kind
            zero_list = zero_mask.tolist()
            begin = self._begin_contact
            chunk = self._degenerate_chunk
            items: list[tuple[float, object, tuple]] = []
            i = 0
            total = len(contacts)
            while i < total:
                if zero_list[i]:
                    j = i
                    while j + 1 < total and zero_list[j + 1]:
                        j += 1
                    items.append((contacts[i].start, chunk, (i, j)))
                    i = j + 1
                else:
                    items.append((contacts[i].start, begin, (contacts[i],)))
                    i += 1
            self.engine.schedule_sorted(items)
        else:
            begin = self._begin_contact
            degen = self._degenerate_contact
            zero_list = zero_mask.tolist()
            self.engine.schedule_sorted(
                (contact.start, degen if degenerate else begin, (contact,))
                for contact, degenerate in zip(contacts, zero_list, strict=True)
            )
        self.engine.run(until=horizon)
        if self._defer_history:
            self._flush_deferred_bookkeeping(zero_mask, self.engine.now, arrays=arrays)
        return self._build_result()

    def _build_result(self) -> RunResult:
        end_time = self.engine.now
        success = self._all_delivered()
        delay = self.metrics.completion_time(self._offered) if success else None
        flow0 = self.flows[0]
        removals = {
            "evicted": self.metrics.removals.evicted,
            "expired": self.metrics.removals.expired,
            "immunized": self.metrics.removals.immunized,
            "ec_aged_out": self.metrics.removals.ec_aged_out,
        }
        churn: dict[str, float] = {}
        if self.faults is not None:
            # Faulted runs (only) carry the churn block and the crashed
            # removal reason — unfaulted results stay byte-identical to
            # the pre-fault-support format.
            removals["crashed"] = self.metrics.removals.crashed
            c = self.metrics.churn
            churn = {
                "crashes": c.crashes,
                "recoveries": c.recoveries,
                "missed_contacts": c.missed_contacts,
                "dropped_contacts": c.dropped_contacts,
                "interrupted_transfers": c.interrupted_transfers,
                "failed_transfers": c.failed_transfers,
                "reinfections": c.reinfections,
                "downtime": self.metrics.downtime(end_time),
                "mean_nodes_down": self.metrics.mean_nodes_down(end_time),
            }
        return RunResult(
            protocol=self.protocol_config.protocol_name,
            protocol_label=self.protocol_config.label,
            trace_name=self.trace.name,
            load=self._offered,
            seed=self.seed,
            source=flow0.source,
            destination=flow0.destination,
            delivered=self._delivered_total,
            delivery_ratio=self.metrics.delivery_ratio(self._offered),
            delay=delay,
            success=success,
            buffer_occupancy=self.metrics.mean_buffer_occupancy(end_time),
            peak_occupancy=self.metrics.peak_occupancy,
            duplication_rate=self.metrics.mean_duplication_rate(end_time),
            signaling={
                "anti_packet": self.metrics.signaling.anti_packet,
                "immunity_table": self.metrics.signaling.immunity_table,
                "summary_vector": self.metrics.signaling.summary_vector,
            },
            transmissions=self.metrics.bundle_transmissions,
            wasted_slots=self.metrics.wasted_slots,
            removals=removals,
            churn=churn,
            drops=dict(self.metrics.drops),
            end_time=end_time,
            occupancy_series=(
                tuple(self.metrics.occupancy_series)
                if self.metrics.record_occupancy
                else None
            ),
        )
