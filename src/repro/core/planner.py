"""Session transfer planning: which bundle crosses the link next.

The contact session asks its planner for the next transfer each time a slot
opens. The paper's candidate rule (session module docstring): lower-ID
sender preferred; within a sender, bundles destined for the peer first, then
oldest-stored first, ties broken by bundle id; a bundle is a candidate only
if it is unexpired, the receiver lacks it, neither side knows it was
delivered, the receiver can take it, and its P-Q coin has not failed this
contact.

Two interchangeable implementations:

* :class:`ReferencePlanner` — the specification: rebuild the full candidate
  list from both buffers every slot, filter, sort, take the head. O(k log k)
  per slot; trivially correct. Retained as the property-testing oracle.
* :class:`IncrementalPlanner` — the production planner: per direction it
  caches the sender's copies in candidate order and invalidates the cache by
  *store epoch* (a counter every buffer mutation bumps — see
  :attr:`repro.core.node.Node.store_epoch`). Per slot it walks the cached
  order and applies the volatile predicates (expiry, peer/knowledge state,
  receiver capacity — all functions of current node state, none consuming
  randomness) lazily until the first acceptable bundle, instead of
  re-filtering and re-sorting both buffers. Knowledge changes
  (anti-packets, immunity tables) never reorder candidates — they only veto
  them — so they are handled entirely by the lazy predicates.

Both planners call ``should_offer`` on the same bundles in the same order,
so probabilistic protocols (P-Q coins) consume their RNG stream
identically: the planners are bit-for-bit interchangeable, which
``tools/bench_sim.py --verify`` and the hypothesis equivalence suite
enforce.
"""

from __future__ import annotations

from collections.abc import Callable
from typing import TYPE_CHECKING

from repro.core.bundle import StoredBundle

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.node import Node
    from repro.core.session import ContactSession


def candidate_key(sb: StoredBundle, receiver_id: int) -> tuple[int, float, object]:
    """Candidate order: peer-destined first, then oldest stored, then id."""
    return (
        0 if sb.bundle.destination == receiver_id else 1,
        sb.stored_at,
        sb.bid,
    )


class ReferencePlanner:
    """The slow, obviously-correct planner (the property-test oracle)."""

    __slots__ = ("session",)

    def __init__(self, session: ContactSession) -> None:
        self.session = session

    def _candidates(
        self, sender: Node, receiver: Node, now: float
    ) -> list[StoredBundle]:
        session = self.session
        coin_rejected = session._coin_rejected or ()
        out: list[StoredBundle] = []
        for sb in sender.sendable():
            bid = sb.bid
            if sb.is_expired(now):
                continue  # expiry event fires at the same instant; skip now
            if (sender.id, bid) in coin_rejected:
                continue
            if receiver.has_copy(bid):
                continue
            if receiver.protocol.knows_delivered(bid) or sender.protocol.knows_delivered(bid):
                continue
            if not receiver.protocol.can_accept(sb.bundle, now):
                continue
            out.append(sb)
        rid = receiver.id
        out.sort(key=lambda sb: candidate_key(sb, rid))
        return out

    def plan(self, now: float) -> tuple[Node, Node, StoredBundle] | None:
        """Next transfer: lower-ID sender preferred, coin flips cached."""
        session = self.session
        for sender, receiver in (
            (session.node_a, session.node_b),
            (session.node_b, session.node_a),
        ):
            for sb in self._candidates(sender, receiver, now):
                if sender.protocol.should_offer(sb, receiver, now):
                    return sender, receiver, sb
                rejected = session._coin_rejected
                if rejected is None:
                    rejected = session._coin_rejected = set()
                rejected.add((sender.id, sb.bid))
        return None


class IncrementalPlanner:
    """Epoch-invalidated cached candidate order + lazy predicates."""

    __slots__ = ("session", "_epoch_ab", "_order_ab", "_epoch_ba", "_order_ba")

    def __init__(self, session: ContactSession) -> None:
        self.session = session
        # per-direction cache: the sender's copies in candidate order,
        # valid while the sender's store epoch is unchanged
        self._epoch_ab = -1
        self._order_ab: list[StoredBundle] = []
        self._epoch_ba = -1
        self._order_ba: list[StoredBundle] = []

    def _order(self, sender: Node, receiver: Node, forward: bool) -> list[StoredBundle]:
        epoch = sender.store_epoch
        if forward:
            if epoch != self._epoch_ab:
                self._order_ab = self._rebuild(sender, receiver)
                self._epoch_ab = epoch
            return self._order_ab
        if epoch != self._epoch_ba:
            self._order_ba = self._rebuild(sender, receiver)
            self._epoch_ba = epoch
        return self._order_ba

    _EMPTY: list[StoredBundle] = []

    @classmethod
    def _rebuild(cls, sender: Node, receiver: Node) -> list[StoredBundle]:
        origin = sender.origin
        relay = sender.relay.entries_view()
        if not origin:
            if not relay:
                return cls._EMPTY  # shared: planners only ever iterate it
            order = list(relay.values())
        elif not relay:
            order = list(origin.values())
        else:
            order = [*origin.values(), *relay.values()]
        if len(order) > 1:
            rid = receiver.id
            # candidate_key, inlined (one call per element saved)
            order.sort(
                key=lambda sb: (
                    0 if sb.bundle.destination == rid else 1,
                    sb.stored_at,
                    sb.bundle.bid,
                )
            )
        return order

    def _first_offer(
        self, sender: Node, receiver: Node, order: list[StoredBundle], now: float
    ) -> StoredBundle | None:
        """First bundle in ``order`` passing all predicates and its coin.

        The predicates mirror :meth:`ReferencePlanner._candidates` exactly
        and none of them consumes randomness, so evaluating them lazily
        (interleaved with ``should_offer`` calls) visits the same bundles
        in the same order as filter-everything-then-sort.
        """
        session = self.session
        coin_rejected = session._coin_rejected or ()
        sender_id = sender.id
        sender_protocol = sender.protocol
        receiver_protocol = receiver.protocol
        r_relay = receiver.relay.entries_view()
        r_origin = receiver.origin
        r_delivered = receiver.delivered
        for sb in order:
            bid = sb.bundle.bid  # the .bid property call, inlined
            if now >= sb.expiry:  # is_expired, inlined
                continue
            if (sender_id, bid) in coin_rejected:
                continue
            if bid in r_relay or bid in r_origin or bid in r_delivered:
                continue  # receiver.has_copy, inlined
            if receiver_protocol.knows_delivered(bid) or sender_protocol.knows_delivered(bid):
                continue
            if not receiver_protocol.can_accept(sb.bundle, now):
                continue
            if sender_protocol.should_offer(sb, receiver, now):
                return sb
            rejected = session._coin_rejected
            if rejected is None:
                rejected = session._coin_rejected = set()
            rejected.add((sender_id, bid))
            coin_rejected = rejected
        return None

    def plan(self, now: float) -> tuple[Node, Node, StoredBundle] | None:
        """Next transfer: lower-ID sender preferred, coin flips cached."""
        session = self.session
        node_a, node_b = session.node_a, session.node_b
        sb = self._first_offer(node_a, node_b, self._order(node_a, node_b, True), now)
        if sb is not None:
            return node_a, node_b, sb
        sb = self._first_offer(node_b, node_a, self._order(node_b, node_a, False), now)
        if sb is not None:
            return node_b, node_a, sb
        return None


#: Planner registry: name → factory taking the owning session.
PLANNERS: dict[str, Callable[[ContactSession], object]] = {
    "incremental": IncrementalPlanner,
    "reference": ReferencePlanner,
}


def planner_names() -> tuple[str, ...]:
    """Registered planner names (for config validation and CLI help)."""
    return tuple(sorted(PLANNERS))
