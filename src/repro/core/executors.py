"""Execution backends for sweep grids.

A sweep is a grid of independent cells — every cell derives its random
streams from ``(master_seed, protocol, load, rep)`` alone (see
:mod:`repro.des.rng`), so cells can run in any order, in any process, and
still produce bit-identical :class:`~repro.core.results.RunResult`s. This
module exploits that: :func:`~repro.core.sweep.run_sweep` hands a list of
:class:`Cell`s to an executor and gets results back *in submission order*,
whatever the completion order was.

Backends:

* :class:`SerialExecutor` — in-process loop; the default, zero overhead.
* :class:`ParallelExecutor` — fans cells out over a
  :class:`concurrent.futures.ProcessPoolExecutor`. Traces and protocol
  configurations are plain (frozen) dataclasses, so cells pickle cleanly.

Both satisfy the :class:`Executor` protocol, so user-defined backends
(e.g. a cluster dispatcher) drop in via ``run_sweep(..., executor=...)``.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor, as_completed
from collections.abc import Callable, Sequence
from typing import TYPE_CHECKING, NamedTuple, Protocol as TypingProtocol

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.protocols.registry import ProtocolConfig
    from repro.core.results import RunResult
    from repro.core.sweep import SweepConfig
    from repro.mobility.contact import ContactTrace

#: Called after each cell completes: (completed_count, total, finished_cell).
ProgressHook = Callable[[int, int, "Cell"], None]


class Cell(NamedTuple):
    """One (trace, protocol, load, replication) point of a sweep grid."""

    trace: ContactTrace
    protocol: ProtocolConfig
    load: int
    rep: int
    sweep: SweepConfig


def execute_cell(cell: Cell) -> RunResult:
    """Run one grid cell (module-level so process pools can pickle it)."""
    from repro.core.sweep import run_single

    return run_single(cell.trace, cell.protocol, cell.load, cell.rep, cell.sweep)


class _CellRef(NamedTuple):
    """A cell by table indices — what actually crosses the process boundary.

    A sweep's cells share a handful of traces/protocol configs/sweep
    configs; shipping those tables once per worker (via the pool
    initializer) and only these indices per task keeps per-task IPC to a
    few bytes instead of re-pickling the trace for every cell.
    """

    trace_idx: int
    protocol_idx: int
    load: int
    rep: int
    sweep_idx: int


#: Per-worker-process object tables, installed by :func:`_init_worker`.
_WORKER_TABLES: tuple[list, list, list] | None = None


def _init_worker(traces: list, protocols: list, sweeps: list) -> None:
    global _WORKER_TABLES
    _WORKER_TABLES = (traces, protocols, sweeps)


def _execute_ref(ref: _CellRef) -> RunResult:
    assert _WORKER_TABLES is not None, "worker pool initializer did not run"
    traces, protocols, sweeps = _WORKER_TABLES
    return execute_cell(
        Cell(
            traces[ref.trace_idx],
            protocols[ref.protocol_idx],
            ref.load,
            ref.rep,
            sweeps[ref.sweep_idx],
        )
    )


def _intern(obj, table: list, index: dict[int, int]) -> int:
    key = id(obj)
    if key not in index:
        index[key] = len(table)
        table.append(obj)
    return index[key]


class Executor(TypingProtocol):
    """Structural type of a sweep execution backend.

    ``run`` must return one result per cell, **in cell order** — the order
    results arrive internally is the backend's business.
    """

    def run(
        self, cells: Sequence[Cell], *, progress: ProgressHook | None = None
    ) -> list["RunResult"]: ...


class SerialExecutor:
    """Run every cell in-process, one after the other (the default)."""

    def run(
        self, cells: Sequence[Cell], *, progress: ProgressHook | None = None
    ) -> list["RunResult"]:
        results: list["RunResult"] = []
        total = len(cells)
        for i, cell in enumerate(cells):
            results.append(execute_cell(cell))
            if progress is not None:
                progress(i + 1, total, cell)
        return results

    def __repr__(self) -> str:
        return "SerialExecutor()"


class ParallelExecutor:
    """Fan cells out across worker processes.

    Results are bit-identical to :class:`SerialExecutor` because every
    cell's randomness is derived from the cell's own coordinates, never
    from execution order or shared state.

    Args:
        jobs: Worker processes. Defaults to the machine's CPU count.
    """

    def __init__(self, jobs: int | None = None) -> None:
        if jobs is None:
            jobs = os.cpu_count() or 1
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.jobs = jobs

    def run(
        self, cells: Sequence[Cell], *, progress: ProgressHook | None = None
    ) -> list["RunResult"]:
        total = len(cells)
        if total == 0:
            return []
        workers = min(self.jobs, total)
        if workers == 1:
            return SerialExecutor().run(cells, progress=progress)
        traces: list = []
        protocols: list = []
        sweeps: list = []
        t_idx: dict[int, int] = {}
        p_idx: dict[int, int] = {}
        s_idx: dict[int, int] = {}
        refs = [
            _CellRef(
                _intern(c.trace, traces, t_idx),
                _intern(c.protocol, protocols, p_idx),
                c.load,
                c.rep,
                _intern(c.sweep, sweeps, s_idx),
            )
            for c in cells
        ]
        results: list["RunResult" | None] = [None] * total
        with ProcessPoolExecutor(
            max_workers=workers,
            initializer=_init_worker,
            initargs=(traces, protocols, sweeps),
        ) as pool:
            futures = {pool.submit(_execute_ref, ref): i for i, ref in enumerate(refs)}
            done = 0
            for fut in as_completed(futures):
                i = futures[fut]
                results[i] = fut.result()
                done += 1
                if progress is not None:
                    progress(done, total, cells[i])
        return results  # type: ignore[return-value]  # every slot is filled

    def __repr__(self) -> str:
        return f"ParallelExecutor(jobs={self.jobs})"


def make_executor(jobs: int | None) -> Executor:
    """Executor for a ``--jobs`` value: serial for None/1, parallel above."""
    if jobs is None or jobs == 1:
        return SerialExecutor()
    return ParallelExecutor(jobs)
