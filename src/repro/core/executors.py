"""Execution backends for sweep grids.

A sweep is a grid of independent cells — every cell derives its random
streams from ``(master_seed, protocol, load, rep)`` alone (see
:mod:`repro.des.rng`), so cells can run in any order, in any process, and
still produce bit-identical :class:`~repro.core.results.RunResult`s. This
module exploits that: :func:`~repro.core.sweep.run_sweep` hands a list of
:class:`Cell`s to an executor and gets results back *in submission order*,
whatever the completion order was.

Backends:

* :class:`SerialExecutor` — in-process loop; the default, zero overhead.
* :class:`ParallelExecutor` — fans cells out over a
  :class:`concurrent.futures.ProcessPoolExecutor`. Traces and protocol
  configurations are plain (frozen) dataclasses, so cells pickle cleanly.

Both satisfy the :class:`Executor` protocol, so user-defined backends
(e.g. a cluster dispatcher) drop in via ``run_sweep(..., executor=...)``.

Failure policy
--------------

Long replication campaigns die ugly without one: a single worker crash
used to abort the whole grid and discard every completed cell. Both
backends now accept a :class:`FailurePolicy` controlling

* **retries** — transparent re-execution of cells interrupted by a worker
  process death (``BrokenProcessPool``), with exponential backoff between
  pool rebuilds. Safe because cells are deterministic functions of their
  coordinates: a retried cell returns the exact same ``RunResult``.
* **cell_timeout** — a wall-clock budget per cell; a hung cell is
  declared failed and its worker is reclaimed (parallel backend only —
  the serial backend has no worker to reclaim and ignores the budget).
* **on_error** — ``"abort"`` (default) cancels all queued cells at the
  first permanent failure and raises :class:`CellExecutionError` naming
  the cell's ``(protocol, load, rep)`` coordinates; ``"keep-going"``
  converts the failure into a structured :class:`CellFailure` record and
  completes the rest of the grid, so one bad cell degrades a campaign
  instead of destroying it.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from collections.abc import Callable, Sequence
from typing import TYPE_CHECKING, NamedTuple, Protocol as TypingProtocol

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.protocols.registry import ProtocolConfig
    from repro.core.results import RunResult
    from repro.core.sweep import SweepConfig
    from repro.mobility.contact import ContactTrace

#: Called after each cell completes: (completed_count, total, finished_cell).
ProgressHook = Callable[[int, int, "Cell"], None]

#: Poll interval (s) for the per-cell timeout watchdog.
_TICK = 0.05


class Cell(NamedTuple):
    """One (trace, protocol, load, replication) point of a sweep grid."""

    trace: ContactTrace
    protocol: ProtocolConfig
    load: int
    rep: int
    sweep: SweepConfig


def execute_cell(cell: Cell) -> RunResult:
    """Run one grid cell (module-level so process pools can pickle it)."""
    from repro.core.sweep import run_single

    return run_single(cell.trace, cell.protocol, cell.load, cell.rep, cell.sweep)


#: What actually runs a cell. The default is :func:`execute_cell`; tests
#: substitute fault-injecting wrappers (must be picklable for the
#: parallel backend, i.e. a module-level function).
CellTask = Callable[[Cell], "RunResult"]


@dataclass(frozen=True)
class FailurePolicy:
    """How an executor responds when a grid cell goes wrong.

    Attributes:
        retries: Extra attempts granted to cells interrupted by a worker
            process death (transient ``BrokenProcessPool`` failures). The
            default 0 fails such cells on first interruption. Exceptions
            *raised by* a cell and timeouts are never retried — both are
            deterministic, so a retry would reproduce them.
        backoff: Base delay in seconds before rebuilding a broken worker
            pool; rebuild *n* sleeps ``backoff * 2**n`` (exponential).
        cell_timeout: Wall-clock seconds a single cell may run before it
            is declared hung and failed (parallel backend only; the
            serial backend cannot preempt its own process and ignores
            this). None (default) disables the watchdog.
        on_error: ``"abort"`` cancels queued cells at the first permanent
            failure and raises :class:`CellExecutionError`;
            ``"keep-going"`` records a :class:`CellFailure` and finishes
            the rest of the grid.
    """

    retries: int = 0
    backoff: float = 0.5
    cell_timeout: float | None = None
    on_error: str = "abort"

    def __post_init__(self) -> None:
        if self.retries < 0:
            raise ValueError("retries must be >= 0")
        if self.backoff < 0:
            raise ValueError("backoff must be >= 0")
        if self.cell_timeout is not None and self.cell_timeout <= 0:
            raise ValueError("cell_timeout must be positive (or None)")
        if self.on_error not in ON_ERROR_MODES:
            raise ValueError(
                f"on_error must be one of {', '.join(ON_ERROR_MODES)}, "
                f"got {self.on_error!r}"
            )


#: Valid :attr:`FailurePolicy.on_error` modes.
ON_ERROR_MODES = ("abort", "keep-going")


@dataclass(frozen=True)
class CellFailure:
    """Structured record of one grid cell that failed permanently.

    Under ``on_error="keep-going"`` these surface in
    :attr:`repro.core.results.SweepResult.failures` instead of killing
    the campaign; under ``"abort"`` one of them rides inside the raised
    :class:`CellExecutionError`.

    Attributes:
        protocol: Registry name of the cell's protocol (e.g. ``"pq"``).
        protocol_label: Human label (the sweep/journal cell key).
        trace_name: Name of the cell's contact trace.
        load: Offered load of the cell.
        rep: Replication index of the cell.
        kind: ``"exception"`` (the cell raised), ``"worker-death"`` (its
            worker process died), or ``"timeout"`` (it exceeded
            ``cell_timeout``).
        message: Human-readable failure detail.
        attempts: Execution attempts consumed, retries included.
    """

    protocol: str
    protocol_label: str
    trace_name: str
    load: int
    rep: int
    kind: str
    message: str
    attempts: int = 1

    @property
    def coordinates(self) -> str:
        """The cell's grid coordinates, rendered for messages."""
        return f"(protocol={self.protocol!r}, load={self.load}, rep={self.rep})"


class CellExecutionError(RuntimeError):
    """A sweep cell failed permanently under ``on_error="abort"``.

    Carries the :class:`CellFailure` as :attr:`failure`, so callers can
    recover the exact ``(protocol, load, rep)`` coordinates instead of
    fishing them out of a bare worker traceback.
    """

    def __init__(self, failure: CellFailure) -> None:
        super().__init__(
            f"sweep cell {failure.coordinates} failed after "
            f"{failure.attempts} attempt(s): [{failure.kind}] {failure.message}"
        )
        self.failure = failure


def _describe_failure(
    cell: Cell, kind: str, message: str, attempts: int
) -> CellFailure:
    return CellFailure(
        protocol=cell.protocol.protocol_name,
        protocol_label=cell.protocol.label,
        trace_name=cell.trace.name,
        load=cell.load,
        rep=cell.rep,
        kind=kind,
        message=message,
        attempts=attempts,
    )


#: One executed cell's outcome: a result, or (keep-going only) a failure.
CellOutcome = "RunResult | CellFailure"

#: Called as each cell finishes, in completion order, with the cell's
#: index into the submitted sequence — the checkpoint journal's hook.
ResultHook = Callable[[int, Cell, CellOutcome], None]


class _CellRef(NamedTuple):
    """A cell by table indices — what actually crosses the process boundary.

    A sweep's cells share a handful of traces/protocol configs/sweep
    configs; shipping those tables once per worker (via the pool
    initializer) and only these indices per task keeps per-task IPC to a
    few bytes instead of re-pickling the trace for every cell.
    """

    trace_idx: int
    protocol_idx: int
    load: int
    rep: int
    sweep_idx: int


#: Per-worker-process object tables, installed by :func:`_init_worker`.
_WORKER_TABLES: tuple[list, list, list, CellTask | None] | None = None


def _init_worker(
    traces: list, protocols: list, sweeps: list, task: CellTask | None
) -> None:
    global _WORKER_TABLES
    _WORKER_TABLES = (traces, protocols, sweeps, task)


def _execute_ref(ref: _CellRef) -> RunResult:
    assert _WORKER_TABLES is not None, "worker pool initializer did not run"
    traces, protocols, sweeps, task = _WORKER_TABLES
    cell = Cell(
        traces[ref.trace_idx],
        protocols[ref.protocol_idx],
        ref.load,
        ref.rep,
        sweeps[ref.sweep_idx],
    )
    return (task or execute_cell)(cell)


def _intern(obj, table: list, index: dict[int, int]) -> int:
    key = id(obj)
    if key not in index:
        index[key] = len(table)
        table.append(obj)
    return index[key]


def _discard_pool(pool: ProcessPoolExecutor, *, terminate: bool = False) -> None:
    """Abandon a pool without waiting on its (possibly wedged) workers.

    Queued cells are cancelled; running ones are left to finish on their
    own — unless ``terminate`` is set, which additionally kills the
    worker processes (the timeout path: a hung cell would otherwise pin
    its worker, and interpreter exit, forever).
    """
    pool.shutdown(wait=False, cancel_futures=True)
    if terminate:
        # ProcessPoolExecutor exposes no public way to reclaim a wedged
        # worker; terminating its processes is the documented-by-usage
        # escape hatch (the management thread then marks the pool broken
        # and winds itself down).
        processes = getattr(pool, "_processes", None) or {}
        for proc in list(processes.values()):
            try:
                proc.terminate()
            except Exception:  # pragma: no cover - already-dead worker race
                pass


class Executor(TypingProtocol):
    """Structural type of a sweep execution backend.

    ``run`` must return one outcome per cell, **in cell order** — the
    order outcomes arrive internally is the backend's business. Outcomes
    are :class:`~repro.core.results.RunResult`s, with
    :class:`CellFailure` records standing in for permanently failed
    cells when the policy is ``on_error="keep-going"``.
    """

    def run(
        self,
        cells: Sequence[Cell],
        *,
        progress: ProgressHook | None = None,
        policy: FailurePolicy | None = None,
        on_result: ResultHook | None = None,
    ) -> list[CellOutcome]: ...


class SerialExecutor:
    """Run every cell in-process, one after the other (the default).

    Args:
        task: Override for what runs a cell (fault-injection seam used
            by the test suite); defaults to :func:`execute_cell`.
    """

    def __init__(self, task: CellTask | None = None) -> None:
        self._task = task

    def run(
        self,
        cells: Sequence[Cell],
        *,
        progress: ProgressHook | None = None,
        policy: FailurePolicy | None = None,
        on_result: ResultHook | None = None,
    ) -> list[CellOutcome]:
        policy = policy or FailurePolicy()
        task = self._task or execute_cell
        results: list[CellOutcome] = []
        total = len(cells)
        for i, cell in enumerate(cells):
            outcome: CellOutcome
            try:
                outcome = task(cell)
            except Exception as exc:
                failure = _describe_failure(
                    cell, "exception", f"{type(exc).__name__}: {exc}", attempts=1
                )
                if policy.on_error == "abort":
                    raise CellExecutionError(failure) from exc
                outcome = failure
            results.append(outcome)
            if on_result is not None:
                on_result(i, cell, outcome)
            if progress is not None:
                progress(i + 1, total, cell)
        return results

    def __repr__(self) -> str:
        return "SerialExecutor()"


class ParallelExecutor:
    """Fan cells out across worker processes.

    Results are bit-identical to :class:`SerialExecutor` because every
    cell's randomness is derived from the cell's own coordinates, never
    from execution order or shared state. The same property makes
    retries sound: re-running an interrupted cell on a fresh worker
    reproduces its :class:`~repro.core.results.RunResult` exactly.

    Args:
        jobs: Worker processes. Defaults to the machine's CPU count.
        task: Override for what runs a cell (fault-injection seam used
            by the test suite); must be picklable. Defaults to
            :func:`execute_cell`.
    """

    def __init__(self, jobs: int | None = None, task: CellTask | None = None) -> None:
        if jobs is None:
            jobs = os.cpu_count() or 1
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.jobs = jobs
        self._task = task

    def run(
        self,
        cells: Sequence[Cell],
        *,
        progress: ProgressHook | None = None,
        policy: FailurePolicy | None = None,
        on_result: ResultHook | None = None,
    ) -> list[CellOutcome]:
        policy = policy or FailurePolicy()
        total = len(cells)
        if total == 0:
            return []
        workers = min(self.jobs, total)
        if workers == 1:
            return SerialExecutor(self._task).run(
                cells, progress=progress, policy=policy, on_result=on_result
            )
        traces: list = []
        protocols: list = []
        sweeps: list = []
        t_idx: dict[int, int] = {}
        p_idx: dict[int, int] = {}
        s_idx: dict[int, int] = {}
        refs = [
            _CellRef(
                _intern(c.trace, traces, t_idx),
                _intern(c.protocol, protocols, p_idx),
                c.load,
                c.rep,
                _intern(c.sweep, sweeps, s_idx),
            )
            for c in cells
        ]
        results: list[CellOutcome | None] = [None] * total
        attempts = [0] * total
        remaining = set(range(total))
        done_count = 0
        rebuilds = 0
        pool: ProcessPoolExecutor | None = None
        futures: dict = {}
        started: dict = {}

        def finish(i: int, outcome: CellOutcome) -> None:
            nonlocal done_count
            results[i] = outcome
            remaining.discard(i)
            done_count += 1
            if on_result is not None:
                on_result(i, cells[i], outcome)
            if progress is not None:
                progress(done_count, total, cells[i])

        def fail(i: int, kind: str, message: str) -> CellFailure:
            """Make the failure record; raise or record per the policy."""
            failure = _describe_failure(cells[i], kind, message, attempts[i])
            if policy.on_error == "abort":
                raise CellExecutionError(failure)
            finish(i, failure)
            return failure

        try:
            while remaining:
                if pool is None:
                    pool = ProcessPoolExecutor(
                        max_workers=min(workers, len(remaining)),
                        initializer=_init_worker,
                        initargs=(traces, protocols, sweeps, self._task),
                    )
                    futures = {
                        pool.submit(_execute_ref, refs[i]): i
                        for i in sorted(remaining)
                    }
                    started = {}
                tick = None if policy.cell_timeout is None else _TICK
                done, not_done = wait(
                    set(futures), timeout=tick, return_when=FIRST_COMPLETED
                )
                now = time.monotonic()
                if policy.cell_timeout is not None:
                    # a cell's clock starts when its task starts *running*,
                    # not when it was queued behind other cells
                    for fut in not_done:
                        if fut not in started and fut.running():
                            started[fut] = now
                pool_broken = False
                for fut in done:
                    i = futures.pop(fut)
                    started.pop(fut, None)
                    try:
                        result = fut.result()
                    except BrokenProcessPool:
                        # the pool is dead; every unfinished future fails
                        # the same way — handle them wholesale below
                        pool_broken = True
                    except Exception as exc:
                        attempts[i] += 1
                        try:
                            fail(i, "exception", f"{type(exc).__name__}: {exc}")
                        except CellExecutionError as wrapped:
                            raise wrapped from exc
                    else:
                        finish(i, result)
                if pool_broken:
                    _discard_pool(pool)
                    pool, futures, started = None, {}, {}
                    # every unfinished cell was interrupted mid-flight;
                    # charge each an attempt and retry the survivors on a
                    # fresh pool after an exponential-backoff pause
                    for i in sorted(remaining):
                        attempts[i] += 1
                        if attempts[i] > policy.retries:
                            fail(
                                i,
                                "worker-death",
                                "worker process died while the cell was in "
                                "flight (BrokenProcessPool)",
                            )
                    if remaining:
                        delay = policy.backoff * (2**rebuilds)
                        rebuilds += 1
                        if delay > 0:
                            time.sleep(delay)
                    continue
                if policy.cell_timeout is not None:
                    expired = [
                        fut
                        for fut, t0 in started.items()
                        if fut in futures and now - t0 >= policy.cell_timeout
                    ]
                    if expired:
                        # hung workers cannot be reclaimed individually:
                        # tear the pool down (terminating its processes)
                        # and resubmit the unfinished cells on a fresh one
                        # — torn down even when fail() raises (abort), so
                        # a wedged worker never outlives the campaign
                        try:
                            for fut in expired:
                                i = futures.pop(fut)
                                attempts[i] += 1
                                fail(
                                    i,
                                    "timeout",
                                    f"cell exceeded cell_timeout="
                                    f"{policy.cell_timeout}s",
                                )
                        finally:
                            _discard_pool(pool, terminate=True)
                            pool, futures, started = None, {}, {}
        finally:
            if pool is not None:
                # first-failure abort: cancel queued cells, do NOT wait
                # for in-flight ones (the old shutdown(wait=True) ran the
                # whole remaining grid before surfacing the error)
                _discard_pool(pool)
        return [r for r in results if r is not None]

    def __repr__(self) -> str:
        return f"ParallelExecutor(jobs={self.jobs})"


def make_executor(jobs: int | None) -> Executor:
    """Executor for a ``--jobs`` value: serial for None/1, parallel above."""
    if jobs is None or jobs == 1:
        return SerialExecutor()
    return ParallelExecutor(jobs)
