"""Anti-packet substrate shared by P-Q epidemic and the immunity protocols.

An *anti-packet* (a.k.a. per-bundle immunity table) is the destination's
proof that a bundle arrived — "infection and vaccination" in the paper's
epidemiology analogy. The substrate maintains the node's delivery-knowledge
set (the i-list), spreads it at contact start, purges matching copies, and
refuses to re-accept vaccinated bundles.

P-Q epidemic and epidemic-with-immunity share this machinery — which is why
the paper observes identical delay for P-Q(P=Q=1) and immunity in the
trace study. They differ in the signaling they charge for (P-Q's
anti-packets vs immunity's per-bundle tables; both proportional to load) and
in P-Q's transmission coin.

The i-list itself lives in a :class:`~repro.core.knowledge.KnowledgeStore`:
the store owns the mutable set, its frozen snapshot, the **knowledge
epoch**, and the cached control payload reused verbatim while the epoch is
unchanged. This protocol layer supplies policy only — what to purge when
knowledge arrives, and what the dissemination costs.
"""

from __future__ import annotations

from repro.core.bundle import BundleId
from repro.core.knowledge import KnowledgeStore
from repro.core.protocols.base import ControlMessage, Protocol


class AntiPacketProtocol(Protocol):
    """Base for protocols that track and spread per-bundle delivery knowledge."""

    #: Counter kind used for signaling accounting; subclasses override.
    control_kind = "anti_packet"
    #: receive_control consumes delivered_ids only — fully covered by the
    #: knowledge epoch, so unchanged-epoch exchanges may be elided.
    epoch_gated_control = True
    #: Buffer slots one stored table/anti-packet consumes. Tables share the
    #: node's storage in the paper's model (its immunity occupancy analysis);
    #: 0.1 ≈ a table an order of magnitude smaller than a bundle.
    table_slot_fraction = 0.1

    def __init__(self, node, sim, rng) -> None:  # type: ignore[no-untyped-def]
        super().__init__(node, sim, rng)
        self.knowledge = KnowledgeStore()

    def _sync_table_storage(self) -> None:
        self.sim.set_control_storage(
            self.node, len(self.knowledge) * self.table_slot_fraction
        )

    # ------------------------------------------------------------- knowledge

    @property
    def known_delivered(self) -> frozenset[BundleId]:
        """This node's current i-list (a frozen snapshot)."""
        return self.knowledge.snapshot

    def knows_delivered(self, bid: BundleId) -> bool:
        return bid in self.knowledge

    def learn_delivered(self, bids: frozenset[BundleId] | set[BundleId], now: float) -> int:
        """Merge delivery knowledge and purge matching live copies.

        Returns:
            Number of newly learned bundle ids.
        """
        fresh = self.knowledge.merge(bids)
        if not fresh:
            return 0
        for bid in fresh:
            if self.node.get_copy(bid) is not None:
                self.sim.remove_copy(self.node, bid, reason="immunized")
        self._sync_table_storage()
        return len(fresh)

    def on_knowledge_wiped(self, now: float) -> frozenset[BundleId]:
        """Reboot amnesia: drop the i-list (and its stored-table footprint).

        The store's reset bumps the knowledge epoch, so cached payloads and
        per-pair exchange memos built pre-wipe cannot be replayed.
        """
        forgotten = self.knowledge.snapshot
        self.knowledge.reset()
        self._sync_table_storage()
        return forgotten

    # ---------------------------------------------------------- control plane

    def control_payload(self, now: float) -> ControlMessage:
        store = self.knowledge
        msg = store.message
        if msg is None:
            msg = store.message = ControlMessage(
                sender=self.node.id,
                summary=self._summary,
                delivered_ids=store.snapshot,
            )
        else:
            # Re-arm the lazy summary: buffer contents move without
            # bumping the knowledge epoch, so a cached message must not
            # serve a summary frozen at an earlier contact.
            msg._summary = self._summary
        return msg

    def receive_control(self, msg: ControlMessage, now: float) -> None:
        self.learn_delivered(msg.delivered_ids, now)

    def control_units(self, msg: ControlMessage) -> int:
        """Anti-packet dissemination cost: the full list travels each contact.

        This is the paper's complaint about per-bundle immunity — "the
        number of immunity tables transmitted is proportional to the load"
        — and the baseline for the cumulative table's order-of-magnitude
        improvement.
        """
        return len(msg.delivered_ids)

    # ------------------------------------------------------------ destination

    def on_delivered(self, bundle, now: float) -> None:  # type: ignore[no-untyped-def]
        self.knowledge.add(bundle.bid)
        self._sync_table_storage()
