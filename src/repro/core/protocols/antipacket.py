"""Anti-packet substrate shared by P-Q epidemic and the immunity protocols.

An *anti-packet* (a.k.a. per-bundle immunity table) is the destination's
proof that a bundle arrived — "infection and vaccination" in the paper's
epidemiology analogy. The substrate maintains the node's delivery-knowledge
set (the i-list), spreads it at contact start, purges matching copies, and
refuses to re-accept vaccinated bundles.

P-Q epidemic and epidemic-with-immunity share this machinery — which is why
the paper observes identical delay for P-Q(P=Q=1) and immunity in the
trace study. They differ in the signaling they charge for (P-Q's
anti-packets vs immunity's per-bundle tables; both proportional to load) and
in P-Q's transmission coin.
"""

from __future__ import annotations

from repro.core.bundle import BundleId
from repro.core.protocols.base import ControlMessage, Protocol


class AntiPacketProtocol(Protocol):
    """Base for protocols that track and spread per-bundle delivery knowledge."""

    #: Counter kind used for signaling accounting; subclasses override.
    control_kind = "anti_packet"
    #: Buffer slots one stored table/anti-packet consumes. Tables share the
    #: node's storage in the paper's model (its immunity occupancy analysis);
    #: 0.1 ≈ a table an order of magnitude smaller than a bundle.
    table_slot_fraction = 0.1

    def __init__(self, node, sim, rng) -> None:  # type: ignore[no-untyped-def]
        super().__init__(node, sim, rng)
        self._known_delivered: set[BundleId] = set()
        #: cached frozen snapshot of the i-list, rebuilt only after the
        #: list grows — control payloads are built twice per contact and
        #: must carry *pre-exchange* state, so they need a snapshot, but
        #: copying the whole set at every encounter is the dominant cost
        #: of the anti-packet family at scale
        self._known_snapshot: frozenset[BundleId] | None = None

    def _sync_table_storage(self) -> None:
        self.sim.set_control_storage(
            self.node, len(self._known_delivered) * self.table_slot_fraction
        )

    # ------------------------------------------------------------- knowledge

    @property
    def known_delivered(self) -> frozenset[BundleId]:
        """This node's current i-list (a frozen snapshot)."""
        snap = self._known_snapshot
        if snap is None:
            snap = self._known_snapshot = frozenset(self._known_delivered)
        return snap

    def knows_delivered(self, bid: BundleId) -> bool:
        return bid in self._known_delivered

    def learn_delivered(self, bids: frozenset[BundleId] | set[BundleId], now: float) -> int:
        """Merge delivery knowledge and purge matching live copies.

        Returns:
            Number of newly learned bundle ids.
        """
        known = self._known_delivered
        if not bids or (len(bids) <= len(known) and bids <= known):
            # C-level subset probe: the common steady-state case (peer
            # knows nothing new) never walks the i-list in Python
            return 0
        fresh = [b for b in bids if b not in known]
        self._known_delivered.update(fresh)
        for bid in fresh:
            if self.node.get_copy(bid) is not None:
                self.sim.remove_copy(self.node, bid, reason="immunized")
        if fresh:
            self._known_snapshot = None
            self._sync_table_storage()
        return len(fresh)

    # ---------------------------------------------------------- control plane

    def control_payload(self, now: float) -> ControlMessage:
        return ControlMessage(
            sender=self.node.id,
            summary=self._summary,
            delivered_ids=self.known_delivered,
        )

    def receive_control(self, msg: ControlMessage, now: float) -> None:
        self.learn_delivered(msg.delivered_ids, now)

    def control_units(self, msg: ControlMessage) -> int:
        """Anti-packet dissemination cost: the full list travels each contact.

        This is the paper's complaint about per-bundle immunity — "the
        number of immunity tables transmitted is proportional to the load"
        — and the baseline for the cumulative table's order-of-magnitude
        improvement.
        """
        return len(msg.delivered_ids)

    # ------------------------------------------------------------ destination

    def on_delivered(self, bundle, now: float) -> None:  # type: ignore[no-untyped-def]
        self._known_delivered.add(bundle.bid)
        self._known_snapshot = None
        self._sync_table_storage()
