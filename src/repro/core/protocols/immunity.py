"""Epidemic with immunity tables (Mundur et al. 2008) and the cumulative
immunity enhancement (paper Section III).

**Per-bundle immunity**: the destination generates one immunity table per
delivered bundle. Nodes maintain an i-list (the set of tables seen), merge
i-lists at every encounter, purge buffered copies the list covers, and
refuse to re-accept them. Mechanically this is the anti-packet substrate;
what distinguishes the protocol is its signaling bill: the whole i-list
travels at every encounter, so table transmissions grow with load — the
overhead the paper calls out.

**Cumulative immunity (enhancement)**: the table is a cumulative
acknowledgment per flow — "an immunity table with a bundle ID of 30 means
the destination has received bundles 1 to 30". Nodes keep only the
dominating table per flow (redundant tables are discarded), so each
encounter carries at most one table per flow: an order of magnitude less
signaling, and one received table can purge many buffered bundles at once.
The destination advances its table over the longest contiguous delivered
prefix, so out-of-order deliveries are acknowledged once the gap fills.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.bundle import Bundle, BundleId
from repro.core.knowledge import CumulativeKnowledgeStore
from repro.core.protocols.antipacket import AntiPacketProtocol
from repro.core.protocols.base import ControlMessage, Protocol

if TYPE_CHECKING:  # pragma: no cover - typing only
    import numpy as np

    from repro.core.node import Node
    from repro.core.protocols.base import SimulationServices


class ImmunityEpidemic(AntiPacketProtocol):
    """Per-bundle immunity tables (m-list / i-list)."""

    name = "immunity"
    control_kind = "immunity_table"


@dataclass(frozen=True)
class ImmunityConfig:
    """Factory for :class:`ImmunityEpidemic` (no parameters)."""

    protocol_name = "immunity"

    @property
    def label(self) -> str:
        return "Epidemic with immunity"

    def build(
        self, node: Node, sim: SimulationServices, rng: np.random.Generator
    ) -> ImmunityEpidemic:
        return ImmunityEpidemic(node, sim, rng)


class CumulativeImmunityEpidemic(Protocol):
    """Enhancement 3: cumulative-acknowledgment immunity tables."""

    name = "cumulative_immunity"
    control_kind = "immunity_table"
    #: receive_control consumes the cumulative tables only — fully covered
    #: by the knowledge epoch, so unchanged-epoch exchanges may be elided.
    epoch_gated_control = True
    #: One table per flow, same per-table size as per-bundle immunity —
    #: the storage saving is keeping 1 table instead of one per bundle.
    table_slot_fraction = 0.1

    def __init__(self, node, sim, rng) -> None:  # type: ignore[no-untyped-def]
        super().__init__(node, sim, rng)
        self.knowledge = CumulativeKnowledgeStore()
        #: destination-side: delivered seqs per flow, to advance the prefix
        self._delivered_seqs: dict[int, set[int]] = {}

    # ------------------------------------------------------------- knowledge

    @property
    def tables(self) -> dict[int, int]:
        """Flow id -> highest seq such that bundles 1..seq are delivered."""
        return self.knowledge.tables

    def knows_delivered(self, bid: BundleId) -> bool:
        return self.knowledge.covers(bid)

    def _absorb_table(self, flow: int, seq: int, now: float) -> bool:
        """Adopt a table if it dominates ours; purge covered copies.

        Returns True if the table was new information.
        """
        if not self.knowledge.advance(flow, seq):
            return False
        self.sim.set_control_storage(
            self.node, len(self.knowledge) * self.table_slot_fraction
        )
        covered = [
            sb.bid
            for sb in self.node.iter_sendable()  # fully consumed before removals
            if sb.bid.flow == flow and sb.bid.seq <= seq
        ]
        for bid in covered:
            self.sim.remove_copy(self.node, bid, reason="immunized")
        return True

    def on_knowledge_wiped(self, now: float) -> frozenset[BundleId]:
        """Reboot amnesia: drop every cumulative table.

        ``_delivered_seqs`` is destination-side delivery history mirroring
        ``node.delivered``, which reboots never erase (delivered stays
        delivered) — so it survives. Re-infection accounting returns empty:
        a cumulative table covers seq *ranges*, not individual ids, so the
        per-id re-infection counter does not apply to this protocol.
        """
        self.knowledge.reset()
        self.sim.set_control_storage(self.node, 0.0)
        return frozenset()

    # ---------------------------------------------------------- control plane

    def control_payload(self, now: float) -> ControlMessage:
        store = self.knowledge
        msg = store.message
        if msg is None:
            msg = store.message = ControlMessage(
                sender=self.node.id,
                summary=self._summary,
                cumulative=dict(store.tables),
            )
        else:
            # Re-arm the lazy summary (see AntiPacketProtocol.control_payload).
            msg._summary = self._summary
        return msg

    def receive_control(self, msg: ControlMessage, now: float) -> None:
        for flow, seq in msg.cumulative.items():
            self._absorb_table(flow, seq, now)

    def control_units(self, msg: ControlMessage) -> int:
        """One table per flow per encounter — the order-of-magnitude saving."""
        return len(msg.cumulative)

    # ------------------------------------------------------------ destination

    def on_delivered(self, bundle: Bundle, now: float) -> None:
        flow = bundle.bid.flow
        seqs = self._delivered_seqs.setdefault(flow, set())
        seqs.add(bundle.bid.seq)
        prefix = self.knowledge.seq_for(flow)
        while (prefix + 1) in seqs:
            prefix += 1
        if prefix > self.knowledge.seq_for(flow):
            self._absorb_table(flow, prefix, now)


@dataclass(frozen=True)
class CumulativeImmunityConfig:
    """Factory for :class:`CumulativeImmunityEpidemic` (no parameters)."""

    protocol_name = "cumulative_immunity"

    @property
    def label(self) -> str:
        return "Epidemic with cumulative immunity"

    def build(
        self, node: Node, sim: SimulationServices, rng: np.random.Generator
    ) -> CumulativeImmunityEpidemic:
        return CumulativeImmunityEpidemic(node, sim, rng)
