"""Protocol interface — the policy layer of the unified framework.

Every epidemic variant is one :class:`Protocol` subclass bound to one node.
The contact session and simulation provide mechanism (who meets whom, slot
budgets, copy bookkeeping); protocols decide policy:

* what control information is exchanged at contact start
  (:meth:`Protocol.control_payload` / :meth:`Protocol.receive_control`),
* which bundles are offered (:meth:`Protocol.should_offer`) and whether the
  receiver can take them (:meth:`Protocol.can_accept` /
  :meth:`Protocol.accept`),
* what happens to copies on transmission/reception (EC increments, TTL
  assignment/renewal — :meth:`Protocol.on_transmitted` /
  :meth:`Protocol.on_copy_received`),
* what the destination does on delivery (:meth:`Protocol.on_delivered` —
  anti-packet / immunity-table generation).

The base class implements **pure epidemic** behaviour: offer everything the
peer lacks, accept while there is room, no TTL, no purging. What happens
when the buffer is *full* is delegated to the node's configured
:class:`~repro.core.policies.DropPolicy` (default ``reject`` — refuse the
incoming copy, the classic behaviour); protocols whose identity is an
eviction rule (EC, EC+TTL) override the hooks instead. Every variant
overrides only the hooks it changes, which keeps the implementations
honest about *what* each protocol actually adds — the paper's taxonomy made
executable.
"""

from __future__ import annotations

from itertools import chain
from collections.abc import Callable
from typing import TYPE_CHECKING, Protocol as TypingProtocol

from repro.core.buffer import BufferFullError
from repro.core.bundle import Bundle, BundleId, StoredBundle

if TYPE_CHECKING:  # pragma: no cover - typing only
    import numpy as np

    from repro.core.knowledge import CumulativeKnowledgeStore, KnowledgeStore
    from repro.core.node import Node


class SimulationServices(TypingProtocol):
    """The slice of the simulation that protocols are allowed to touch."""

    @property
    def now(self) -> float: ...

    def remove_copy(self, node: Node, bid: BundleId, reason: str) -> None:
        """Remove a live copy (origin or relay) with metric bookkeeping."""

    def evict_copy(self, node: Node, bid: BundleId, policy: str) -> None:
        """Evict a relay copy under buffer pressure, charged to ``policy``."""

    def set_expiry(self, node: Node, sb: StoredBundle, expiry: float) -> None:
        """(Re)schedule TTL expiry for a stored copy."""

    def count_control_units(self, node: Node, kind: str, units: int) -> None:
        """Account control-plane transmissions (anti-packets, immunity...)."""

    def set_control_storage(self, node: Node, slots: float) -> None:
        """Set the node's stored-table footprint in (fractional) slots."""


class ControlMessage:
    """Control-plane payload exchanged at contact start.

    Attributes:
        sender: Originating node id.
        summary: Ids of bundles the sender holds or has consumed (the
            summary vector of the anti-entropy session). May be passed as
            a zero-argument callable: it is then built **lazily** on first
            access — in-simulation anti-entropy never reads the vector (the
            session probes node state directly), so normal runs never pay
            for its construction. Caveat: a lazy summary reflects the
            sender's state *at access time*, not at contact start — a
            protocol whose ``receive_control`` actually reads the peer's
            summary must build it eagerly in ``control_payload``
            (pass ``self._summary()``, not ``self._summary``) to get
            pre-exchange snapshot semantics.
        delivered_ids: Per-bundle delivery knowledge (anti-packets for P-Q,
            the i-list for immunity).
        cumulative: Per-flow cumulative immunity tables:
            ``{flow: highest contiguous delivered seq}``.
        extras: Free-form protocol state for extension protocols (e.g.
            PRoPHET delivery-predictability vectors).
    """

    __slots__ = ("sender", "_summary", "delivered_ids", "cumulative", "extras")

    def __init__(
        self,
        sender: int,
        summary: frozenset[BundleId] | Callable[[], frozenset[BundleId]] = frozenset(),
        delivered_ids: frozenset[BundleId] = frozenset(),
        cumulative: dict[int, int] | None = None,
        extras: dict[str, object] | None = None,
    ) -> None:
        self.sender = sender
        self._summary = summary
        self.delivered_ids = delivered_ids
        self.cumulative = {} if cumulative is None else cumulative
        self.extras = {} if extras is None else extras

    @property
    def summary(self) -> frozenset[BundleId]:
        """The summary vector; built (and cached) on first access if lazy."""
        s = self._summary
        if callable(s):
            s = s()
            self._summary = s
        return s

    def __repr__(self) -> str:
        summary = "<lazy>" if callable(self._summary) else f"{len(self._summary)} ids"
        return (
            f"ControlMessage(sender={self.sender}, summary={summary}, "
            f"delivered_ids={len(self.delivered_ids)}, "
            f"cumulative={self.cumulative!r})"
        )


class Protocol:
    """Base protocol = pure epidemic. Subclasses override policy hooks."""

    #: Registry name; subclasses must set this.
    name = "pure"
    #: Signaling-accounting category for protocol-specific control units.
    control_kind = "summary_vector"
    #: True when this class carries real control-plane state (it overrides
    #: any of ``control_payload`` / ``receive_control`` / ``control_units``).
    #: Maintained automatically by ``__init_subclass__`` — the contact
    #: session skips building/delivering control messages entirely when
    #: both peers are stateless, which is every contact of the pure and
    #: coins-only P-Q protocols.
    exchanges_control = False
    #: True when contact start is pure bookkeeping for this class: no
    #: control exchange and no ``on_encounter_started`` override. The
    #: simulation then never schedules zero-transfer contacts as events —
    #: their bookkeeping is batched in one vectorized pass (see
    #: ``Simulation.run``). Maintained automatically by
    #: ``__init_subclass__``.
    encounter_inert = True
    #: True when ``receive_control`` consumes *only* state covered by the
    #: protocol's :attr:`knowledge` store epoch, so an exchange between
    #: two peers whose epochs are unchanged since their last meeting is
    #: provably a no-op and can be elided (accounting still runs; see
    #: :func:`repro.core.knowledge.exchange_control`). Classes built on a
    #: knowledge store declare this explicitly; ``__init_subclass__``
    #: withdraws it from any subclass that overrides a control hook
    #: without re-declaring it — extra control state the epoch does not
    #: cover must never be skipped.
    epoch_gated_control = False
    #: The protocol's delivery-knowledge store
    #: (:class:`~repro.core.knowledge.KnowledgeStore` or
    #: :class:`~repro.core.knowledge.CumulativeKnowledgeStore`), or None
    #: for protocols without control-plane state.
    knowledge: KnowledgeStore | CumulativeKnowledgeStore | None = None

    def __init_subclass__(cls, **kwargs) -> None:
        super().__init_subclass__(**kwargs)
        cls.exchanges_control = (
            cls.control_payload is not Protocol.control_payload
            or cls.receive_control is not Protocol.receive_control
            or cls.control_units is not Protocol.control_units
        )
        cls.encounter_inert = (
            cls.on_encounter_started is Protocol.on_encounter_started
            and not cls.exchanges_control
        )
        # learn_delivered is included because the substrate's
        # receive_control delegates to it — overriding either one means
        # the exchange may do more than the epoch covers
        if "epoch_gated_control" not in cls.__dict__ and any(
            hook in cls.__dict__
            for hook in (
                "control_payload",
                "receive_control",
                "control_units",
                "learn_delivered",
            )
        ):
            cls.epoch_gated_control = False

    def __init__(self, node: Node, sim: SimulationServices, rng: np.random.Generator) -> None:
        self.node = node
        self.sim = sim
        self.rng = rng

    # ------------------------------------------------------------- lifecycle

    def on_bundle_created(self, sb: StoredBundle, now: float) -> None:
        """Called when this node originates ``sb`` (sets initial TTL etc.)."""

    def on_encounter_started(self, peer: Node, now: float) -> None:
        """Called at contact start, after encounter history is updated."""

    # ---------------------------------------------------------- control plane

    def control_payload(self, now: float) -> ControlMessage:
        """Control message sent to the peer at contact start.

        The summary vector is passed lazily (as the bound ``_summary``
        method): it is a *capability* of the anti-entropy session rather
        than a structure the simulation consumes, so it is only built when
        a protocol or test actually reads ``msg.summary``.
        """
        return ControlMessage(sender=self.node.id, summary=self._summary)

    def receive_control(self, msg: ControlMessage, now: float) -> None:
        """Process the peer's control message (purge, merge lists, ...)."""

    def control_units(self, msg: ControlMessage) -> int:
        """Units this message costs for the signaling-overhead metric.

        The summary vector is common to every protocol and excluded; only
        protocol-specific state (anti-packets, immunity tables) counts.
        """
        return 0

    def _summary(self) -> frozenset[BundleId]:
        """Summary vector: everything held or already consumed here."""
        node = self.node
        return frozenset(
            chain(node.relay.id_view(), node.origin, node.delivered)
        )

    # ------------------------------------------------------- delivery knowledge

    def knows_delivered(self, bid: BundleId) -> bool:
        """True if this node knows ``bid`` already reached its destination."""
        return False

    def on_knowledge_wiped(self, now: float) -> frozenset[BundleId]:
        """Reboot state loss: forget all delivery knowledge (see
        :mod:`repro.faults`).

        Returns the set of bundle ids the node *knew were delivered* before
        the wipe — the simulation uses it to count re-infections (copies of
        those bundles re-accepted after the reboot). Protocols without
        control-plane state have nothing to forget. Not a control hook:
        overriding it does not affect ``exchanges_control`` /
        ``encounter_inert`` / ``epoch_gated_control``.
        """
        return frozenset()

    # ------------------------------------------------------------- send side

    def should_offer(self, sb: StoredBundle, peer: Node, now: float) -> bool:
        """Decide (possibly probabilistically) to offer ``sb`` this contact.

        Called at most once per (bundle, contact); a False answer is cached
        by the session for the rest of the contact (the P-Q semantics).
        """
        return True

    def confirm_transfer(self, sb: StoredBundle, peer: Node, now: float) -> bool:
        """Final go/no-go when a planned transfer completes.

        Between planning and completion (one ``bundle_tx_time``), concurrent
        contacts may have consumed whatever resource justified the offer
        (e.g. spray tokens). Unlike :meth:`should_offer` this must be
        deterministic — probabilistic decisions stay at planning time so
        their odds are not applied twice.
        """
        return True

    def on_transmitted(self, sb: StoredBundle, peer: Node, now: float) -> None:
        """Update the sender's copy after a completed transmission.

        Base behaviour increments the copy's encounter count (the EC tag
        travels with every bundle even when the policy ignores it).
        """
        sb.ec += 1

    # ---------------------------------------------------------- receive side

    def can_accept(self, bundle: Bundle, now: float) -> bool:
        """Planning-time check: could a copy of ``bundle`` be stored?

        The destination always accepts (delivery consumes no buffer). A
        full buffer defers to the node's configured drop policy (the
        default ``reject`` never makes room — the classic refusal);
        protocols with an intrinsic eviction rule (EC) override this.

        Must not consume randomness: anti-entropy consults it repeatedly
        within one contact (stochastic policies only draw at eviction
        time, in :meth:`_make_room`).
        """
        if bundle.destination == self.node.id:
            return True
        if not self.node.relay.is_full:
            return True
        return self.node.drop_policy.can_make_room(self.node.relay, bundle)

    def accept(
        self,
        bundle: Bundle,
        ec: int,
        now: float,
        sender_copy: StoredBundle | None = None,
    ) -> StoredBundle | None:
        """Store a received copy, applying the protocol's buffer policy.

        Args:
            ec: The encounter count carried by the incoming copy (already
                incremented by the sender's :meth:`on_transmitted`).
            sender_copy: The sender's stored copy, for protocols whose
                per-copy state travels with the bundle (e.g. spray tokens).

        Returns:
            The stored copy, or None if the bundle was refused (the slot is
            consumed regardless — the transmission happened).
        """
        if self.node.relay.is_full and not self._make_room(bundle, ec, now):
            return None
        sb = StoredBundle(bundle=bundle, stored_at=now, ec=ec)
        try:
            self.node.relay.add(sb)
        except BufferFullError:
            return None
        self.on_copy_received(sb, now, sender_copy=sender_copy)
        return sb

    def _make_room(self, incoming: Bundle, ec: int, now: float) -> bool:
        """Evict per the node's drop policy to fit ``incoming``.

        With the default ``reject`` policy no victim is ever named and the
        incoming copy is refused — the historical behaviour.
        """
        policy = self.node.drop_policy
        victim = policy.select_victim(self.node.relay, incoming, now)
        if victim is None:
            return False
        self.sim.evict_copy(self.node, victim.bid, policy=policy.name)
        return True

    def on_copy_received(
        self, sb: StoredBundle, now: float, sender_copy: StoredBundle | None = None
    ) -> None:
        """Initialise per-copy state (TTL) after storing a received copy."""

    # ------------------------------------------------------------ destination

    def on_delivered(self, bundle: Bundle, now: float) -> None:
        """Called at the destination when ``bundle`` is delivered."""


__all__ = ["ControlMessage", "Protocol", "SimulationServices"]
