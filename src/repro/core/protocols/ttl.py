"""Epidemic with constant TTL (Harras et al. 2005) and the dynamic-TTL
enhancement (paper Section III, Algorithm 1).

Constant TTL: every *relayed* copy expires ``ttl`` seconds after it was
stored; a successful transmission renews the TTL of both copies (the
sender's relay copy is refreshed, the receiver's copy starts fresh). The
source's origin copies are the application queue and carry no TTL —
otherwise the per-contact transfer capacity (a handful of bundles) could
never keep a 50-bundle queue alive and delivery would collapse to zero at
every load, which is not what the paper measures. The premature-discard
failure mode of Figs 13–14 is the *relay* copies dying: when the typical
encounter interval exceeds the TTL, forwarded copies evaporate before their
next transmission opportunity and delivery degenerates to whatever the
source can push directly.

Dynamic TTL (enhancement): instead of a constant, each node sets
``TTL = multiplier × (interval between its last two encounters)`` — Algo 1
uses multiplier 2. Crucially, the TTL is re-armed for **every buffered
copy at every encounter** (SetDynamicTTL runs whenever the node's interval
estimate updates): a copy therefore expires only when the node's next
encounter takes more than ``multiplier ×`` its usual rhythm — an adaptive
dry-spell garbage collector, which is what the paper's intuition ("bundles
should be buffered according to the interval between two encounters")
describes. Sparse neighbourhoods (long intervals) buffer bundles longer;
dense ones recycle buffer space quickly; diurnal gaps purge overnight.
Until a node has observed two encounters it has no interval estimate and
the copy gets ``default_ttl`` (infinite by default — nothing is discarded
on a cold start).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.bundle import NO_EXPIRY, StoredBundle
from repro.core.protocols.base import Protocol

if TYPE_CHECKING:  # pragma: no cover - typing only
    import numpy as np

    from repro.core.node import Node
    from repro.core.protocols.base import SimulationServices


class FixedTTLEpidemic(Protocol):
    """Epidemic flooding with a constant per-copy TTL."""

    name = "ttl"

    def __init__(self, node, sim, rng, *, ttl: float, expire_origin: bool = False) -> None:  # type: ignore[no-untyped-def]
        super().__init__(node, sim, rng)
        self.ttl = ttl
        self.expire_origin = expire_origin

    def _arm(self, sb: StoredBundle, now: float) -> None:
        if sb.is_origin and not self.expire_origin:
            return  # the application queue carries no TTL
        self.sim.set_expiry(self.node, sb, now + self.ttl)

    def on_bundle_created(self, sb: StoredBundle, now: float) -> None:
        if self.expire_origin:
            self._arm(sb, now)

    def on_copy_received(
        self, sb: StoredBundle, now: float, sender_copy: StoredBundle | None = None
    ) -> None:
        self._arm(sb, now)

    def on_transmitted(self, sb: StoredBundle, peer: Node, now: float) -> None:
        super().on_transmitted(sb, peer, now)
        self._arm(sb, now)  # renewal: forwarding proves the copy is useful


@dataclass(frozen=True)
class FixedTTLConfig:
    """Factory for :class:`FixedTTLEpidemic`.

    Attributes:
        ttl: Constant TTL in seconds (paper sweeps 50–300; figures use 300).
        expire_origin: Also expire the source's own queue. Off by default
            (the application queue outliving the TTL is the physically
            sensible reading); turning it on reproduces the *collapse*
            regime of the paper's RWP study, where constant-TTL delivery
            drops to ~25% because bundles die at the source before their
            first transmission opportunity.
    """

    ttl: float = 300.0
    expire_origin: bool = False
    protocol_name = "ttl"

    def __post_init__(self) -> None:
        if not (self.ttl > 0):
            raise ValueError(f"ttl must be positive, got {self.ttl}")

    @property
    def label(self) -> str:
        suffix = ", origin expires" if self.expire_origin else ""
        return f"Epidemic with TTL={self.ttl:g}{suffix}"

    def build(
        self, node: Node, sim: SimulationServices, rng: np.random.Generator
    ) -> FixedTTLEpidemic:
        return FixedTTLEpidemic(
            node, sim, rng, ttl=self.ttl, expire_origin=self.expire_origin
        )


class DynamicTTLEpidemic(Protocol):
    """Enhancement 1: TTL = multiplier × the node's last encounter interval."""

    name = "dynamic_ttl"

    def __init__(
        self, node, sim, rng, *, multiplier: float, default_ttl: float,  # type: ignore[no-untyped-def]
        expire_origin: bool = False,
    ) -> None:
        super().__init__(node, sim, rng)
        self.multiplier = multiplier
        self.default_ttl = default_ttl
        self.expire_origin = expire_origin

    def _current_ttl(self) -> float:
        interval = self.node.history.last_interval
        if interval is None:
            return self.default_ttl
        return self.multiplier * interval

    def _arm(self, sb: StoredBundle, now: float) -> None:
        if sb.is_origin and not self.expire_origin:
            return  # the application queue carries no TTL
        ttl = self._current_ttl()
        expiry = NO_EXPIRY if math.isinf(ttl) else now + ttl
        self.sim.set_expiry(self.node, sb, expiry)

    def on_bundle_created(self, sb: StoredBundle, now: float) -> None:
        if self.expire_origin:
            self._arm(sb, now)

    def on_copy_received(
        self, sb: StoredBundle, now: float, sender_copy: StoredBundle | None = None
    ) -> None:
        self._arm(sb, now)

    def on_transmitted(self, sb: StoredBundle, peer: Node, now: float) -> None:
        super().on_transmitted(sb, peer, now)
        self._arm(sb, now)

    def on_encounter_started(self, peer: Node, now: float) -> None:
        # SetDynamicTTL re-runs for every buffered copy whenever the node's
        # interval estimate updates — the adaptive dry-spell collector.
        for sb in self.node.relay:
            self._arm(sb, now)
        if self.expire_origin:
            for sb in list(self.node.origin.values()):
                self._arm(sb, now)


@dataclass(frozen=True)
class DynamicTTLConfig:
    """Factory for :class:`DynamicTTLEpidemic`.

    Attributes:
        multiplier: TTL = multiplier × last inter-encounter interval
            (Algorithm 1 uses 2.0).
        default_ttl: TTL before a node has an interval estimate; infinite
            by default (no cold-start discards).
    """

    multiplier: float = 2.0
    default_ttl: float = math.inf
    expire_origin: bool = False
    protocol_name = "dynamic_ttl"

    def __post_init__(self) -> None:
        if not (self.multiplier > 0):
            raise ValueError(f"multiplier must be positive, got {self.multiplier}")
        if not (self.default_ttl > 0):
            raise ValueError(f"default_ttl must be positive, got {self.default_ttl}")

    @property
    def label(self) -> str:
        suffix = ", origin expires" if self.expire_origin else ""
        return f"Epidemic with dynamic TTL (x{self.multiplier:g}{suffix})"

    def build(
        self, node: Node, sim: SimulationServices, rng: np.random.Generator
    ) -> DynamicTTLEpidemic:
        return DynamicTTLEpidemic(
            node,
            sim,
            rng,
            multiplier=self.multiplier,
            default_ttl=self.default_ttl,
            expire_origin=self.expire_origin,
        )
