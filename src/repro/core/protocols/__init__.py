"""Epidemic routing protocol implementations (the paper's taxonomy).

Baselines: pure epidemic, P-Q epidemic, epidemic with constant TTL,
epidemic with encounter count (EC), epidemic with per-bundle immunity.

Enhancements: dynamic TTL (Algo 1), EC+TTL (Algo 2), cumulative immunity.

Protocols are policy objects bound to one node each; see
:mod:`repro.core.protocols.base` for the hook contract and
:mod:`repro.core.protocols.registry` for name-based construction.
"""

from repro.core.protocols.base import ControlMessage, Protocol, SimulationServices
from repro.core.protocols.ec import ECConfig, ECEpidemic, ECTTLConfig, ECTTLEpidemic
from repro.core.protocols.immunity import (
    CumulativeImmunityConfig,
    CumulativeImmunityEpidemic,
    ImmunityConfig,
    ImmunityEpidemic,
)
from repro.core.protocols.pq import PQEpidemic, PQEpidemicConfig
from repro.core.protocols.pure import PureEpidemic, PureEpidemicConfig
from repro.core.protocols.registry import (
    ProtocolConfig,
    default_baseline_configs,
    default_enhanced_configs,
    make_protocol_config,
    protocol_names,
    register_protocol,
)
from repro.core.protocols.ttl import (
    DynamicTTLConfig,
    DynamicTTLEpidemic,
    FixedTTLConfig,
    FixedTTLEpidemic,
)

__all__ = [
    "ControlMessage",
    "Protocol",
    "SimulationServices",
    "ProtocolConfig",
    "PureEpidemic",
    "PureEpidemicConfig",
    "PQEpidemic",
    "PQEpidemicConfig",
    "FixedTTLEpidemic",
    "FixedTTLConfig",
    "DynamicTTLEpidemic",
    "DynamicTTLConfig",
    "ECEpidemic",
    "ECConfig",
    "ECTTLEpidemic",
    "ECTTLConfig",
    "ImmunityEpidemic",
    "ImmunityConfig",
    "CumulativeImmunityEpidemic",
    "CumulativeImmunityConfig",
    "default_baseline_configs",
    "default_enhanced_configs",
    "make_protocol_config",
    "protocol_names",
    "register_protocol",
]
