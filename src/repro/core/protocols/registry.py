"""Protocol registry: name → configuration factory.

The registry decouples experiment definitions (which refer to protocols by
name + keyword overrides) from the implementations, and gives downstream
users a single extension point::

    from repro.core.protocols import register_protocol

    @register_protocol
    @dataclass(frozen=True)
    class MyConfig:
        protocol_name = "mine"
        ...
"""

from __future__ import annotations

from collections.abc import Iterable
from typing import TYPE_CHECKING, Any, Protocol as TypingProtocol

if TYPE_CHECKING:  # pragma: no cover - typing only
    import numpy as np

    from repro.core.node import Node
    from repro.core.protocols.base import Protocol, SimulationServices


class ProtocolConfig(TypingProtocol):
    """Structural type every protocol configuration satisfies."""

    protocol_name: str

    @property
    def label(self) -> str: ...

    def build(
        self, node: Node, sim: SimulationServices, rng: np.random.Generator
    ) -> Protocol: ...


_REGISTRY: dict[str, type] = {}


def register_protocol(config_cls: type) -> type:
    """Class decorator: add a config class to the registry.

    Raises:
        ValueError: if the class lacks ``protocol_name`` or the name is
            already taken by a different class.
    """
    name = getattr(config_cls, "protocol_name", None)
    if not name:
        raise ValueError(f"{config_cls.__name__} must define protocol_name")
    existing = _REGISTRY.get(name)
    if existing is not None and existing is not config_cls:
        raise ValueError(
            f"protocol name {name!r} already registered by {existing.__name__}"
        )
    _REGISTRY[name] = config_cls
    return config_cls


def protocol_names() -> list[str]:
    """All registered protocol names, sorted."""
    return sorted(_REGISTRY)


def make_protocol_config(name: str, **overrides: Any) -> ProtocolConfig:
    """Instantiate a registered protocol configuration.

    Args:
        name: Registry name (e.g. ``"pq"``, ``"dynamic_ttl"``).
        **overrides: Constructor keyword arguments (e.g. ``p=0.5``).

    Raises:
        KeyError: for an unknown name (message lists what is available).
    """
    try:
        cls = _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown protocol {name!r}; available: {', '.join(protocol_names())}"
        ) from None
    return cls(**overrides)


def default_baseline_configs() -> list[ProtocolConfig]:
    """The four baseline protocols as the paper's figures parameterise them."""
    return [
        make_protocol_config("pq", p=1.0, q=1.0),
        make_protocol_config("ttl", ttl=300.0),
        make_protocol_config("ec"),
        make_protocol_config("immunity"),
    ]


def default_enhanced_configs() -> list[ProtocolConfig]:
    """The three enhancements with Algorithm 1/2 defaults."""
    return [
        make_protocol_config("dynamic_ttl"),
        make_protocol_config("ec_ttl"),
        make_protocol_config("cumulative_immunity"),
    ]


def _register_builtins() -> None:
    from repro.core.protocols.ec import ECConfig, ECTTLConfig
    from repro.core.protocols.extensions import ProphetConfig, SprayAndWaitConfig
    from repro.core.protocols.immunity import CumulativeImmunityConfig, ImmunityConfig
    from repro.core.protocols.pq import PQEpidemicConfig
    from repro.core.protocols.pure import PureEpidemicConfig
    from repro.core.protocols.ttl import DynamicTTLConfig, FixedTTLConfig

    for cls in (
        PureEpidemicConfig,
        PQEpidemicConfig,
        FixedTTLConfig,
        DynamicTTLConfig,
        ECConfig,
        ECTTLConfig,
        ImmunityConfig,
        CumulativeImmunityConfig,
        SprayAndWaitConfig,
        ProphetConfig,
    ):
        register_protocol(cls)


def iter_registry() -> Iterable[tuple[str, type]]:
    """(name, config class) pairs, sorted by name."""
    return sorted(_REGISTRY.items())


_register_builtins()
