"""P-Q epidemic routing (Matsuda & Takine 2008).

Probabilistic transmission on top of pure epidemic: at an encounter, a
bundle is offered with probability *P* when the offering node is the
bundle's *source* and with probability *Q* otherwise. The coin is flipped
once per (bundle, contact); a failed flip skips the bundle for the
remainder of that contact. With P = Q = 1 the behaviour degenerates to pure
epidemic, which the paper uses as its best-delay reference.

On anti-packets: Matsuda & Takine's protocol (and the paper's background
section) pairs the coins with anti-packet purging, but the paper's
*evaluation* explicitly observes that its P-Q "does not have any mechanism
to purge these bundles" once delivered (Section V-A, the >80% buffer
occupancy discussion) — i.e. the evaluated P-Q is coins-only. We therefore
default ``anti_packets=False`` to reproduce the figures, and keep the flag
for the protocol as originally published (:class:`PQAntiPacketEpidemic`).

The two variants sit on opposite sides of the knowledge layer:
coins-only P-Q is *encounter-inert* (no control state, so the simulation
batches its zero-transfer contacts at the trace layer), while the
anti-packet variant inherits the epoch-versioned
:class:`~repro.core.knowledge.KnowledgeStore` from the substrate and with
it the cached control payload and unchanged-epoch exchange elision.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.bundle import StoredBundle
from repro.core.protocols.antipacket import AntiPacketProtocol
from repro.core.protocols.base import Protocol

if TYPE_CHECKING:  # pragma: no cover - typing only
    import numpy as np

    from repro.core.node import Node
    from repro.core.protocols.base import SimulationServices


class _PQCoinMixin:
    """The P/Q transmission coin, shared by both P-Q variants."""

    p: float
    q: float

    def should_offer(self, sb: StoredBundle, peer: Node, now: float) -> bool:
        prob = self.p if sb.bundle.source == self.node.id else self.q  # type: ignore[attr-defined]
        if prob >= 1.0:
            return True
        if prob <= 0.0:
            return False
        return bool(self.rng.random() < prob)  # type: ignore[attr-defined]


class PQEpidemic(_PQCoinMixin, Protocol):
    """P-Q epidemic as the paper evaluates it: coins, no purging."""

    name = "pq"

    def __init__(self, node, sim, rng, *, p: float, q: float) -> None:  # type: ignore[no-untyped-def]
        super().__init__(node, sim, rng)
        self.p = p
        self.q = q


class PQAntiPacketEpidemic(_PQCoinMixin, AntiPacketProtocol):
    """P-Q epidemic as originally published: coins plus anti-packets."""

    name = "pq"
    control_kind = "anti_packet"

    def __init__(self, node, sim, rng, *, p: float, q: float) -> None:  # type: ignore[no-untyped-def]
        super().__init__(node, sim, rng)
        self.p = p
        self.q = q


@dataclass(frozen=True)
class PQEpidemicConfig:
    """Factory for P-Q epidemic.

    Attributes:
        p: Source transmission probability (paper sweeps 0.1, 0.5, 1).
        q: Relay transmission probability.
        anti_packets: Enable anti-packet purging (off in the paper's
            evaluation; see module docstring).
    """

    p: float = 1.0
    q: float = 1.0
    anti_packets: bool = False
    protocol_name = "pq"

    def __post_init__(self) -> None:
        for label, v in (("p", self.p), ("q", self.q)):
            if not (0.0 <= v <= 1.0):
                raise ValueError(f"{label} must be a probability, got {v}")

    @property
    def label(self) -> str:
        suffix = ", anti-packets" if self.anti_packets else ""
        return f"P-Q epidemic (P={self.p:g}, Q={self.q:g}{suffix})"

    def build(
        self, node: Node, sim: SimulationServices, rng: np.random.Generator
    ) -> Protocol:
        cls = PQAntiPacketEpidemic if self.anti_packets else PQEpidemic
        return cls(node, sim, rng, p=self.p, q=self.q)
