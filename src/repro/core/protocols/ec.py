"""Epidemic with Encounter Count (Davis et al. 2001) and the EC+TTL
enhancement (paper Section III, Algorithm 2).

**Plain EC**: every copy carries an encounter count, incremented on each
transmission and inherited by the receiver's new copy. Buffers never discard
proactively; when a *full* buffer receives a new (never-seen) bundle, the
stored copy with the highest EC is evicted to make room — a high EC means
the bundle is widely duplicated and can be sacrificed. Undelivered/new
bundles always win over stored high-EC ones (the paper's bundle-9 worked
example). The result: buffers run at capacity and copies are only recycled
under pressure, producing the high occupancy and long delays of Figs 7–12.

**EC+TTL (enhancement)**: two extra rules —

* *Minimum EC before deletion*: a copy that has never been forwarded
  (EC < ``min_ec_evict``) must not be evicted; this protects rare bundles
  with low duplication rates.
* *EC-triggered ageing*: once a copy's EC exceeds ``ec_threshold`` it gets
  ``TTL = ttl_base − (EC − threshold) × ttl_step`` (Algorithm 2: base 300 s,
  step 100 s, threshold 8). Heavily duplicated bundles age out fast, freeing
  buffer for undelivered ones. A copy whose next transmission would assign a
  non-positive TTL is no longer offered — it is too duplicated to be worth
  propagating.

Both EC variants are policy over the *buffer*, not the control plane: they
keep no delivery knowledge, so they are *encounter-inert*
(``Protocol.encounter_inert``) and the simulation batches their
zero-transfer contacts at the trace layer instead of dispatching one event
each (see ``Simulation.run``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.bundle import Bundle, StoredBundle
from repro.core.protocols.base import Protocol

if TYPE_CHECKING:  # pragma: no cover - typing only
    import numpy as np

    from repro.core.node import Node
    from repro.core.protocols.base import SimulationServices


class ECEpidemic(Protocol):
    """Encounter-count replacement policy over epidemic flooding."""

    name = "ec"

    #: Copies with EC below this are protected from eviction (0 = none).
    min_ec_evict: int = 0

    def can_accept(self, bundle: Bundle, now: float) -> bool:
        if bundle.destination == self.node.id:
            return True
        if not self.node.relay.is_full:
            return True
        return self.node.relay.max_ec_entry(min_ec=self.min_ec_evict) is not None

    def _make_room(self, incoming: Bundle, ec: int, now: float) -> bool:
        # EC's eviction rule IS the protocol; it does not consult the
        # node's configured drop policy. Drops are charged to "max-ec".
        victim = self.node.relay.max_ec_entry(
            min_ec=self.min_ec_evict, exclude=incoming.bid
        )
        if victim is None:
            return False
        self.sim.evict_copy(self.node, victim.bid, policy="max-ec")
        return True


@dataclass(frozen=True)
class ECConfig:
    """Factory for :class:`ECEpidemic` (no parameters)."""

    protocol_name = "ec"

    @property
    def label(self) -> str:
        return "Epidemic with EC"

    def build(
        self, node: Node, sim: SimulationServices, rng: np.random.Generator
    ) -> ECEpidemic:
        return ECEpidemic(node, sim, rng)


class ECTTLEpidemic(ECEpidemic):
    """Enhancement 2: EC-protected eviction plus EC-triggered ageing."""

    name = "ec_ttl"

    def __init__(
        self,
        node,  # type: ignore[no-untyped-def]
        sim,
        rng,
        *,
        ec_threshold: int,
        ttl_base: float,
        ttl_step: float,
        min_ec_evict: int,
    ) -> None:
        super().__init__(node, sim, rng)
        self.ec_threshold = ec_threshold
        self.ttl_base = ttl_base
        self.ttl_step = ttl_step
        self.min_ec_evict = min_ec_evict

    def _ttl_for_ec(self, ec: int) -> float | None:
        """Algorithm 2's schedule; None while EC is at/below the threshold."""
        if ec <= self.ec_threshold:
            return None
        return self.ttl_base - (ec - self.ec_threshold) * self.ttl_step

    def _apply_ageing(self, sb: StoredBundle, now: float) -> None:
        if sb.is_origin:
            return  # the application queue is never aged out
        ttl = self._ttl_for_ec(sb.ec)
        if ttl is None:
            return
        if ttl <= 0:
            self.sim.remove_copy(self.node, sb.bid, reason="ec-aged-out")
            return
        self.sim.set_expiry(self.node, sb, now + ttl)

    def should_offer(self, sb: StoredBundle, peer: Node, now: float) -> bool:
        if sb.bundle.destination == peer.id:
            return True  # delivering to the destination is always worth it
        ttl_after = self._ttl_for_ec(sb.ec + 1)
        if ttl_after is not None and ttl_after <= 0:
            return False  # over-duplicated: not worth another transmission
        return True

    def on_transmitted(self, sb: StoredBundle, peer: Node, now: float) -> None:
        super().on_transmitted(sb, peer, now)  # ec += 1
        self._apply_ageing(sb, now)

    def on_copy_received(
        self, sb: StoredBundle, now: float, sender_copy: StoredBundle | None = None
    ) -> None:
        self._apply_ageing(sb, now)


@dataclass(frozen=True)
class ECTTLConfig:
    """Factory for :class:`ECTTLEpidemic` (Algorithm 2 defaults).

    Attributes:
        ec_threshold: Transmissions before ageing starts (paper: 8).
        ttl_base: TTL granted when the threshold is first exceeded
            (paper: 300 s).
        ttl_step: TTL reduction per additional transmission (paper: 100 s).
        min_ec_evict: Minimum EC a stored copy needs before it may be
            evicted on buffer pressure (the enhancement's "minimum EC value
            before nodes are allowed to delete a bundle"; 1 = a copy must
            have been forwarded at least once).
    """

    ec_threshold: int = 8
    ttl_base: float = 300.0
    ttl_step: float = 100.0
    min_ec_evict: int = 1
    protocol_name = "ec_ttl"

    def __post_init__(self) -> None:
        if self.ec_threshold < 0:
            raise ValueError("ec_threshold must be >= 0")
        if self.ttl_base <= 0 or self.ttl_step < 0:
            raise ValueError("need ttl_base > 0 and ttl_step >= 0")
        if self.min_ec_evict < 0:
            raise ValueError("min_ec_evict must be >= 0")

    @property
    def label(self) -> str:
        return f"Epidemic with EC+TTL (thr={self.ec_threshold})"

    def build(
        self, node: Node, sim: SimulationServices, rng: np.random.Generator
    ) -> ECTTLEpidemic:
        return ECTTLEpidemic(
            node,
            sim,
            rng,
            ec_threshold=self.ec_threshold,
            ttl_base=self.ttl_base,
            ttl_step=self.ttl_step,
            min_ec_evict=self.min_ec_evict,
        )
