"""Pure epidemic routing (Vahdat & Becker 2002).

The baseline of the taxonomy: at every encounter the two nodes run an
anti-entropy session — exchange summary vectors and transfer every bundle the
peer lacks, as capacity allows. Copies are never purged or expired, so buffer
occupancy only ever grows (the limitation motivating all other variants).

This is exactly the behaviour of the :class:`~repro.core.protocols.base.Protocol`
base class; the subclass exists so the registry and reports have an explicit
name for it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.protocols.base import Protocol

if TYPE_CHECKING:  # pragma: no cover - typing only
    import numpy as np

    from repro.core.node import Node
    from repro.core.protocols.base import SimulationServices


class PureEpidemic(Protocol):
    """Summary-vector flooding with drop-tail buffers."""

    name = "pure"


@dataclass(frozen=True)
class PureEpidemicConfig:
    """Factory for :class:`PureEpidemic` (no parameters)."""

    protocol_name = "pure"

    @property
    def label(self) -> str:
        """Human-readable protocol label for reports."""
        return "Pure epidemic"

    def build(
        self, node: Node, sim: SimulationServices, rng: np.random.Generator
    ) -> PureEpidemic:
        """Bind a protocol instance to ``node``."""
        return PureEpidemic(node, sim, rng)
