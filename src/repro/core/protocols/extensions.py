"""Extension protocols beyond the paper's four categories.

The paper's taxonomy (Section I) lists three DTN routing families:
epidemic, data-ferry, and *statistical*. These reference implementations
put the unified framework to the use the paper advertises — "an important
guide to future protocol designers":

* :class:`BinarySprayAndWait` (Spyropoulos et al.) — controlled
  replication: a bundle starts with L copy tokens; every transfer hands
  half of the sender's tokens to the receiver; one-token copies wait for
  the destination. Bounds total copies at L regardless of load.
* :class:`Prophet` (Lindgren et al.) — the statistical family: nodes
  maintain delivery predictabilities P(a, b), aged over time, boosted on
  encounters and propagated transitively; a bundle is only forwarded to
  peers more likely to meet its destination.

Both slot into the same sweeps/benches as the paper's protocols, so the
comparison the paper *didn't* run (flooding vs controlled replication vs
utility forwarding on identical inputs) is one `run_sweep` call away.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.bundle import StoredBundle
from repro.core.protocols.base import ControlMessage, Protocol

if TYPE_CHECKING:  # pragma: no cover - typing only
    import numpy as np

    from repro.core.node import Node
    from repro.core.protocols.base import SimulationServices

_TOKENS = "spray_tokens"
_GRANT = "spray_grant"


class BinarySprayAndWait(Protocol):
    """Controlled replication with binary token splitting."""

    name = "spray_wait"

    def __init__(self, node, sim, rng, *, initial_tokens: int) -> None:  # type: ignore[no-untyped-def]
        super().__init__(node, sim, rng)
        self.initial_tokens = initial_tokens

    def on_bundle_created(self, sb: StoredBundle, now: float) -> None:
        sb.meta[_TOKENS] = self.initial_tokens

    def should_offer(self, sb: StoredBundle, peer: Node, now: float) -> bool:
        if sb.bundle.destination == peer.id:
            return True  # the wait phase: direct delivery is always allowed
        return sb.meta.get(_TOKENS, 1) > 1

    def confirm_transfer(self, sb: StoredBundle, peer: Node, now: float) -> bool:
        # a concurrent contact may have spent the tokens mid-flight
        return self.should_offer(sb, peer, now)

    def on_transmitted(self, sb: StoredBundle, peer: Node, now: float) -> None:
        super().on_transmitted(sb, peer, now)
        if sb.bundle.destination == peer.id:
            return  # delivery consumes no tokens
        tokens = sb.meta.get(_TOKENS, 1)
        keep = math.ceil(tokens / 2)
        sb.meta[_TOKENS] = keep
        sb.meta[_GRANT] = tokens - keep

    def on_copy_received(
        self, sb: StoredBundle, now: float, sender_copy: StoredBundle | None = None
    ) -> None:
        grant = 1
        if sender_copy is not None:
            grant = sender_copy.meta.pop(_GRANT, 1)
        sb.meta[_TOKENS] = max(1, grant)


@dataclass(frozen=True)
class SprayAndWaitConfig:
    """Factory for :class:`BinarySprayAndWait`.

    Attributes:
        initial_tokens: L, the total copies a bundle may ever have
            (Spyropoulos et al. suggest L ≈ a fraction of N; default 6
            for the paper's 12-node settings).
    """

    initial_tokens: int = 6
    protocol_name = "spray_wait"

    def __post_init__(self) -> None:
        if self.initial_tokens < 1:
            raise ValueError("initial_tokens must be >= 1")

    @property
    def label(self) -> str:
        return f"Binary Spray-and-Wait (L={self.initial_tokens})"

    def build(
        self, node: Node, sim: SimulationServices, rng: np.random.Generator
    ) -> BinarySprayAndWait:
        return BinarySprayAndWait(node, sim, rng, initial_tokens=self.initial_tokens)


class Prophet(Protocol):
    """PRoPHET: probabilistic routing using history of encounters."""

    name = "prophet"

    def __init__(
        self,
        node,  # type: ignore[no-untyped-def]
        sim,
        rng,
        *,
        p_init: float,
        gamma: float,
        beta: float,
        age_unit: float,
    ) -> None:
        super().__init__(node, sim, rng)
        self.p_init = p_init
        self.gamma = gamma
        self.beta = beta
        self.age_unit = age_unit
        self._p: dict[int, float] = {}
        self._last_aged = 0.0
        self._peer_tables: dict[int, dict[int, float]] = {}

    # ------------------------------------------------------------ estimator

    def predictability(self, node_id: int) -> float:
        """Current P(self, node_id)."""
        return self._p.get(node_id, 0.0)

    def _age(self, now: float) -> None:
        elapsed = now - self._last_aged
        if elapsed <= 0:
            return
        factor = self.gamma ** (elapsed / self.age_unit)
        for key in list(self._p):
            self._p[key] *= factor
            if self._p[key] < 1e-6:
                del self._p[key]
        self._last_aged = now

    def on_encounter_started(self, peer: Node, now: float) -> None:
        self._age(now)
        prev = self._p.get(peer.id, 0.0)
        self._p[peer.id] = prev + (1.0 - prev) * self.p_init

    # ---------------------------------------------------------- control plane

    def control_payload(self, now: float) -> ControlMessage:
        self._age(now)
        return ControlMessage(
            sender=self.node.id,
            summary=self._summary(),
            extras={"prophet_p": dict(self._p)},
        )

    def receive_control(self, msg: ControlMessage, now: float) -> None:
        peer_p = msg.extras.get("prophet_p", {})
        if not isinstance(peer_p, dict):
            return
        self._peer_tables[msg.sender] = dict(peer_p)
        # transitivity: P(a,c) >= P(a,b) * P(b,c) * beta
        p_ab = self._p.get(msg.sender, 0.0)
        for dest, p_bc in peer_p.items():
            if dest == self.node.id:
                continue
            candidate = p_ab * float(p_bc) * self.beta
            if candidate > self._p.get(dest, 0.0):
                self._p[dest] = candidate

    # ------------------------------------------------------------- forwarding

    def should_offer(self, sb: StoredBundle, peer: Node, now: float) -> bool:
        dest = sb.bundle.destination
        if dest == peer.id:
            return True
        peer_table = self._peer_tables.get(peer.id, {})
        return float(peer_table.get(dest, 0.0)) > self.predictability(dest)


@dataclass(frozen=True)
class ProphetConfig:
    """Factory for :class:`Prophet` (Lindgren et al. defaults).

    Attributes:
        p_init: Encounter boost (0.75 in the PRoPHET draft).
        gamma: Ageing constant per ``age_unit`` (0.98).
        beta: Transitivity damping (0.25).
        age_unit: Seconds per ageing step; DTN time scales call for
            minutes, not the draft's seconds.
    """

    p_init: float = 0.75
    gamma: float = 0.98
    beta: float = 0.25
    age_unit: float = 60.0
    protocol_name = "prophet"

    def __post_init__(self) -> None:
        for label, v in (("p_init", self.p_init), ("gamma", self.gamma), ("beta", self.beta)):
            if not (0.0 < v <= 1.0):
                raise ValueError(f"{label} must be in (0, 1], got {v}")
        if self.age_unit <= 0:
            raise ValueError("age_unit must be positive")

    @property
    def label(self) -> str:
        return f"PRoPHET (Pinit={self.p_init:g})"

    def build(
        self, node: Node, sim: SimulationServices, rng: np.random.Generator
    ) -> Prophet:
        return Prophet(
            node,
            sim,
            rng,
            p_init=self.p_init,
            gamma=self.gamma,
            beta=self.beta,
            age_unit=self.age_unit,
        )
