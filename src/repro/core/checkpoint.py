"""Per-cell checkpoint journal — sweep campaigns that survive crashes.

A multi-hour replication campaign used to be all-or-nothing: kill the
process at cell 199 of 200 and every completed :class:`RunResult` was
gone. The :class:`CheckpointJournal` fixes that with two files in a
*campaign directory*:

``manifest.json``
    Written atomically once, up front. Carries the journal schema
    version and the **campaign fingerprint** — master seed, loads,
    replications, protocol labels, trace names, engine — so a resume
    against the wrong campaign (different seed, different grid) is
    refused instead of silently mixing results.

``journal.jsonl``
    Append-only; one JSON record per *completed* cell, flushed and
    fsynced before the cell counts as done::

        {"v": 1, "key": {"protocol": "<label>", "load": 5, "rep": 0},
         "result": {...RunResult.to_dict()...}}

    A crash can only tear the final record (a partial line with no
    terminating newline); on load that tail is dropped — and truncated
    away so later appends start clean — and the torn cell simply
    re-runs. A *terminated* record that fails to parse cannot come from
    a torn append, so it is treated as a poisoned journal and refused.

Resume is **exact**, not approximate: every cell's randomness derives
from its own ``(master_seed, protocol, load, rep)`` coordinates (see
:mod:`repro.core.sweep`), and :meth:`RunResult.to_dict` round-trips
every field losslessly through JSON, so a campaign killed mid-flight
and resumed reconstructs a :class:`~repro.core.results.SweepResult`
bit-identical to an uninterrupted run.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from collections.abc import Mapping
from typing import TYPE_CHECKING, TextIO

from repro.core.results import RunResult
from repro.ioutil import atomic_write

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.executors import Cell

__all__ = [
    "SCHEMA_VERSION",
    "CellKey",
    "CheckpointError",
    "CheckpointJournal",
    "cell_key",
]

#: Journal/manifest schema version; bumped on incompatible layout changes.
SCHEMA_VERSION = 1

#: ``(protocol label, load, rep)`` — a cell's coordinates in the journal.
#: The *label* (not the registry name) keys the record so two parameter
#: variants of one protocol (e.g. P-Q at different P) never collide.
CellKey = tuple[str, int, int]


class CheckpointError(RuntimeError):
    """A campaign directory cannot be (re)used: corrupt, mismatched, or
    already populated without ``resume``."""


def cell_key(cell: "Cell") -> CellKey:
    """The journal key of a sweep cell."""
    return (cell.protocol.label, cell.load, cell.rep)


class CheckpointJournal:
    """Crash-safe per-cell result journal over a campaign directory.

    Usage (``run_sweep`` does all of this for you)::

        journal = CheckpointJournal(directory, resume=True)
        journal.begin(fingerprint)          # create/validate + load records
        cached = journal.get(key)           # skip journaled cells
        journal.record(key, result)         # as each new cell completes
        journal.close()

    Args:
        directory: The campaign directory (created on :meth:`begin`).
        resume: Continue an existing campaign. When False (default), a
            directory that already holds journaled cells is refused —
            an accidental re-run must not silently resume, and a
            deliberate resume must not silently start over.
    """

    MANIFEST_NAME = "manifest.json"
    JOURNAL_NAME = "journal.jsonl"

    def __init__(self, directory: str | Path, *, resume: bool = False) -> None:
        self.directory = Path(directory)
        self.resume = resume
        #: True when a torn (half-written) trailing record was discarded.
        self.dropped_partial = False
        self._records: dict[CellKey, RunResult] = {}
        self._stream: TextIO | None = None

    # ------------------------------------------------------------ lifecycle

    @property
    def manifest_path(self) -> Path:
        return self.directory / self.MANIFEST_NAME

    @property
    def journal_path(self) -> Path:
        return self.directory / self.JOURNAL_NAME

    def begin(self, fingerprint: Mapping[str, object]) -> None:
        """Create or validate the campaign directory and load its records.

        Args:
            fingerprint: JSON-safe identity of the campaign (see
                :func:`repro.core.sweep.campaign_fingerprint`). A new
                directory stores it; an existing one must match it.

        Raises:
            CheckpointError: on schema/fingerprint mismatch, a poisoned
                journal, or an already-populated directory without
                ``resume=True``.
        """
        fingerprint = json.loads(json.dumps(dict(fingerprint)))
        self.directory.mkdir(parents=True, exist_ok=True)
        if self.manifest_path.exists():
            self._check_manifest(fingerprint)
        else:
            if self.journal_path.exists() and self.journal_path.stat().st_size:
                raise CheckpointError(
                    f"{self.directory}: journal without a manifest — the "
                    "campaign directory is corrupt; use a fresh directory"
                )
            atomic_write(
                self.manifest_path,
                lambda fh: json.dump(
                    {"schema": SCHEMA_VERSION, "campaign": fingerprint},
                    fh,
                    indent=2,
                ),
            )
        if self.journal_path.exists():
            self._load_journal()
        if self._records and not self.resume:
            raise CheckpointError(
                f"{self.directory} already holds {len(self._records)} "
                "journaled cell(s); pass resume=True (CLI: --resume) to "
                "continue the campaign, or point the checkpoint at a "
                "fresh directory"
            )
        self._stream = open(self.journal_path, "a", encoding="utf-8")

    def close(self) -> None:
        """Close the append stream (idempotent)."""
        if self._stream is not None:
            self._stream.close()
            self._stream = None

    def __enter__(self) -> CheckpointJournal:
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # ------------------------------------------------------------- reading

    def _check_manifest(self, fingerprint: dict[str, object]) -> None:
        try:
            manifest = json.loads(self.manifest_path.read_text(encoding="utf-8"))
        except ValueError as exc:
            raise CheckpointError(
                f"{self.manifest_path}: unreadable manifest: {exc}"
            ) from exc
        schema = manifest.get("schema") if isinstance(manifest, dict) else None
        if schema != SCHEMA_VERSION:
            raise CheckpointError(
                f"{self.manifest_path}: schema version {schema!r} does not "
                f"match this build's {SCHEMA_VERSION} — the journal format "
                "changed; re-run the campaign in a fresh directory"
            )
        stored = manifest.get("campaign")
        if stored != fingerprint:
            raise CheckpointError(
                f"{self.directory}: campaign fingerprint mismatch — the "
                "checkpoint belongs to a different sweep (seed, grid, "
                "protocols, trace, or engine differ)\n"
                f"  journal: {json.dumps(stored, sort_keys=True)}\n"
                f"  request: {json.dumps(fingerprint, sort_keys=True)}"
            )

    def _load_journal(self) -> None:
        raw = self.journal_path.read_bytes()
        keep = raw
        if raw and not raw.endswith(b"\n"):
            # a torn append: drop (and truncate away) the partial tail so
            # the next append starts on a clean line boundary
            cut = raw.rfind(b"\n") + 1
            keep = raw[:cut]
            self.dropped_partial = True
        for line_no, line in enumerate(keep.decode("utf-8").splitlines(), start=1):
            if not line.strip():
                continue
            try:
                key, result = self._parse_record(line)
            except CheckpointError:
                raise
            except (ValueError, KeyError, TypeError) as exc:
                raise CheckpointError(
                    f"{self.journal_path}: poisoned journal record at line "
                    f"{line_no}: {exc}"
                ) from exc
            self._records[key] = result
        if self.dropped_partial:
            with open(self.journal_path, "rb+") as fh:
                fh.truncate(len(keep))

    def _parse_record(self, line: str) -> tuple[CellKey, RunResult]:
        record = json.loads(line)
        if not isinstance(record, dict):
            raise ValueError(f"record is {type(record).__name__}, not an object")
        version = record.get("v")
        if version != SCHEMA_VERSION:
            raise CheckpointError(
                f"{self.journal_path}: record schema version {version!r} "
                f"does not match this build's {SCHEMA_VERSION}"
            )
        key_data = record["key"]
        key = (
            str(key_data["protocol"]),
            int(key_data["load"]),
            int(key_data["rep"]),
        )
        return key, RunResult.from_dict(record["result"])

    # ------------------------------------------------------------- writing

    def record(self, key: CellKey, result: RunResult) -> None:
        """Append one completed cell, durably (flush + fsync).

        Raises:
            CheckpointError: if called before :meth:`begin` or after
                :meth:`close`.
        """
        if self._stream is None:
            raise CheckpointError("journal is not open — call begin() first")
        line = json.dumps(
            {
                "v": SCHEMA_VERSION,
                "key": {"protocol": key[0], "load": key[1], "rep": key[2]},
                "result": result.to_dict(),
            },
            separators=(",", ":"),
        )
        self._stream.write(line + "\n")
        self._stream.flush()
        os.fsync(self._stream.fileno())
        self._records[key] = result

    # -------------------------------------------------------------- access

    def get(self, key: CellKey) -> RunResult | None:
        """The journaled result for ``key``, or None if not yet recorded."""
        return self._records.get(key)

    def __contains__(self, key: CellKey) -> bool:
        return key in self._records

    def __len__(self) -> int:
        return len(self._records)

    def keys(self) -> list[CellKey]:
        """Journaled cell keys, in journal (completion) order."""
        return list(self._records)
