"""Contact session: what happens while two nodes are within range.

Implements the paper's encounter semantics:

* The pair can move ``floor(duration / bundle_tx_time)`` bundles during the
  contact (Section IV's worked example: a 314 s encounter carries 3 bundles
  at 100 s each). With per-node transmit times the link runs at the pace of
  the slower radio (:meth:`~repro.core.simulation.SimulationConfig.pair_tx_time`).
  The link is half-duplex — one bundle in flight at a time —
  and the **lower-ID node transmits first** (the paper's collision-avoidance
  rule); the higher-ID node uses whatever budget remains.
* At contact start the control plane is exchanged "for free": summary
  vectors plus protocol-specific state (anti-packets / immunity tables).
  Free w.r.t. the transfer budget, but *counted* by the signaling metric.
* Each transfer is planned against the *current* state of both nodes (the
  summary-vector view refreshed within the encounter) and re-validated when
  it completes ``bundle_tx_time`` later — a copy can disappear mid-flight
  (TTL expiry, eviction by a concurrent contact, immunity purge), in which
  case the slot is consumed but wasted.
* Candidate order: bundles destined for the peer first, then oldest-stored
  first. P-Q coin flips are remembered per (direction, bundle) for the
  whole contact — a failed flip skips the bundle until the nodes part.

Planning honesty: a sender only schedules a transfer the receiver can
actually take (free slot, evictable victim, or the receiver is the bundle's
destination); anti-entropy gives it that knowledge. If neither side has a
transmittable bundle the session goes idle for the remainder of the contact
(new arrivals via *concurrent* contacts do not re-awaken it — a documented
simplification that only matters when contacts overlap heavily).
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING

from repro.core.bundle import BundleId, StoredBundle

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.node import Node
    from repro.core.simulation import Simulation
    from repro.mobility.contact import Contact


class ContactSession:
    """One encounter's exchange state machine."""

    def __init__(self, sim: "Simulation", contact: "Contact") -> None:
        self.sim = sim
        self.contact = contact
        self.node_a = sim.nodes[contact.a]  # lower id — transmits first
        self.node_b = sim.nodes[contact.b]
        #: per-bundle transfer time on this link — the slower of the two
        #: radios when bundle_tx_time is per-node (heterogeneous devices)
        self.tx_time = sim.config.pair_tx_time(contact.a, contact.b)
        self.budget = int(math.floor(contact.duration / self.tx_time))
        self.t_cursor = contact.start
        self.idle = False
        #: (sender_id, bid) pairs whose P-Q coin failed this contact
        self._coin_rejected: set[tuple[int, BundleId]] = set()
        self.transfers_completed = 0

    # --------------------------------------------------------------- lifecycle

    def start(self) -> None:
        """Contact-start processing: history, control exchange, first slot."""
        now = self.contact.start
        for node, peer in (
            (self.node_a, self.node_b),
            (self.node_b, self.node_a),
        ):
            node.history.note_encounter(now)
            node.protocol.on_encounter_started(peer, now)
        # Control plane: both payloads are built from pre-exchange state,
        # then delivered — a symmetric, simultaneous swap.
        msg_a = self.node_a.protocol.control_payload(now)
        msg_b = self.node_b.protocol.control_payload(now)
        for sender, msg in ((self.node_a, msg_a), (self.node_b, msg_b)):
            units = sender.protocol.control_units(msg)
            if units:
                self.sim.count_control_units(
                    sender, sender.protocol.control_kind, units
                )
            self.sim.count_control_units(sender, "summary_vector", 1)
        self.node_b.protocol.receive_control(msg_a, now)
        self.node_a.protocol.receive_control(msg_b, now)
        self._schedule_next(now)

    # --------------------------------------------------------------- planning

    def _receiver_can_take(self, receiver: "Node", sb: StoredBundle, now: float) -> bool:
        return receiver.protocol.can_accept(sb.bundle, now)

    def _candidates(
        self, sender: "Node", receiver: "Node", now: float
    ) -> list[StoredBundle]:
        out: list[StoredBundle] = []
        for sb in sender.sendable():
            bid = sb.bid
            if sb.is_expired(now):
                continue  # expiry event fires at the same instant; skip now
            if (sender.id, bid) in self._coin_rejected:
                continue
            if receiver.has_copy(bid):
                continue
            if receiver.protocol.knows_delivered(bid) or sender.protocol.knows_delivered(bid):
                continue
            if not self._receiver_can_take(receiver, sb, now):
                continue
            out.append(sb)
        out.sort(
            key=lambda sb: (
                0 if sb.bundle.destination == receiver.id else 1,
                sb.stored_at,
                sb.bid,
            )
        )
        return out

    def _plan(self, now: float) -> tuple["Node", "Node", StoredBundle] | None:
        """Next transfer: lower-ID sender preferred, coin flips cached."""
        for sender, receiver in (
            (self.node_a, self.node_b),
            (self.node_b, self.node_a),
        ):
            for sb in self._candidates(sender, receiver, now):
                if sender.protocol.should_offer(sb, receiver, now):
                    return sender, receiver, sb
                self._coin_rejected.add((sender.id, sb.bid))
        return None

    def _schedule_next(self, now: float) -> None:
        if self.budget <= 0:
            return
        slot_end = self.t_cursor + self.tx_time
        if slot_end > self.contact.end + 1e-9:
            return
        pick = self._plan(now)
        if pick is None:
            self.idle = True
            return
        sender, receiver, sb = pick
        self.t_cursor = slot_end
        self.sim.engine.at(
            slot_end,
            lambda: self._on_transfer_complete(sender, receiver, sb),
            tag=f"xfer:{sb.bid}:{sender.id}->{receiver.id}",
        )

    # -------------------------------------------------------------- completion

    def _on_transfer_complete(
        self, sender: "Node", receiver: "Node", sb: StoredBundle
    ) -> None:
        now = self.sim.engine.now
        self.budget -= 1
        bid = sb.bid
        # Re-validate the receiver side: it may have obtained the bundle (or
        # learned it was delivered) through a concurrent contact mid-flight.
        if receiver.has_copy(bid) or receiver.protocol.knows_delivered(bid):
            self.sim.metrics.on_wasted_slot()
            self._schedule_next(now)
            return
        # Sender side: the transmission started bundle_tx_time ago, so the
        # bits are on the air even if the stored copy expired or was evicted
        # mid-flight — the transfer still completes. The one exception is
        # delivery knowledge: a sender that learned the bundle already
        # arrived aborts the (now pointless) transmission.
        if sender.protocol.knows_delivered(bid):
            self.sim.metrics.on_wasted_slot()
            self._schedule_next(now)
            return
        still_held = sender.get_copy(bid) is sb
        if still_held and not sender.protocol.confirm_transfer(sb, receiver, now):
            self.sim.metrics.on_wasted_slot()
            self._schedule_next(now)
            return
        if still_held:
            # Sender-side bookkeeping first: EC increments before the
            # receiver's copy inherits the value (the paper's EC example).
            sender.protocol.on_transmitted(sb, receiver, now)
            ec_for_receiver = sb.ec
        else:
            # The copy vanished mid-flight: no renewal/ageing on the sender,
            # but the receiver's copy still carries the incremented count.
            ec_for_receiver = sb.ec + 1
        sender.counters.bundles_sent += 1
        self.sim.metrics.on_transmission()
        self.transfers_completed += 1
        if sb.bundle.destination == receiver.id:
            self.sim.deliver(receiver, sb.bundle, now, via=sender.id)
        else:
            stored = self.sim.store_received_copy(
                receiver, sb.bundle, ec_for_receiver, now, sender_copy=sb
            )
            if not stored:
                receiver.counters.rejections += 1
                self.sim.metrics.on_wasted_slot()
        self._schedule_next(now)
