"""Contact session: what happens while two nodes are within range.

Implements the paper's encounter semantics:

* The pair can move ``floor(duration / bundle_tx_time)`` bundles during the
  contact (Section IV's worked example: a 314 s encounter carries 3 bundles
  at 100 s each). With per-node transmit times the link runs at the pace of
  the slower radio (:meth:`~repro.core.simulation.SimulationConfig.pair_tx_time`).
  The link is half-duplex — one bundle in flight at a time —
  and the **lower-ID node transmits first** (the paper's collision-avoidance
  rule); the higher-ID node uses whatever budget remains.
* At contact start the control plane is exchanged "for free": summary
  vectors plus protocol-specific state (anti-packets / immunity tables).
  Free w.r.t. the transfer budget, but *counted* by the signaling metric.
* Each transfer is planned against the *current* state of both nodes (the
  summary-vector view refreshed within the encounter) and re-validated when
  it completes ``bundle_tx_time`` later — a copy can disappear mid-flight
  (TTL expiry, eviction by a concurrent contact, immunity purge), in which
  case the slot is consumed but wasted.
* Candidate order: bundles destined for the peer first, then oldest-stored
  first. P-Q coin flips are remembered per (direction, bundle) for the
  whole contact — a failed flip skips the bundle until the nodes part.

Planning honesty: a sender only schedules a transfer the receiver can
actually take (free slot, evictable victim, or the receiver is the bundle's
destination); anti-entropy gives it that knowledge. If neither side has a
transmittable bundle the session goes idle for the remainder of the contact
(new arrivals via *concurrent* contacts do not re-awaken it — a documented
simplification that only matters when contacts overlap heavily).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.bundle import BundleId, StoredBundle
from repro.core.knowledge import exchange_control

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.node import Node
    from repro.core.simulation import Simulation
    from repro.mobility.contact import Contact


def contact_bookkeeping(sim: Simulation, node_a: Node, node_b: Node, now: float) -> None:
    """The transfer-free layers of contact start: encounter → knowledge.

    Encounter layer: history + the ``on_encounter_started`` hook.
    Knowledge layer: the control-plane swap with its signaling accounting
    (:func:`repro.core.knowledge.exchange_control`). Plus the summary
    vector each way that every protocol pays regardless of control state.

    This is everything a zero-transfer contact does; the simulation calls
    it directly for pre-classified degenerate encounters. When the
    protocol population is encounter-inert the encounter/knowledge layers
    are deferred wholesale (``sim._defer_history``): the simulation
    replays history in one batched pass at end of run and the knowledge
    swap is statically known to be inert.
    """
    if not sim._defer_history:
        node_a.history.note_encounter(now)
        node_a.protocol.on_encounter_started(node_b, now)
        node_b.history.note_encounter(now)
        node_b.protocol.on_encounter_started(node_a, now)
        exchange_control(sim, node_a, node_b, now)
    # One summary vector each way, every protocol — accounted inline
    # (this runs for every contact, exchange or not)
    sim.metrics.signaling.summary_vector += 2
    node_a.counters.control_units_sent += 1
    node_b.counters.control_units_sent += 1


def begin_contact(
    sim: Simulation, contact: Contact, session: ContactSession | None = None
) -> ContactSession | None:
    """Contact-start orchestration: bookkeeping layers, then the first slot.

    The encounter/knowledge bookkeeping (:func:`contact_bookkeeping`) runs
    for *every* contact; a :class:`ContactSession` — the slot state
    machine — is only built when the encounter can carry at least one
    bundle. Sub-``tx_time`` contacts are the majority of encounters in
    dense traces, and they end here (when the simulation pre-classified
    the trace they never reach this function at all).

    Returns:
        The session driving the exchange, or None for zero-budget contacts.
    """
    now = contact.start
    nodes = sim.nodes
    contact_bookkeeping(sim, nodes[contact.a], nodes[contact.b], now)
    if session is None:
        tx_time, budget = ContactSession.link_budget(sim, contact)
        if not budget:
            return None
        session = ContactSession(sim, contact, tx_time=tx_time, budget=budget)
    session._schedule_next(now)
    return session


class ContactSession:
    """One encounter's exchange state machine.

    Transfer *selection* lives in the session's planner (see
    :mod:`repro.core.planner`); the session owns the slot clock, the
    per-contact coin cache, and completion-time re-validation. Encounter
    bookkeeping that precedes slot scheduling lives in
    :func:`begin_contact`.
    """

    @staticmethod
    def link_budget(sim: Simulation, contact: Contact) -> tuple[float, int]:
        """(per-bundle transfer time, whole-bundle slot count) of a contact.

        The transfer time is the slower of the two radios when
        ``bundle_tx_time`` is per-node (heterogeneous devices); the budget
        is ``floor(duration / tx_time)`` (int() truncation == floor for a
        non-negative quotient). The one formula both
        :func:`begin_contact`'s zero-budget gate and the session itself use.
        """
        tx_time = sim.link_tx_time(contact.a, contact.b)
        return tx_time, int((contact.end - contact.start) / tx_time)

    def __init__(
        self,
        sim: Simulation,
        contact: Contact,
        tx_time: float | None = None,
        budget: int | None = None,
    ) -> None:
        self.sim = sim
        self.contact = contact
        self.node_a = sim.nodes[contact.a]  # lower id — transmits first
        self.node_b = sim.nodes[contact.b]
        if tx_time is None or budget is None:
            tx_time, budget = self.link_budget(sim, contact)
        self.tx_time = tx_time
        self.budget = budget
        self.t_cursor = contact.start
        self.idle = False
        #: disruption model active (see :mod:`repro.faults`) — gates every
        #: per-slot liveness check so unfaulted runs pay one attribute load
        self.faulted = sim.faults is not None
        #: True once a mid-contact link interruption severed this session
        self.severed = False
        #: the pair's ``(crash_count_a, crash_count_b)`` at session start;
        #: any endpoint crash afterwards permanently tears the session down
        #: (set by the simulation's faulted contact-start path)
        self.crash_epoch: tuple[int, int] | None = None
        #: (sender_id, bid) pairs whose P-Q coin failed this contact;
        #: allocated by the planner on the first failed flip
        self._coin_rejected: set[tuple[int, BundleId]] | None = None
        self.transfers_completed = 0
        #: created on first use — sub-``tx_time`` contacts (budget 0)
        #: never plan, and at scale they are the majority of encounters
        self.planner = None

    # --------------------------------------------------------------- lifecycle

    def start(self) -> None:
        """Contact-start processing: history, control exchange, first slot."""
        begin_contact(self.sim, self.contact, session=self)

    # ------------------------------------------------------------- disruption

    def _on_severed(self) -> None:
        """Pre-drawn mid-contact link interruption: the radios lose sync."""
        self.severed = True

    def _link_alive(self) -> bool:
        """Both endpoints up, link unsevered, and no crash since start."""
        if self.severed:
            return False
        sim = self.sim
        contact = self.contact
        if sim._node_down[contact.a] or sim._node_down[contact.b]:
            return False
        epoch = self.crash_epoch
        return epoch is None or epoch == (
            sim._crash_count[contact.a],
            sim._crash_count[contact.b],
        )

    # --------------------------------------------------------------- planning

    def _schedule_next(self, now: float) -> None:
        if self.budget <= 0:
            return
        if self.faulted and not self._link_alive():
            return
        slot_end = self.t_cursor + self.tx_time
        if slot_end > self.contact.end + 1e-9:
            return
        planner = self.planner
        if planner is None:
            planner = self.planner = self.sim._planner_factory(self)
        pick = planner.plan(now)
        if pick is None:
            self.idle = True
            return
        sender, receiver, sb = pick
        hook = self.sim.on_transfer_planned
        if hook is not None:
            hook(now, sender.id, receiver.id, sb.bid)
        self.t_cursor = slot_end
        self.sim.engine.at(
            slot_end, self._on_transfer_complete, sender, receiver, sb
        )

    # -------------------------------------------------------------- completion

    def _on_transfer_complete(
        self, sender: Node, receiver: Node, sb: StoredBundle
    ) -> None:
        now = self.sim.engine.now
        self.budget -= 1
        bid = sb.bid
        if self.faulted:
            if not self._link_alive():
                # The link died while the bits were in flight: the slot was
                # spent (partial transfer charged) but nothing arrives, and
                # the session is over — no reschedule.
                self.sim.metrics.churn.interrupted_transfers += 1
                return
            if self.sim._transfer_failed():
                # I.i.d. transfer failure: the slot is charged, the link
                # survives, and the planner may retry the same bundle.
                self.sim.metrics.churn.failed_transfers += 1
                self._schedule_next(now)
                return
        # Re-validate the receiver side: it may have obtained the bundle (or
        # learned it was delivered) through a concurrent contact mid-flight.
        if receiver.has_copy(bid) or receiver.protocol.knows_delivered(bid):
            self.sim.metrics.on_wasted_slot()
            self._schedule_next(now)
            return
        # Sender side: the transmission started bundle_tx_time ago, so the
        # bits are on the air even if the stored copy expired or was evicted
        # mid-flight — the transfer still completes. The one exception is
        # delivery knowledge: a sender that learned the bundle already
        # arrived aborts the (now pointless) transmission.
        if sender.protocol.knows_delivered(bid):
            self.sim.metrics.on_wasted_slot()
            self._schedule_next(now)
            return
        still_held = sender.get_copy(bid) is sb
        if still_held and not sender.protocol.confirm_transfer(sb, receiver, now):
            self.sim.metrics.on_wasted_slot()
            self._schedule_next(now)
            return
        if still_held:
            # Sender-side bookkeeping first: EC increments before the
            # receiver's copy inherits the value (the paper's EC example).
            sender.protocol.on_transmitted(sb, receiver, now)
            ec_for_receiver = sb.ec
        else:
            # The copy vanished mid-flight: no renewal/ageing on the sender,
            # but the receiver's copy still carries the incremented count.
            ec_for_receiver = sb.ec + 1
        sender.counters.bundles_sent += 1
        self.sim.metrics.on_transmission()
        self.transfers_completed += 1
        if sb.bundle.destination == receiver.id:
            self.sim.deliver(receiver, sb.bundle, now, via=sender.id)
        else:
            stored = self.sim.store_received_copy(
                receiver, sb.bundle, ec_for_receiver, now, sender_copy=sb
            )
            if not stored:
                receiver.counters.rejections += 1
                self.sim.metrics.on_wasted_slot()
        self._schedule_next(now)
