"""Exact, event-driven metric collection (paper Section IV metrics).

All time-averaged quantities are computed by integrating value·dt at every
state change instead of periodic sampling — exact, and cheaper than sampling
at the paper's time scales (10⁵–10⁶ s horizons).

Metrics recorded per run:

* **Buffer occupancy level** — time-average over the run of the mean relay
  buffer fill fraction across all nodes. Stored immunity tables /
  anti-packets contribute fractional slots (they share the same storage in
  the paper's model — its Fig 11 attributes immunity's occupancy swings to
  the tables stored at each node, and the cumulative enhancement's ≥15%
  occupancy saving is exactly the removal of per-bundle table storage).
* **Bundle duplication rate** — per bundle, the time-average of
  (nodes holding a copy) / (total nodes) over the bundle's *alive window*
  (creation until its delivery, or until the run ends for undelivered
  bundles), averaged across bundles. A "copy" is an origin copy, a relay
  copy, or the destination's delivered copy. Measuring over the alive
  window captures what the paper's duplication analysis is about — how
  widely a protocol spreads a bundle while spreading still helps — and
  reproduces its orderings (immunity highest, EC/TTL lowest); integrating
  past delivery would instead reward protocols that *fail to purge* dead
  copies.
* **Delivery ratio** — delivered bundles / offered bundles.
* **Delay** — time at which the *last* bundle arrived (successful runs
  only; the paper records no delay for failed runs).
* **Signaling overhead** — control units transmitted, split by kind
  (anti-packets, immunity tables, summary vectors).
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

from repro.core.bundle import BundleId


class TimeWeightedAccumulator:
    """Integrates a piecewise-constant value over time."""

    __slots__ = ("_value", "_since", "_integral", "_start")

    def __init__(self, value: float = 0.0, start: float = 0.0) -> None:
        self._value = value
        self._since = start
        self._integral = 0.0
        self._start = start

    @property
    def value(self) -> float:
        """Current (instantaneous) value."""
        return self._value

    def update(self, value: float, now: float) -> None:
        """Set a new value effective at ``now``."""
        if now < self._since:
            raise ValueError(f"time went backwards: {self._since} -> {now}")
        self._integral += self._value * (now - self._since)
        self._value = value
        self._since = now

    def add(self, delta: float, now: float) -> None:
        """Adjust the current value by ``delta`` at ``now``."""
        self.update(self._value + delta, now)

    def integral(self, now: float) -> float:
        """∫ value dt from start to ``now`` (does not mutate state)."""
        if now < self._since:
            raise ValueError(f"time went backwards: {self._since} -> {now}")
        return self._integral + self._value * (now - self._since)

    def mean(self, now: float) -> float:
        """Time-average over the accumulator's lifetime [start, now].

        The window always begins at the ``start`` the accumulator was
        constructed with: the integral only covers that span, so dividing
        by any other origin would silently dilute (or inflate) the mean.
        An earlier revision accepted an arbitrary ``start`` argument here
        and did exactly that.
        """
        span = now - self._start
        if span <= 0:
            return self._value
        return self.integral(now) / span


@dataclass
class SignalingCounters:
    """Control-plane transmission counts by kind."""

    anti_packet: int = 0
    immunity_table: int = 0
    summary_vector: int = 0

    def add(self, kind: str, units: int) -> None:
        # summary vectors are counted twice per contact for every protocol
        # — test the common kind first
        if kind == "summary_vector":
            self.summary_vector += units
        elif kind == "anti_packet":
            self.anti_packet += units
        elif kind == "immunity_table":
            self.immunity_table += units
        else:
            raise ValueError(f"unknown signaling kind {kind!r}")

    @property
    def protocol_specific(self) -> int:
        """Anti-packets + immunity tables (the paper's overhead metric)."""
        return self.anti_packet + self.immunity_table


@dataclass
class RemovalCounters:
    """Why copies left buffers (diagnostics for the per-protocol analysis)."""

    evicted: int = 0
    expired: int = 0
    immunized: int = 0
    ec_aged_out: int = 0
    crashed: int = 0
    other: int = 0

    def add(self, reason: str) -> None:
        key = reason.replace("-", "_")
        if hasattr(self, key):
            setattr(self, key, getattr(self, key) + 1)
        else:
            self.other += 1

    @property
    def total(self) -> int:
        return (
            self.evicted
            + self.expired
            + self.immunized
            + self.ec_aged_out
            + self.crashed
            + self.other
        )


@dataclass
class ChurnCounters:
    """Disruption-model event counts (see :mod:`repro.faults`).

    All zero on unfaulted runs; the fields quantify how much of the
    contact schedule the fault environment destroyed.
    """

    #: node crash events (up → down transitions)
    crashes: int = 0
    #: node recovery events (down → up transitions)
    recoveries: int = 0
    #: contacts skipped because an endpoint was down at contact start
    missed_contacts: int = 0
    #: contacts erased outright by the per-contact drop probability
    dropped_contacts: int = 0
    #: in-flight transfers truncated by a severed link or endpoint crash
    #: (the slot is charged but no copy arrives)
    interrupted_transfers: int = 0
    #: transfers lost to the i.i.d. per-bundle failure probability
    failed_transfers: int = 0
    #: copies re-accepted for a bundle the node had been told was
    #: delivered before a reboot wiped that knowledge
    reinfections: int = 0


class _CopyTrack:
    """Fused per-bundle copy bookkeeping: count + time integral + window.

    One object replaces the former triple of dicts (accumulator, count,
    born-at) plus the frozen-mean side table — one hash lookup per copy
    delta instead of three, and no per-bundle accumulator objects.
    The integral arithmetic mirrors :class:`TimeWeightedAccumulator`
    exactly (``integral += value · dt`` at every change), so the metric
    values are bit-identical to the unfused implementation.
    """

    __slots__ = ("count", "since", "integral", "born", "frozen_mean")

    def __init__(self, born: float) -> None:
        self.count = 1  # the origin copy
        self.since = born
        self.integral = 0.0
        self.born = born
        #: alive-window duplication mean frozen at delivery, else None
        self.frozen_mean: float | None = None

    def alive_mean(self, now: float, num_nodes: int) -> float:
        """Time-averaged copies/N over the alive window so far."""
        span = now - self.born
        if span <= 0:
            return self.count / num_nodes
        total = self.integral + self.count * (now - self.since)
        return total / span / num_nodes


class MetricsCollector:
    """Per-run metric state, driven by the simulation's mutation hooks."""

    def __init__(
        self,
        num_nodes: int,
        buffer_capacity: int | Sequence[int],
        *,
        record_occupancy: bool = False,
    ) -> None:
        self.num_nodes = num_nodes
        self.buffer_capacity = buffer_capacity
        if isinstance(buffer_capacity, int):
            self.total_capacity = num_nodes * buffer_capacity
        else:
            if len(buffer_capacity) != num_nodes:
                raise ValueError(
                    f"per-node buffer_capacity has {len(buffer_capacity)} entries "
                    f"for {num_nodes} nodes"
                )
            self.total_capacity = sum(buffer_capacity)
        self._occupancy = TimeWeightedAccumulator()  # total used slots, all nodes
        self._control_storage = TimeWeightedAccumulator()  # table slots, all nodes
        #: highest instantaneous population-wide fill fraction observed.
        #: Can exceed 1.0 for table-storing protocols: stored immunity
        #: tables / anti-packets add fractional slots on top of a full
        #: relay buffer (the paper's shared-storage model does not bound
        #: table state by the bundle capacity).
        self.peak_occupancy = 0.0
        #: whether the (time, fill) occupancy trace below is recorded;
        #: off by default — sweeps only consume the distilled scalars and
        #: should not pay an append per buffer delta
        self.record_occupancy = record_occupancy
        #: (time, fill fraction) at every occupancy change — piecewise
        #: constant between entries, one entry per buffer/control-storage
        #: delta. **Opt-in**: populated only when ``record_occupancy`` is
        #: True (pass ``record_occupancy=True`` to a directly-driven
        #: :class:`~repro.core.simulation.Simulation`); sweep RunResults
        #: carry only the scalars (mean + peak) distilled from it.
        self.occupancy_series: list[tuple[float, float]] = []
        #: evictions under buffer pressure, by drop-policy name
        self.drops: dict[str, int] = {}
        self._copies: dict[BundleId, _CopyTrack] = {}
        self.signaling = SignalingCounters()
        self.removals = RemovalCounters()
        self.churn = ChurnCounters()
        #: nodes currently down, integrated over time (node-seconds of
        #: downtime); stays flat at zero on unfaulted runs
        self._down_nodes = TimeWeightedAccumulator()
        self.bundle_transmissions = 0
        self.wasted_slots = 0
        self.deliveries: dict[BundleId, float] = {}
        #: node that handed each bundle to its destination (path analysis)
        self.delivered_by: dict[BundleId, int] = {}

    # ----------------------------------------------------------- occupancy

    def _note_fill(self, now: float) -> None:
        fill = (self._occupancy.value + self._control_storage.value) / self.total_capacity
        if fill > self.peak_occupancy:
            self.peak_occupancy = fill
        if not self.record_occupancy:
            return
        if self.occupancy_series and self.occupancy_series[-1][0] == now:
            self.occupancy_series[-1] = (now, fill)
        else:
            self.occupancy_series.append((now, fill))

    def on_buffer_delta(self, delta_slots: int, now: float) -> None:
        """A relay buffer gained/lost ``delta_slots`` copies at ``now``."""
        self._occupancy.add(float(delta_slots), now)
        self._note_fill(now)

    def on_control_storage_delta(self, delta_slots: float, now: float) -> None:
        """A node's stored control state changed by ``delta_slots`` slots."""
        self._control_storage.add(delta_slots, now)
        self._note_fill(now)

    def on_relay_copy_stored(self, bid: BundleId, now: float) -> None:
        """Fused ``on_buffer_delta(+1)`` + ``on_copy_delta(+1, bid)``.

        One call for the sweep kernel's hot store path — the arithmetic
        is the unfused pair's, mutation for mutation, with the error
        guards elided because the caller discharges them structurally
        (the bundle is born since the sender holds a live copy, event
        time never runs backwards, and a +1 delta cannot go negative).
        """
        occ = self._occupancy
        occ._integral += occ._value * (now - occ._since)
        occ._value += 1.0
        occ._since = now
        fill = (occ._value + self._control_storage._value) / self.total_capacity
        if fill > self.peak_occupancy:
            self.peak_occupancy = fill
        if self.record_occupancy:
            series = self.occupancy_series
            if series and series[-1][0] == now:
                series[-1] = (now, fill)
            else:
                series.append((now, fill))
        track = self._copies[bid]
        track.integral += track.count * (now - track.since)
        track.since = now
        track.count += 1

    def mean_buffer_occupancy(self, now: float) -> float:
        """Time-averaged mean fill fraction across all nodes in [0, now].

        Includes fractional slots consumed by stored immunity tables /
        anti-packets. With heterogeneous capacities this is the
        population-wide used/total slot fraction.
        """
        return (
            self._occupancy.mean(now) + self._control_storage.mean(now)
        ) / self.total_capacity

    def mean_control_storage(self, now: float) -> float:
        """Time-averaged table-storage fraction alone (diagnostics)."""
        return self._control_storage.mean(now) / self.total_capacity

    # ---------------------------------------------------------- duplication

    def on_bundle_born(self, bid: BundleId, now: float) -> None:
        """First copy of ``bid`` (the origin copy) appeared at ``now``."""
        if bid in self._copies:
            raise ValueError(f"bundle {bid} born twice")
        self._copies[bid] = _CopyTrack(now)

    def on_copy_delta(self, bid: BundleId, delta: int, now: float) -> None:
        """The node-copy count of ``bid`` changed by ``delta`` at ``now``."""
        track = self._copies.get(bid)
        if track is None:
            raise ValueError(f"copy delta for unborn bundle {bid}")
        if now < track.since:
            raise ValueError(f"time went backwards: {track.since} -> {now}")
        track.integral += track.count * (now - track.since)
        track.since = now
        track.count += delta
        if track.count < 0:
            raise ValueError(f"negative copy count for {bid}")

    def copy_count(self, bid: BundleId) -> int:
        """Current number of nodes holding ``bid``."""
        track = self._copies.get(bid)
        return track.count if track is not None else 0

    def _alive_mean(self, bid: BundleId, now: float) -> float:
        """Time-averaged copies/N over the bundle's alive window so far."""
        return self._copies[bid].alive_mean(now, self.num_nodes)

    def mean_duplication_rate(self, now: float) -> float:
        """Average over bundles of the alive-window duplication rate.

        Delivered bundles contribute their value frozen at delivery time;
        undelivered ones contribute their running value up to ``now``.
        """
        if not self._copies:
            return 0.0
        total = 0.0
        num_nodes = self.num_nodes
        for track in self._copies.values():
            frozen = track.frozen_mean
            total += frozen if frozen is not None else track.alive_mean(now, num_nodes)
        return total / len(self._copies)

    # ------------------------------------------------------------- delivery

    def on_delivered(self, bid: BundleId, now: float, via: int | None = None) -> None:
        """``bid`` reached its destination at ``now`` (handed over by ``via``)."""
        if bid in self.deliveries:
            raise ValueError(f"bundle {bid} delivered twice")
        self.deliveries[bid] = now
        if via is not None:
            self.delivered_by[bid] = via
        # Freeze the duplication measure at the end of the alive window
        # (the destination's brand-new copy carries zero dt-weight here).
        self._copies[bid].frozen_mean = self._alive_mean(bid, now)

    def delivery_ratio(self, offered: int) -> float:
        """Delivered / offered."""
        if offered <= 0:
            raise ValueError("offered must be positive")
        return len(self.deliveries) / offered

    def completion_time(self, offered: int) -> float | None:
        """Time the last bundle arrived, or None if not all arrived."""
        if len(self.deliveries) < offered:
            return None
        return max(self.deliveries.values())

    # ----------------------------------------------------------------- churn

    def on_node_down(self, now: float) -> None:
        """A node crashed at ``now``."""
        self.churn.crashes += 1
        self._down_nodes.add(1.0, now)

    def on_node_up(self, now: float) -> None:
        """A node recovered at ``now``."""
        self.churn.recoveries += 1
        self._down_nodes.add(-1.0, now)

    def downtime(self, now: float) -> float:
        """Total node-seconds of downtime in [0, now]."""
        return self._down_nodes.integral(now)

    def mean_nodes_down(self, now: float) -> float:
        """Time-averaged number of simultaneously-down nodes in [0, now]."""
        return self._down_nodes.mean(now)

    # ------------------------------------------------------------- signaling

    def on_control_units(self, kind: str, units: int) -> None:
        self.signaling.add(kind, units)

    def on_batched_contacts(self, contacts: int) -> None:
        """Account the per-contact signaling of ``contacts`` bulk-processed
        encounters: two summary vectors (one each way) per contact.

        Array-resident consumers — the deferred-bookkeeping flush and the
        SoA sweep kernel — ingest whole skipped spans through this instead
        of one :meth:`on_control_units` call per contact; the resulting
        counter is identical because the summary-vector count is a plain
        order-independent sum.
        """
        self.signaling.summary_vector += 2 * contacts

    def on_transmission(self) -> None:
        self.bundle_transmissions += 1

    def on_wasted_slot(self) -> None:
        self.wasted_slots += 1

    def on_removal(self, reason: str) -> None:
        self.removals.add(reason)

    def on_policy_drop(self, policy: str) -> None:
        """A drop policy evicted a stored copy under buffer pressure."""
        self.drops[policy] = self.drops.get(policy, 0) + 1
