"""Heap-free Structure-of-Arrays contact-sweep execution (``kernel="soa"``).

The third execution tier between the event DES and the ODE surrogate: for
*encounter-inert* protocol populations (pure/ttl/ec/ec_ttl, coins-only
P-Q, spray) a contact can only matter when one side holds a copy the
other side lacks. The kernel therefore consumes the trace's columnar
:meth:`~repro.mobility.contact.ContactTrace.contact_arrays` form directly
and sweeps the time-sorted contact stream against per-node copy masks —
one bundle-bit per offered bundle, held both as Python integers (O(1)
single-contact probes: ``sendable[a] & ~has[b]``) and as NumPy boolean
rows (vectorized classification of long futile spans, one row test per
:data:`_SKIP_CHUNK` contacts). Futile spans are retired in bulk —
per-contact signaling in one counter update, per-node control units in
one ``bincount`` — while the rare *possible* contacts run the exact
per-slot exchange machinery (same predicates, same RNG draws, same
service-layer calls) against a tiny binary calendar that carries only
dynamic events: transfer completions, TTL expiries, deferred flow
injections. Because every copy-state change happens inside a calendar
event, the masks are constant across each contact span between events —
no invalidation machinery, no rescans.

Exactness contract: a kernel run produces a byte-identical
:class:`~repro.core.results.RunResult` to the event engine. The calendar
mirrors the engine's ``(time, seq)`` tie-break order exactly — the live
contacts occupy the contiguous seq range the engine's bulk-load would
have assigned them, so every equal-timestamp ordering the event schedule
guarantees (origin expiry before contact, contact before completion) is
preserved — and the span skip test is *conservative*: a skipped contact
is one whose session would provably plan nothing, mutate nothing, and
draw no randomness (every candidate exits the planner's predicate chain
at the expiry or receiver-has-copy check, both of which precede the P-Q
coin). Everything else — metrics, counters, protocol hooks, buffer
policies — is the same service-layer code the event engine runs, invoked
in the same order with the same arguments. ``tools/bench_sim.py
--verify`` and ``tests/core/test_sweepkernel.py`` enforce the contract.

Eligibility (:func:`kernel_unsupported_reason`): a homogeneous
encounter-inert population with the base (constant-false)
``knows_delivered``, no active fault injection, and trace-layer batching
enabled. ``kernel="auto"`` silently falls back to the event engine
otherwise; ``kernel="soa"`` fails fast with the reason.
"""

from __future__ import annotations

import heapq
import math
from bisect import bisect_left
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.core.bundle import BundleId, StoredBundle
from repro.core.protocols.base import Protocol
from repro.mobility.contact import zero_transfer_mask

if TYPE_CHECKING:  # pragma: no cover - typing only
    from collections.abc import Callable, Container

    from numpy.typing import NDArray

    from repro.core.node import Node
    from repro.core.results import RunResult
    from repro.core.simulation import Simulation

#: Contacts classified per vectorized row test once a futile span outlives
#: the integer-probe budget (:data:`_PROBE`).
_SKIP_CHUNK = 2048

#: Single-contact integer probes spent on a span before switching to the
#: chunked NumPy scan — short spans (the common case between two transfer
#: completions) never pay array-call overhead.
_PROBE = 48


def kernel_unsupported_reason(sim: Simulation) -> str | None:
    """Why the SoA kernel cannot execute ``sim``, or None when it can.

    ``kernel="auto"`` routes a run to the event engine when this returns a
    reason; ``kernel="soa"`` surfaces it in a ``ValueError`` instead. The
    conditions mirror what the kernel structurally elides: per-contact
    control exchange (non-inert protocols), delivery-knowledge probes
    (``knows_delivered`` overrides), and the disruption machinery.
    """
    if sim.faults is not None:
        return "fault injection is active (the kernel has no crash/link machinery)"
    if sim.config.engine != "des":
        return f"engine={sim.config.engine!r} does not execute discrete events"
    if not sim._batch_degenerate:
        return (
            "batch_degenerate=False pins the per-event reference schedule "
            "(equivalence-test knob)"
        )
    if not sim.nodes:
        return "empty population"
    proto_cls = type(sim.nodes[0].protocol)
    for node in sim.nodes:
        cls = type(node.protocol)
        if cls is not proto_cls:
            return "heterogeneous protocol classes in one population"
        if not cls.encounter_inert:
            return (
                f"protocol {cls.name!r} is not encounter-inert (it exchanges "
                "control state or hooks contact starts)"
            )
        if cls.knows_delivered is not Protocol.knows_delivered:
            return (
                f"protocol {cls.name!r} overrides knows_delivered; the kernel "
                "elides delivery-knowledge probes"
            )
    return None


class _Calendar:
    """The engine facade simulation services see during a kernel run.

    Exposes exactly the :class:`~repro.des.engine.Engine` surface the
    service layer touches mid-run — ``now``, ``at``/``cancel`` (TTL
    expiries, deferred flow injections), ``halt`` (early delivery) — over
    a plain binary heap of ``[time, seq, action, args, alive]`` lists.
    ``seq`` continues the exact counter the event queue would have used
    (pre-run pushes, then one seq per live contact, then dynamic events),
    so every equal-time tie-break matches the event engine bit-for-bit.
    """

    __slots__ = ("now", "heap", "seq", "events_fired", "halted")

    def __init__(self) -> None:
        self.now = 0.0
        self.heap: list[list[Any]] = []
        self.seq = 0
        self.events_fired = 0
        self.halted = False

    def at(self, time: float, action: Callable[..., Any], *args: Any) -> list[Any]:
        entry: list[Any] = [time, self.seq, action, args, True]
        self.seq += 1
        heapq.heappush(self.heap, entry)
        return entry

    def cancel(self, entry: list[Any]) -> bool:
        alive = bool(entry[4])
        entry[4] = False
        return alive

    def halt(self) -> None:
        self.halted = True


class _Session:
    """One live contact's exchange state (the SoA ContactSession twin)."""

    __slots__ = ("node_a", "node_b", "end", "tx_time", "budget", "t_cursor", "coin_rejected")

    def __init__(
        self, node_a: Node, node_b: Node, start: float, end: float, tx_time: float, budget: int
    ) -> None:
        self.node_a = node_a
        self.node_b = node_b
        self.end = end
        self.tx_time = tx_time
        self.budget = budget
        self.t_cursor = start
        self.coin_rejected: set[tuple[int, BundleId]] | None = None


class SweepKernel:
    """One run's array-resident sweep state; single-use like Simulation."""

    def __init__(self, sim: Simulation) -> None:
        self.sim = sim
        self.cal = _Calendar()
        nodes = sim.nodes
        self._nodes = nodes
        self._n = len(nodes)
        # bundle-id → mask bit position over the full offered population
        col: dict[BundleId, int] = {}
        for flow in sim.flows:
            flow_id = flow.flow_id
            for seq in range(1, flow.num_bundles + 1):
                col[BundleId(flow=flow_id, seq=seq)] = len(col)
        self._col = col
        n, b = self._n, len(col)
        # Twin mask representations, mutated together on every copy event:
        # Python ints for O(1) scalar probes, bool rows for chunked scans.
        #: node holds a live (origin or relay) copy — possibly expired at
        #: the current instant, which the planner's own predicate rejects
        self._snd_bits: list[int] = [0] * n
        #: node holds a copy *or* is the (delivered-to) destination — the
        #: planner's receiver-has-it veto
        self._has_bits: list[int] = [0] * n
        self._b = b
        self._mask_bytes = max(1, (b + 7) >> 3)
        self._sendable: NDArray[np.bool_] = np.zeros((n, b), dtype=np.bool_)
        self._has: NDArray[np.bool_] = np.zeros((n, b), dtype=np.bool_)
        # the NumPy mirrors are consulted only by the (rare) chunked scan,
        # so copy events just mark them stale instead of paying a scalar
        # array write per mutation; the scan rebuilds from the int masks
        self._masks_dirty = False
        # per-node candidate order: (stored_at, bid) keys + parallel copies
        # and bundle bits (the planner's total order, maintained
        # incrementally), plus a per-destination tally so the
        # peer-destined-first pass can skip scanning when the sender holds
        # nothing addressed to this receiver
        self._cand_keys: list[list[tuple[float, BundleId]]] = [[] for _ in range(n)]
        self._cand_sbs: list[list[StoredBundle]] = [[] for _ in range(n)]
        self._cand_bits: list[list[int]] = [[] for _ in range(n)]
        self._dest_counts: list[dict[int, int]] = [{} for _ in range(n)]
        # bulk-retired per-contact control units (futile contacts), settled
        # vectorized at end of run — an order-independent sum
        self._ctrl_np: NDArray[np.int64] = np.zeros(n, dtype=np.int64)
        self._skipped = 0
        proto_cls = type(nodes[0].protocol)
        self._trivial_offer = proto_cls.should_offer is Protocol.should_offer
        self._trivial_confirm = proto_cls.confirm_transfer is Protocol.confirm_transfer
        self._trivial_accept = proto_cls.can_accept is Protocol.can_accept
        # whole-chain gate for the inlined relay-store path in _complete:
        # no protocol hook anywhere between transmission and candidate
        # registration (base on_transmitted / accept / on_copy_received by
        # method identity) and no fault machinery that store_received_copy
        # would have to consult — pure epidemic and coin-flip P-Q qualify
        self._trivial_store = (
            sim.faults is None
            and self._trivial_confirm
            and proto_cls.on_transmitted is Protocol.on_transmitted
            and proto_cls.accept is Protocol.accept
            and proto_cls.on_copy_received is Protocol.on_copy_received
        )
        # fully-trivial substrate (pure epidemic): every planner predicate
        # except the want filter and the capacity probe is vacuous, so
        # _schedule_next can use the specialized candidate scan
        self._pure_offer = (
            self._trivial_store and self._trivial_offer and self._trivial_accept
        )
        # per-node store internals, cached for frame-free probes: the relay
        # id → copy dicts are live views (never rebound by RelayStore), the
        # origin dicts are the nodes' own
        self._rentries: list[dict[BundleId, StoredBundle]] = [
            node.relay.entries_view() for node in nodes
        ]
        self._rcaps: list[int] = [node.relay.capacity for node in nodes]
        self._relays = [node.relay for node in nodes]
        self._origins: list[dict[BundleId, StoredBundle]] = [
            node.origin for node in nodes
        ]
        # snapshot of sim.on_transfer_planned, taken at run() start
        self._planned_hook: Callable[[float, int, int, BundleId], None] | None = None
        # live-contact columns (filled by _drive)
        self._live_a: NDArray[np.intp] = np.empty(0, dtype=np.intp)
        self._live_b: NDArray[np.intp] = np.empty(0, dtype=np.intp)

    # ----------------------------------------------------- state observation
    # (Simulation calls these on every copy-population change; they keep the
    # masks and candidate orders exact without polling node buffers. Every
    # call site sits inside a calendar event, so masks never change while a
    # contact span is being classified.)

    def copy_added(self, node: Node, sb: StoredBundle) -> None:
        bid = sb.bundle.bid
        live = self._origins[node.id].get(bid)
        if live is None:
            live = self._rentries[node.id].get(bid)
        if live is not sb:
            # stored and removed within one accept-hook chain (EC+TTL can
            # age a just-received copy out before accounting finishes):
            # net population change is nil, and copy_removed already ran
            return
        nid = node.id
        c = self._col[bid]
        bit = 1 << c
        self._snd_bits[nid] |= bit
        self._has_bits[nid] |= bit
        self._masks_dirty = True
        key = (sb.stored_at, bid)
        keys = self._cand_keys[nid]
        i = bisect_left(keys, key)
        keys.insert(i, key)
        self._cand_sbs[nid].insert(i, sb)
        self._cand_bits[nid].insert(i, bit)
        counts = self._dest_counts[nid]
        dest = sb.bundle.destination
        counts[dest] = counts.get(dest, 0) + 1

    def copy_removed(self, node: Node, sb: StoredBundle) -> None:
        bid = sb.bundle.bid
        nid = node.id
        c = self._col[bid]
        bit = 1 << c
        self._snd_bits[nid] &= ~bit
        self._has_bits[nid] &= ~bit
        self._masks_dirty = True
        keys = self._cand_keys[nid]
        key = (sb.stored_at, bid)
        i = bisect_left(keys, key)
        if i < len(keys) and keys[i] == key and self._cand_sbs[nid][i] is sb:
            del keys[i]
            del self._cand_sbs[nid][i]
            del self._cand_bits[nid][i]
            self._dest_counts[nid][sb.bundle.destination] -= 1

    def delivered(self, node: Node, bid: BundleId) -> None:
        self._has_bits[node.id] |= 1 << self._col[bid]
        self._masks_dirty = True

    # -------------------------------------------------------------- planning
    # (op-for-op mirrors of IncrementalPlanner / ContactSession — see
    # repro.core.planner and repro.core.session for the semantics prose)

    def _first_offer(
        self, rec: _Session, sender: Node, receiver: Node, now: float, want: int
    ) -> StoredBundle | None:
        # ``want`` = sender's sendable bits the receiver lacks — candidates
        # outside it exit the reference predicate chain at the receiver-
        # has-copy check (no side effects, no RNG), so filtering by bit
        # visits exactly the candidates the planner would inspect further,
        # in the planner's exact (tier, stored_at, bid) order.
        sender_id = sender.id
        rid = receiver.id
        coin_rejected: Container[tuple[int, BundleId]] = rec.coin_rejected or ()
        sender_protocol = sender.protocol
        receiver_protocol = receiver.protocol
        sbs = self._cand_sbs[sender_id]
        bits = self._cand_bits[sender_id]
        trivial_offer = self._trivial_offer
        # base can_accept inlined (destination always accepts; a buffer
        # with room always accepts; a full one defers to the drop policy)
        trivial_accept = self._trivial_accept
        recv_entries = self._rentries[rid]
        recv_cap = self._rcaps[rid]
        peer_destined = self._dest_counts[sender_id].get(rid, 0)
        if peer_destined:
            # pass 1: bundles destined for the receiver, oldest-stored first
            for i, bit in enumerate(bits):
                if not (bit & want):
                    continue
                sb = sbs[i]
                if sb.bundle.destination != rid:
                    continue
                if now >= sb.expiry:
                    continue
                bid = sb.bundle.bid
                if (sender_id, bid) in coin_rejected:
                    continue
                # knows_delivered is the base constant-false hook for every
                # kernel-eligible protocol — both probes elided; base
                # can_accept is constant-true here (candidate is destined
                # for the receiver)
                if not trivial_accept and not receiver_protocol.can_accept(
                    sb.bundle, now
                ):
                    continue
                if trivial_offer or sender_protocol.should_offer(sb, receiver, now):
                    return sb
                rejected = rec.coin_rejected
                if rejected is None:
                    rejected = rec.coin_rejected = set()
                rejected.add((sender_id, bid))
                coin_rejected = rejected
        # pass 2: the rest, same order — together the two passes visit
        # candidates in the planner's exact two-tier order
        for i, bit in enumerate(bits):
            if not (bit & want):
                continue
            sb = sbs[i]
            if peer_destined and sb.bundle.destination == rid:
                continue
            if now >= sb.expiry:
                continue
            bid = sb.bundle.bid
            if (sender_id, bid) in coin_rejected:
                continue
            if trivial_accept:
                if (
                    len(recv_entries) >= recv_cap
                    and sb.bundle.destination != rid
                    and not receiver.drop_policy.can_make_room(
                        receiver.relay, sb.bundle
                    )
                ):
                    continue
            elif not receiver_protocol.can_accept(sb.bundle, now):
                continue
            if trivial_offer or sender_protocol.should_offer(sb, receiver, now):
                return sb
            rejected = rec.coin_rejected
            if rejected is None:
                rejected = rec.coin_rejected = set()
            rejected.add((sender_id, bid))
            coin_rejected = rejected
        return None

    def _first_offer_pure(
        self, sender_id: int, receiver: Node, want: int
    ) -> StoredBundle | None:
        # _first_offer specialized for the fully-trivial substrate (base
        # offer/accept/store hooks, so no protocol ever assigns an expiry
        # or records a coin veto): the same two-tier visit order with the
        # want filter and the capacity probe as the only live predicates.
        sbs = self._cand_sbs[sender_id]
        bits = self._cand_bits[sender_id]
        rid = receiver.id
        recv_full = len(self._rentries[rid]) >= self._rcaps[rid]
        if self._dest_counts[sender_id].get(rid, 0):
            for i, bit in enumerate(bits):
                if bit & want and sbs[i].bundle.destination == rid:
                    return sbs[i]
            for i, bit in enumerate(bits):
                if bit & want:
                    sb = sbs[i]
                    if sb.bundle.destination == rid:
                        continue
                    if recv_full and not receiver.drop_policy.can_make_room(
                        receiver.relay, sb.bundle
                    ):
                        continue
                    return sb
            return None
        # no candidate is destined for the receiver: single pass, and the
        # destination-always-accepts arm of the capacity probe is vacuous
        for i, bit in enumerate(bits):
            if bit & want:
                sb = sbs[i]
                if recv_full and not receiver.drop_policy.can_make_room(
                    receiver.relay, sb.bundle
                ):
                    continue
                return sb
        return None

    def _schedule_next(self, rec: _Session, now: float) -> None:
        if rec.budget <= 0:
            return
        slot_end = rec.t_cursor + rec.tx_time
        if slot_end > rec.end + 1e-9:
            return
        node_a, node_b = rec.node_a, rec.node_b
        snd = self._snd_bits
        hasb = self._has_bits
        aid, bid_ = node_a.id, node_b.id
        pure = self._pure_offer
        sb = None
        want = snd[aid] & ~hasb[bid_]
        if want:
            if pure:
                sb = self._first_offer_pure(aid, node_b, want)
            else:
                sb = self._first_offer(rec, node_a, node_b, now, want)
        if sb is not None:
            sender, receiver = node_a, node_b
        else:
            want = snd[bid_] & ~hasb[aid]
            if want:
                if pure:
                    sb = self._first_offer_pure(bid_, node_a, want)
                else:
                    sb = self._first_offer(rec, node_b, node_a, now, want)
            if sb is None:
                return
            sender, receiver = node_b, node_a
        hook = self._planned_hook
        if hook is not None:
            hook(now, sender.id, receiver.id, sb.bundle.bid)
        rec.t_cursor = slot_end
        # _Calendar.at, inlined (hot: once per planned transfer)
        cal = self.cal
        entry: list[Any] = [slot_end, cal.seq, self._complete, (rec, sender, receiver, sb), True]
        cal.seq += 1
        heapq.heappush(cal.heap, entry)

    def _complete(self, rec: _Session, sender: Node, receiver: Node, sb: StoredBundle) -> None:
        sim = self.sim
        metrics = sim.metrics
        now = self.cal.now
        rec.budget -= 1
        bid = sb.bundle.bid
        rid = receiver.id
        bit = 1 << self._col[bid]
        # receiver.has_copy probe via the exact mask mirror (relay ∪ origin
        # ∪ delivered), sender.get_copy via the cached store views
        if self._has_bits[rid] & bit:
            metrics.on_wasted_slot()
            self._schedule_next(rec, now)
            return
        held = self._origins[sender.id].get(bid)
        if held is None:
            held = self._rentries[sender.id].get(bid)
        still_held = held is sb
        if (
            self._trivial_store
            and still_held
            and sb.bundle.destination != rid
            and len(self._rentries[rid]) < self._rcaps[rid]
        ):
            # hook-free relay store, mutation-for-mutation the reference
            # chain below: base on_transmitted, base accept with a
            # non-full buffer, the store accounting, and copy_added —
            # collapsed into one frame for the dominant completion shape
            sb.ec += 1
            sender.counters.bundles_sent += 1
            metrics.bundle_transmissions += 1
            stored = StoredBundle(bundle=sb.bundle, stored_at=now, ec=sb.ec)
            # relay.add, inlined: the duplicate and capacity guards are
            # discharged by the has-bit probe and the gate above
            self._rentries[rid][bid] = stored
            self._relays[rid].version += 1
            receiver.counters.bundles_received += 1
            metrics.on_relay_copy_stored(bid, now)
            self._snd_bits[rid] |= bit
            self._has_bits[rid] |= bit
            self._masks_dirty = True
            key = (now, bid)
            keys = self._cand_keys[rid]
            i = bisect_left(keys, key)
            keys.insert(i, key)
            self._cand_sbs[rid].insert(i, stored)
            self._cand_bits[rid].insert(i, bit)
            counts = self._dest_counts[rid]
            dest = sb.bundle.destination
            counts[dest] = counts.get(dest, 0) + 1
            self._schedule_next(rec, now)
            return
        if (
            still_held
            and not self._trivial_confirm
            and not sender.protocol.confirm_transfer(sb, receiver, now)
        ):
            metrics.on_wasted_slot()
            self._schedule_next(rec, now)
            return
        if still_held:
            sender.protocol.on_transmitted(sb, receiver, now)
            ec_for_receiver = sb.ec
        else:
            ec_for_receiver = sb.ec + 1
        sender.counters.bundles_sent += 1
        metrics.on_transmission()
        if sb.bundle.destination == receiver.id:
            sim.deliver(receiver, sb.bundle, now, via=sender.id)
        else:
            stored = sim.store_received_copy(
                receiver, sb.bundle, ec_for_receiver, now, sender_copy=sb
            )
            if stored is None:
                receiver.counters.rejections += 1
                metrics.on_wasted_slot()
        self._schedule_next(rec, now)

    # ------------------------------------------------------------- skip scan

    def _scan_chunks(self, lo: int, hi: int) -> int:
        """First contact index in ``[lo, hi)`` whose skip test fails, or ``hi``.

        The vectorized arm of the skip test: classifies
        :data:`_SKIP_CHUNK` contacts per row operation against the NumPy
        mask mirrors. Called only after the integer probe has burned its
        budget on an unbroken futile run — i.e. for the long spans where
        array overhead amortizes.
        """
        if self._masks_dirty:
            self._rebuild_masks()
        sendable = self._sendable
        has = self._has
        live_a = self._live_a
        live_b = self._live_b
        while lo < hi:
            nhi = lo + _SKIP_CHUNK
            if nhi > hi:
                nhi = hi
            a = live_a[lo:nhi]
            b = live_b[lo:nhi]
            possible = (sendable[a] & ~has[b]).any(axis=1)
            possible |= (sendable[b] & ~has[a]).any(axis=1)
            if possible.any():
                return lo + int(possible.argmax())
            lo = nhi
        return hi

    def _rebuild_masks(self) -> None:
        """Refresh the NumPy mask mirrors from the integer bitmasks."""
        nbytes = self._mask_bytes
        b = self._b
        for name, bits_list in (
            ("_sendable", self._snd_bits),
            ("_has", self._has_bits),
        ):
            raw = b"".join(bits.to_bytes(nbytes, "little") for bits in bits_list)
            packed = np.frombuffer(raw, dtype=np.uint8).reshape(self._n, nbytes)
            rows = np.unpackbits(packed, axis=1, bitorder="little")[:, :b]
            setattr(self, name, rows.view(np.bool_))
        self._masks_dirty = False

    def _settle_futile(self, ci: int, fired_idx: list[int]) -> None:
        """One-shot accounting for every futile contact in ``[0, ci)``.

        The sweep loop only records which contacts opened a session
        (``fired_idx``); everything else it advanced past is futile, so
        the skip count and per-endpoint control units settle here as two
        whole-prefix bincounts minus the fired contacts' contribution —
        order-independent sums, exactly as the per-event path tallies
        them one encounter at a time.
        """
        n_sessions = len(fired_idx)
        futile = ci - n_sessions
        if not futile:
            return
        self._skipped += futile
        minlength = self._n
        units = np.bincount(self._live_a[:ci], minlength=minlength)
        units += np.bincount(self._live_b[:ci], minlength=minlength)
        if n_sessions:
            fi = np.asarray(fired_idx, dtype=np.intp)
            units -= np.bincount(self._live_a[fi], minlength=minlength)
            units -= np.bincount(self._live_b[fi], minlength=minlength)
        self._ctrl_np += units

    # ------------------------------------------------------------------ run

    def run(self, horizon: float) -> RunResult:
        """Execute the swept run and build its result.

        Swaps the calendar in as ``sim.engine`` for the duration (every
        service-layer ``engine.at``/``cancel``/``halt``/``now`` lands on
        it), then restores the real engine, credits it the executed event
        count, advances its clock to the end time, and runs the standard
        deferred-bookkeeping flush — so result construction is the exact
        code path of an event run.
        """
        sim = self.sim
        cal = self.cal
        arrays = sim.trace.contact_arrays()
        zero_mask = zero_transfer_mask(sim.trace, sim.config.bundle_tx_time, arrays=arrays)
        real_engine = sim.engine
        self._planned_hook = sim.on_transfer_planned
        sim.engine = cal  # type: ignore[assignment]
        sim._state_observer = self
        sim._defer_history = True
        try:
            halted = self._drive(horizon, arrays, zero_mask)
        finally:
            sim.engine = real_engine
            sim._state_observer = None
        end_time = cal.now if halted else horizon
        real_engine.credit_events(cal.events_fired + self._skipped)
        real_engine.advance_clock(end_time)
        if self._skipped:
            sim.metrics.on_batched_contacts(self._skipped)
        for node, units in zip(self._nodes, self._ctrl_np.tolist(), strict=True):
            if units:
                node.counters.control_units_sent += units
        sim._flush_deferred_bookkeeping(zero_mask, end_time, arrays=arrays)
        return sim._build_result()

    def _drive(
        self,
        horizon: float,
        arrays: tuple[
            NDArray[np.float64], NDArray[np.float64], NDArray[np.intp], NDArray[np.intp]
        ],
        zero_mask: NDArray[np.bool_],
    ) -> bool:
        """The sweep loop; returns True when the run halted early."""
        sim = self.sim
        cal = self.cal
        nodes = self._nodes
        # flow injection, in the engine's pre-load order: t=0 flows run now
        # (their expiry pushes take the first seqs), later flows park on
        # the calendar — seq assignment matches the event queue's exactly
        for flow in sim.flows:
            if flow.created_at == 0.0:
                sim._inject_flow(flow)
            else:
                cal.at(flow.created_at, sim._inject_flow, flow)
        starts, ends, a_ids, b_ids = arrays
        live = np.flatnonzero(~zero_mask)
        live_starts = starts[live]
        self._live_a = a_ids[live]
        self._live_b = b_ids[live]
        starts_l: list[float] = live_starts.tolist()
        ends_l: list[float] = ends[live].tolist()
        a_l: list[int] = self._live_a.tolist()
        b_l: list[int] = self._live_b.tolist()
        contact_base = cal.seq
        cal.seq = contact_base + len(starts_l)
        n_fire = int(np.searchsorted(live_starts, horizon, side="right"))
        signaling = sim.metrics.signaling
        link_tx_time = sim.link_tx_time
        uniform_tx = sim._uniform_tx_time
        schedule_next = self._schedule_next
        snd = self._snd_bits
        hasb = self._has_bits
        heap = cal.heap
        heappop = heapq.heappop
        inf = math.inf
        ci = 0
        # indexes of contacts that opened a session; every other contact in
        # [0, ci) is futile, and all futile accounting (skip counts +
        # control units) settles in one vectorized pass on return
        fired_idx: list[int] = []
        fired_append = fired_idx.append
        while True:
            while heap and not heap[0][4]:
                heappop(heap)
            if heap:
                head = heap[0]
                h_time = head[0]
                h_seq = head[1]
            else:
                h_time = inf
                h_seq = 0
            # ---- contact block: every contact strictly before the next
            # dynamic event in (time, seq) order. Masks cannot change in
            # here — only calendar events mutate copy state.
            progressed = False
            probe = _PROBE
            while ci < n_fire:
                t = starts_l[ci]
                if t > h_time or (t == h_time and contact_base + ci >= h_seq):
                    break
                a = a_l[ci]
                b = b_l[ci]
                if (snd[a] & ~hasb[b]) or (snd[b] & ~hasb[a]):
                    # possible: run the exchange machinery for contact ci
                    cal.now = t
                    cal.events_fired += 1
                    node_a = nodes[a]
                    node_b = nodes[b]
                    signaling.summary_vector += 2
                    node_a.counters.control_units_sent += 1
                    node_b.counters.control_units_sent += 1
                    tx_time = (
                        uniform_tx if uniform_tx is not None else link_tx_time(a, b)
                    )
                    end = ends_l[ci]
                    rec = _Session(
                        node_a, node_b, t, end, tx_time, int((end - t) / tx_time)
                    )
                    schedule_next(rec, t)
                    fired_append(ci)
                    ci += 1
                    progressed = True
                    break
                # futile: retire inline (accounting settles on return)
                ci += 1
                probe -= 1
                if probe == 0:
                    # unbroken futile run: hand the rest of the block to
                    # the chunked vectorized scan
                    if h_time == inf:
                        hi = n_fire
                    else:
                        hi = int(np.searchsorted(live_starts, h_time, side="left"))
                        if hi > n_fire:
                            hi = n_fire
                        while (
                            hi < n_fire
                            and starts_l[hi] == h_time
                            and contact_base + hi < h_seq
                        ):
                            hi += 1
                    ci = self._scan_chunks(ci, hi)
                    probe = _PROBE
            if progressed:
                continue
            if h_time > horizon:
                self._settle_futile(ci, fired_idx)
                return False
            entry = heappop(heap)
            cal.now = h_time
            cal.events_fired += 1
            entry[2](*entry[3])
            if cal.halted:
                self._settle_futile(ci, fired_idx)
                return True
