"""Run results and their aggregation into figure-ready series.

A :class:`RunResult` is one simulation run; a :class:`SweepResult` is the
collection over (protocol × load × replication). Aggregation reproduces the
paper's plotting conventions:

* metric curves are means over replications at each load;
* **delay averages only successful runs** (failed runs record no delay);
* Table II's per-protocol numbers are means across the whole load sweep.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass, field
from collections.abc import Callable, Iterable, Mapping
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.executors import CellFailure


@dataclass(frozen=True)
class RunResult:
    """Outcome and metrics of one simulation run."""

    protocol: str  #: registry name, e.g. ``"pq"``
    protocol_label: str  #: human label, e.g. ``"P-Q epidemic (P=1, Q=1)"``
    trace_name: str
    load: int  #: bundles offered
    seed: int
    source: int
    destination: int
    delivered: int
    delivery_ratio: float
    delay: float | None  #: completion time; None for failed runs
    success: bool
    buffer_occupancy: float  #: time-averaged mean fill fraction
    duplication_rate: float  #: time-averaged mean copies/N over bundles
    signaling: dict[str, int]
    transmissions: int
    wasted_slots: int
    removals: dict[str, int]
    end_time: float
    #: highest instantaneous population-wide fill fraction during the run
    #: (may exceed 1.0 when stored immunity tables overflow nominal slots)
    peak_occupancy: float = 0.0
    #: buffer-pressure evictions by drop-policy name (``reject`` never
    #: evicts; EC's intrinsic rule reports under ``max-ec``)
    drops: dict[str, int] = field(default_factory=dict)
    #: disruption-model counters (crashes, missed/dropped contacts,
    #: interrupted/failed transfers, re-infections, downtime) — populated
    #: only by faulted runs (see :mod:`repro.faults`); empty otherwise so
    #: unfaulted results keep their historical serialised form
    churn: dict[str, float] = field(default_factory=dict)
    #: opt-in ``(time, fill fraction)`` occupancy trace — piecewise
    #: constant between entries; None unless the run recorded it
    #: (``SimulationConfig.record_occupancy`` / ``--record-occupancy``)
    occupancy_series: tuple[tuple[float, float], ...] | None = None

    @property
    def signaling_overhead(self) -> int:
        """Protocol-specific control units (anti-packets + immunity tables)."""
        return self.signaling.get("anti_packet", 0) + self.signaling.get(
            "immunity_table", 0
        )

    def as_row(self) -> dict[str, object]:
        """Flatten to a CSV-friendly dict."""
        row: dict[str, object] = {
            "protocol": self.protocol,
            "protocol_label": self.protocol_label,
            "trace": self.trace_name,
            "load": self.load,
            "seed": self.seed,
            "source": self.source,
            "destination": self.destination,
            "delivered": self.delivered,
            "delivery_ratio": self.delivery_ratio,
            "delay": "" if self.delay is None else self.delay,
            "success": int(self.success),
            "buffer_occupancy": self.buffer_occupancy,
            "peak_occupancy": self.peak_occupancy,
            "duplication_rate": self.duplication_rate,
            "transmissions": self.transmissions,
            "wasted_slots": self.wasted_slots,
            "signaling_overhead": self.signaling_overhead,
            "end_time": self.end_time,
        }
        for kind, units in self.signaling.items():
            row[f"signal_{kind}"] = units
        for reason, count in self.removals.items():
            row[f"removed_{reason}"] = count
        for policy, count in self.drops.items():
            row[f"drops_{policy}"] = count
        for key, value in self.churn.items():
            row[f"churn_{key}"] = value
        return row

    # ------------------------------------------------- lossless round-trip

    def to_dict(self) -> dict[str, object]:
        """Full-fidelity JSON-safe form (unlike :meth:`as_row`, lossless).

        Every field round-trips exactly through JSON — floats serialise
        via their shortest round-trip repr, so
        ``RunResult.from_dict(json.loads(json.dumps(r.to_dict())))``
        reconstructs a result that compares (and reprs) bit-identical to
        ``r``. This is the checkpoint journal's record format.
        """
        out = dataclasses.asdict(self)
        if self.occupancy_series is not None:
            out["occupancy_series"] = [list(p) for p in self.occupancy_series]
        if not self.churn:
            # unfaulted records keep the historical journal format exactly
            del out["churn"]
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> RunResult:
        """Inverse of :meth:`to_dict`.

        Raises:
            ValueError: on missing or unknown fields.
        """
        names = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(data) - names)
        if unknown:
            raise ValueError(f"unknown RunResult field(s): {', '.join(unknown)}")
        required = names - {"peak_occupancy", "drops", "occupancy_series", "churn"}
        missing = sorted(required - set(data))
        if missing:
            raise ValueError(f"missing RunResult field(s): {', '.join(missing)}")
        kwargs = dict(data)
        series = kwargs.get("occupancy_series")
        if series is not None:
            kwargs["occupancy_series"] = tuple(
                (float(t), float(v)) for t, v in series  # type: ignore[union-attr]
            )
        return cls(**kwargs)  # type: ignore[arg-type]


@dataclass
class SeriesPoint:
    """One (load, mean value) point of a figure curve."""

    load: int
    value: float
    n: int  #: runs aggregated into this point


@dataclass
class Series:
    """One labelled curve: metric values vs load."""

    label: str
    points: list[SeriesPoint] = field(default_factory=list)

    @property
    def loads(self) -> list[int]:
        return [p.load for p in self.points]

    @property
    def values(self) -> list[float]:
        return [p.value for p in self.points]


@dataclass
class SweepResult:
    """All runs of a sweep, with figure/table aggregation helpers."""

    runs: list[RunResult] = field(default_factory=list)
    #: cross-validation gate report (dict form of
    #: :class:`repro.analytic.calibration.CrossValidationReport`), attached
    #: by :meth:`repro.scenarios.spec.ScenarioSpec.run` when the sweep ran
    #: on the surrogate engine with the gate enabled; None otherwise
    surrogate_report: dict[str, object] | None = None
    #: structured records of grid cells that failed under
    #: ``on_error="keep-going"`` (see
    #: :class:`repro.core.executors.CellFailure`); empty for campaigns
    #: that completed cleanly. Aggregation methods operate on ``runs``
    #: only — a load whose runs all failed yields a NaN series point, so
    #: partial grids stay renderable with the gaps visible.
    failures: list["CellFailure"] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.runs)

    def extend(self, more: Iterable[RunResult]) -> None:
        self.runs.extend(more)

    @property
    def complete(self) -> bool:
        """True when no grid cell failed."""
        return not self.failures

    def protocols(self) -> list[str]:
        """Protocol labels present, in first-appearance order."""
        seen: dict[str, None] = {}
        for r in self.runs:
            seen.setdefault(r.protocol_label, None)
        return list(seen)

    def loads(self) -> list[int]:
        return sorted({r.load for r in self.runs})

    def filter(
        self, *, protocol_label: str | None = None, load: int | None = None
    ) -> list[RunResult]:
        out = self.runs
        if protocol_label is not None:
            out = [r for r in out if r.protocol_label == protocol_label]
        if load is not None:
            out = [r for r in out if r.load == load]
        return out

    # ------------------------------------------------------------ aggregation

    def series(
        self,
        metric: Callable[[RunResult], float | None],
        *,
        label: str | None = None,
    ) -> list[Series]:
        """One curve per protocol: mean of ``metric`` per load.

        Runs for which the metric is None (e.g. delay of failed runs) are
        excluded from the mean; a load where *no* run has a value yields a
        NaN point so gaps stay visible in plots/CSV.
        """
        out: list[Series] = []
        for proto in self.protocols():
            if label is not None and proto != label:
                continue
            s = Series(label=proto)
            for load in self.loads():
                vals = [
                    v
                    for r in self.filter(protocol_label=proto, load=load)
                    if (v := metric(r)) is not None
                ]
                n = len(vals)
                mean = sum(vals) / n if n else math.nan
                s.points.append(SeriesPoint(load=load, value=mean, n=n))
            out.append(s)
        return out

    def delay_series(self) -> list[Series]:
        """Average delay vs load (successful runs only) — Figs 7–8."""
        return self.series(lambda r: r.delay)

    def delivery_ratio_series(self) -> list[Series]:
        """Average delivery ratio vs load — Figs 13–16."""
        return self.series(lambda r: r.delivery_ratio)

    def buffer_occupancy_series(self) -> list[Series]:
        """Average buffer occupancy level vs load — Figs 11–12, 17–18."""
        return self.series(lambda r: r.buffer_occupancy)

    def peak_occupancy_series(self) -> list[Series]:
        """Average peak occupancy vs load (the contention-pressure curve)."""
        return self.series(lambda r: r.peak_occupancy)

    def duplication_series(self) -> list[Series]:
        """Average bundle duplication rate vs load — Figs 9–10, 19–20."""
        return self.series(lambda r: r.duplication_rate)

    def signaling_series(self) -> list[Series]:
        """Protocol-specific control units vs load (overhead ablation)."""
        return self.series(lambda r: float(r.signaling_overhead))

    def protocol_means(self, protocol_label: str) -> dict[str, float]:
        """Whole-sweep means for one protocol — Table II's row format."""
        runs = self.filter(protocol_label=protocol_label)
        if not runs:
            raise ValueError(f"no runs for protocol {protocol_label!r}")
        delays = [r.delay for r in runs if r.delay is not None]
        return {
            "delivery_ratio": sum(r.delivery_ratio for r in runs) / len(runs),
            "buffer_occupancy": sum(r.buffer_occupancy for r in runs) / len(runs),
            "peak_occupancy": sum(r.peak_occupancy for r in runs) / len(runs),
            "duplication_rate": sum(r.duplication_rate for r in runs) / len(runs),
            "delay": sum(delays) / len(delays) if delays else math.nan,
            "signaling_overhead": sum(r.signaling_overhead for r in runs) / len(runs),
            "drops": sum(sum(r.drops.values()) for r in runs) / len(runs),
            "runs": float(len(runs)),
        }
