"""Discrete-event simulation substrate.

This package provides the minimal, dependency-free machinery every simulation
in :mod:`repro` is built on:

* :class:`~repro.des.event.Event` — an immutable scheduled occurrence with a
  stable total order (time, priority, sequence number).
* :class:`~repro.des.queue.EventQueue` — a binary-heap pending-event set with
  O(log n) scheduling and lazy cancellation.
* :class:`~repro.des.engine.Engine` — the event loop: schedule callbacks,
  advance the clock monotonically, stop on predicate/horizon/exhaustion.
* :mod:`~repro.des.rng` — reproducible, independently-seeded random streams
  derived from a single master seed via ``numpy.random.SeedSequence``.

The engine is deliberately small: the DTN simulation in :mod:`repro.core`
drives almost everything from contact events, so the substrate only needs
correct ordering, cancellation and determinism — all of which are covered by
property-based tests in ``tests/des``.
"""

from repro.des.engine import Engine, StopCondition
from repro.des.event import Event, EventHandle
from repro.des.queue import EventQueue
from repro.des.rng import RngHub, derive_seed, spawn_streams

__all__ = [
    "Engine",
    "StopCondition",
    "Event",
    "EventHandle",
    "EventQueue",
    "RngHub",
    "derive_seed",
    "spawn_streams",
]
