"""The discrete-event simulation engine.

An :class:`Engine` owns a clock and an :class:`~repro.des.queue.EventQueue`.
Client code schedules callbacks at absolute times (``at``) or relative
delays (``after``); :meth:`Engine.run` fires them in order while advancing
the clock monotonically. Callback arguments are passed positionally
(``engine.at(t, fn, a, b)``) so hot schedulers never allocate a closure per
event.

Stop conditions: an explicit time horizon, a predicate evaluated after every
event, an event budget (runaway protection), or queue exhaustion — whichever
comes first. The reason the loop ended is reported as a
:class:`StopCondition`.
"""

from __future__ import annotations

import enum
import heapq
import math
from collections.abc import Callable, Iterable, Iterator
from typing import Any

from repro.des.event import EventHandle, PRIORITY_NORMAL
from repro.des.queue import EventQueue


class StopCondition(enum.Enum):
    """Why :meth:`Engine.run` returned."""

    EXHAUSTED = "exhausted"  #: no more events
    HORIZON = "horizon"  #: next event lies beyond the time horizon
    PREDICATE = "predicate"  #: user stop-predicate returned True
    BUDGET = "budget"  #: event budget exceeded
    HALTED = "halted"  #: client called :meth:`Engine.halt`


class Engine:
    """Sequential discrete-event engine with a monotonic clock."""

    __slots__ = ("_now", "_queue", "_halted", "_events_fired")

    def __init__(self, *, start_time: float = 0.0) -> None:
        if not math.isfinite(start_time) or start_time < 0:
            raise ValueError("start_time must be finite and >= 0")
        self._now = start_time
        self._queue = EventQueue()
        self._halted = False
        self._events_fired = 0

    # ------------------------------------------------------------------ clock

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def events_fired(self) -> int:
        """Total number of events executed so far."""
        return self._events_fired

    @property
    def pending(self) -> int:
        """Number of live scheduled events."""
        return len(self._queue)

    def next_event_time(self) -> float:
        """Earliest pending live event time, or +inf when idle."""
        t = self._queue.peek_time()
        return math.inf if t is None else t

    def credit_events(self, count: int) -> None:
        """Add externally-executed events to the fired-event counter.

        For clients that execute work equivalent to scheduled events
        outside the engine loop (the simulation's SoA sweep kernel):
        :attr:`events_fired` keeps meaning "events of the reference
        schedule executed", so throughput accounting stays comparable
        across execution modes.

        Raises:
            ValueError: if ``count`` is negative.
        """
        if count < 0:
            raise ValueError(f"cannot credit a negative event count: {count}")
        self._events_fired += count

    def advance_clock(self, time: float) -> None:
        """Advance the clock without firing an event.

        For clients that process batched work *between* events (the
        simulation's degenerate-encounter chunks): time-weighted metric
        integrals must see the clock at each virtual occurrence time.
        Callers must not advance past :meth:`next_event_time` — the next
        fired event would otherwise appear to go back in time.

        Raises:
            ValueError: if ``time`` precedes the current clock.
        """
        if time < self._now:
            raise ValueError(
                f"cannot advance clock to t={time} before current time t={self._now}"
            )
        self._now = time

    # -------------------------------------------------------------- scheduling

    def at(
        self,
        time: float,
        action: Callable[..., Any],
        *args: Any,
        priority: int = PRIORITY_NORMAL,
        tag: str | Callable[[], str] = "",
    ) -> EventHandle:
        """Schedule ``action(*args)`` at absolute ``time``.

        Raises:
            ValueError: if ``time`` is in the past (strictly before ``now``).
        """
        if time < self._now:
            raise ValueError(
                f"cannot schedule at t={time} before current time t={self._now}"
            )
        return self._queue.push(time, action, *args, priority=priority, tag=tag)

    def after(
        self,
        delay: float,
        action: Callable[..., Any],
        *args: Any,
        priority: int = PRIORITY_NORMAL,
        tag: str | Callable[[], str] = "",
    ) -> EventHandle:
        """Schedule ``action(*args)`` ``delay`` time units from now (>= 0)."""
        if delay < 0:
            raise ValueError(f"delay must be >= 0, got {delay}")
        return self._queue.push(
            self._now + delay, action, *args, priority=priority, tag=tag
        )

    def schedule_sorted(
        self, items: Iterable[tuple[float, Callable[..., Any], tuple[Any, ...]]]
    ) -> int:
        """Bulk-load time-ordered ``(time, action, args)`` triples (see queue docs).

        The simulation driver uses this to load a whole contact trace — a
        list already sorted by start time — in O(n) instead of n heap pushes.

        Raises:
            ValueError: if the first time lies in the past.
        """
        it = iter(items)
        try:
            first = next(it)
        except StopIteration:
            return 0
        if first[0] < self._now:
            raise ValueError(
                f"cannot schedule at t={first[0]} before current time t={self._now}"
            )

        def _chained() -> Iterator[tuple[float, Callable[..., Any], tuple[Any, ...]]]:
            yield first
            yield from it

        return self._queue.schedule_sorted(_chained())

    def cancel(self, handle: EventHandle) -> bool:
        """Cancel a pending event. Returns True if it was still pending."""
        if handle.cancel():
            self._queue.notify_cancelled()
            return True
        return False

    def halt(self) -> None:
        """Request the run loop to stop after the current event."""
        self._halted = True

    # -------------------------------------------------------------- run loop

    def run(
        self,
        *,
        until: float = math.inf,
        stop_when: Callable[[], bool] | None = None,
        max_events: int | None = None,
    ) -> StopCondition:
        """Fire events in order until a stop condition triggers.

        Args:
            until: Inclusive time horizon; events scheduled strictly after it
                remain pending and the clock is advanced to ``until`` (when
                finite) so a subsequent ``run`` resumes correctly.
            stop_when: Predicate checked after each event.
            max_events: Maximum number of events to fire in this call.

        Returns:
            The :class:`StopCondition` that ended the loop.
        """
        self._halted = False
        fired_this_call = 0
        # Fused peek+pop over the queue's heap: one dead-entry skim and one
        # heap access per fired event, no per-event method-call pairs. The
        # entry layout (time, priority, seq, handle) is the queue's
        # documented internal representation.
        queue = self._queue
        heap = queue._heap
        heappop = heapq.heappop
        while True:
            if self._halted:
                return StopCondition.HALTED
            if stop_when is not None and stop_when():
                return StopCondition.PREDICATE
            if max_events is not None and fired_this_call >= max_events:
                return StopCondition.BUDGET
            while heap and heap[0][3].cancelled:  # skim, inlined
                heappop(heap)
                if queue._dead:
                    queue._dead -= 1
            if not heap or heap[0][0] > until:
                if math.isfinite(until) and until > self._now:
                    self._now = until
                return StopCondition.EXHAUSTED if not heap else StopCondition.HORIZON
            handle = heappop(heap)[3]
            handle.fired = True
            ev = handle.event
            self._now = ev.time
            self._events_fired += 1
            fired_this_call += 1
            # action is Optional only so Event() can construct empty; every
            # queue-created event carries one
            ev.action(*ev.args)  # type: ignore[misc]

    def step(self) -> bool:
        """Fire exactly one event. Returns False if the queue was empty."""
        ev = self._queue.pop()
        if ev is None:
            return False
        self._now = ev.time
        self._events_fired += 1
        ev.action(*ev.args)  # type: ignore[misc]
        return True
