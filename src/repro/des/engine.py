"""The discrete-event simulation engine.

An :class:`Engine` owns a clock and an :class:`~repro.des.queue.EventQueue`.
Client code schedules zero-argument callbacks at absolute times (``at``) or
relative delays (``after``); :meth:`Engine.run` fires them in order while
advancing the clock monotonically.

Stop conditions: an explicit time horizon, a predicate evaluated after every
event, an event budget (runaway protection), or queue exhaustion — whichever
comes first. The reason the loop ended is reported as a
:class:`StopCondition`.
"""

from __future__ import annotations

import enum
import math
from typing import Any, Callable

from repro.des.event import EventHandle, PRIORITY_NORMAL
from repro.des.queue import EventQueue


class StopCondition(enum.Enum):
    """Why :meth:`Engine.run` returned."""

    EXHAUSTED = "exhausted"  #: no more events
    HORIZON = "horizon"  #: next event lies beyond the time horizon
    PREDICATE = "predicate"  #: user stop-predicate returned True
    BUDGET = "budget"  #: event budget exceeded
    HALTED = "halted"  #: client called :meth:`Engine.halt`


class Engine:
    """Sequential discrete-event engine with a monotonic clock."""

    def __init__(self, *, start_time: float = 0.0) -> None:
        if not math.isfinite(start_time) or start_time < 0:
            raise ValueError("start_time must be finite and >= 0")
        self._now = start_time
        self._queue = EventQueue()
        self._halted = False
        self._events_fired = 0

    # ------------------------------------------------------------------ clock

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def events_fired(self) -> int:
        """Total number of events executed so far."""
        return self._events_fired

    @property
    def pending(self) -> int:
        """Number of live scheduled events."""
        return len(self._queue)

    # -------------------------------------------------------------- scheduling

    def at(
        self,
        time: float,
        action: Callable[[], Any],
        *,
        priority: int = PRIORITY_NORMAL,
        tag: str = "",
    ) -> EventHandle:
        """Schedule ``action`` at absolute ``time``.

        Raises:
            ValueError: if ``time`` is in the past (strictly before ``now``).
        """
        if time < self._now:
            raise ValueError(
                f"cannot schedule at t={time} before current time t={self._now}"
            )
        return self._queue.push(time, action, priority=priority, tag=tag)

    def after(
        self,
        delay: float,
        action: Callable[[], Any],
        *,
        priority: int = PRIORITY_NORMAL,
        tag: str = "",
    ) -> EventHandle:
        """Schedule ``action`` ``delay`` time units from now (delay >= 0)."""
        if delay < 0:
            raise ValueError(f"delay must be >= 0, got {delay}")
        return self._queue.push(self._now + delay, action, priority=priority, tag=tag)

    def cancel(self, handle: EventHandle) -> bool:
        """Cancel a pending event. Returns True if it was still pending."""
        if handle.cancel():
            self._queue.notify_cancelled()
            return True
        return False

    def halt(self) -> None:
        """Request the run loop to stop after the current event."""
        self._halted = True

    # -------------------------------------------------------------- run loop

    def run(
        self,
        *,
        until: float = math.inf,
        stop_when: Callable[[], bool] | None = None,
        max_events: int | None = None,
    ) -> StopCondition:
        """Fire events in order until a stop condition triggers.

        Args:
            until: Inclusive time horizon; events scheduled strictly after it
                remain pending and the clock is advanced to ``until`` (when
                finite) so a subsequent ``run`` resumes correctly.
            stop_when: Predicate checked after each event.
            max_events: Maximum number of events to fire in this call.

        Returns:
            The :class:`StopCondition` that ended the loop.
        """
        self._halted = False
        fired_this_call = 0
        while True:
            if self._halted:
                return StopCondition.HALTED
            if stop_when is not None and stop_when():
                return StopCondition.PREDICATE
            if max_events is not None and fired_this_call >= max_events:
                return StopCondition.BUDGET
            nxt = self._queue.peek()
            if nxt is None:
                if math.isfinite(until) and until > self._now:
                    self._now = until
                return StopCondition.EXHAUSTED
            if nxt.time > until:
                if math.isfinite(until) and until > self._now:
                    self._now = until
                return StopCondition.HORIZON
            ev = self._queue.pop()
            assert ev is not None  # peek() returned a live event
            self._now = ev.time
            self._events_fired += 1
            fired_this_call += 1
            ev.action()

    def step(self) -> bool:
        """Fire exactly one event. Returns False if the queue was empty."""
        ev = self._queue.pop()
        if ev is None:
            return False
        self._now = ev.time
        self._events_fired += 1
        ev.action()
        return True
