"""Event primitives for the discrete-event engine.

Events order by ``(time, priority, seq)``: earlier times first, then lower
priority values, then insertion order. The sequence number makes the ordering
*total* and *stable* — two events scheduled for the same instant with the same
priority fire in the order they were scheduled, which the DTN simulation
relies on (e.g. a contact-start must be processed before transfers scheduled
inside the contact at the same timestamp).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

#: Default priority for ordinary events.
PRIORITY_NORMAL = 0
#: Priority for events that must run before normal ones at the same instant
#: (e.g. contact-start control-plane exchange).
PRIORITY_EARLY = -10
#: Priority for events that must run after normal ones at the same instant
#: (e.g. metric finalisation, contact-end bookkeeping).
PRIORITY_LATE = 10


@dataclass(frozen=True, slots=True)
class Event:
    """A scheduled occurrence.

    Attributes:
        time: Simulation time at which the event fires. Must be finite and
            non-negative.
        priority: Tie-break for events at the same time; lower fires first.
        seq: Monotonic sequence number assigned by the queue; final tie-break.
        action: Zero-argument callable invoked when the event fires.
        tag: Optional free-form label used for debugging and test assertions.
    """

    time: float
    priority: int
    seq: int
    action: Callable[[], Any]
    tag: str = ""

    def sort_key(self) -> tuple[float, int, int]:
        """Return the total-order key used by the event queue."""
        return (self.time, self.priority, self.seq)

    def __lt__(self, other: "Event") -> bool:
        return self.sort_key() < other.sort_key()


@dataclass(slots=True)
class EventHandle:
    """Cancellation handle returned by :meth:`EventQueue.push`.

    Cancellation is *lazy*: the event stays in the heap but is skipped when
    popped. ``alive`` is False once the event fired or was cancelled.
    """

    event: Event
    cancelled: bool = field(default=False)
    fired: bool = field(default=False)

    @property
    def alive(self) -> bool:
        """True while the event is still pending (not cancelled, not fired)."""
        return not self.cancelled and not self.fired

    def cancel(self) -> bool:
        """Cancel the event if still pending.

        Returns:
            True if this call cancelled the event, False if it had already
            fired or been cancelled.
        """
        if self.alive:
            self.cancelled = True
            return True
        return False
