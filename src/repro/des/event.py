"""Event primitives for the discrete-event engine.

Events order by ``(time, priority, seq)``: earlier times first, then lower
priority values, then insertion order. The sequence number makes the ordering
*total* and *stable* — two events scheduled for the same instant with the same
priority fire in the order they were scheduled, which the DTN simulation
relies on (e.g. a contact-start must be processed before transfers scheduled
inside the contact at the same timestamp).

These classes sit on the innermost simulation loop (one :class:`Event` +
:class:`EventHandle` pair per scheduled occurrence, 10⁴–10⁶ per run), so
they are hand-rolled ``__slots__`` classes rather than dataclasses: no
generated ``__init__`` indirection, no per-instance ``__dict__``, and no
eager work in the constructor.

Debug tags are **lazy**: ``tag`` may be a plain string or a zero-argument
callable producing one. Hot schedulers pass no tag at all — an event is
already self-describing through ``action``/``args`` (see
:meth:`Event.describe`) — so no f-string is ever built in normal runs.
"""

from __future__ import annotations

from collections.abc import Callable
from typing import Any

#: Default priority for ordinary events.
PRIORITY_NORMAL = 0
#: Priority for events that must run before normal ones at the same instant
#: (e.g. contact-start control-plane exchange).
PRIORITY_EARLY = -10
#: Priority for events that must run after normal ones at the same instant
#: (e.g. metric finalisation, contact-end bookkeeping).
PRIORITY_LATE = 10


class Event:
    """A scheduled occurrence.

    Attributes:
        time: Simulation time at which the event fires. Must be finite and
            non-negative.
        priority: Tie-break for events at the same time; lower fires first.
        seq: Monotonic sequence number assigned by the queue; final tie-break.
        action: Callable invoked with ``*args`` when the event fires.
        args: Positional arguments for ``action``. Passing arguments here
            instead of closing over them avoids allocating a closure per
            scheduled event.
    """

    __slots__ = ("time", "priority", "seq", "action", "args", "_tag")

    def __init__(
        self,
        time: float = 0.0,
        priority: int = PRIORITY_NORMAL,
        seq: int = 0,
        action: Callable[..., Any] | None = None,
        args: tuple[Any, ...] = (),
        tag: str | Callable[[], str] = "",
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.action = action
        self.args = args
        self._tag = tag

    @property
    def tag(self) -> str:
        """Debug label; resolved (and cached) on first access when lazy."""
        t = self._tag
        if callable(t):
            t = t()
            self._tag = t
        return t

    def describe(self) -> str:
        """Human rendering for debugging: tag if set, else action + args."""
        if self._tag:
            return self.tag
        name = getattr(self.action, "__qualname__", repr(self.action))
        if not self.args:
            return name
        return f"{name}{self.args!r}"

    def sort_key(self) -> tuple[float, int, int]:
        """Return the total-order key used by the event queue."""
        return (self.time, self.priority, self.seq)

    def __lt__(self, other: Event) -> bool:
        return (self.time, self.priority, self.seq) < (
            other.time,
            other.priority,
            other.seq,
        )

    def __repr__(self) -> str:
        return (
            f"Event(t={self.time}, prio={self.priority}, seq={self.seq}, "
            f"{self.describe()})"
        )


class EventHandle:
    """Cancellation handle returned by :meth:`EventQueue.push`.

    Cancellation is *lazy*: the event stays in the heap but is skipped when
    popped. ``alive`` is False once the event fired or was cancelled.
    """

    __slots__ = ("event", "cancelled", "fired")

    def __init__(
        self, event: Event, cancelled: bool = False, fired: bool = False
    ) -> None:
        self.event = event
        self.cancelled = cancelled
        self.fired = fired

    @property
    def alive(self) -> bool:
        """True while the event is still pending (not cancelled, not fired)."""
        return not self.cancelled and not self.fired

    def cancel(self) -> bool:
        """Cancel the event if still pending.

        Returns:
            True if this call cancelled the event, False if it had already
            fired or been cancelled.
        """
        if not self.cancelled and not self.fired:
            self.cancelled = True
            return True
        return False

    def __repr__(self) -> str:
        state = "cancelled" if self.cancelled else "fired" if self.fired else "pending"
        return f"EventHandle({self.event!r}, {state})"
