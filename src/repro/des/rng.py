"""Reproducible random-stream management.

Every stochastic component in the library (trace generators, workload
endpoint selection, P-Q coin flips, …) draws from its *own*
``numpy.random.Generator`` derived from a single master seed through
``numpy.random.SeedSequence``. This gives:

* **Reproducibility** — one integer reproduces an entire sweep.
* **Independence** — streams derived with distinct keys are statistically
  independent, so adding a consumer never perturbs the draws seen by others.
* **Parallel safety** — per-run streams are derived from ``(master, run_id)``
  so replications can execute in any order (or concurrently) and still match.
"""

from __future__ import annotations

import hashlib
from collections.abc import Iterable
from functools import lru_cache
from typing import Any

import numpy as np


@lru_cache(maxsize=256)
def _key_to_ints(key: str) -> tuple[int, ...]:
    """Hash a textual key into a stable tuple of uint32 spawn words.

    ``SeedSequence`` accepts extra entropy words; hashing the key keeps the
    mapping stable across Python processes (unlike ``hash()``, which is
    salted). Component names recur constantly (two streams per node per
    run), so the digest is memoised.
    """
    digest = hashlib.sha256(key.encode()).digest()
    return tuple(int.from_bytes(digest[i : i + 4], "little") for i in range(0, 16, 4))


def derive_seed(master_seed: int, *keys: str | int) -> np.random.SeedSequence:
    """Derive a child :class:`numpy.random.SeedSequence` from a master seed.

    Args:
        master_seed: The experiment-level seed.
        *keys: Any mix of strings (component names) and integers (run
            indices) identifying the consumer.

    Returns:
        A seed sequence unique to ``(master_seed, *keys)``.
    """
    words: list[int] = [int(master_seed) & 0xFFFFFFFF, (int(master_seed) >> 32) & 0xFFFFFFFF]
    for key in keys:
        if isinstance(key, int):
            words.extend((key & 0xFFFFFFFF, (key >> 32) & 0xFFFFFFFF))
        else:
            words.extend(_key_to_ints(str(key)))
    return np.random.SeedSequence(words)


def spawn_streams(master_seed: int, names: Iterable[str]) -> dict[str, np.random.Generator]:
    """Create one independent generator per name from a master seed."""
    return {
        name: np.random.default_rng(derive_seed(master_seed, name)) for name in names
    }


class RngHub:
    """Lazily hands out named, independent random streams.

    Example:
        >>> hub = RngHub(master_seed=7)
        >>> coin = hub.stream("pq-coins")
        >>> endpoints = hub.stream("workload", 3)   # run 3's endpoint draws
        >>> hub.stream("pq-coins") is coin          # cached
        True
    """

    __slots__ = ("master_seed", "_streams")

    def __init__(self, master_seed: int) -> None:
        self.master_seed = int(master_seed)
        self._streams: dict[tuple[str | int, ...], np.random.Generator] = {}

    def stream(self, *keys: str | int) -> np.random.Generator:
        """Return (and cache) the generator identified by ``keys``."""
        if not keys:
            raise ValueError("at least one key is required")
        if keys not in self._streams:
            self._streams[keys] = np.random.default_rng(
                derive_seed(self.master_seed, *keys)
            )
        return self._streams[keys]

    def fresh(self, *keys: str | int) -> np.random.Generator:
        """Return a *non-cached* generator (always restarts the stream)."""
        if not keys:
            raise ValueError("at least one key is required")
        return np.random.default_rng(derive_seed(self.master_seed, *keys))

    def lazy_stream(self, *keys: str | int) -> LazyStream:
        """A deferred :meth:`stream`: the generator is built on first draw.

        Simulation setup hands two streams to every node, but most
        protocols never draw (pure epidemic consumes no randomness; P-Q
        with P=Q=1 never flips) — deferring skips the SeedSequence/PCG64
        construction for streams that are never touched. A materialised
        lazy stream produces exactly the draws ``stream(*keys)`` would.
        """
        if not keys:
            raise ValueError("at least one key is required")
        return LazyStream(self, keys)


class LazyStream:
    """Attribute proxy that materialises an :class:`RngHub` stream on use."""

    __slots__ = ("_hub", "_keys", "_rng")

    def __init__(self, hub: RngHub, keys: tuple[str | int, ...]) -> None:
        self._hub = hub
        self._keys = keys
        self._rng: np.random.Generator | None = None

    @property
    def generator(self) -> np.random.Generator:
        """The underlying generator (materialising it if needed)."""
        rng = self._rng
        if rng is None:
            rng = self._rng = self._hub.stream(*self._keys)
        return rng

    def __getattr__(self, name: str) -> Any:
        # only reached for names not in __slots__, i.e. Generator API
        return getattr(self.generator, name)

    def __repr__(self) -> str:
        state = "materialised" if self._rng is not None else "deferred"
        return f"LazyStream({self._keys!r}, {state})"
