"""Pending-event set: a binary heap with stable ordering and lazy deletion.

``heapq`` gives O(log n) push/pop; cancelled events are skipped on pop rather
than removed eagerly, which keeps cancellation O(1). A compaction pass runs
automatically when more than half the heap is dead weight, bounding memory to
O(live events).
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Iterator

from repro.des.event import Event, EventHandle, PRIORITY_NORMAL


class EventQueue:
    """Priority queue of :class:`Event` objects ordered by (time, priority, seq)."""

    #: Compact the heap when dead entries exceed this fraction of the heap.
    _COMPACT_RATIO = 0.5
    #: ... but never bother compacting tiny heaps.
    _COMPACT_MIN = 64

    def __init__(self) -> None:
        self._heap: list[tuple[tuple[float, int, int], EventHandle]] = []
        self._seq = 0
        self._dead = 0

    def __len__(self) -> int:
        """Number of *live* (pending) events."""
        return len(self._heap) - self._dead

    def __bool__(self) -> bool:
        return len(self) > 0

    @property
    def next_seq(self) -> int:
        """Sequence number the next pushed event will receive."""
        return self._seq

    def push(
        self,
        time: float,
        action: Callable[[], Any],
        *,
        priority: int = PRIORITY_NORMAL,
        tag: str = "",
    ) -> EventHandle:
        """Schedule ``action`` at ``time`` and return a cancellation handle.

        Raises:
            ValueError: if ``time`` is negative or not finite.
        """
        if not (time >= 0.0):  # also rejects NaN
            raise ValueError(f"event time must be finite and >= 0, got {time!r}")
        ev = Event(time=time, priority=priority, seq=self._seq, action=action, tag=tag)
        self._seq += 1
        handle = EventHandle(ev)
        heapq.heappush(self._heap, (ev.sort_key(), handle))
        return handle

    def peek(self) -> Event | None:
        """Return the earliest live event without removing it, or None."""
        self._skim()
        if not self._heap:
            return None
        return self._heap[0][1].event

    def pop(self) -> Event | None:
        """Remove and return the earliest live event, or None if empty.

        The returned event's handle is marked as fired.
        """
        self._skim()
        if not self._heap:
            return None
        _, handle = heapq.heappop(self._heap)
        handle.fired = True
        return handle.event

    def notify_cancelled(self) -> None:
        """Record that one pending entry was cancelled (for compaction stats).

        Called by :class:`~repro.des.engine.Engine.cancel`; using handles
        directly without notification is also fine — the queue still skips
        cancelled entries, it just compacts less eagerly.
        """
        self._dead += 1
        self._maybe_compact()

    def clear(self) -> None:
        """Drop all pending events (their handles become cancelled)."""
        for _, handle in self._heap:
            if handle.alive:
                handle.cancelled = True
        self._heap.clear()
        self._dead = 0

    def iter_pending(self) -> Iterator[Event]:
        """Yield live events in an unspecified order (testing/introspection)."""
        for _, handle in self._heap:
            if handle.alive:
                yield handle.event

    def _skim(self) -> None:
        """Drop cancelled events sitting at the heap top."""
        while self._heap and self._heap[0][1].cancelled:
            heapq.heappop(self._heap)
            self._dead = max(0, self._dead - 1)

    def _maybe_compact(self) -> None:
        if (
            len(self._heap) >= self._COMPACT_MIN
            and self._dead > len(self._heap) * self._COMPACT_RATIO
        ):
            live = [(k, h) for k, h in self._heap if h.alive]
            heapq.heapify(live)
            self._heap = live
            self._dead = 0
