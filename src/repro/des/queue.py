"""Pending-event set: a binary heap with stable ordering and lazy deletion.

``heapq`` gives O(log n) push/pop; cancelled events are skipped on pop rather
than removed eagerly, which keeps cancellation O(1). A compaction pass runs
automatically when more than half the heap is dead weight, bounding memory to
O(live events).

Hot-path layout: heap entries are flat ``(time, priority, seq, handle)``
tuples. Tuple comparison resolves entirely inside the C comparison loop —
``seq`` is unique, so the handle in the last slot is never compared — and no
separate sort-key tuple is allocated per event. The fused
:meth:`EventQueue.peek_time` + :meth:`EventQueue.pop_next` pair skims the
heap top exactly once per fired event; :meth:`~repro.des.engine.Engine.run`
goes one step further and inlines that skim directly over this entry layout
(which is why compaction must replace ``_heap`` contents in place, never
rebind the list). :meth:`schedule_sorted` bulk-loads an already-time-ordered
event list without N× ``heappush``.
"""

from __future__ import annotations

import heapq
from collections.abc import Callable, Iterable, Iterator
from typing import Any

from repro.des.event import Event, EventHandle, PRIORITY_NORMAL


class EventQueue:
    """Priority queue of :class:`Event` objects ordered by (time, priority, seq)."""

    __slots__ = ("_heap", "_seq", "_dead")

    #: Compact the heap when dead entries exceed this fraction of the heap.
    _COMPACT_RATIO = 0.5
    #: ... but never bother compacting tiny heaps.
    _COMPACT_MIN = 64

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, int, EventHandle]] = []
        self._seq = 0
        self._dead = 0

    def __len__(self) -> int:
        """Number of *live* (pending) events."""
        return len(self._heap) - self._dead

    def __bool__(self) -> bool:
        return len(self) > 0

    @property
    def next_seq(self) -> int:
        """Sequence number the next pushed event will receive."""
        return self._seq

    def push(
        self,
        time: float,
        action: Callable[..., Any],
        *args: Any,
        priority: int = PRIORITY_NORMAL,
        tag: str | Callable[[], str] = "",
    ) -> EventHandle:
        """Schedule ``action(*args)`` at ``time`` and return a cancel handle.

        Raises:
            ValueError: if ``time`` is negative or not finite.
        """
        if not (time >= 0.0):  # also rejects NaN
            raise ValueError(f"event time must be finite and >= 0, got {time!r}")
        seq = self._seq
        self._seq = seq + 1
        handle = EventHandle(Event(time, priority, seq, action, args, tag))
        heapq.heappush(self._heap, (time, priority, seq, handle))
        return handle

    def schedule_sorted(
        self, items: Iterable[tuple[float, Callable[..., Any], tuple[Any, ...]]]
    ) -> int:
        """Bulk-load ``(time, action, args)`` triples already ordered by time.

        The triples are appended with normal priority and consecutive
        sequence numbers — exactly the events N individual :meth:`push`
        calls would create — but without N heap sift-ups: when the queue is
        empty the sorted run *is* a valid heap, and otherwise one O(n)
        ``heapify`` restores the invariant.

        Returns:
            The number of events scheduled.

        Raises:
            ValueError: if a time is negative/NaN or the times decrease.
        """
        heap = self._heap
        preexisting = len(heap)
        append = heap.append
        seq = self._seq
        prev = 0.0
        for time, action, args in items:
            if not (time >= prev):  # also rejects NaN
                raise ValueError(
                    "schedule_sorted requires finite, non-negative, "
                    f"non-decreasing times; got {time!r} after {prev!r}"
                )
            prev = time
            handle = EventHandle(Event(time, PRIORITY_NORMAL, seq, action, args))
            append((time, PRIORITY_NORMAL, seq, handle))
            seq += 1
        scheduled = len(heap) - preexisting
        self._seq = seq
        if preexisting and scheduled:
            heapq.heapify(heap)
        return scheduled

    def peek(self) -> Event | None:
        """Return the earliest live event without removing it, or None."""
        self._skim()
        if not self._heap:
            return None
        return self._heap[0][3].event

    def peek_time(self) -> float | None:
        """Skim dead entries, then return the earliest live event time.

        Returns None when no live event is pending. After a non-None
        return the heap top is guaranteed live, so :meth:`pop_next` may be
        called without re-skimming — the fused fast path of the run loop.
        """
        heap = self._heap
        if heap and heap[0][3].cancelled:
            self._skim()
        if not heap:
            return None
        return heap[0][0]

    def pop_next(self) -> Event:
        """Pop the heap top unconditionally (precondition: top is live).

        Only valid immediately after a non-None :meth:`peek_time` (or
        :meth:`peek`) with no intervening mutation.
        """
        handle = heapq.heappop(self._heap)[3]
        handle.fired = True
        return handle.event

    def pop(self) -> Event | None:
        """Remove and return the earliest live event, or None if empty.

        The returned event's handle is marked as fired.
        """
        self._skim()
        if not self._heap:
            return None
        handle = heapq.heappop(self._heap)[3]
        handle.fired = True
        return handle.event

    def notify_cancelled(self) -> None:
        """Record that one pending entry was cancelled (for compaction stats).

        Called by :class:`~repro.des.engine.Engine.cancel`; using handles
        directly without notification is also fine — the queue still skips
        cancelled entries, it just compacts less eagerly.
        """
        self._dead += 1
        self._maybe_compact()

    def clear(self) -> None:
        """Drop all pending events (their handles become cancelled).

        Cancellation goes through :meth:`EventHandle.cancel` — the one
        cancellation path — so already-fired handles are left untouched.
        """
        for entry in self._heap:
            entry[3].cancel()
        self._heap.clear()
        self._dead = 0

    def iter_pending(self) -> Iterator[Event]:
        """Yield live events in an unspecified order (testing/introspection)."""
        for entry in self._heap:
            if entry[3].alive:
                yield entry[3].event

    def _skim(self) -> None:
        """Drop cancelled events sitting at the heap top."""
        heap = self._heap
        while heap and heap[0][3].cancelled:
            heapq.heappop(heap)
            if self._dead:
                self._dead -= 1

    def _maybe_compact(self) -> None:
        if (
            len(self._heap) >= self._COMPACT_MIN
            and self._dead > len(self._heap) * self._COMPACT_RATIO
        ):
            live = [entry for entry in self._heap if entry[3].alive]
            heapq.heapify(live)
            # in-place replacement: the engine's fused run loop holds a
            # direct reference to this list across events
            self._heap[:] = live
            self._dead = 0
